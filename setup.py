"""Legacy shim: this offline environment lacks the `wheel` package that
PEP 660 editable installs require, so `python setup.py develop` (or a
.pth file) is the supported editable-install path."""
from setuptools import setup

setup()
