"""Tests for hybrid MPI+OpenMP launching and the 0x3 skip mask."""

import pytest

from repro.core.pin import LikwidPin
from repro.errors import SchedulerError
from repro.oskern.mpi import MpiExec, SimCluster
from repro.oskern.threads import ThreadKind


def launch_hybrid(cluster, *, skip=None, thread_type="intel_mpi",
                  omp_threads=8):
    """mpiexec -pernode likwid-pin -c 0-7 [-s skip] ./a.out"""
    mpiexec = MpiExec(cluster)

    def setup(kernel):
        pin = LikwidPin(kernel)
        process = pin.launch("0-7", thread_type=thread_type, skip=skip)
        return process.master

    mpiexec.run(len(cluster), pernode=True, setup=setup)
    mpiexec.spawn_teams(omp_threads)
    mpiexec.place_all()
    return mpiexec


class TestCluster:
    def test_nodes_are_independent(self):
        cluster = SimCluster("westmere_ep", 3)
        assert len(cluster) == 3
        machines = {id(n.machine) for n in cluster.nodes}
        assert len(machines) == 3

    def test_pernode_requires_enough_nodes(self):
        cluster = SimCluster("westmere_ep", 2)
        with pytest.raises(SchedulerError, match="-pernode"):
            MpiExec(cluster).run(4, pernode=True)

    def test_round_robin_without_pernode(self):
        cluster = SimCluster("core2", 2)
        ranks = MpiExec(cluster, mpi_model="none").run(4)
        assert [r.node.index for r in ranks] == [0, 1, 0, 1]

    def test_invalid_cluster(self):
        with pytest.raises(SchedulerError):
            SimCluster("core2", 0)


class TestHybridPinning:
    def test_paper_example_0x3(self):
        """The 0x3 mask skips the MPI progress thread and the OpenMP
        shepherd; the 8 compute threads land on cores 0-7."""
        cluster = SimCluster("westmere_ep", 2, seed=1)
        mpiexec = launch_hybrid(cluster, thread_type="intel_mpi")
        for rank in mpiexec.ranks:
            kernel = rank.node.kernel
            compute_cpus = sorted(t.hwthread for t in rank.compute_threads)
            assert compute_cpus == [0, 1, 2, 3, 4, 5, 6, 7]
            # Both management threads remain unpinned.
            assert kernel.sched_getaffinity(rank.progress_thread.tid) \
                == kernel.all_cpus
            omp_shepherd = rank.team.created[0]
            assert omp_shepherd.kind is ThreadKind.SHEPHERD
            assert kernel.sched_getaffinity(omp_shepherd.tid) \
                == kernel.all_cpus

    def test_wrong_mask_pins_omp_shepherd(self):
        """Using the plain Intel mask (0x1) in a hybrid run skips only
        the MPI progress thread; the OpenMP shepherd steals core 1 and
        every worker shifts, wrapping one onto the master's core."""
        cluster = SimCluster("westmere_ep", 1, seed=1)
        mpiexec = launch_hybrid(cluster, skip=0x1, thread_type=None)
        rank = mpiexec.ranks[0]
        kernel = rank.node.kernel
        omp_shepherd = rank.team.created[0]
        assert kernel.sched_getaffinity(omp_shepherd.tid) == frozenset({1})
        compute_cpus = sorted(t.hwthread for t in rank.compute_threads)
        assert compute_cpus != [0, 1, 2, 3, 4, 5, 6, 7]
        assert len(set(compute_cpus)) < 8   # two threads share core 0

    def test_ranks_isolated_across_nodes(self):
        cluster = SimCluster("westmere_ep", 2, seed=5)
        mpiexec = launch_hybrid(cluster)
        tids0 = {t.tid for t in mpiexec.ranks[0].team.all_threads}
        assert mpiexec.ranks[0].node.kernel is not \
            mpiexec.ranks[1].node.kernel
        assert tids0 and all(
            tid not in mpiexec.ranks[1].node.kernel.threads or True
            for tid in tids0)

    def test_hybrid_stream_performance(self):
        """Each rank saturates its own node: aggregate bandwidth scales
        with node count (the reason -pernode hybrid runs exist)."""
        from repro.workloads.runner import run_team
        from repro.workloads.stream import triad_phase
        cluster = SimCluster("westmere_ep", 2, seed=3)
        mpiexec = launch_hybrid(cluster, omp_threads=8)
        total_bw = 0.0
        for rank in mpiexec.ranks:
            result = run_team(rank.node.machine, rank.node.kernel,
                              rank.team,
                              lambda _i, _n: triad_phase("icc", 1_000_000),
                              migrate=False)
            total_bw += 24.0 * 8_000_000 / result.total_time
        # 8 scattered... cores 0-7 span socket 0 fully + 2 cores of
        # socket 1? No: 0-7 = 6 cores socket 0 + 2 cores socket 1.
        assert total_bw > 2 * 21e9 / 1.0  # at least both nodes' socket-0
