"""Unit tests for the simulated OS scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.hw.arch import create_machine
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import ThreadKind


@pytest.fixture
def kernel():
    return OSKernel(create_machine("westmere_ep"), seed=1)


class TestThreadLifecycle:
    def test_spawn_process_is_master(self, kernel):
        t = kernel.spawn_process("app")
        assert t.kind is ThreadKind.MASTER
        assert t.creation_index == 0

    def test_pthread_create_orders(self, kernel):
        kernel.spawn_process()
        a = kernel.pthread_create()
        b = kernel.pthread_create()
        assert (a.creation_index, b.creation_index) == (1, 2)

    def test_create_hooks_run_in_order(self, kernel):
        seen = []
        kernel.register_create_hook(lambda k, t: seen.append(("a", t.tid)))
        kernel.register_create_hook(lambda k, t: seen.append(("b", t.tid)))
        t = kernel.pthread_create()
        assert seen == [("a", t.tid), ("b", t.tid)]

    def test_reset_clears_threads_keeps_env(self, kernel):
        kernel.env["X"] = "1"
        kernel.spawn_process()
        kernel.reset_threads()
        assert not kernel.threads
        assert kernel.env["X"] == "1"
        assert kernel.spawn_process().creation_index == 0


class TestAffinity:
    def test_set_get_roundtrip(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {3, 5})
        assert kernel.sched_getaffinity(t.tid) == frozenset({3, 5})

    def test_default_affinity_is_all_cpus(self, kernel):
        t = kernel.spawn_process()
        assert kernel.sched_getaffinity(t.tid) == kernel.all_cpus

    def test_empty_mask_rejected(self, kernel):
        t = kernel.spawn_process()
        with pytest.raises(SchedulerError, match="empty"):
            kernel.sched_setaffinity(t.tid, set())

    def test_invalid_cpu_rejected(self, kernel):
        t = kernel.spawn_process()
        with pytest.raises(SchedulerError, match="invalid cpus"):
            kernel.sched_setaffinity(t.tid, {99})

    def test_unknown_tid(self, kernel):
        with pytest.raises(SchedulerError, match="unknown tid"):
            kernel.sched_setaffinity(12345, {0})

    def test_changing_affinity_invalidates_placement(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {4})
        kernel.place_thread(t.tid)
        assert t.hwthread == 4
        kernel.sched_setaffinity(t.tid, {7})
        assert t.hwthread is None


class TestPlacement:
    def test_pinned_thread_lands_on_its_cpu(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {9})
        assert kernel.place_thread(t.tid) == 9

    def test_first_touch_memory_socket(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {7})   # socket 1
        kernel.place_thread(t.tid)
        assert t.memory_socket == 1

    def test_memory_socket_sticky(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {7})
        kernel.place_thread(t.tid)
        kernel.sched_setaffinity(t.tid, {0})
        kernel.place_thread(t.tid)
        assert t.hwthread == 0
        assert t.memory_socket == 1    # memory stays on socket 1

    def test_balancer_avoids_oversubscription_when_possible(self, kernel):
        threads = [kernel.pthread_create() for _ in range(24)]
        kernel.place_all()
        placements = [t.hwthread for t in threads]
        assert len(set(placements)) == 24   # one thread per hwthread

    def test_oversubscription_when_necessary(self, kernel):
        threads = [kernel.pthread_create() for _ in range(30)]
        kernel.place_all()
        per_cpu = {}
        for t in threads:
            per_cpu[t.hwthread] = per_cpu.get(t.hwthread, 0) + 1
        assert max(per_cpu.values()) == 2
        assert sum(per_cpu.values()) == 30

    def test_placement_random_across_seeds(self):
        machine = create_machine("westmere_ep")
        outcomes = set()
        for seed in range(20):
            k = OSKernel(machine, seed=seed)
            t = k.spawn_process()
            k.place_thread(t.tid)
            outcomes.add(t.hwthread)
        assert len(outcomes) > 3   # topology-blind randomness

    def test_placement_deterministic_per_seed(self):
        machine = create_machine("westmere_ep")

        def run(seed):
            k = OSKernel(machine, seed=seed)
            ts = [k.pthread_create() for _ in range(6)]
            k.place_all()
            return [t.hwthread for t in ts]

        assert run(42) == run(42)


class TestMigration:
    def test_pinned_threads_never_migrate(self, kernel):
        t = kernel.spawn_process()
        kernel.sched_setaffinity(t.tid, {5})
        kernel.place_thread(t.tid)
        moved = kernel.maybe_migrate([t.tid] * 50)
        assert moved == 0
        assert t.hwthread == 5

    def test_unpinned_threads_sometimes_migrate(self):
        machine = create_machine("westmere_ep")
        k = OSKernel(machine, seed=3, migration_rate=1.0)
        threads = [k.pthread_create() for _ in range(4)]
        k.place_all()
        before = [t.hwthread for t in threads]
        k.maybe_migrate([t.tid for t in threads])
        after = [t.hwthread for t in threads]
        assert before != after or True  # migration may land on same cpu
        # Memory sockets unchanged by migration.
        for t in threads:
            assert t.memory_socket is not None

    def test_zero_rate_never_migrates(self):
        machine = create_machine("westmere_ep")
        k = OSKernel(machine, seed=3, migration_rate=0.0)
        threads = [k.pthread_create() for _ in range(8)]
        k.place_all()
        assert k.maybe_migrate([t.tid for t in threads]) == 0
