"""Unit tests for the simulated msr kernel module."""

import struct

import pytest

from repro.errors import MsrError
from repro.hw import registers as regs
from repro.hw.arch import create_machine
from repro.oskern.msr_driver import MsrDriver


@pytest.fixture
def driver():
    return MsrDriver(create_machine("nehalem_ep"))


class TestModule:
    def test_open_requires_loaded_module(self):
        driver = MsrDriver(create_machine("core2"), loaded=False)
        with pytest.raises(MsrError, match="modprobe msr"):
            driver.open(0)
        driver.load()
        assert driver.open(0) is not None

    def test_unload(self, driver):
        driver.unload()
        with pytest.raises(MsrError):
            driver.open(0)

    def test_no_such_device(self, driver):
        with pytest.raises(MsrError, match="no such device"):
            driver.open(99)

    def test_write_permission_enforced(self):
        driver = MsrDriver(create_machine("core2"), device_writable=False)
        with pytest.raises(MsrError, match="permission denied"):
            driver.open(0, write=True)
        # Read-only open still works.
        assert driver.open(0, write=False).read_msr(regs.IA32_TSC) == 0


class TestFileSemantics:
    def test_pread_is_8_bytes_little_endian(self, driver):
        f = driver.open(0, write=False)
        data = f.pread(regs.IA32_TSC)
        assert len(data) == 8
        assert struct.unpack("<Q", data)[0] == 0

    def test_pwrite_roundtrip(self, driver):
        f = driver.open(2)
        f.pwrite(regs.IA32_PERFEVTSEL0, struct.pack("<Q", 0x414243))
        assert f.read_msr(regs.IA32_PERFEVTSEL0) == 0x414243

    def test_pwrite_requires_8_bytes(self, driver):
        f = driver.open(0)
        with pytest.raises(MsrError, match="8 bytes"):
            f.pwrite(regs.IA32_PERFEVTSEL0, b"\x01")

    def test_write_on_readonly_fd(self, driver):
        f = driver.open(0, write=False)
        with pytest.raises(MsrError, match="read-only"):
            f.write_msr(regs.IA32_PERFEVTSEL0, 1)

    def test_closed_fd_rejected(self, driver):
        f = driver.open(0)
        f.close()
        with pytest.raises(MsrError, match="closed"):
            f.read_msr(regs.IA32_TSC)

    def test_per_cpu_isolation(self, driver):
        f0 = driver.open(0)
        f1 = driver.open(1)
        f0.write_msr(regs.IA32_PERFEVTSEL0, 0x11)
        assert f1.read_msr(regs.IA32_PERFEVTSEL0) == 0

    def test_undeclared_address_faults(self, driver):
        f = driver.open(0)
        with pytest.raises(MsrError, match="#GP"):
            f.read_msr(0xDEAD)
