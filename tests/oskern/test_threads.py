"""Unit tests for the thread table semantics."""

from repro.oskern.threads import SimThread, ThreadKind


class TestSimThread:
    def test_pinned_requires_singleton_mask(self):
        t = SimThread(tid=1, kind=ThreadKind.WORKER, creation_index=0)
        assert not t.pinned
        t.affinity = frozenset({3, 4})
        assert not t.pinned
        t.affinity = frozenset({3})
        assert t.pinned

    def test_shepherds_do_not_compute(self):
        shepherd = SimThread(tid=1, kind=ThreadKind.SHEPHERD,
                             creation_index=1)
        worker = SimThread(tid=2, kind=ThreadKind.WORKER, creation_index=2)
        master = SimThread(tid=3, kind=ThreadKind.MASTER, creation_index=0)
        assert not shepherd.computes
        assert worker.computes
        assert master.computes

    def test_default_name_and_meta(self):
        t = SimThread(tid=7, kind=ThreadKind.WORKER, creation_index=0)
        assert t.hwthread is None
        assert t.memory_socket is None
        t.meta["key"] = "value"
        assert t.meta == {"key": "value"}

    def test_kind_enum_values(self):
        assert ThreadKind.MASTER.value == "master"
        assert ThreadKind.SHEPHERD.value == "shepherd"
        assert ThreadKind.WORKER.value == "worker"
