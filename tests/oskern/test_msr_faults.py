"""Unit tests for the msr driver's deterministic fault injection."""

import pytest

from repro.errors import (MsrError, MsrIOError, MsrPermissionError)
from repro.hw import registers as regs
from repro.hw.arch import create_machine
from repro.oskern.msr_driver import DriverStats, FaultPlan, MsrDriver


@pytest.fixture
def machine():
    return create_machine("nehalem_ep")


class TestFaultPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError, match="read_fault_rate"):
            FaultPlan(read_fault_rate=1.5)
        with pytest.raises(ValueError, match="write_fault_rate"):
            FaultPlan(write_fault_rate=-0.1)

    def test_errno_restricted(self):
        with pytest.raises(ValueError, match="EAGAIN or EIO"):
            FaultPlan(transient_errno="ENOSPC")

    def test_overflow_positive(self):
        with pytest.raises(ValueError, match="overflow_after"):
            FaultPlan(overflow_after=0)

    def test_from_string(self):
        plan = FaultPlan.from_string(
            "seed=7, read_fault_rate=0.1, sticky=0x3B0, sticky=0xC1,"
            "overflow_after=1000")
        assert plan.seed == 7
        assert plan.read_fault_rate == pytest.approx(0.1)
        assert plan.sticky_addresses == (0x3B0, 0xC1)
        assert plan.overflow_after == 1000

    def test_from_string_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            FaultPlan.from_string("bogus=1")
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_string("just-a-word")

    def test_from_string_rejects_duplicate_key(self):
        with pytest.raises(ValueError, match="duplicate fault key 'seed'"):
            FaultPlan.from_string("seed=7,seed=8")
        with pytest.raises(ValueError, match="duplicate fault key"):
            FaultPlan.from_string("kill_after=3,read_fault_rate=0.1,"
                                  "kill_after=9")

    def test_from_string_sticky_may_repeat(self):
        plan = FaultPlan.from_string("sticky=0x38F,sticky_addresses=0xC1")
        assert plan.sticky_addresses == (0x38F, 0xC1)

    def test_from_string_tolerates_empty_segments(self):
        plan = FaultPlan.from_string(",seed=7,, overflow_after=1000 ,")
        assert plan.seed == 7
        assert plan.overflow_after == 1000


class TestTransientFaults:
    def test_read_fault_is_transient_and_counted(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(seed=0,
                                                     read_fault_rate=1.0))
        f = driver.open(0, write=False)
        with pytest.raises(MsrIOError) as info:
            f.read_msr(regs.IA32_TSC)
        assert info.value.transient
        assert info.value.errno_name == "EAGAIN"
        assert driver.stats.faults == 1

    def test_write_fault_uses_configured_errno(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(
            write_fault_rate=1.0, transient_errno="EIO"))
        f = driver.open(0)
        with pytest.raises(MsrIOError) as info:
            f.write_msr(regs.IA32_PERFEVTSEL0, 1)
        assert info.value.errno_name == "EIO"
        assert info.value.transient

    def test_deterministic_for_fixed_seed(self, machine):
        def fault_pattern(seed):
            driver = MsrDriver(machine,
                               faults=FaultPlan(seed=seed,
                                                read_fault_rate=0.5))
            f = driver.open(0, write=False)
            pattern = []
            for _ in range(64):
                try:
                    f.read_msr(regs.IA32_TSC)
                    pattern.append(0)
                except MsrIOError:
                    pattern.append(1)
            return pattern

        assert fault_pattern(42) == fault_pattern(42)
        assert fault_pattern(42) != fault_pattern(43)

    def test_faulted_op_does_not_count_as_access(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(read_fault_rate=1.0))
        f = driver.open(0, write=False)
        with pytest.raises(MsrIOError):
            f.read_msr(regs.IA32_TSC)
        assert driver.stats.reads == 0


class TestScheduledStateFlips:
    def test_module_unloads_after_op_budget(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(unload_after=3))
        f = driver.open(0, write=False)          # op 1
        f.read_msr(regs.IA32_TSC)                # op 2
        f.read_msr(regs.IA32_TSC)                # op 3
        # Budget exhausted: the module vanishes under the open file.
        with pytest.raises(MsrIOError, match="ENODEV"):
            f.read_msr(regs.IA32_TSC)
        with pytest.raises(MsrError, match="modprobe msr"):
            driver.open(1)

    def test_write_permission_revoked_after_op_budget(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(revoke_write_after=2))
        f = driver.open(0)                       # op 1
        f.write_msr(regs.IA32_PERFEVTSEL0, 1)    # op 2
        # The already-open writable fd keeps its access mode...
        f.write_msr(regs.IA32_PERFEVTSEL0, 2)
        # ...but new writable opens are denied.
        with pytest.raises(MsrPermissionError, match="permission denied"):
            driver.open(1)
        # Read-only opens still work.
        assert driver.open(1, write=False) is not None


class TestStickyAddresses:
    def test_sticky_address_always_fails(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(
            sticky_addresses=(regs.IA32_PMC0,)))
        f = driver.open(0, write=False)
        for _ in range(3):
            with pytest.raises(MsrIOError) as info:
                f.read_msr(regs.IA32_PMC0)
            assert not info.value.transient
            assert info.value.errno_name == "EIO"
        # Other addresses are unaffected.
        assert f.read_msr(regs.IA32_TSC) == 0
        assert driver.stats.faults == 3


class TestForcedOverflow:
    def test_zeroing_a_counter_preloads_it(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=100))
        f = driver.open(0)
        f.write_msr(regs.IA32_PMC0, 0)
        top = 1 << machine.counter_width
        assert f.read_msr(regs.IA32_PMC0) == top - 100

    def test_config_registers_not_preloaded(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=100))
        f = driver.open(0)
        f.write_msr(regs.IA32_PERF_GLOBAL_CTRL, 0)
        assert f.read_msr(regs.IA32_PERF_GLOBAL_CTRL) == 0

    def test_nonzero_counter_writes_pass_through(self, machine):
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=100))
        f = driver.open(0)
        f.write_msr(regs.IA32_PMC0, 77)
        assert f.read_msr(regs.IA32_PMC0) == 77


class TestStats:
    def test_closes_and_live_handles(self, machine):
        driver = MsrDriver(machine)
        f0 = driver.open(0)
        f1 = driver.open(1)
        assert driver.stats.live_handles == 2
        f0.close()
        f0.close()   # double close counted once
        assert driver.stats.closes == 1
        assert driver.stats.live_handles == 1
        f1.close()
        assert driver.stats.live_handles == 0

    def test_context_manager_closes(self, machine):
        driver = MsrDriver(machine)
        with driver.open(0, write=False) as f:
            f.read_msr(regs.IA32_TSC)
        assert driver.stats.live_handles == 0

    def test_reset_clears_new_fields(self):
        stats = DriverStats(opens=3, reads=2, writes=1, closes=3, faults=4)
        stats.reset()
        assert (stats.opens, stats.reads, stats.writes,
                stats.closes, stats.faults) == (0, 0, 0, 0, 0)
