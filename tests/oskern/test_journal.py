"""The write-ahead MSR journal: records, checksums, torn tails,
file round-trips and the journaling driver API (ISSUE 5 tentpole).

The core safety property under test: a record that fails its checksum
at the *tail* is a torn write and is truncated (write-ahead ordering
guarantees its MSR write never happened), while a bad record with
valid records after it means the history is untrustworthy and raises
``JournalCorruptError`` instead of mis-restoring.
"""

import pytest

from repro.errors import JournalCorruptError, JournalError
from repro.hw import registers as regs
from repro.hw.arch import available, create_machine, get_arch
from repro.oskern.journal import (HEADER, OP_LOCK, OP_UNLOCK, OP_WRITE,
                                  RECORD_SIZE, JournalRecord, MsrJournal,
                                  state_mutating_addresses)
from repro.oskern.msr_driver import MsrDriver


class TestRecordCodec:
    def test_round_trip(self):
        rec = JournalRecord(seq=7, epoch=3, op=OP_WRITE, cpu=5,
                            address=regs.IA32_PERF_GLOBAL_CTRL,
                            before=0x0, after=0x70000000F)
        blob = rec.encode()
        assert len(blob) == RECORD_SIZE
        assert JournalRecord.decode(blob) == rec

    def test_checksum_rejects_bit_flip(self):
        blob = bytearray(JournalRecord(0, 1, OP_WRITE, 0, 0x38F,
                                       0, 3).encode())
        blob[10] ^= 0x40
        with pytest.raises(JournalError):
            JournalRecord.decode(bytes(blob))

    def test_short_record_rejected(self):
        with pytest.raises(JournalError):
            JournalRecord.decode(b"\x00" * (RECORD_SIZE - 1))


class TestScanSemantics:
    def _journal_with(self, n=3):
        journal = MsrJournal()
        epoch = journal.begin_epoch()
        for i in range(n):
            journal.record_write(epoch, 0, 0x38F, i, i + 1)
        return journal

    def test_clean_scan(self):
        journal = self._journal_with(3)
        scan = journal.scan()
        assert [r.after for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_torn_tail_truncated(self):
        journal = self._journal_with(3)
        # Simulate a crash mid-append: half a record at the tail.
        journal.buffer += JournalRecord(9, 1, OP_WRITE, 0, 0x38F,
                                        3, 4).encode()[:10]
        scan = journal.scan()
        assert len(scan.records) == 3
        assert scan.torn_bytes == 10
        # The truncation is physical: the next scan is clean.
        assert journal.scan().torn_bytes == 0

    def test_corrupt_tail_record_truncated(self):
        journal = self._journal_with(2)
        journal.buffer[-4] ^= 0xFF        # clobber the last CRC
        scan = journal.scan()
        assert len(scan.records) == 1
        assert scan.torn_bytes == RECORD_SIZE

    def test_mid_journal_corruption_is_unrecoverable(self):
        journal = self._journal_with(3)
        journal.buffer[len(HEADER) + 4] ^= 0xFF   # first record's epoch
        with pytest.raises(JournalCorruptError):
            journal.scan()

    def test_bad_magic(self):
        journal = MsrJournal()
        journal.buffer += b"NOPE" + b"\x00" * 40
        with pytest.raises(JournalCorruptError):
            journal.scan()

    def test_outstanding_locks(self):
        journal = MsrJournal()
        e = journal.begin_epoch()
        journal.record_lock(e, socket=0, pid=4242)
        journal.record_lock(e, socket=1, pid=4242)
        journal.record_unlock(e, socket=0, pid=4242)
        assert journal.scan().outstanding_locks() == {1: (4242, e)}

    def test_duplicate_appends_filtered(self):
        journal = MsrJournal()
        e = journal.begin_epoch()
        journal.record_write(e, 0, 0x38F, 0, 3)
        journal.record_write(e, 0, 0x38F, 0, 3)   # retried op
        journal.record_write(e, 0, 0x38F, 3, 0)   # a different write
        assert journal.record_count == 2


class TestFileBacking:
    def test_round_trip_and_continuation(self, tmp_path):
        path = tmp_path / "msr.journal"
        journal = MsrJournal(path)
        e = journal.begin_epoch()
        journal.record_write(e, 2, 0x186, 0, 0x41010C, )
        journal.record_lock(e, socket=0, pid=777)

        reloaded = MsrJournal(path)
        scan = reloaded.scan()
        assert [r.op for r in scan.records] == [OP_WRITE, OP_LOCK]
        assert scan.records[0].cpu == 2
        # Sequence numbers and epochs continue, never restart.
        assert reloaded.begin_epoch() == e + 1

    def test_torn_tail_truncated_on_disk(self, tmp_path):
        path = tmp_path / "msr.journal"
        journal = MsrJournal(path)
        e = journal.begin_epoch()
        journal.record_write(e, 0, 0x38F, 0, 1)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03")     # torn append
        reloaded = MsrJournal(path)
        assert reloaded.record_count == 1
        import os
        assert os.path.getsize(path) == len(HEADER) + RECORD_SIZE

    def test_clear_unlinks(self, tmp_path):
        path = tmp_path / "msr.journal"
        journal = MsrJournal(path)
        journal.record_write(journal.begin_epoch(), 0, 0x38F, 0, 1)
        journal.clear()
        assert not path.exists()

    def test_version_gate(self, tmp_path):
        path = tmp_path / "msr.journal"
        path.write_bytes(b"RJRN\x63\x00\x00\x00")   # format v99
        with pytest.raises(JournalError):
            MsrJournal(path)


class TestJournaledWriteAPI:
    def test_write_ahead_ordering_and_values(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        epoch = driver.begin_epoch()
        handle = driver.open(0)
        handle.journaled_write(regs.IA32_PERF_GLOBAL_CTRL, 0x3)
        [rec] = driver.journal.scan().records
        assert (rec.epoch, rec.cpu, rec.op) == (epoch, 0, OP_WRITE)
        assert rec.address == regs.IA32_PERF_GLOBAL_CTRL
        assert rec.before == 0 and rec.after == 0x3

    def test_refuses_unclassified_address(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        driver.begin_epoch()
        handle = driver.open(0)
        with pytest.raises(JournalError, match="state-mutating"):
            handle.journaled_write(0x10, 1)       # IA32_TIME_STAMP_COUNTER

    def test_no_journal_mode_writes_plainly(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, journaling=False)
        handle = driver.open(0)
        handle.journaled_write(regs.IA32_PERF_GLOBAL_CTRL, 0x3)
        assert driver.journal is None
        assert machine.msr[0].peek(regs.IA32_PERF_GLOBAL_CTRL) == 0x3


@pytest.mark.parametrize("arch", available())
def test_classifier_nonempty_everywhere(arch):
    """Every architecture has a non-trivial state-mutating surface
    including its first PERFEVTSEL register."""
    spec = get_arch(arch)
    addrs = state_mutating_addresses(spec)
    assert spec.pmu.evtsel_address(0) in addrs
    assert spec.pmu.pmc_address(0) in addrs
