"""Unit tests for the Intel/GNU OpenMP runtime models."""

import pytest

from repro.errors import SchedulerError
from repro.hw.arch import create_machine
from repro.oskern.openmp import OpenMPRuntime
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import ThreadKind


def make_kernel(arch="westmere_ep", **env):
    kernel = OSKernel(create_machine(arch), seed=0)
    kernel.env.update(env)
    return kernel


class TestTeamShapes:
    def test_intel_spawns_n_plus_one(self):
        """Paper: 'the Intel OpenMP implementation always runs
        OMP_NUM_THREADS+1 threads but uses the first newly created
        thread as a management thread'."""
        kernel = make_kernel()
        team = OpenMPRuntime(kernel, "intel").spawn_team(4)
        assert len(team.all_threads) == 5
        assert team.created[0].kind is ThreadKind.SHEPHERD
        assert len(team.compute_threads) == 4

    def test_gnu_spawns_n_minus_one(self):
        kernel = make_kernel()
        team = OpenMPRuntime(kernel, "gnu").spawn_team(4)
        assert len(team.all_threads) == 4
        assert all(t.kind is not ThreadKind.SHEPHERD
                   for t in team.all_threads)
        assert len(team.compute_threads) == 4

    def test_single_thread_team(self):
        kernel = make_kernel()
        for model in ("intel", "gnu"):
            kernel.reset_threads()
            team = OpenMPRuntime(kernel, model).spawn_team(1)
            assert len(team.compute_threads) == 1

    def test_master_is_openmp_thread_zero(self):
        kernel = make_kernel()
        team = OpenMPRuntime(kernel, "gnu").spawn_team(3)
        assert team.compute_threads[0] is team.master

    def test_invalid_runtime_model(self):
        with pytest.raises(SchedulerError, match="unknown OpenMP"):
            OpenMPRuntime(make_kernel(), "llvm")

    def test_invalid_thread_count(self):
        with pytest.raises(SchedulerError):
            OpenMPRuntime(make_kernel(), "gnu").spawn_team(0)


class TestKmpAffinity:
    def test_disabled_by_default(self):
        kernel = make_kernel()
        team = OpenMPRuntime(kernel, "intel").spawn_team(4)
        for t in team.compute_threads:
            assert kernel.sched_getaffinity(t.tid) == kernel.all_cpus

    def test_scatter_distributes_across_sockets(self):
        kernel = make_kernel(KMP_AFFINITY="scatter")
        team = OpenMPRuntime(kernel, "intel").spawn_team(4)
        cpus = [next(iter(kernel.sched_getaffinity(t.tid)))
                for t in team.compute_threads]
        sockets = [kernel.machine.spec.socket_of(c) for c in cpus]
        assert sorted(sockets) == [0, 0, 1, 1]
        # Shepherd remains unpinned.
        assert kernel.sched_getaffinity(team.created[0].tid) == kernel.all_cpus

    def test_compact_fills_one_core_first(self):
        kernel = make_kernel(KMP_AFFINITY="compact")
        team = OpenMPRuntime(kernel, "intel").spawn_team(2)
        cpus = [next(iter(kernel.sched_getaffinity(t.tid)))
                for t in team.compute_threads]
        assert cpus == [0, 12]   # SMT siblings of core 0

    def test_noop_on_gnu_runtime(self):
        kernel = make_kernel(KMP_AFFINITY="scatter")
        team = OpenMPRuntime(kernel, "gnu").spawn_team(4)
        for t in team.compute_threads:
            assert kernel.sched_getaffinity(t.tid) == kernel.all_cpus

    def test_noop_on_amd_hardware(self):
        """Paper: 'Intel compilers support thread affinity only if the
        application is executed on Intel processors'."""
        kernel = make_kernel(arch="amd_istanbul", KMP_AFFINITY="scatter")
        team = OpenMPRuntime(kernel, "intel").spawn_team(4)
        for t in team.compute_threads:
            assert kernel.sched_getaffinity(t.tid) == kernel.all_cpus

    def test_unknown_mode_rejected(self):
        kernel = make_kernel(KMP_AFFINITY="weird")
        with pytest.raises(SchedulerError, match="KMP_AFFINITY"):
            OpenMPRuntime(kernel, "intel").spawn_team(2)
