"""Unit tests for the pthread_create wrapper (the likwid-pin mechanism)."""

import pytest

from repro.errors import AffinityError
from repro.hw.arch import create_machine
from repro.oskern.preload import ENV_CPULIST, ENV_SKIP, PinOverlay
from repro.oskern.scheduler import OSKernel


@pytest.fixture
def kernel():
    return OSKernel(create_machine("westmere_ep"), seed=0)


def launch(kernel, cpulist, skip="0x0"):
    kernel.env[ENV_CPULIST] = cpulist
    kernel.env[ENV_SKIP] = skip
    overlay = PinOverlay().install(kernel)
    master = kernel.spawn_process()
    overlay.pin_master(kernel, master)
    return overlay, master


class TestMasterPinning:
    def test_master_pinned_to_first_core(self, kernel):
        _overlay, master = launch(kernel, "4,5,6")
        assert kernel.sched_getaffinity(master.tid) == frozenset({4})

    def test_no_cpulist_means_no_pinning(self, kernel):
        overlay = PinOverlay().install(kernel)
        master = kernel.spawn_process()
        overlay.pin_master(kernel, master)
        assert kernel.sched_getaffinity(master.tid) == kernel.all_cpus


class TestWorkerPinning:
    def test_workers_walk_the_list(self, kernel):
        _overlay, _master = launch(kernel, "0,1,2,3")
        workers = [kernel.pthread_create() for _ in range(3)]
        assert [next(iter(kernel.sched_getaffinity(w.tid)))
                for w in workers] == [1, 2, 3]

    def test_skip_mask_skips_shepherd(self, kernel):
        overlay, _master = launch(kernel, "0,1,2,3", skip="0x1")
        shepherd = kernel.pthread_create()
        workers = [kernel.pthread_create() for _ in range(3)]
        assert kernel.sched_getaffinity(shepherd.tid) == kernel.all_cpus
        assert [next(iter(kernel.sched_getaffinity(w.tid)))
                for w in workers] == [1, 2, 3]
        assert overlay.skipped_tids == [shepherd.tid]

    def test_hybrid_mask_0x3_skips_two(self, kernel):
        overlay, _master = launch(kernel, "0,1,2", skip="0x3")
        first = kernel.pthread_create()
        second = kernel.pthread_create()
        third = kernel.pthread_create()
        assert overlay.skipped_tids == [first.tid, second.tid]
        assert kernel.sched_getaffinity(third.tid) == frozenset({1})

    def test_list_wraps_around(self, kernel):
        _overlay, _master = launch(kernel, "0,1")
        w1 = kernel.pthread_create()
        w2 = kernel.pthread_create()   # list exhausted -> wraps to index 0
        assert kernel.sched_getaffinity(w1.tid) == frozenset({1})
        assert kernel.sched_getaffinity(w2.tid) == frozenset({0})

    def test_env_read_lazily_at_first_call(self, kernel):
        overlay = PinOverlay().install(kernel)
        master = kernel.spawn_process()
        # Env set AFTER install but before first thread creation.
        kernel.env[ENV_CPULIST] = "2,3"
        kernel.env[ENV_SKIP] = "0x0"
        w = kernel.pthread_create()
        assert kernel.sched_getaffinity(w.tid) == frozenset({3})
        del master, overlay

    def test_malformed_cpulist_raises(self, kernel):
        kernel.env[ENV_CPULIST] = "0,x"
        overlay = PinOverlay().install(kernel)
        with pytest.raises(AffinityError, match="bad LIKWID_PIN"):
            kernel.pthread_create()
        del overlay
