"""Tests for /proc/cpuinfo and sysfs rendering: the independent oracle
against which the CPUID decode path is cross-checked."""

import pytest

from repro.hw.arch import ARCH_SPECS, create_machine, get_arch
from repro.oskern.proc import parse_cpuinfo, render_cpuinfo
from repro.oskern.sysfs import _cpulist, parse_cpulist, render_sysfs


class TestCpuinfo:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_one_stanza_per_hwthread(self, arch):
        m = create_machine(arch)
        cpus = parse_cpuinfo(render_cpuinfo(m))
        assert len(cpus) == m.num_hwthreads
        assert [int(c["processor"]) for c in cpus] == list(range(len(cpus)))

    def test_westmere_core_ids_sparse(self):
        m = create_machine("westmere_ep")
        cpus = parse_cpuinfo(render_cpuinfo(m))
        socket0_cores = {int(c["core id"]) for c in cpus
                         if c["physical id"] == "0"}
        assert socket0_cores == {0, 1, 2, 8, 9, 10}

    def test_family_model_match_spec(self):
        m = create_machine("amd_istanbul")
        cpu0 = parse_cpuinfo(render_cpuinfo(m))[0]
        assert int(cpu0["cpu family"]) == 0x10
        assert cpu0["vendor_id"] == "AuthenticAMD"

    def test_siblings_and_cores(self):
        m = create_machine("westmere_ep")
        cpu0 = parse_cpuinfo(render_cpuinfo(m))[0]
        assert int(cpu0["siblings"]) == 12
        assert int(cpu0["cpu cores"]) == 6

    def test_ht_flag_when_smt(self):
        m = create_machine("westmere_ep")
        cpu0 = parse_cpuinfo(render_cpuinfo(m))[0]
        assert "ht" in cpu0["flags"].split()
        m2 = create_machine("amd_istanbul")
        cpu0 = parse_cpuinfo(render_cpuinfo(m2))[0]
        assert "ht" not in cpu0["flags"].split()


class TestCpulistFormat:
    @pytest.mark.parametrize("cpus,text", [
        ([0, 1, 2, 3], "0-3"),
        ([0, 2, 3, 4, 8], "0,2-4,8"),
        ([5], "5"),
        ([0, 12], "0,12"),
    ])
    def test_render(self, cpus, text):
        assert _cpulist(cpus) == text

    @pytest.mark.parametrize("text,cpus", [
        ("0-3", [0, 1, 2, 3]),
        ("0,2-4,8", [0, 2, 3, 4, 8]),
        ("", []),
    ])
    def test_parse(self, text, cpus):
        assert parse_cpulist(text) == cpus

    def test_roundtrip(self):
        original = [0, 1, 2, 7, 9, 10, 11, 23]
        assert parse_cpulist(_cpulist(original)) == original


class TestSysfs:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_topology_consistent_with_spec(self, arch):
        m = create_machine(arch)
        spec = get_arch(arch)
        tree = render_sysfs(m)
        for cpu in range(spec.num_hwthreads):
            socket, core_index, _smt = spec.hwthread_location(cpu)
            assert tree[f"cpu{cpu}/topology/physical_package_id"] == str(socket)
            assert tree[f"cpu{cpu}/topology/core_id"] == \
                str(spec.core_ids[core_index])
            siblings = parse_cpulist(
                tree[f"cpu{cpu}/topology/thread_siblings_list"])
            assert cpu in siblings
            assert len(siblings) == spec.threads_per_core

    def test_westmere_l3_shared_by_socket(self):
        m = create_machine("westmere_ep")
        tree = render_sysfs(m)
        shared = parse_cpulist(tree["cpu0/cache/index2/shared_cpu_list"])
        assert sorted(shared) == sorted(m.spec.hwthreads_of_socket(0))

    def test_l1_shared_by_smt_pair(self):
        m = create_machine("westmere_ep")
        tree = render_sysfs(m)
        assert parse_cpulist(tree["cpu0/cache/index0/shared_cpu_list"]) == [0, 12]

    def test_cache_attributes(self):
        m = create_machine("westmere_ep")
        tree = render_sysfs(m)
        assert tree["cpu0/cache/index2/size"] == "12288K"
        assert tree["cpu0/cache/index2/ways_of_associativity"] == "16"
        assert tree["cpu0/cache/index2/number_of_sets"] == "12288"

    def test_online_list(self):
        m = create_machine("core2")
        assert render_sysfs(m)["online"] == "0-3"
