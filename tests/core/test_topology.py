"""Tests for likwid-topology: the CPUID decode path must reconstruct
every machine spec exactly, including the paper's Westmere listing."""

import pytest

from repro.hw.arch import ARCH_SPECS, create_machine, get_arch
from repro.core.topology import measure_clock, probe_topology, render_topology


@pytest.fixture(scope="module")
def westmere_topology():
    return probe_topology(create_machine("westmere_ep"))


class TestDecodeMatchesSpec:
    """The decoder sees only CPUID registers; its output must equal the
    spec the registers were encoded from — for every architecture."""

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_shape(self, arch):
        spec = get_arch(arch)
        topo = probe_topology(create_machine(arch))
        assert topo.num_sockets == spec.sockets
        assert topo.cores_per_socket == spec.cores_per_socket
        assert topo.threads_per_core == spec.threads_per_core
        assert topo.num_hwthreads == spec.num_hwthreads

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_per_thread_rows(self, arch):
        spec = get_arch(arch)
        topo = probe_topology(create_machine(arch))
        for entry in topo.threads:
            socket, core_index, smt = spec.hwthread_location(entry.hwthread)
            assert entry.socket_id == socket
            assert entry.core_id == spec.core_ids[core_index]
            assert entry.thread_id == smt
            assert entry.apic_id == spec.apic_id(entry.hwthread)

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_data_caches_decoded(self, arch):
        spec = get_arch(arch)
        topo = probe_topology(create_machine(arch))
        decoded = {(c.level, c.type): c for c in topo.caches}
        for cache in spec.caches:
            d = decoded[(cache.level, cache.type)]
            assert d.size == cache.size
            assert d.associativity == cache.associativity
            assert d.line_size == cache.line_size

    def test_cpu_name_from_brand_string(self, westmere_topology):
        assert "Westmere" in westmere_topology.cpu_name

    def test_clock_measured_from_tsc(self):
        machine = create_machine("westmere_ep")
        clock = measure_clock(machine)
        assert clock == pytest.approx(2.93e9, rel=0.01)


class TestWestmereListing:
    """The paper's §II.B listing, field by field."""

    def test_sparse_core_ids(self, westmere_topology):
        socket0 = [t for t in westmere_topology.threads
                   if t.socket_id == 0 and t.thread_id == 0]
        assert [t.core_id for t in socket0] == [0, 1, 2, 8, 9, 10]

    def test_socket_line(self, westmere_topology):
        assert westmere_topology.socket_members(0) == \
            [0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17]
        assert westmere_topology.socket_members(1) == \
            [6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23]

    def test_hwthread_3_is_core_8(self, westmere_topology):
        entry = next(t for t in westmere_topology.threads if t.hwthread == 3)
        assert (entry.thread_id, entry.core_id, entry.socket_id) == (0, 8, 0)

    def test_l1_groups(self, westmere_topology):
        l1 = next(c for c in westmere_topology.caches
                  if c.level == 1 and c.type == "Data cache")
        assert l1.groups[:2] == [[0, 12], [1, 13]]
        assert len(l1.groups) == 12

    def test_l3_groups_are_sockets(self, westmere_topology):
        l3 = next(c for c in westmere_topology.caches if c.level == 3)
        assert l3.groups == [
            [0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17],
            [6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23]]
        assert not l3.inclusive
        assert l3.threads_sharing == 12

    def test_rendered_listing_contains_paper_lines(self, westmere_topology):
        text = render_topology(westmere_topology)
        for line in [
            "Sockets:\t\t2",
            "Cores per socket:\t6",
            "Threads per core:\t2",
            "Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )",
            "Size:\t12 MB",
            "Number of sets:\t12288",
            "Non Inclusive cache",
            "Shared among 12 threads",
        ]:
            assert line in text, f"missing: {line!r}"

    def test_render_without_caches(self, westmere_topology):
        text = render_topology(westmere_topology, caches=False)
        assert "Cache Topology" not in text

    def test_instruction_caches_omitted_from_render(self, westmere_topology):
        text = render_topology(westmere_topology)
        assert "Instruction cache" not in text


class TestLegacyDecoders:
    def test_pentium_m_via_leaf2(self):
        topo = probe_topology(create_machine("pentium_m"))
        l2 = next(c for c in topo.caches if c.level == 2)
        assert l2.size == 2 * 1024 * 1024
        assert topo.num_sockets == 1
        assert topo.threads_per_core == 1

    def test_core2_via_leaf1_and_leaf4(self):
        topo = probe_topology(create_machine("core2"))
        assert topo.cores_per_socket == 4
        assert topo.threads_per_core == 1
        l2 = next(c for c in topo.caches if c.level == 2)
        assert l2.threads_sharing == 2   # shared core pairs

    def test_atom_smt(self):
        topo = probe_topology(create_machine("atom"))
        assert topo.threads_per_core == 2
        assert topo.cores_per_socket == 1

    def test_amd_istanbul_l3(self):
        topo = probe_topology(create_machine("amd_istanbul"))
        l3 = next(c for c in topo.caches if c.level == 3)
        assert l3.size == 6 * 1024 * 1024
        assert l3.associativity == 48
        assert l3.threads_sharing == 6
        assert l3.groups[0] == [0, 1, 2, 3, 4, 5]
