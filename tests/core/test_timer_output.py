"""Tests for the timer API and the multi-core statistics table."""

import pytest

from repro.core.timer import Timer
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.hw.events import Channel


class TestTimer:
    def test_measures_simulated_time(self):
        machine = create_machine("westmere_ep")
        timer = Timer(machine)
        data = timer.timer_start()
        machine.apply_counts({}, elapsed_seconds=0.125)
        timer.timer_stop(data)
        assert timer.timer_print(data) == pytest.approx(0.125, rel=1e-6)
        assert timer.timer_print_cycles(data) == int(0.125 * 2.93e9)

    def test_tsc_is_node_global(self):
        machine = create_machine("westmere_ep")
        t0 = Timer(machine, cpu=0)
        t5 = Timer(machine, cpu=5)
        d0 = t0.timer_start()
        d5 = t5.timer_start()
        machine.apply_counts({}, elapsed_seconds=0.01)
        t0.timer_stop(d0)
        t5.timer_stop(d5)
        assert d0.cycles == d5.cycles

    def test_zero_interval(self):
        machine = create_machine("core2")
        timer = Timer(machine)
        data = timer.timer_stop(timer.timer_start())
        assert data.cycles == 0

    def test_backwards_tsc_rejected(self):
        machine = create_machine("core2")
        timer = Timer(machine)
        data = timer.timer_start()
        data.start += 1000  # corrupt
        with pytest.raises(CounterError, match="backwards"):
            timer.timer_stop(data)

    def test_clock_query(self):
        assert Timer(create_machine("nehalem_ep")).get_cpu_clock() == 2.66e9

    def test_consistent_with_marker_runtime(self):
        """Timer seconds == perfctr's cycle-derived Runtime metric."""
        from repro.core.perfctr import LikwidPerfCtr
        machine = create_machine("core2")
        timer = Timer(machine)
        perfctr = LikwidPerfCtr(machine)
        data = timer.timer_start()
        result = perfctr.wrap(
            [0], "FLOPS_DP",
            lambda: machine.apply_counts(
                {0: {Channel.CORE_CYCLES: 2.83e9 * 0.25,
                     Channel.INSTRUCTIONS: 1e6}},
                elapsed_seconds=0.25))
        timer.timer_stop(data)
        assert timer.timer_print(data) == pytest.approx(
            result.metric(0, "Runtime [s]"), rel=1e-6)


class TestStatisticsTable:
    def test_sum_min_max_avg(self):
        from repro.core.perfctr import LikwidPerfCtr
        from repro.core.perfctr.output import render_statistics_table
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap(
            [0, 1], "L1D_REPL:PMC0",
            lambda: machine.apply_counts(
                {0: {Channel.L1D_REPLACEMENT: 10},
                 1: {Channel.L1D_REPLACEMENT: 30}}))
        table = render_statistics_table(result)
        assert "| L1D_REPL" in table
        assert "| 40 " in table     # sum
        assert "| 10 " in table     # min
        assert "| 30 " in table     # max
        assert "| 20 " in table     # avg

    def test_single_core_has_no_statistics(self):
        from repro.core.perfctr import LikwidPerfCtr
        from repro.core.perfctr.output import (render_result,
                                               render_statistics_table)
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap([0], "L1D_REPL:PMC0", lambda: None)
        assert render_statistics_table(result) == ""
        assert "Sum" not in render_result(machine, result)

    def test_full_report_includes_statistics(self):
        from repro.core.perfctr import LikwidPerfCtr
        from repro.core.perfctr.output import render_result
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap([0, 1, 2], "L1D_REPL:PMC0", lambda: None)
        text = render_result(machine, result)
        assert "Sum" in text and "Avg" in text
        assert "Sum" not in render_result(machine, result,
                                          statistics=False)
