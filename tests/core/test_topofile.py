"""Tests for topology config files (probe once, read forever)."""

import pytest

from repro.core.topofile import read_topofile, write_topofile
from repro.core.topology import probe_topology, render_topology
from repro.errors import TopologyError
from repro.hw.arch import ARCH_SPECS, create_machine


class TestTopofile:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_roundtrip_every_arch(self, arch, tmp_path):
        machine = create_machine(arch)
        path = write_topofile(machine, tmp_path / "topo.xml")
        loaded, numa = read_topofile(path)
        probed = probe_topology(machine)
        assert loaded.num_hwthreads == probed.num_hwthreads
        assert [(t.hwthread, t.core_id, t.socket_id)
                for t in loaded.threads] == \
            [(t.hwthread, t.core_id, t.socket_id) for t in probed.threads]
        assert numa.num_domains == machine.spec.num_numa_domains

    def test_loaded_topology_renders_identically(self, tmp_path):
        """Modulo the re-measured clock, the cached report equals the
        probed one — the point of the cache."""
        machine = create_machine("westmere_ep")
        path = write_topofile(machine, tmp_path / "t.xml")
        loaded, _numa = read_topofile(path)
        probed = probe_topology(machine)
        loaded_text = render_topology(loaded).splitlines()
        probed_text = render_topology(probed).splitlines()
        # Skip the clock line (measured vs cached float formatting).
        assert [l for l in loaded_text if not l.startswith("CPU clock")] == \
            [l for l in probed_text if not l.startswith("CPU clock")]

    def test_cache_groups_preserved(self, tmp_path):
        machine = create_machine("westmere_ep")
        path = write_topofile(machine, tmp_path / "t.xml")
        loaded, _ = read_topofile(path)
        l3 = next(c for c in loaded.caches if c.level == 3)
        assert l3.groups[0][:4] == [0, 12, 1, 13]
        assert not l3.inclusive

    def test_missing_file(self, tmp_path):
        with pytest.raises(TopologyError, match="no topology file"):
            read_topofile(tmp_path / "nope.xml")

    def test_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("this is not xml <")
        with pytest.raises(TopologyError, match="malformed"):
            read_topofile(bad)

    def test_wrong_document_type(self, tmp_path):
        bad = tmp_path / "other.xml"
        bad.write_text("<measurement/>")
        with pytest.raises(TopologyError, match="not a topology file"):
            read_topofile(bad)

    def test_no_hardware_access_on_read(self, tmp_path):
        """Reading the file must not touch CPUID — the whole point on
        restricted machines."""
        machine = create_machine("core2")
        path = write_topofile(machine, tmp_path / "t.xml")
        calls = {"n": 0}
        original = machine.cpuid

        def counting(hw, leaf, subleaf=0):
            calls["n"] += 1
            return original(hw, leaf, subleaf)

        machine.cpuid = counting
        read_topofile(path)
        assert calls["n"] == 0
