"""Tests for XML serialisation of tool results."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.numa import probe_numa
from repro.core.perfctr import LikwidPerfCtr
from repro.core.topology import probe_topology
from repro.core.xmlout import (measurement_to_xml, parse_topology_xml,
                               topology_to_xml)
from repro.hw.arch import ARCH_SPECS, create_machine
from repro.hw.events import Channel


class TestTopologyXml:
    @pytest.fixture(scope="class")
    def xml_text(self):
        machine = create_machine("westmere_ep")
        return topology_to_xml(probe_topology(machine), probe_numa(machine))

    def test_well_formed(self, xml_text):
        root = ET.fromstring(xml_text)
        assert root.tag == "topology"

    def test_layout_attributes(self, xml_text):
        root = ET.fromstring(xml_text)
        layout = root.find("layout")
        assert layout.get("sockets") == "2"
        assert layout.get("cores_per_socket") == "6"
        assert len(layout.findall("hwthread")) == 24

    def test_sparse_core_ids_serialised(self, xml_text):
        root = ET.fromstring(xml_text)
        cores = {el.get("core") for el in root.find("layout")}
        assert "8" in cores and "10" in cores

    def test_cache_groups(self, xml_text):
        root = ET.fromstring(xml_text)
        l3 = [c for c in root.find("caches") if c.get("level") == "3"][0]
        assert l3.get("inclusive") == "false"
        groups = [g.text for g in l3.findall("group")]
        assert groups[0].startswith("0 12 1 13")

    def test_numa_section(self, xml_text):
        root = ET.fromstring(xml_text)
        numa = root.find("numa")
        assert numa.get("domains") == "2"
        domain0 = numa[0]
        assert domain0.find("distances").text == "10 21"

    def test_instruction_caches_omitted(self, xml_text):
        root = ET.fromstring(xml_text)
        types = {c.get("type") for c in root.find("caches")}
        assert "Instruction cache" not in types

    def test_roundtrip_parse(self, xml_text):
        data = parse_topology_xml(xml_text)
        assert data["sockets"] == 2
        assert len(data["hwthreads"]) == 24
        assert data["numa_domains"][1]["processors"][0] == 6

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_every_arch_serialises(self, arch):
        machine = create_machine(arch)
        text = topology_to_xml(probe_topology(machine), probe_numa(machine))
        assert ET.fromstring(text).tag == "topology"


class TestMeasurementXml:
    @pytest.fixture(scope="class")
    def result(self):
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        return perfctr.wrap(
            [0, 1], "FLOPS_DP",
            lambda: machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 100,
                     Channel.INSTRUCTIONS: 400,
                     Channel.CORE_CYCLES: 800},
                 1: {Channel.FLOPS_PACKED_DP: 200,
                     Channel.INSTRUCTIONS: 400,
                     Channel.CORE_CYCLES: 800}}))

    def test_events_and_metrics(self, result):
        root = ET.fromstring(measurement_to_xml(result,
                                                group_name="FLOPS_DP"))
        assert root.get("group") == "FLOPS_DP"
        cpu0 = root.find("cpu[@id='0']")
        event = cpu0.find("event[@name='FP_COMP_OPS_EXE_SSE_FP_PACKED']")
        assert event.get("count") == "100"
        metric = cpu0.find("metric[@name='CPI']")
        assert float(metric.get("value")) == 2.0

    def test_region_attribute(self, result):
        root = ET.fromstring(measurement_to_xml(result, region="Main"))
        assert root.get("region") == "Main"

    def test_per_cpu_isolation(self, result):
        root = ET.fromstring(measurement_to_xml(result))
        cpu1 = root.find("cpu[@id='1']")
        assert cpu1.find(
            "event[@name='FP_COMP_OPS_EXE_SSE_FP_PACKED']").get("count") == "200"


class TestCliXml:
    def test_topology_xml_flag(self, capsys):
        from repro.cli.topology_cmd import main
        assert main(["--xml", "--arch", "atom"]) == 0
        out = capsys.readouterr().out
        assert ET.fromstring(out).get("vendor") == "GenuineIntel"

    def test_perfctr_xml_flag(self, capsys):
        from repro.cli.perfctr_cmd import main
        rc = main(["-c", "0", "-g", "FLOPS_DP", "--xml", "sleep",
                   "--arch", "core2"])
        assert rc == 0
        assert ET.fromstring(capsys.readouterr().out).tag == "measurement"
