"""Tests for the bandwidth-map tool (likwid-bench)."""

import pytest

from repro.core.bench import (KERNELS, bandwidth_ladder, numa_bandwidth_map,
                              render_ladder, render_numa_map)
from repro.errors import WorkloadError
from repro.hw.arch import create_machine


@pytest.fixture(scope="module")
def westmere():
    return create_machine("westmere_ep")


class TestKernels:
    def test_catalog(self):
        assert {"load", "store", "store_nt", "copy", "triad",
                "triad_nt"} <= set(KERNELS)

    def test_write_allocate_accounting(self):
        assert KERNELS["copy"].bytes_per_element == 24.0   # rd + wa + wb
        assert KERNELS["copy"].reported_bytes_per_element == 16.0
        assert KERNELS["triad_nt"].bytes_per_element == 24.0

    def test_unknown_kernel(self, westmere):
        with pytest.raises(WorkloadError, match="unknown bench kernel"):
            bandwidth_ladder(westmere, "saxpy")


class TestLadder:
    def test_staircase_monotonically_decreasing(self, westmere):
        points = bandwidth_ladder(westmere, "load", cpus=[0])
        bws = [p.bandwidth for p in points]
        for a, b in zip(bws, bws[1:]):
            assert b <= a * 1.0001

    def test_level_classification(self, westmere):
        points = {p.working_set: p.level
                  for p in bandwidth_ladder(westmere, "load", cpus=[0])}
        assert points[16 * 1024] == "L1"      # 16 kB < 32 kB L1
        assert points[128 * 1024] == "L2"     # < 256 kB L2
        assert points[4 * 1024 * 1024] == "L3"
        assert points[64 * 1024 * 1024] == "MEM"

    def test_plateau_values(self, westmere):
        perf = westmere.spec.perf
        points = {p.level: p.bandwidth
                  for p in bandwidth_ladder(westmere, "load", cpus=[0])}
        assert points["L1"] == pytest.approx(
            perf.l1_bytes_per_cycle * westmere.spec.clock_hz, rel=0.01)
        assert points["MEM"] == pytest.approx(perf.thread_mem_bw, rel=0.01)

    def test_llc_share_shrinks_with_threads(self, westmere):
        """With 6 threads on one socket, a 4 MB/thread working set no
        longer fits the shared 12 MB L3."""
        solo = {p.working_set: p.level
                for p in bandwidth_ladder(westmere, "load", cpus=[0])}
        group = {p.working_set: p.level
                 for p in bandwidth_ladder(westmere, "load",
                                           cpus=[0, 1, 2, 3, 4, 5])}
        ws = 4 * 1024 * 1024
        assert solo[ws] == "L3"
        assert group[ws] == "MEM"

    def test_memory_plateau_saturates_with_group(self, westmere):
        group = bandwidth_ladder(westmere, "load", cpus=[0, 1, 2, 3, 4, 5],
                                 sizes=[1 << 26])
        assert group[0].bandwidth == pytest.approx(
            westmere.spec.perf.socket_mem_bw, rel=0.01)

    def test_nt_store_beats_plain_store_in_memory(self, westmere):
        plain = bandwidth_ladder(westmere, "store", cpus=[0],
                                 sizes=[1 << 26])[0]
        nt = bandwidth_ladder(westmere, "store_nt", cpus=[0],
                              sizes=[1 << 26])[0]
        # NT avoids the write-allocate read: 1/3 less physical traffic
        # for the same reported bytes.
        assert nt.bandwidth == pytest.approx(plain.bandwidth * 2, rel=0.02)

    def test_render(self, westmere):
        text = render_ladder(bandwidth_ladder(westmere, "copy", cpus=[0]))
        assert "GB/s" in text and "MEM" in text


class TestNumaMap:
    def test_diagonal_dominates(self, westmere):
        matrix = numa_bandwidth_map(westmere)
        for i, row in enumerate(matrix):
            for j, value in enumerate(row):
                if i != j:
                    assert value < row[i]

    def test_symmetric_for_symmetric_machine(self, westmere):
        matrix = numa_bandwidth_map(westmere)
        assert matrix[0][1] == pytest.approx(matrix[1][0], rel=0.01)

    def test_remote_capped_by_interconnect(self, westmere):
        matrix = numa_bandwidth_map(westmere, kernel="load")
        perf = westmere.spec.perf
        # Reported remote bandwidth cannot exceed the QPI cap.
        assert matrix[0][1] <= perf.interconnect_bw * 1.01

    def test_istanbul_map_shape(self):
        machine = create_machine("amd_istanbul")
        matrix = numa_bandwidth_map(machine)
        assert len(matrix) == 2
        assert matrix[0][0] > matrix[0][1]

    def test_render(self, westmere):
        text = render_numa_map(numa_bandwidth_map(westmere))
        assert "cores \\ memory" in text


class TestWorkgroups:
    """likwid-bench workgroup parsing and execution."""

    def test_parse_full(self):
        from repro.core.bench import Workgroup
        wg = Workgroup.parse("S0:1 GB:4")
        assert (wg.domain, wg.size, wg.nthreads) == ("S0", 1024**3, 4)

    def test_parse_defaults_one_thread(self):
        from repro.core.bench import Workgroup
        assert Workgroup.parse("N:32 kB").nthreads == 1

    @pytest.mark.parametrize("bad", ["S0", "S0:x:4", "S0:1GB:x",
                                     "S0:1GB:0", "S0:1GB:4:5"])
    def test_parse_errors(self, bad):
        from repro.core.bench import Workgroup
        with pytest.raises(WorkloadError):
            Workgroup.parse(bad)

    def test_two_socket_groups_double_bandwidth(self, westmere):
        from repro.core.bench import Workgroup, run_workgroups
        one = run_workgroups(westmere, "triad",
                             [Workgroup.parse("S0:1GB:4")])
        two = run_workgroups(westmere, "triad",
                             [Workgroup.parse("S0:1GB:4"),
                              Workgroup.parse("S1:1GB:4")])
        total_two = sum(r.bandwidth for r in two)
        assert total_two == pytest.approx(2 * one[0].bandwidth, rel=0.01)

    def test_same_socket_groups_share_bandwidth(self, westmere):
        from repro.core.bench import Workgroup, run_workgroups
        # Two groups on socket 0 (cache domain == socket on Westmere).
        results = run_workgroups(westmere, "load",
                                 [Workgroup.parse("S0:1GB:3"),
                                  Workgroup.parse("C0:1GB:3")])
        total = sum(r.bandwidth for r in results)
        assert total <= westmere.spec.perf.socket_mem_bw * 1.01

    def test_unknown_domain(self, westmere):
        from repro.core.bench import Workgroup, run_workgroups
        with pytest.raises(WorkloadError, match="unknown affinity domain"):
            run_workgroups(westmere, "load", [Workgroup.parse("Z9:1GB:1")])

    def test_too_many_threads(self, westmere):
        from repro.core.bench import Workgroup, run_workgroups
        with pytest.raises(WorkloadError, match="only"):
            run_workgroups(westmere, "load", [Workgroup.parse("S0:1GB:99")])

    def test_render(self, westmere):
        from repro.core.bench import (Workgroup, render_workgroups,
                                      run_workgroups)
        results = run_workgroups(westmere, "copy",
                                 [Workgroup.parse("S0:64MB:2")])
        text = render_workgroups(results, "copy")
        assert "TOTAL" in text and "MB/s" in text
