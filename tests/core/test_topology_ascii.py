"""Tests for the ASCII-art topology diagram (likwid-topology -g)."""

import pytest

from repro.core.topology import probe_topology
from repro.core.topology_ascii import render_ascii
from repro.hw.arch import ARCH_SPECS, create_machine


class TestAsciiArt:
    def test_westmere_socket_contents(self):
        topo = probe_topology(create_machine("westmere_ep"))
        art = render_ascii(topo, socket=0)
        # Core boxes list the SMT pairs of the paper's listing.
        assert "0 12" in art
        assert "5 17" in art
        # Cache size labels per level.
        assert "32 kB" in art
        assert "256 kB" in art
        assert "12 MB" in art

    def test_one_l3_box_spans_socket(self):
        topo = probe_topology(create_machine("westmere_ep"))
        art = render_ascii(topo, socket=0)
        assert art.count("12 MB") == 1
        assert art.count("256 kB") == 6

    def test_all_sockets_rendered_by_default(self):
        topo = probe_topology(create_machine("westmere_ep"))
        art = render_ascii(topo)
        assert art.count("12 MB") == 2

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_renders_on_every_arch(self, arch):
        topo = probe_topology(create_machine(arch))
        art = render_ascii(topo)
        assert art.startswith("+")
        # Balanced frame: every line starts/ends with | or +.
        for line in art.splitlines():
            assert line[0] in "+|" and line[-1] in "+|"

    def test_lines_have_consistent_width_per_socket(self):
        topo = probe_topology(create_machine("nehalem_ep"))
        art = render_ascii(topo, socket=0)
        widths = {len(line) for line in art.splitlines()}
        assert len(widths) == 1
