"""Unit tests for core-list parsing and skip-mask resolution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.affinity import (THREAD_TYPE_SKIP_MASKS, format_corelist,
                                 parse_corelist, parse_skip_mask,
                                 skip_mask_for)
from repro.errors import AffinityError


class TestParseCorelist:
    @pytest.mark.parametrize("text,expected", [
        ("0-3", [0, 1, 2, 3]),
        ("0,2-5,7", [0, 2, 3, 4, 5, 7]),
        ("4", [4]),
        ("3,1,2", [3, 1, 2]),        # order preserved: pin order matters
        ("0-0", [0]),
    ])
    def test_valid(self, text, expected):
        assert parse_corelist(text) == expected

    @pytest.mark.parametrize("text", ["", "  ", "0,,1", "a", "1-", "-3",
                                      "1-2-3", "0x3"])
    def test_malformed(self, text):
        with pytest.raises(AffinityError):
            parse_corelist(text)

    def test_descending_range(self):
        with pytest.raises(AffinityError, match="descending"):
            parse_corelist("5-2")

    def test_duplicates_rejected(self):
        with pytest.raises(AffinityError, match="duplicate"):
            parse_corelist("0,1,0")
        with pytest.raises(AffinityError, match="duplicate"):
            parse_corelist("0-3,2")

    def test_max_cpu_bound(self):
        assert parse_corelist("0-3", max_cpu=3) == [0, 1, 2, 3]
        with pytest.raises(AffinityError, match="beyond the last"):
            parse_corelist("0-4", max_cpu=3)


class TestFormatCorelist:
    @pytest.mark.parametrize("cpus,text", [
        ([0, 1, 2, 3], "0-3"),
        ([0, 2, 3, 4, 8], "0,2-4,8"),
        ([], ""),
        ([7], "7"),
    ])
    def test_format(self, cpus, text):
        assert format_corelist(cpus) == text

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=20,
                    unique=True))
    def test_roundtrip_for_sorted_lists(self, cpus):
        cpus = sorted(cpus)
        assert parse_corelist(format_corelist(cpus)) == cpus


class TestSkipMasks:
    @pytest.mark.parametrize("text,value", [
        ("0x3", 3), ("3", 3), ("0b11", 3), ("0x0", 0), ("0o7", 7),
    ])
    def test_parse(self, text, value):
        assert parse_skip_mask(text) == value

    @pytest.mark.parametrize("text", ["xyz", "-1", ""])
    def test_parse_errors(self, text):
        with pytest.raises(AffinityError):
            parse_skip_mask(text)

    def test_thread_type_presets(self):
        """The paper's presets: intel=0x1, hybrid Intel MPI=0x3,
        gcc is the default with no skipping."""
        assert THREAD_TYPE_SKIP_MASKS["intel"] == 0x1
        assert THREAD_TYPE_SKIP_MASKS["intel_mpi"] == 0x3
        assert THREAD_TYPE_SKIP_MASKS["gnu"] == 0x0

    def test_resolution_order(self):
        assert skip_mask_for("intel") == 0x1
        assert skip_mask_for("intel", explicit=0x7) == 0x7  # -s wins
        assert skip_mask_for(None) == 0x0                   # gcc default

    def test_unknown_thread_type(self):
        with pytest.raises(AffinityError, match="unknown thread type"):
            skip_mask_for("rust")
