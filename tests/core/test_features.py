"""Tests for likwid-features (§II.D listing and toggling semantics)."""

import pytest

from repro.core.features import LikwidFeatures
from repro.errors import FeatureError
from repro.hw.arch import create_machine
from repro.oskern.msr_driver import MsrDriver


@pytest.fixture
def features():
    return LikwidFeatures(MsrDriver(create_machine("core2")), cpu=0)


class TestReport:
    def test_paper_listing_lines(self, features):
        text = features.report()
        for line in [
            "CPU name:\tIntel Core 2 45nm processor",
            "CPU core id:\t0",
            "Fast-Strings: enabled",
            "Automatic Thermal Control: enabled",
            "Performance monitoring: enabled",
            "Hardware Prefetcher: enabled",
            "Branch Trace Storage: supported",
            "PEBS: supported",
            "Intel Enhanced SpeedStep: enabled",
            "MONITOR/MWAIT: supported",
            "Adjacent Cache Line Prefetch: enabled",
            "Limit CPUID Maxval: disabled",
            "XD Bit Disable: enabled",
            "DCU Prefetcher: enabled",
            "Intel Dynamic Acceleration: disabled",
            "IP Prefetcher: enabled",
        ]:
            assert line in text, f"missing {line!r}"

    def test_states_count(self, features):
        assert len(features.states()) == 14


class TestToggle:
    def test_disable_cl_prefetcher(self, features):
        """The paper's example: likwid-features -u CL_PREFETCHER."""
        state = features.disable("CL_PREFETCHER")
        assert state.display == "disabled"
        assert "Adjacent Cache Line Prefetch: disabled" in features.report()

    def test_reenable(self, features):
        features.disable("CL_PREFETCHER")
        state = features.enable("CL_PREFETCHER")
        assert state.enabled

    def test_all_prefetchers_toggle(self, features):
        for key in ("HW_PREFETCHER", "CL_PREFETCHER", "DCU_PREFETCHER",
                    "IP_PREFETCHER"):
            assert features.disable(key).enabled is False
            assert features.enable(key).enabled is True

    def test_read_only_feature_rejected(self, features):
        with pytest.raises(FeatureError, match="read-only"):
            features.disable("SPEEDSTEP")

    def test_unknown_key(self, features):
        with pytest.raises(FeatureError, match="unknown feature"):
            features.enable("TURBO_BUTTON")

    def test_case_insensitive_key(self, features):
        assert features.state("cl_prefetcher").key == "CL_PREFETCHER"

    def test_toggle_visible_to_hardware(self, features):
        """The write must land in IA32_MISC_ENABLE so the cache
        simulator's prefetchers actually switch off."""
        machine = features.machine
        assert machine.misc_enable_state(0, "DCU_PREFETCHER")
        features.disable("DCU_PREFETCHER")
        assert not machine.misc_enable_state(0, "DCU_PREFETCHER")

    def test_per_cpu_independent(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        f0 = LikwidFeatures(driver, cpu=0)
        f1 = LikwidFeatures(driver, cpu=1)
        f0.disable("IP_PREFETCHER")
        assert not f0.state("IP_PREFETCHER").enabled
        assert f1.state("IP_PREFETCHER").enabled


class TestRestrictions:
    @pytest.mark.parametrize("arch", ["westmere_ep", "nehalem_ep",
                                      "amd_istanbul", "atom"])
    def test_only_core2_supported(self, arch):
        """Paper: 'likwid-features currently only works for Intel
        Core 2 processors'."""
        with pytest.raises(FeatureError, match="Core 2"):
            LikwidFeatures(MsrDriver(create_machine(arch)))

    def test_core2duo_also_supported(self):
        features = LikwidFeatures(MsrDriver(create_machine("core2duo")))
        assert "Intel Core 2 65nm processor" in features.report()


class TestVerifiedWrite:
    """Satellite 1 (ISSUE 5): read-modify-write-verify semantics."""

    def _mask_bit(self, machine, key, cpu=0):
        """Make one MISC_ENABLE bit unwritable, so the device silently
        drops the toggle (a misdeclared write mask, in effect)."""
        from repro.hw import registers as regs
        bit = regs.MISC_ENABLE_BY_KEY[key]
        reg = machine.msr[cpu]._reg(regs.IA32_MISC_ENABLE)
        reg.write_mask &= ~(1 << bit.bit)
        return bit

    def test_verify_mismatch_raises_and_restores(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        features = LikwidFeatures(driver, cpu=0)
        before = features._read()
        self._mask_bit(machine, "CL_PREFETCHER")
        with pytest.raises(FeatureError, match="verify failed"):
            features.disable("CL_PREFETCHER")
        assert features._read() == before
        assert features.state("CL_PREFETCHER").enabled

    def test_failed_toggle_leaves_no_journal_orphan(self):
        """The verify failure is a *handled* error: the epoch closes
        and the journal retires; nothing is left to recover."""
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        features = LikwidFeatures(driver, cpu=0)
        self._mask_bit(machine, "DCU_PREFETCHER")
        with pytest.raises(FeatureError):
            features.disable("DCU_PREFETCHER")
        assert driver.journal.record_count == 0
        from repro.oskern.recovery import RecoveryEngine
        assert RecoveryEngine(driver).recover().clean

    def test_toggle_is_journaled_while_in_flight(self):
        """The write-ahead record exists before the mutation: a kill
        between write and verify is recoverable."""
        from repro.errors import ProcessKilled
        from repro.hw import registers as regs
        from repro.oskern.msr_driver import FaultPlan
        from repro.oskern.recovery import RecoveryEngine
        machine = create_machine("core2")
        pristine = machine.msr[0].peek(regs.IA32_MISC_ENABLE)
        # Ops: open doesn't roll the clock without a plan; with one it
        # does: op1=open, op2=read, write is op3 — kill on the verify
        # read (op4) leaves the journaled write applied but unverified.
        driver = MsrDriver(machine, faults=FaultPlan(kill_after=3))
        features = LikwidFeatures(driver, cpu=0)
        with pytest.raises(ProcessKilled):
            features.disable("CL_PREFETCHER")
        assert machine.msr[0].peek(regs.IA32_MISC_ENABLE) != pristine
        assert driver.journal.record_count == 1
        driver.respawn()
        report = RecoveryEngine(driver).recover()
        assert report.restored_writes == 1
        assert machine.msr[0].peek(regs.IA32_MISC_ENABLE) == pristine

    def test_clean_toggle_retires_journal(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        features = LikwidFeatures(driver, cpu=0)
        features.disable("IP_PREFETCHER")
        assert driver.journal.record_count == 0
        features.enable("IP_PREFETCHER")
        assert features.state("IP_PREFETCHER").enabled
