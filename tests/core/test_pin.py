"""Tests for likwid-pin: launch semantics and the paper's pathologies."""

import pytest

from repro.core.pin import LikwidPin
from repro.errors import AffinityError
from repro.hw.arch import create_machine
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import ThreadKind


@pytest.fixture
def kernel():
    return OSKernel(create_machine("westmere_ep"), seed=0)


class TestLaunch:
    def test_master_pinned_and_env_exported(self, kernel):
        pin = LikwidPin(kernel)
        process = pin.launch("0-3", thread_type="intel")
        assert kernel.sched_getaffinity(process.master.tid) == frozenset({0})
        assert kernel.env["LIKWID_PIN"] == "0,1,2,3"
        assert kernel.env["LIKWID_SKIP"] == "0x1"

    def test_kmp_affinity_disabled_automatically(self, kernel):
        """Paper §II.C: 'The current version of LIKWID does this
        automatically.'"""
        kernel.env["KMP_AFFINITY"] = "scatter"
        LikwidPin(kernel).launch("0-3")
        assert kernel.env["KMP_AFFINITY"] == "disabled"

    def test_invalid_corelist_rejected(self, kernel):
        with pytest.raises(AffinityError):
            LikwidPin(kernel).launch("0-99")

    def test_explicit_skip_overrides_type(self, kernel):
        process = LikwidPin(kernel).launch("0-7", thread_type="intel",
                                           skip=0x3)
        assert process.skip_mask == 0x3


class TestIntelOpenMPPinning:
    """The paper's canonical example: OMP_NUM_THREADS=4,
    likwid-pin -c 0-3 -t intel ./a.out."""

    def _launch_team(self, kernel, corelist, thread_type):
        from repro.oskern.openmp import OpenMPRuntime
        pin = LikwidPin(kernel)
        process = pin.launch(corelist, thread_type=thread_type)
        runtime = OpenMPRuntime(kernel, "intel" if thread_type == "intel"
                                else "gnu")
        team = runtime.spawn_team(4, master=process.master)
        kernel.place_all()
        return process, team

    def test_shepherd_unpinned_workers_on_cores(self, kernel):
        process, team = self._launch_team(kernel, "0-3", "intel")
        shepherd = team.created[0]
        assert shepherd.kind is ThreadKind.SHEPHERD
        assert kernel.sched_getaffinity(shepherd.tid) == kernel.all_cpus
        compute_cpus = sorted(t.hwthread for t in team.compute_threads)
        assert compute_cpus == [0, 1, 2, 3]

    def test_gcc_team_pins_without_skip(self, kernel):
        _process, team = self._launch_team(kernel, "0-3", "gnu")
        compute_cpus = sorted(t.hwthread for t in team.compute_threads)
        assert compute_cpus == [0, 1, 2, 3]

    def test_wrong_mask_pathology(self, kernel):
        """Forgetting -t intel pins the shepherd and shifts every
        worker, stacking two compute threads on one core — the
        mis-pinning pathology the paper warns about."""
        from repro.oskern.openmp import OpenMPRuntime
        pin = LikwidPin(kernel)
        process = pin.launch("0-3", skip=0x0)   # WRONG for Intel OpenMP
        team = OpenMPRuntime(kernel, "intel").spawn_team(4,
                                                         master=process.master)
        kernel.place_all()
        compute_cpus = [t.hwthread for t in team.compute_threads]
        # The shepherd consumed core 1; workers shifted and one wrapped
        # around onto the master's core.
        assert sorted(compute_cpus) != [0, 1, 2, 3]
        assert len(set(compute_cpus)) < 4   # oversubscription happened


class TestVerify:
    def test_verify_reports_placements(self, kernel):
        pin = LikwidPin(kernel)
        process = pin.launch("2,4,6", thread_type="posix")
        kernel.pthread_create()
        kernel.pthread_create()
        placements = pin.verify(process)
        assert sorted(placements.values()) == [2, 4, 6]

    def test_verify_rejects_unpinned(self, kernel):
        pin = LikwidPin(kernel)
        process = pin.launch("0,1", skip=0x1)
        kernel.pthread_create()   # skipped -> unpinned
        process.overlay.pinned_tids.append(
            kernel.pthread_create().tid)  # forge an unpinned entry
        kernel.threads[process.overlay.pinned_tids[-1]].affinity = None
        with pytest.raises(AffinityError, match="not pinned"):
            pin.verify(process)
