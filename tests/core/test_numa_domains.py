"""Tests for NUMA topology probing and affinity-domain expressions
(the paper's future-work items, implemented)."""

import pytest

from repro.core.affinity import affinity_domains, resolve_affinity_expression
from repro.core.numa import probe_numa, render_numa
from repro.errors import AffinityError
from repro.hw.arch import ARCH_SPECS, create_machine, get_arch


class TestNumaProbe:
    def test_one_domain_per_socket(self):
        numa = probe_numa(create_machine("westmere_ep"))
        assert numa.num_domains == 2
        assert set(numa.domains[0].processors) == \
            set(get_arch("westmere_ep").hwthreads_of_socket(0))

    def test_memory_split(self):
        numa = probe_numa(create_machine("westmere_ep"))
        spec = get_arch("westmere_ep")
        for domain in numa.domains:
            assert domain.memory_bytes == spec.memory_per_socket

    def test_distances_slit(self):
        numa = probe_numa(create_machine("amd_istanbul"))
        assert numa.domains[0].distances == (10, 21)
        assert numa.domains[1].distances == (21, 10)

    def test_domain_of(self):
        numa = probe_numa(create_machine("westmere_ep"))
        assert numa.domain_of(0) == 0
        assert numa.domain_of(7) == 1
        with pytest.raises(ValueError):
            numa.domain_of(99)

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_domains_partition_threads(self, arch):
        machine = create_machine(arch)
        numa = probe_numa(machine)
        seen: set[int] = set()
        for domain in numa.domains:
            assert not seen & set(domain.processors)
            seen |= set(domain.processors)
        assert seen == set(range(machine.num_hwthreads))

    def test_render(self):
        text = render_numa(probe_numa(create_machine("westmere_ep")))
        assert "NUMA domains: 2" in text
        assert "Memory: 12288 MB" in text
        assert "Distances: 10 21" in text


class TestAffinityDomains:
    SPEC = get_arch("westmere_ep")

    def test_domain_catalog(self):
        domains = affinity_domains(self.SPEC)
        assert set(domains) == {"N", "S0", "S1", "C0", "C1", "M0", "M1"}

    def test_socket_domain_core_major(self):
        domains = affinity_domains(self.SPEC)
        # Physical cores first, then the SMT siblings.
        assert domains["S0"] == [0, 1, 2, 3, 4, 5,
                                 12, 13, 14, 15, 16, 17]

    def test_node_domain_covers_cores_first(self):
        domains = affinity_domains(self.SPEC)
        assert domains["N"][:12] == list(range(12))

    def test_cache_domain_equals_socket_on_westmere(self):
        # Westmere's L3 is socket-wide, so C domains == S domains.
        domains = affinity_domains(self.SPEC)
        assert domains["C0"] == domains["S0"]
        assert domains["C1"] == domains["S1"]

    def test_cache_domains_on_core2(self):
        # Core 2 Quad: L2 shared by core pairs -> two cache domains.
        spec = get_arch("core2")
        domains = affinity_domains(spec)
        assert domains["C0"] == [0, 1]
        assert domains["C1"] == [2, 3]

    def test_memory_domain_matches_numa(self):
        domains = affinity_domains(self.SPEC)
        assert set(domains["M1"]) == \
            set(self.SPEC.hwthreads_of_numa_domain(1))


class TestExpressions:
    SPEC = get_arch("westmere_ep")

    def test_plain_list_is_physical(self):
        assert resolve_affinity_expression(self.SPEC, "0-3") == [0, 1, 2, 3]

    def test_socket_logical(self):
        assert resolve_affinity_expression(self.SPEC, "S1:0-3") == \
            [6, 7, 8, 9]

    def test_node_logical_skips_smt(self):
        cpus = resolve_affinity_expression(self.SPEC, "N:0-11")
        assert cpus == list(range(12))   # all physical cores, no SMT

    def test_memory_domain_selection(self):
        assert resolve_affinity_expression(self.SPEC, "M0:0,2") == [0, 2]

    def test_unknown_domain(self):
        with pytest.raises(AffinityError, match="unknown affinity domain"):
            resolve_affinity_expression(self.SPEC, "X0:0-1")

    def test_logical_id_out_of_range(self):
        with pytest.raises(AffinityError, match="beyond domain"):
            resolve_affinity_expression(self.SPEC, "S0:0-12")

    def test_pin_tool_accepts_domains(self):
        from repro.core.pin import LikwidPin
        from repro.oskern.scheduler import OSKernel
        kernel = OSKernel(create_machine("westmere_ep"), seed=0)
        process = LikwidPin(kernel).launch("S1:0-3", thread_type="posix")
        assert process.cpus == [6, 7, 8, 9]
        assert kernel.sched_getaffinity(process.master.tid) == frozenset({6})
