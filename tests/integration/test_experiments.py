"""Integration tests: every paper table/figure reproduces in shape.

These are the acceptance tests of DESIGN.md section 6 — who wins, by
roughly what factor, and where the crossovers fall.
"""

import statistics

import pytest

from repro import experiments
from repro.hw.events import Channel


pytestmark = pytest.mark.integration


class TestFigure1:
    def test_nehalem_diagram(self):
        text = experiments.figure1_topology()
        assert "Sockets:\t\t2" in text
        assert "Cores per socket:\t4" in text
        assert "8 MB" in text   # shared L3 per socket


class TestTable1:
    def test_rows_cover_paper_aspects(self):
        rows = experiments.table1_comparison()
        aspects = {r.aspect for r in rows}
        assert {"Dependencies", "Command line tools", "User API support",
                "Library support", "Topology information",
                "Thread and process pinning", "Multicore support",
                "Uncore support", "Event abstraction", "Platform support",
                "Correlated measurements"} <= aspects

    def test_probed_judgements(self):
        rows = {r.aspect: r for r in experiments.table1_comparison()}
        assert "socket locks" in rows["Uncore support"].likwid
        assert "No support for pinning" in rows["Thread and process pinning"].papi
        assert "groups" in rows["Event abstraction"].likwid


class TestStreamFigures:
    @pytest.fixture(scope="class")
    def fig4(self):
        return experiments.stream_figure(4, samples=40,
                                         thread_counts=[1, 2, 4, 8, 12, 24])

    @pytest.fixture(scope="class")
    def fig5(self):
        return experiments.stream_figure(5,
                                         thread_counts=[1, 2, 4, 8, 12, 24])

    def test_fig4_variance_largest_at_low_counts(self, fig4):
        assert fig4.spread(2) > fig4.spread(24) * 0.8
        assert fig4.spread(2) > 5000

    def test_fig5_pinned_tight_and_high(self, fig5):
        for n in fig5.samples:
            assert fig5.spread(n) < 200
        assert fig5.median(12) == pytest.approx(42000, rel=0.02)
        assert fig5.median(24) == pytest.approx(42000, rel=0.02)

    def test_pinned_dominates_unpinned_median(self, fig4, fig5):
        for n in (2, 4, 8):
            assert fig5.median(n) >= fig4.median(n)

    def test_fig6_kmp_scatter_equals_pinned(self, fig5):
        fig6 = experiments.stream_figure(6, thread_counts=[2, 8, 12])
        for n in (2, 8, 12):
            assert fig6.median(n) == pytest.approx(fig5.median(n), rel=0.02)

    def test_fig7_fig8_gcc_caps_lower(self):
        fig8 = experiments.stream_figure(8, thread_counts=[1, 12, 24])
        assert fig8.median(12) == pytest.approx(31500, rel=0.03)
        fig5 = experiments.stream_figure(5, thread_counts=[12])
        assert fig8.median(12) < fig5.median(12)

    def test_fig9_fig10_istanbul(self):
        fig9 = experiments.stream_figure(9, samples=30,
                                         thread_counts=[2, 6, 12])
        fig10 = experiments.stream_figure(10, thread_counts=[2, 6, 12])
        assert fig10.median(12) == pytest.approx(25000, rel=0.03)
        for n in (2, 6):
            assert fig9.spread(n) > 1500
            assert fig10.spread(n) < 200
        # No SMT on Istanbul: 12 threads is the natural maximum.
        assert statistics.median(fig9.samples[12]) <= fig10.median(12)


class TestFigure11:
    @pytest.fixture(scope="class")
    def curves(self):
        return experiments.figure11_jacobi_sweep(sizes=(100, 200, 300,
                                                        400, 480))

    def test_wavefront_wins_everywhere(self, curves):
        for (n, w), (_n2, b) in zip(curves["wavefront 1x4"],
                                    curves["threaded"]):
            assert w > b, f"N={n}"

    def test_split_pinning_reverses_optimisation(self, curves):
        """Paper: 'in case of wrong pinning the effect of the
        optimization is reversed and performance is reduced by a factor
        of two'."""
        for (n, w), (_n, s), (_n2, b) in zip(
                curves["wavefront 1x4"],
                curves["wavefront 1x4 (2 per socket)"],
                curves["threaded"]):
            if n >= 200:
                assert s < 0.65 * w
                assert s < b

    def test_wavefront_factor_about_1_3_to_1_8(self, curves):
        ratios = [w / b for (_n, w), (_n2, b) in
                  zip(curves["wavefront 1x4"], curves["threaded"])]
        assert all(1.2 < r < 2.0 for r in ratios)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.variant: r for r in experiments.table2_uncore()}

    def test_paper_values_within_3_percent(self, rows):
        paper = {
            "threaded": (5.91e8, 5.87e8, 75.39, 784),
            "threaded_nt": (3.44e8, 3.43e8, 43.97, 1032),
            "wavefront": (1.30e8, 1.29e8, 16.57, 1331),
        }
        for variant, (lines_in, lines_out, volume, mlups) in paper.items():
            row = rows[variant]
            assert row.l3_lines_in == pytest.approx(lines_in, rel=0.03)
            assert row.l3_lines_out == pytest.approx(lines_out, rel=0.03)
            assert row.data_volume_gb == pytest.approx(volume, rel=0.03)
            assert row.mlups == pytest.approx(mlups, rel=0.03)

    def test_ordering(self, rows):
        assert rows["threaded"].mlups < rows["threaded_nt"].mlups \
            < rows["wavefront"].mlups
        assert rows["wavefront"].data_volume_gb \
            < rows["threaded_nt"].data_volume_gb \
            < rows["threaded"].data_volume_gb


class TestEndToEnd:
    def test_perfctr_pin_marker_full_flow(self):
        """The complete §II.A workflow: likwid-pin + likwid-perfctr in
        marker mode around a pinned STREAM run."""
        from repro.core.perfctr import LikwidPerfCtr, MarkerAPI
        from repro.hw.arch import create_machine
        from repro.oskern.scheduler import OSKernel
        from repro.workloads.stream import run_stream

        machine = create_machine("westmere_ep")
        kernel = OSKernel(machine, seed=4)
        perfctr = LikwidPerfCtr(machine)
        session = perfctr.session("0-3", "FLOPS_DP")
        session.start()
        marker = MarkerAPI(session)
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("Benchmark")
        marker.likwid_markerStartRegion(0, 0)
        run_stream(machine, kernel, nthreads=4, compiler="icc",
                   pin_cpus=[0, 1, 2, 3])
        marker.likwid_markerStopRegion(0, 0, rid)
        marker.likwid_markerClose()
        session.stop()
        result = marker.region_result("Benchmark")
        assert result.event(0, "FP_COMP_OPS_EXE_SSE_FP_PACKED") > 0
        assert result.metric(0, "DP MFlops/s") > 100

    def test_monitoring_whole_node(self):
        """likwid-perfctr -c 0-7 ... sleep 1 (paper's monitoring idiom):
        a rogue process's events are visible."""
        from repro.core.perfctr import LikwidPerfCtr
        from repro.hw.arch import create_machine
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)

        def sleep_while_rogue_runs():
            machine.apply_counts(
                {5: {Channel.FLOPS_SCALAR_DP: 1e6,
                     Channel.INSTRUCTIONS: 1e6,
                     Channel.CORE_CYCLES: 2e6}},
                elapsed_seconds=1.0)

        result = perfctr.wrap(list(range(8)), "FLOPS_DP",
                              sleep_while_rogue_runs)
        assert result.event(5, "FP_COMP_OPS_EXE_SSE_FP_SCALAR") == 1e6
        assert result.event(0, "FP_COMP_OPS_EXE_SSE_FP_SCALAR") == 0
