"""Golden tests: the paper's verbatim listings, reproduced.

These tests compare whole output blocks (not just substrings) against
the listings printed in the paper, so format regressions are caught.
"""

import textwrap

import pytest

from repro.core.features import LikwidFeatures
from repro.core.topology import probe_topology, render_topology
from repro.hw.arch import create_machine
from repro.oskern.msr_driver import MsrDriver


class TestWestmereTopologyListing:
    """§II.B: likwid-topology -c on the Westmere EP node."""

    @pytest.fixture(scope="class")
    def text(self):
        return render_topology(probe_topology(create_machine("westmere_ep")))

    def test_hwthread_table_verbatim(self, text):
        expected = textwrap.dedent("""\
            HWThread\tThread\t\tCore\t\tSocket
            0\t\t0\t\t0\t\t0
            1\t\t0\t\t1\t\t0
            2\t\t0\t\t2\t\t0
            3\t\t0\t\t8\t\t0
            4\t\t0\t\t9\t\t0
            5\t\t0\t\t10\t\t0
            6\t\t0\t\t0\t\t1
            7\t\t0\t\t1\t\t1
            8\t\t0\t\t2\t\t1
            9\t\t0\t\t8\t\t1
            10\t\t0\t\t9\t\t1
            11\t\t0\t\t10\t\t1
            12\t\t1\t\t0\t\t0
            13\t\t1\t\t1\t\t0
            14\t\t1\t\t2\t\t0
            15\t\t1\t\t8\t\t0
            16\t\t1\t\t9\t\t0
            17\t\t1\t\t10\t\t0
            18\t\t1\t\t0\t\t1
            19\t\t1\t\t1\t\t1
            20\t\t1\t\t2\t\t1
            21\t\t1\t\t8\t\t1
            22\t\t1\t\t9\t\t1
            23\t\t1\t\t10\t\t1""")
        assert expected in text

    def test_socket_lines_verbatim(self, text):
        assert "Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )" in text
        assert "Socket 1: ( 6 18 7 19 8 20 9 21 10 22 11 23 )" in text

    def test_l1_block_verbatim(self, text):
        expected = "\n".join([
            "Level:\t1",
            "Size:\t32 kB",
            "Type:\tData cache",
            "Associativity:\t8",
            "Number of sets:\t64",
            "Cache line size:\t64",
            "Inclusive cache",
            "Shared among 2 threads",
            "Cache groups:\t( 0 12 ) ( 1 13 ) ( 2 14 ) ( 3 15 ) ( 4 16 )"
            " ( 5 17 ) ( 6 18 ) ( 7 19 ) ( 8 20 ) ( 9 21 ) ( 10 22 )"
            " ( 11 23 )",
        ])
        assert expected in text

    def test_l3_block_verbatim(self, text):
        expected = "\n".join([
            "Level:\t3",
            "Size:\t12 MB",
            "Type:\tUnified cache",
            "Associativity:\t16",
            "Number of sets:\t12288",
            "Cache line size:\t64",
            "Non Inclusive cache",
            "Shared among 12 threads",
            "Cache groups:\t( 0 12 1 13 2 14 3 15 4 16 5 17 )"
            " ( 6 18 7 19 8 20 9 21 10 22 11 23 )",
        ])
        assert expected in text


class TestFeaturesListing:
    """§II.D: the likwid-features report, line for line."""

    def test_full_block(self):
        features = LikwidFeatures(MsrDriver(create_machine("core2")))
        expected = "\n".join([
            "Fast-Strings: enabled",
            "Automatic Thermal Control: enabled",
            "Performance monitoring: enabled",
            "Hardware Prefetcher: enabled",
            "Branch Trace Storage: supported",
            "PEBS: supported",
            "Intel Enhanced SpeedStep: enabled",
            "MONITOR/MWAIT: supported",
            "Adjacent Cache Line Prefetch: enabled",
            "Limit CPUID Maxval: disabled",
            "XD Bit Disable: enabled",
            "DCU Prefetcher: enabled",
            "Intel Dynamic Acceleration: disabled",
            "IP Prefetcher: enabled",
        ])
        assert expected in features.report()

    def test_toggle_output_verbatim(self):
        """$ likwid-features -u CL_PREFETCHER ->  CL_PREFETCHER: disabled"""
        features = LikwidFeatures(MsrDriver(create_machine("core2")))
        state = features.disable("CL_PREFETCHER")
        assert f"{state.key}: {state.display}" == "CL_PREFETCHER: disabled"


class TestPerfctrListingShape:
    """§II.A: the marker-mode output structure (header, region tables)."""

    def test_header_block(self):
        from repro.core.perfctr.output import render_header
        machine = create_machine("core2")
        header = render_header(machine, "FLOPS_DP")
        lines = header.splitlines()
        assert lines[0] == "-" * 61
        assert lines[1] == "CPU type:\tIntel Core 2 45nm processor"
        assert lines[2] == "CPU clock:\t2.83 GHz"
        assert "Measuring group FLOPS_DP" in lines

    def test_event_table_column_order_matches_paper(self):
        """Group events first, then the always-counted fixed events —
        the row order of the paper's FLOPS_DP tables."""
        from repro.core.perfctr import LikwidPerfCtr
        from repro.core.perfctr.output import render_event_table
        machine = create_machine("core2")
        result = LikwidPerfCtr(machine).wrap([0, 1], "FLOPS_DP",
                                             lambda: None)
        table = render_event_table(result)
        rows = [line for line in table.splitlines() if line.startswith("| ")]
        names = [row.split("|")[1].strip() for row in rows[1:]]
        assert names == [
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
            "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE",
            "INSTR_RETIRED_ANY",
            "CPU_CLK_UNHALTED_CORE",
            "CPU_CLK_UNHALTED_REF",
        ]
