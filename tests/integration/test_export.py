"""Tests for CSV/JSON export."""

import csv
import io
import json

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.export import (fig11_to_csv, measurement_to_csv,
                          measurement_to_dict, measurement_to_json,
                          stream_series_to_csv, table2_to_csv)
from repro.hw.arch import create_machine
from repro.hw.events import Channel


@pytest.fixture(scope="module")
def result():
    machine = create_machine("core2")
    return LikwidPerfCtr(machine).wrap(
        [0, 1], "FLOPS_DP",
        lambda: machine.apply_counts(
            {0: {Channel.FLOPS_PACKED_DP: 100, Channel.INSTRUCTIONS: 400,
                 Channel.CORE_CYCLES: 800},
             1: {Channel.FLOPS_PACKED_DP: 50, Channel.INSTRUCTIONS: 400,
                 Channel.CORE_CYCLES: 800}}))


class TestMeasurementExport:
    def test_csv_rows(self, result):
        rows = list(csv.DictReader(io.StringIO(measurement_to_csv(result))))
        events = [r for r in rows if r["kind"] == "event"]
        metrics = [r for r in rows if r["kind"] == "metric"]
        assert len(events) == 2 * 5   # 2 cpus x (2 group + 3 fixed)
        assert len(metrics) == 2 * 3
        cell = next(r for r in events
                    if r["cpu"] == "0"
                    and r["name"] == "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")
        assert float(cell["value"]) == 100

    def test_json_roundtrip(self, result):
        data = json.loads(measurement_to_json(result))
        assert data["group"] == "FLOPS_DP"
        assert data["cpus"]["1"]["events"][
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"] == 50
        assert data["cpus"]["0"]["metrics"]["CPI"] == 2.0

    def test_dict_is_json_serialisable(self, result):
        json.dumps(measurement_to_dict(result))


class TestSeriesExport:
    def test_stream_series_csv(self):
        from repro.experiments import stream_figure
        series = stream_figure(5, thread_counts=[1, 2])
        rows = list(csv.DictReader(io.StringIO(
            stream_series_to_csv(series))))
        assert {r["threads"] for r in rows} == {"1", "2"}
        assert all(r["mode"] == "pinned" for r in rows)
        assert float(rows[0]["bandwidth_mb_s"]) > 0

    def test_fig11_csv(self):
        curves = {"wavefront 1x4": [(100, 1500.0), (480, 1325.0)],
                  "threaded": [(100, 1238.0), (480, 1032.0)]}
        rows = list(csv.DictReader(io.StringIO(fig11_to_csv(curves))))
        assert len(rows) == 4
        assert rows[1]["size"] == "480"

    def test_table2_csv(self):
        from repro.experiments import Table2Row
        rows_in = [Table2Row("threaded", 5.97e8, 5.97e8, 76.44, 783.0)]
        rows = list(csv.DictReader(io.StringIO(table2_to_csv(rows_in))))
        assert rows[0]["variant"] == "threaded"
        assert float(rows[0]["mlups"]) == 783.0
