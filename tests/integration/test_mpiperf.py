"""Tests for MPI-wide counter collection and imbalance detection."""

import pytest

from repro.core.mpiperf import MpiPerfCtr
from repro.core.pin import LikwidPin
from repro.errors import CounterError
from repro.hw.events import Channel
from repro.oskern.mpi import MpiExec, SimCluster
from repro.workloads.runner import run_team
from repro.workloads.stream import triad_phase


def launch_cluster(nodes=2, omp_threads=4):
    cluster = SimCluster("westmere_ep", nodes, seed=3)
    mpiexec = MpiExec(cluster)

    def setup(kernel):
        return LikwidPin(kernel).launch("0-3",
                                        thread_type="intel_mpi").master

    mpiexec.run(nodes, pernode=True, setup=setup)
    mpiexec.spawn_teams(omp_threads)
    mpiexec.place_all()
    return mpiexec


class TestMpiPerfCtr:
    def test_balanced_ranks(self):
        mpiexec = launch_cluster()
        mpi_perfctr = MpiPerfCtr(mpiexec, "FLOPS_DP", "0-3")

        def run_rank(rank):
            return run_team(rank.node.machine, rank.node.kernel, rank.team,
                            lambda _i, _n: triad_phase("icc", 1_000_000),
                            migrate=False)

        measurement = mpi_perfctr.wrap(run_rank)
        stats = measurement.statistics("FP_COMP_OPS_EXE_SSE_FP_PACKED")
        # Each rank: 4 threads x 1e6 iters x 2 flops -> 4e6 packed ops.
        assert stats.total == pytest.approx(2 * 4e6, rel=0.01)
        assert stats.imbalance == pytest.approx(1.0, rel=0.01)

    def test_imbalance_detected(self):
        """Rank 1 does 3x the work: the reduction pinpoints it (the
        load-imbalance use case of MPI counter collection, paper
        reference [7])."""
        mpiexec = launch_cluster()
        mpi_perfctr = MpiPerfCtr(mpiexec, "FLOPS_DP", "0-3")

        def run_rank(rank):
            iters = 1_000_000 * (3 if rank.rank == 1 else 1)
            return run_team(rank.node.machine, rank.node.kernel, rank.team,
                            lambda _i, _n: triad_phase("icc", iters),
                            migrate=False)

        measurement = mpi_perfctr.wrap(run_rank)
        stats = measurement.statistics("FP_COMP_OPS_EXE_SSE_FP_PACKED")
        assert stats.max_rank == 1
        assert stats.maximum == pytest.approx(3 * stats.minimum, rel=0.01)
        assert stats.imbalance == pytest.approx(1.5, rel=0.01)

    def test_per_rank_results_are_full_measurements(self):
        mpiexec = launch_cluster()
        mpi_perfctr = MpiPerfCtr(mpiexec, "FLOPS_DP", "0-3")

        def run_rank(rank):
            rank.node.machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 10.0,
                     Channel.INSTRUCTIONS: 100.0,
                     Channel.CORE_CYCLES: 200.0}})

        measurement = mpi_perfctr.wrap(run_rank)
        result = measurement.per_rank[0]
        assert result.metric(0, "CPI") == 2.0

    def test_render_contains_reductions(self):
        mpiexec = launch_cluster()
        mpi_perfctr = MpiPerfCtr(mpiexec, "FLOPS_DP", "0-3")
        measurement = mpi_perfctr.wrap(lambda rank: None)
        text = measurement.render()
        assert "max/avg" in text
        assert "INSTR_RETIRED_ANY" in text

    def test_requires_launched_ranks(self):
        cluster = SimCluster("core2", 1)
        with pytest.raises(CounterError, match="no launched ranks"):
            MpiPerfCtr(MpiExec(cluster), "FLOPS_DP")

    def test_nodes_counted_independently(self):
        """A burst on node 0 must not leak into node 1's counters."""
        mpiexec = launch_cluster()
        mpi_perfctr = MpiPerfCtr(mpiexec, "FLOPS_DP", "0-3")

        def run_rank(rank):
            if rank.rank == 0:
                rank.node.machine.apply_counts(
                    {0: {Channel.FLOPS_PACKED_DP: 999.0}})

        measurement = mpi_perfctr.wrap(run_rank)
        assert measurement.rank_total(
            0, "FP_COMP_OPS_EXE_SSE_FP_PACKED") == 999
        assert measurement.rank_total(
            1, "FP_COMP_OPS_EXE_SSE_FP_PACKED") == 0
