"""Cross-architecture matrix: every tool works on every machine of the
paper's supported list (§II.A: Pentium M, Atom, Core 2, Nehalem,
Westmere, AMD K8, AMD K10)."""

import pytest

from repro.core.numa import probe_numa, render_numa
from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.groups import groups_for
from repro.core.pin import LikwidPin
from repro.core.topology import probe_topology, render_topology
from repro.core.topology_ascii import render_ascii
from repro.core.xmlout import topology_to_xml
from repro.hw.arch import ARCH_SPECS, create_machine, get_arch
from repro.hw.events import Channel
from repro.oskern.proc import parse_cpuinfo, render_cpuinfo
from repro.oskern.scheduler import OSKernel

ARCHES = sorted(ARCH_SPECS)


@pytest.mark.parametrize("arch", ARCHES)
class TestEveryArch:
    def test_topology_roundtrip(self, arch):
        machine = create_machine(arch)
        spec = get_arch(arch)
        topo = probe_topology(machine)
        assert topo.num_hwthreads == spec.num_hwthreads
        text = render_topology(topo)
        assert f"Sockets:\t\t{spec.sockets}" in text
        assert render_ascii(topo)
        assert topology_to_xml(topo, probe_numa(machine))

    def test_numa_render(self, arch):
        machine = create_machine(arch)
        text = render_numa(probe_numa(machine))
        assert f"NUMA domains: {machine.spec.num_numa_domains}" in text

    def test_cpuinfo_round(self, arch):
        machine = create_machine(arch)
        cpus = parse_cpuinfo(render_cpuinfo(machine))
        assert len(cpus) == machine.num_hwthreads

    def test_flops_dp_measurement(self, arch):
        machine = create_machine(arch)
        perfctr = LikwidPerfCtr(machine)
        session_events = groups_for(machine.spec)["FLOPS_DP"]
        channels = {Channel.FLOPS_PACKED_DP: 500.0,
                    Channel.INSTRUCTIONS: 2000.0,
                    Channel.CORE_CYCLES: 3000.0}
        result = perfctr.wrap(
            [0], "FLOPS_DP",
            lambda: machine.apply_counts({0: dict(channels)},
                                         elapsed_seconds=0.001))
        packed_event = session_events.events[-2 if arch.startswith("amd")
                                             else 0].event
        # The packed-DP event of the group observed the channel.
        assert result.event(0, packed_event) in (500.0, 2000.0, 3000.0)
        metrics = result.metrics[0]
        flops_metric = next(k for k in metrics if "MFlops" in k)
        assert metrics[flops_metric] >= 0

    def test_pin_launch_and_team(self, arch):
        machine = create_machine(arch)
        kernel = OSKernel(machine, seed=1)
        n = min(2, machine.num_hwthreads)
        corelist = ",".join(str(c) for c in range(n))
        process = LikwidPin(kernel).launch(corelist, thread_type="posix")
        assert kernel.sched_getaffinity(process.master.tid) == frozenset({0})

    def test_all_groups_measurable(self, arch):
        """Every advertised group sets up, starts, and reads."""
        machine = create_machine(arch)
        perfctr = LikwidPerfCtr(machine)
        for name in groups_for(machine.spec):
            result = perfctr.wrap([0], name, lambda: None)
            assert result.cpus == [0], f"{arch}/{name}"

    def test_papi_where_supported(self, arch):
        from repro.papi import PAPI_TOT_INS, PAPI_VER_CURRENT, PapiLibrary
        machine = create_machine(arch)
        lib = PapiLibrary(machine)
        lib.PAPI_library_init(PAPI_VER_CURRENT)
        es = lib.PAPI_create_eventset()
        lib.PAPI_add_event(es, PAPI_TOT_INS)
        lib.PAPI_start(es)
        machine.apply_counts({0: {Channel.INSTRUCTIONS: 77}})
        assert lib.PAPI_stop(es) == [77]

    def test_stream_runs(self, arch):
        from repro.workloads.stream import run_stream
        machine = create_machine(arch)
        kernel = OSKernel(machine, seed=2)
        n = min(2, machine.spec.num_cores)
        r = run_stream(machine, kernel, nthreads=n, compiler="gcc",
                       pin_cpus=list(range(n)), n_elements=100_000)
        assert r.bandwidth_mb_s > 0
