"""Cross-module property-based tests (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.affinity import resolve_affinity_expression
from repro.hw.arch import ARCH_SPECS, create_machine, get_arch
from repro.model.ecm import KernelPhase, PlacedWork, solve
from repro.oskern.scheduler import OSKernel

ARCH_NAMES = sorted(ARCH_SPECS)


class TestSchedulerProperties:
    @settings(max_examples=30, deadline=None)
    @given(arch=st.sampled_from(ARCH_NAMES), seed=st.integers(0, 1000),
           nthreads=st.integers(1, 30))
    def test_placement_respects_affinity(self, arch, seed, nthreads):
        """Every placed thread sits inside its affinity mask."""
        machine = create_machine(arch)
        kernel = OSKernel(machine, seed=seed)
        rng_cpus = list(range(machine.num_hwthreads))
        threads = []
        for i in range(nthreads):
            t = kernel.pthread_create()
            if i % 3 == 0:
                mask = {rng_cpus[i % len(rng_cpus)],
                        rng_cpus[(i * 7) % len(rng_cpus)]}
                kernel.sched_setaffinity(t.tid, mask)
            threads.append(t)
        kernel.place_all()
        for t in threads:
            assert t.hwthread in kernel.sched_getaffinity(t.tid)
            assert t.memory_socket == \
                machine.spec.socket_of(t.hwthread) or t.memory_socket \
                is not None

    @settings(max_examples=20, deadline=None)
    @given(arch=st.sampled_from(ARCH_NAMES), seed=st.integers(0, 500))
    def test_balancer_minimises_max_load(self, arch, seed):
        """With nthreads <= ncpus, no hardware thread is doubly loaded."""
        machine = create_machine(arch)
        kernel = OSKernel(machine, seed=seed)
        n = machine.num_hwthreads
        threads = [kernel.pthread_create() for _ in range(n)]
        kernel.place_all()
        placements = [t.hwthread for t in threads]
        assert len(set(placements)) == n


class TestModelProperties:
    SPEC = get_arch("westmere_ep")

    @settings(max_examples=30, deadline=None)
    @given(bytes_per_iter=st.floats(8.0, 128.0),
           nthreads=st.integers(1, 12))
    def test_socket_bandwidth_never_exceeded(self, bytes_per_iter, nthreads):
        phase = KernelPhase("m", 100_000, cycles_per_iter=0.1,
                            mem_read_bytes_per_iter=bytes_per_iter)
        cpus = self.SPEC.hwthreads_of_socket(0)[:nthreads]
        work = [PlacedWork(i, cpu, 0, phase) for i, cpu in enumerate(cpus)]
        result = solve(self.SPEC, work)
        # Instantaneous aggregate bandwidth is capped; since all threads
        # are identical they finish together, so average == instantaneous.
        total_bw = sum(t.rate for t in result.threads) * bytes_per_iter
        assert total_bw <= self.SPEC.perf.socket_mem_bw * 1.001

    @settings(max_examples=30, deadline=None)
    @given(cycles=st.floats(0.5, 16.0), iters=st.integers(1000, 10_000_000))
    def test_compute_runtime_exact(self, cycles, iters):
        phase = KernelPhase("c", iters, cycles_per_iter=cycles)
        result = solve(self.SPEC, [PlacedWork(0, 0, 0, phase)])
        expected = iters * cycles / self.SPEC.clock_hz
        assert result.total_time == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(nthreads=st.integers(1, 24))
    def test_more_threads_never_slower_total(self, nthreads):
        """Fixed total work spread over more (distinct) cores never
        increases the runtime."""
        total_iters = 1_200_000
        order = self.SPEC.scatter_order()

        def runtime(k):
            phase = KernelPhase("m", total_iters // k,
                                cycles_per_iter=0.75,
                                mem_read_bytes_per_iter=16.0,
                                mem_write_bytes_per_iter=8.0)
            work = [PlacedWork(i, order[i], self.SPEC.socket_of(order[i]),
                               phase) for i in range(k)]
            return solve(self.SPEC, work).total_time

        assert runtime(nthreads) <= runtime(1) * 1.001

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_counters_scale_linearly_with_iters(self, seed):
        from repro.hw.events import Channel
        base = KernelPhase("f", 1000 * (seed + 1), flops_per_iter=2.0)
        result = solve(self.SPEC, [PlacedWork(0, 0, 0, base)])
        packed = result.threads[0].channels[Channel.FLOPS_PACKED_DP]
        assert packed == pytest.approx(base.iters)


class TestAffinityExpressionProperties:
    @settings(max_examples=30, deadline=None)
    @given(arch=st.sampled_from(ARCH_NAMES), data=st.data())
    def test_domain_expressions_yield_valid_distinct_cpus(self, arch, data):
        spec = get_arch(arch)
        from repro.core.affinity import affinity_domains
        domains = affinity_domains(spec)
        name = data.draw(st.sampled_from(sorted(domains)))
        size = len(domains[name])
        upper = data.draw(st.integers(0, size - 1))
        cpus = resolve_affinity_expression(spec, f"{name}:0-{upper}")
        assert len(cpus) == upper + 1
        assert len(set(cpus)) == len(cpus)
        assert all(0 <= c < spec.num_hwthreads for c in cpus)
