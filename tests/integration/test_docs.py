"""Documentation integrity: the README quickstart runs, and the docs
reference only things that exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


class TestReadmeQuickstart:
    def test_python_snippet_executes(self, capsys):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README has no python quickstart"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        out = capsys.readouterr().out
        assert "Hardware Thread Topology" in out

    def test_cli_lines_reference_real_workloads(self):
        from repro.cli.common import WORKLOADS
        text = (ROOT / "README.md").read_text()
        sh_blocks = re.findall(r"```sh\n(.*?)```", text, re.DOTALL)
        for block in sh_blocks:
            for match in re.finditer(r"(stream_\w+|jacobi_\w+|dgemm)\b",
                                     block):
                assert match.group(1) in WORKLOADS


class TestDocsConsistency:
    def test_design_md_modules_exist(self):
        """Every src path DESIGN.md's inventories name must exist."""
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`((?:hw|oskern|core|model|workloads|"
                                 r"papi|cli)/[\w/]+\.py)`", text):
            path = ROOT / "src" / "repro" / match.group(1)
            assert path.exists(), match.group(1)

    def test_experiments_md_mentions_every_figure_and_table(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artefact in ("Figure 1", "Table I", "Fig. 4", "Fig. 5",
                         "Fig. 6", "Figs 7/8", "Figs 9/10", "Figure 11",
                         "Table II"):
            assert artefact in text, artefact

    def test_docs_dir_covers_all_tools(self):
        names = {p.stem for p in (ROOT / "docs").glob("*.md")}
        assert {"likwid-topology", "likwid-pin", "likwid-perfctr",
                "likwid-features", "likwid-bench", "modeling",
                "api"} <= names

    def test_api_md_modules_importable(self):
        import importlib
        text = (ROOT / "docs" / "api.md").read_text()
        for match in set(re.findall(r"`((?:hw|oskern|core|model|"
                                    r"workloads|papi|analysis)\.[\w.]+)`",
                                    text)):
            importlib.import_module(f"repro.{match.group(0) if False else match}")
