"""The paper's §II.A instrumentation listing, executed verbatim
through the likwid.h compatibility shim."""

import pytest

import repro.likwid as likwid
from repro.core.perfctr import LikwidPerfCtr
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.errors import MarkerError
from repro.oskern.scheduler import OSKernel


@pytest.fixture(autouse=True)
def _unbind():
    yield
    likwid.likwid_markerUnbind()


def bind(machine=None):
    machine = machine or create_machine("core2")
    kernel = OSKernel(machine, seed=0)
    process = kernel.spawn_process("a.out")
    kernel.sched_setaffinity(process.tid, {0})
    kernel.place_thread(process.tid)
    session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
    session.start()
    likwid.likwid_markerBind(session, kernel, process)
    return machine, kernel, process, session


class TestPaperListing:
    def test_verbatim_flow(self):
        """The exact call sequence of the paper's code example."""
        machine, _kernel, _process, session = bind()

        core_id = likwid.likwid_processGetProcessorId()
        likwid.likwid_markerInit(1, 2)
        main_id = likwid.likwid_markerRegisterRegion("Main")
        accum_id = likwid.likwid_markerRegisterRegion("Accum")

        likwid.likwid_markerStartRegion(0, core_id)
        machine.apply_counts({core_id: {Channel.FLOPS_PACKED_DP: 500,
                                        Channel.INSTRUCTIONS: 5000,
                                        Channel.CORE_CYCLES: 7000}})
        likwid.likwid_markerStopRegion(0, core_id, main_id)

        for _j in range(5):
            likwid.likwid_markerStartRegion(0, core_id)
            machine.apply_counts({core_id: {Channel.FLOPS_PACKED_DP: 10,
                                            Channel.INSTRUCTIONS: 100,
                                            Channel.CORE_CYCLES: 150}})
            likwid.likwid_markerStopRegion(0, core_id, accum_id)

        likwid.likwid_markerClose()
        session.stop()

        results = likwid.likwid_markerResults()
        main = results.region_result("Main")
        accum = results.region_result("Accum")
        assert main.event(core_id,
                          "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 500
        assert accum.event(core_id,
                           "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 50
        assert accum.metric(core_id, "CPI") == pytest.approx(1.5)

    def test_get_processor_id_reflects_pinning(self):
        _machine, _kernel, _process, _session = bind()
        assert likwid.likwid_processGetProcessorId() == 0
        assert likwid.likwid_pinProcess(2) == 0
        # Pinned to a cpu outside the session's set: id still reported.
        assert likwid.likwid_processGetProcessorId() == 2

    def test_api_unbound_raises(self):
        with pytest.raises(MarkerError, match="not bound"):
            likwid.likwid_markerInit(1, 1)
        with pytest.raises(MarkerError, match="not bound"):
            likwid.likwid_processGetProcessorId()

    def test_session_object_mirrors_free_functions(self):
        """An explicit LikwidSession runs the same listing without
        touching the module-global default binding."""
        machine = create_machine("core2")
        kernel = OSKernel(machine, seed=0)
        process = kernel.spawn_process("a.out")
        kernel.sched_setaffinity(process.tid, {0})
        kernel.place_thread(process.tid)
        perf_session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
        perf_session.start()

        session = likwid.LikwidSession()
        session.bind(perf_session, kernel, process)
        assert not likwid.default_session().bound

        core_id = session.process_get_processor_id()
        session.marker_init(1, 1)
        rid = session.marker_register_region("Main")
        session.marker_start_region(0, core_id)
        machine.apply_counts({core_id: {Channel.FLOPS_PACKED_DP: 42}})
        session.marker_stop_region(0, core_id, rid)
        session.marker_close()
        perf_session.stop()

        result = session.marker_results().region_result("Main")
        assert result.event(
            core_id, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 42
        # The free functions are still unbound.
        with pytest.raises(MarkerError, match="not bound"):
            likwid.likwid_markerInit(1, 1)

    def test_likwid_bound_scopes_and_restores(self):
        machine = create_machine("core2")
        kernel = OSKernel(machine, seed=0)
        process = kernel.spawn_process("a.out")
        kernel.sched_setaffinity(process.tid, {0})
        kernel.place_thread(process.tid)
        perf_session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
        perf_session.start()

        with likwid.likwid_bound(perf_session, kernel, process) as session:
            assert session is likwid.default_session()
            assert likwid.likwid_processGetProcessorId() == 0
            likwid.likwid_markerInit(1, 1)
        # The prior (unbound) state is restored on exit.
        with pytest.raises(MarkerError, match="not bound"):
            likwid.likwid_processGetProcessorId()

    def test_likwid_bound_restores_outer_binding(self):
        machine, kernel, process, _session = bind()
        other = kernel.spawn_process("b.out")
        kernel.sched_setaffinity(other.tid, {1})
        kernel.place_thread(other.tid)
        inner = LikwidPerfCtr(machine).session([1], "FLOPS_DP")
        inner.start()
        with likwid.likwid_bound(inner, kernel, other):
            assert likwid.likwid_processGetProcessorId() == 1
        # Back on the outer binding from bind().
        assert likwid.likwid_processGetProcessorId() == 0

    def test_multithreaded_calling_context(self):
        machine, kernel, _process, session = bind()
        likwid.likwid_markerInit(2, 1)
        rid = likwid.likwid_markerRegisterRegion("R")

        worker = kernel.pthread_create()
        kernel.sched_setaffinity(worker.tid, {0})
        kernel.place_thread(worker.tid)
        likwid.likwid_setCallingThread(worker)
        core = likwid.likwid_processGetProcessorId()
        likwid.likwid_markerStartRegion(1, core)
        machine.apply_counts({core: {Channel.FLOPS_PACKED_DP: 7}})
        likwid.likwid_markerStopRegion(1, core, rid)
        likwid.likwid_markerClose()
        session.stop()
        result = likwid.likwid_markerResults().region_result("R")
        assert result.event(core,
                            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 7
