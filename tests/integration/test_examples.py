"""The example scripts must stay runnable: compile them all, and run
the fast ones end-to-end in-process."""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

# Fast examples are executed outright; the sampling-heavy ones are
# compile-checked only (they run in the examples smoke outside pytest).
FAST = {"quickstart.py", "perfctr_marker.py", "hybrid_mpi.py",
        "timeline_profile.py"}


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 9


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "c.pyc"),
                       doraise=True)


@pytest.mark.parametrize("path",
                         [p for p in EXAMPLES if p.name in FAST],
                         ids=lambda p: p.name)
def test_fast_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100   # produced a real report


def test_every_example_has_module_docstring_with_run_line():
    for path in EXAMPLES:
        text = path.read_text()
        assert text.startswith('#!/usr/bin/env python\n"""'), path.name
        assert "Run:" in text, path.name
