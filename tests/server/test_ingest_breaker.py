"""ServerIngestSink: circuit breaker, spill ring, exact accounting.

The sink's contract is that ``emit`` never raises and the ledger
``offered == shipped + refused + dropped + pending`` balances after
every single operation — a dead server costs counted drops behind an
open breaker, never an exception in the agent loop and never a
silently lost sample.  The server is scripted here (no sockets): each
test drives the breaker state machine directly.
"""

import pytest

from repro.agent.batch import AgentSample, SampleBatch
from repro.errors import ServerError
from repro.server.ingest import (ServerIngestSink, batch_from_dict,
                                 batch_to_dict)


def _batch(window=0, samples=1, node="n0"):
    sams = tuple(AgentSample(node, "MEM", window, 0.05, "cpu", i,
                             "CPI", 1.0, seq=i)
                 for i in range(samples))
    return SampleBatch(node, "MEM", window, 0.05, 0.05, sams,
                       seq=window)


class ScriptedClient:
    """A fake sync client: each entry in ``script`` is consumed per
    call — an exception instance to raise, ``"ok"`` to accept, or a
    literal reply dict.  An exhausted script keeps accepting."""

    client_id = "agent-x"

    def __init__(self, script=()):
        self.script = list(script)
        self.calls = []
        self._seq = 0

    def next_seq(self):
        self._seq += 1
        return self._seq

    def call(self, doc):
        self.calls.append(doc)
        action = self.script.pop(0) if self.script else "ok"
        if isinstance(action, Exception):
            raise action
        if action == "ok":
            return {"ok": True,
                    "accepted": len(doc["batch"]["samples"])}
        return action


def _balanced(sink):
    assert sink.inconsistencies() == []


class TestHappyPath:
    def test_batches_ship_and_balance(self):
        client = ScriptedClient()
        sink = ServerIngestSink(client)
        for w in range(3):
            sink.emit(_batch(window=w, samples=4))
            _balanced(sink)
        assert sink.offered == 12
        assert sink.shipped == 12
        assert sink.pending == 0
        assert not sink.breaker_open

    def test_batches_are_stamped_once_on_entry(self):
        """The idempotency key is assigned when the batch enters the
        ring, so a drain retry re-sends the *same* key and the server
        dedups instead of double-counting."""
        client = ScriptedClient(script=[ConnectionError("down"), "ok"])
        sink = ServerIngestSink(client)
        sink.emit(_batch(window=0))          # fails, spills
        assert sink.breaker_open
        assert sink.drain()                  # retries the same doc
        first, retry = client.calls
        assert first is retry                # identical object, key and all
        assert retry["client"] == "agent-x"
        assert retry["seq"] == 1
        _balanced(sink)

    def test_keyless_client_still_works(self):
        class Bare:
            def call(self, doc):
                assert "client" not in doc and "seq" not in doc
                return {"ok": True,
                        "accepted": len(doc["batch"]["samples"])}
        sink = ServerIngestSink(Bare())
        sink.emit(_batch(samples=2))
        assert sink.shipped == 2
        _balanced(sink)


class TestBreaker:
    def test_transport_failure_trips_and_never_raises(self):
        client = ScriptedClient(script=[ConnectionError("down")])
        sink = ServerIngestSink(client)
        sink.emit(_batch(samples=3))         # must not raise
        assert sink.breaker_open
        assert sink.breaker_trips == 1
        assert sink.pending == 3
        assert "down" in sink.last_error
        _balanced(sink)

    def test_retries_exhausted_is_breaker_territory(self):
        client = ScriptedClient(script=[
            ServerError("gone", code="retries-exhausted")])
        sink = ServerIngestSink(client)
        sink.emit(_batch())
        assert sink.breaker_open
        _balanced(sink)

    def test_open_breaker_probes_exponentially(self):
        """While the server stays dead, probe spacing doubles up to
        MAX_SKIP: a long outage costs ~log emits on the network, not
        one timeout per window."""
        dead = ScriptedClient(
            script=[ConnectionError("down")] * 1000)
        sink = ServerIngestSink(dead, spill_capacity=4)
        for w in range(600):
            sink.emit(_batch(window=w))
            _balanced(sink)
        probes = len(dead.calls)
        # Probe emits: 1, 2, 4, 8, ... then every MAX_SKIP.
        assert probes < 600 / 8
        assert sink._skip_next == ServerIngestSink.MAX_SKIP
        assert sink.breaker_trips == 1       # one outage, one trip

    def test_breaker_closes_and_spacing_resets_on_recovery(self):
        client = ScriptedClient(script=[ConnectionError("a"),
                                        ConnectionError("b")])
        sink = ServerIngestSink(client)
        # emit 0 trips; emit 1 probes and trips again (spacing 2);
        # emit 2 is skipped entirely — the dead server is not touched.
        for w in range(3):
            sink.emit(_batch(window=w))
        assert sink.breaker_open
        assert sink._skip_next > 1
        assert sink.drain()                  # server is back
        assert not sink.breaker_open
        assert sink._skip_next == 1          # probe spacing reset
        assert sink.pending == 0
        assert sink.shipped == 3
        _balanced(sink)

    def test_second_outage_counts_a_second_trip(self):
        client = ScriptedClient(script=[ConnectionError("one"), "ok",
                                        ConnectionError("two")])
        sink = ServerIngestSink(client)
        sink.emit(_batch(window=0))
        sink.drain()
        assert not sink.breaker_open
        sink.emit(_batch(window=1))
        assert sink.breaker_trips == 2
        _balanced(sink)


class TestSpillRing:
    def test_overflow_evicts_oldest_as_counted_drops(self):
        dead = ScriptedClient(script=[ConnectionError("x")] * 100)
        sink = ServerIngestSink(dead, spill_capacity=4)
        for w in range(10):
            sink.emit(_batch(window=w, samples=2))
            _balanced(sink)
        assert sink.pending == 8             # 4 batches x 2 samples
        assert sink.dropped == 12            # the 6 evicted batches
        assert sink.offered == 20

    def test_drain_ships_survivors_in_window_order(self):
        dead = ScriptedClient(script=[ConnectionError("x")] * 100)
        sink = ServerIngestSink(dead, spill_capacity=3)
        for w in range(8):
            sink.emit(_batch(window=w))
        alive = ScriptedClient()
        sink.client = alive
        assert sink.drain()
        windows = [d["batch"]["window"] for d in alive.calls]
        assert windows == [5, 6, 7]          # oldest evicted, order kept
        assert sink.shipped == 3
        _balanced(sink)

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="spill capacity"):
            ServerIngestSink(ScriptedClient(), spill_capacity=0)


class TestRefusals:
    def test_fatal_server_error_is_refused_not_tripped(self):
        client = ScriptedClient(script=[
            ServerError("bad ingest batch", code="bad-request"), "ok"])
        sink = ServerIngestSink(client)
        sink.emit(_batch(window=0, samples=2))
        sink.emit(_batch(window=1, samples=2))
        # The refused batch never blocks the ring behind it.
        assert sink.refused == 2
        assert sink.shipped == 2
        assert not sink.breaker_open
        assert sink.breaker_trips == 0
        _balanced(sink)

    def test_not_ok_reply_is_refused(self):
        client = ScriptedClient(script=[
            {"ok": False, "error": "unknown verb"}])
        sink = ServerIngestSink(client)
        sink.emit(_batch(samples=3))
        assert sink.refused == 3
        assert "unknown verb" in sink.last_error
        _balanced(sink)


class TestClose:
    def test_close_drains_then_abandons_as_counted_drops(self):
        dead = ScriptedClient(script=[ConnectionError("x")] * 100)
        sink = ServerIngestSink(dead, spill_capacity=8)
        for w in range(5):
            sink.emit(_batch(window=w, samples=2))
        assert sink.pending == 10
        sink.close()
        assert sink.pending == 0
        assert sink.dropped == 10
        _balanced(sink)

    def test_close_ships_everything_when_server_is_back(self):
        client = ScriptedClient(script=[ConnectionError("x")] * 2)
        sink = ServerIngestSink(client)
        for w in range(3):
            sink.emit(_batch(window=w))
        sink.close()                         # script exhausted: accepts
        assert sink.shipped == 3
        assert sink.dropped == 0
        _balanced(sink)


class TestWireRoundTrip:
    def test_nan_values_survive_the_wire(self):
        import math
        sams = (AgentSample("n0", "MEM", 0, 0.05, "cpu", 0, "CPI",
                            math.nan, seq=0),)
        batch = SampleBatch("n0", "MEM", 0, 0.05, 0.05, sams)
        doc = batch_to_dict(batch)
        assert doc["samples"][0]["value"] == "nan"
        back = batch_from_dict(doc)
        assert math.isnan(back.samples[0].value)

    def test_round_trip_is_exact(self):
        batch = _batch(window=3, samples=4)
        assert batch_from_dict(batch_to_dict(batch)) == batch

    def test_bad_batch_raises_server_error(self):
        with pytest.raises(ServerError, match="bad ingest batch"):
            batch_from_dict({"node": "n0"})
