"""Load-test harness: exact accounting and bit-identity at scale.

Includes the ISSUE 9 acceptance run — 1000 sessions across 8 nodes
and 4 tenants with deadline timeouts and 10% injected read faults —
asserting zero unaccounted sessions and standalone-identical results.
"""

import pytest

from repro.server.loadtest import (LoadTestConfig, generate_requests,
                                   node_specs, run_load_test)


class TestGeneration:
    def test_same_seed_same_mix(self):
        cfg = LoadTestConfig(sessions=50, seed=3)
        assert generate_requests(cfg) == generate_requests(cfg)

    def test_different_seed_different_mix(self):
        a = generate_requests(LoadTestConfig(sessions=50, seed=1))
        b = generate_requests(LoadTestConfig(sessions=50, seed=2))
        assert a != b

    def test_mix_covers_the_fleet_and_tenants(self):
        cfg = LoadTestConfig(sessions=100, nodes=4, tenants=4)
        reqs = generate_requests(cfg)
        assert len(reqs) == 100
        assert {r.node for r in reqs} == \
            {f"node{i:03d}" for i in range(4)}
        assert {r.tenant for r in reqs} == \
            {f"tenant{i}" for i in range(4)}

    def test_skew_favors_tenant_zero(self):
        reqs = generate_requests(
            LoadTestConfig(sessions=400, tenants=4))
        counts = {}
        for r in reqs:
            counts[r.tenant] = counts.get(r.tenant, 0) + 1
        assert counts["tenant0"] > counts["tenant3"]

    def test_fractions_produce_long_and_deadlined(self):
        cfg = LoadTestConfig(sessions=200, long_fraction=0.1,
                             deadline_fraction=0.2)
        reqs = generate_requests(cfg)
        assert any(r.windows == cfg.long_windows for r in reqs)
        assert any(r.deadline is not None for r in reqs)

    def test_node_specs_reseed_fault_plans(self):
        cfg = LoadTestConfig(nodes=3, seed=5,
                             faults="read_fault_rate=0.1")
        plans = [s.faults for s in node_specs(cfg)]
        assert len(set(plans)) == 3
        assert all("seed=" in p for p in plans)

    def test_bad_config_rejected(self):
        from repro.errors import ServerError
        with pytest.raises(ServerError):
            LoadTestConfig(sessions=0)


class TestSmallRun:
    def test_accounting_is_exact(self):
        report = run_load_test(LoadTestConfig(
            sessions=60, clients=15, nodes=2, tenants=3, seed=1))
        assert report.accounting_errors() == []
        assert report.submitted == 60
        assert report.counts["failed"] == 0

    def test_verify_includes_bit_identity(self):
        report = run_load_test(LoadTestConfig(
            sessions=40, clients=10, nodes=2, tenants=2, seed=2,
            faults="read_fault_rate=0.1"))
        assert report.verify() == []

    def test_report_shape(self):
        report = run_load_test(LoadTestConfig(
            sessions=30, clients=10, nodes=2, tenants=2, seed=3))
        doc = report.as_dict()
        assert doc["submitted"] == 30
        assert doc["throughput_sessions_per_s"] > 0
        assert "p99" in doc["queue_wait"]
        assert doc["fairness_max_over_min"] >= 1.0


@pytest.mark.integration
class TestAcceptanceRun:
    def test_thousand_sessions_eight_nodes(self):
        """The ISSUE 9 acceptance criteria in one run: 1000 sessions,
        8 nodes, 4 tenants, deadline timeouts firing, 10% seeded read
        faults absorbed, zero unaccounted sessions, and per-session
        results bit-identical to the same session run standalone."""
        config = LoadTestConfig(
            sessions=1000, clients=100, nodes=8, tenants=4, seed=42,
            deadline_fraction=0.1, long_fraction=0.04,
            faults="read_fault_rate=0.1")
        report = run_load_test(config)
        counts = report.counts

        # Exact accounting: every submission ends terminally.
        terminal = sum(counts[k] for k in
                       ("completed", "timed_out", "rejected",
                        "preempted", "cancelled", "failed"))
        assert terminal == 1000
        assert counts["failed"] == 0
        assert counts["pending"] == 0

        # The stress ingredients actually exercised.
        assert counts["completed"] > 800
        assert counts["timed_out"] > 0, "no deadline ever fired"
        assert counts["preempted"] > 0, "no lease was ever preempted"

        # Queue-wait percentiles are reported and ordered.
        qw = report.queue_wait
        assert qw["count"] == counts["completed"] + counts["preempted"]
        assert qw["p50"] <= qw["p99"] <= qw["max"]

        # Bit-identity of completed sessions against standalone
        # replay (an evenly spaced sample keeps CI time bounded; the
        # small runs above verify exhaustively).
        assert report.verify(sample=150) == []
