"""Wire fuzzing: the connection survives whatever arrives on it.

A real network peer can send anything — torn JSON, binary garbage,
multi-megabyte lines, invalid UTF-8.  The contract: every bad request
line earns a machine-readable error *reply* (``ok: false`` with a
stable ``code``), the connection stays usable, and the server keeps
serving everyone else.  The fuzz corpus is seeded, so a failure
reproduces.
"""

import asyncio
import json
import random

from repro.agent.fleet import NodeSpec
from repro.server.protocol import ProtocolServer
from repro.server.server import ReproServer


def _specs():
    return [NodeSpec(name="node000", arch="westmere_ep", seed=0)]


def with_stack(coro_factory):
    async def runner():
        server = ReproServer.from_specs(_specs(), lease_limit=10.0)
        proto = ProtocolServer(server)
        host, port = await proto.start()
        try:
            return await coro_factory(proto, host, port)
        finally:
            await proto.close()
    return asyncio.run(runner())


async def _exchange(reader, writer, line: bytes) -> dict:
    writer.write(line)
    await writer.drain()
    reply = await asyncio.wait_for(reader.readline(), 10.0)
    assert reply.endswith(b"\n"), "reply must be a full line"
    return json.loads(reply)


PING = b'{"op": "ping"}\n'


class TestGarbageLines:
    def test_non_json_gets_error_reply_not_disconnect(self):
        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for line in (b"hello there\n", b"{\n", b"[1, 2,\n",
                         b'{"op": }\n', b"\n"):
                reply = await _exchange(reader, writer, line)
                assert reply["ok"] is False
                assert reply["code"] == "bad-json"
                assert reply["retryable"] is False
            # Same connection still serves real requests.
            reply = await _exchange(reader, writer, PING)
            assert reply["ok"] is True
            writer.close()
            await writer.wait_closed()
        with_stack(body)

    def test_invalid_utf8_is_bad_json(self):
        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            reply = await _exchange(reader, writer,
                                    b'\xff\xfe{"op": "ping"}\n')
            assert reply["ok"] is False
            assert reply["code"] == "bad-json"
            assert (await _exchange(reader, writer, PING))["ok"]
            writer.close()
            await writer.wait_closed()
        with_stack(body)

    def test_wrong_shapes_get_stable_codes(self):
        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            cases = [
                (b'{"op": "warp"}\n', "unknown-op"),
                (b'{"op": "submit"}\n', "bad-request"),
                (b'{"op": "submit", "node": "node000"}\n',
                 "bad-request"),
                (b'{"op": "submit", "node": "nope", "cpus": [0], '
                 b'"group": "FLOPS_DP"}\n', "unknown-node"),
                (b'{"op": "wait", "node": "node000", "session": 99}\n',
                 "unknown-session"),
                (b'{"op": "ingest", "batch": {"bad": 1}}\n',
                 "server-error"),
                # Valid JSON of the wrong shape parsed fine — the
                # *request* is what's bad.
                (b'[1, 2, 3]\n', "bad-request"),
                (b'"just a string"\n', "bad-request"),
            ]
            for line, code in cases:
                reply = await _exchange(reader, writer, line)
                assert reply["ok"] is False
                assert reply["code"] == code, line
                assert reply["retryable"] is False
            assert (await _exchange(reader, writer, PING))["ok"]
            writer.close()
            await writer.wait_closed()
        with_stack(body)

    def test_oversized_line_is_refused_and_survived(self):
        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            huge = b'{"op": "ping", "pad": "' + b"x" * (2 << 20) \
                + b'"}\n'
            reply = await _exchange(reader, writer, huge)
            assert reply["ok"] is False
            assert reply["code"] == "oversized-request"
            # The oversized line was fully drained: the next request
            # parses from a clean stream boundary.
            assert (await _exchange(reader, writer, PING))["ok"]
            writer.close()
            await writer.wait_closed()
        with_stack(body)

    def test_truncated_line_then_disconnect_is_quiet(self):
        async def body(proto, host, port):
            for payload in (b'{"op": "sub', b"garbage-no-newline"):
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(payload)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            # The server shrugged both off and still answers.
            reader, writer = await asyncio.open_connection(host, port)
            assert (await _exchange(reader, writer, PING))["ok"]
            writer.close()
            await writer.wait_closed()
        with_stack(body)


class TestSeededFuzz:
    def test_fuzz_corpus_never_kills_the_connection(self):
        rng = random.Random(1234)
        corpus = []
        for _ in range(60):
            kind = rng.randrange(4)
            if kind == 0:           # random bytes
                line = bytes(rng.randrange(1, 256)
                             for _ in range(rng.randrange(1, 80)))
            elif kind == 1:         # truncated valid JSON
                full = json.dumps({"op": "submit", "node": "node000",
                                   "cpus": [0], "group": "FLOPS_DP",
                                   "seed": rng.randrange(99)}).encode()
                line = full[:rng.randrange(1, len(full))]
            elif kind == 2:         # valid JSON, wrong shape
                line = json.dumps(
                    rng.choice([[], 42, "x", {"op": None},
                                {"op": "submit", "cpus": "zero"},
                                {"nested": {"op": "ping"}}])).encode()
            else:                   # valid JSON with hostile fields
                line = json.dumps(
                    {"op": rng.choice(["ping", "warp", "submit"]),
                     "node": rng.choice(["node000", "ghost", ""]),
                     "cpus": rng.choice([[0], [-1], [9999], "all"]),
                     "group": rng.choice(["FLOPS_DP", "NOPE", ""]),
                     "windows": rng.choice([1, 0, -5, 10 ** 9]),
                     "seed": 1}).encode()
            corpus.append(line.replace(b"\n", b" ") + b"\n")

        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for line in corpus:
                reply = await _exchange(reader, writer, line)
                assert "ok" in reply
                if not reply["ok"]:
                    assert reply["code"]
            assert (await _exchange(reader, writer, PING))["ok"]
            status = await _exchange(
                reader, writer, b'{"op": "status"}\n')
            assert status["ok"]
            # Nothing leaked into a half-executed state.
            assert status["total"]["pending"] == 0 \
                or status["total"]["pending"] <= 2
            writer.close()
            await writer.wait_closed()
        with_stack(body)
