"""NodeScheduler: admission, granting, virtual clock, accounting.

The scheduler core is synchronous and deterministic — every test here
drives it directly with ``submit()``/``step()``/``run_to_idle()`` and
asserts exact outcomes, no asyncio involved.
"""

import pytest

from repro.errors import ServerError
from repro.server.scheduler import (NodeScheduler, SessionRequest,
                                    SessionState)


def make(arch="westmere_ep", **kwargs):
    kwargs.setdefault("lease_limit", 10.0)
    return NodeScheduler("n0", arch, **kwargs)


def req(**kwargs):
    kwargs.setdefault("node", "n0")
    kwargs.setdefault("cpus", (0,))
    kwargs.setdefault("group", "FLOPS_DP")
    return SessionRequest(**kwargs)


class TestAdmission:
    def test_empty_cpus_rejected(self):
        sched = make()
        sess = sched.submit(req(cpus=()))
        assert sess.state is SessionState.REJECTED
        assert "empty cpu set" in sess.reason

    def test_duplicate_cpus_rejected(self):
        sess = make().submit(req(cpus=(0, 0)))
        assert sess.state is SessionState.REJECTED

    def test_out_of_range_cpu_rejected(self):
        sess = make().submit(req(cpus=(999,)))
        assert sess.state is SessionState.REJECTED
        assert "outside" in sess.reason

    def test_unknown_group_rejected(self):
        sess = make().submit(req(group="NOSUCH"))
        assert sess.state is SessionState.REJECTED
        assert "NOSUCH" in sess.reason

    def test_bad_window_plan_rejected(self):
        sched = make()
        assert sched.submit(req(windows=0)).state \
            is SessionState.REJECTED
        assert sched.submit(req(window=0.0)).state \
            is SessionState.REJECTED

    def test_full_queue_rejects(self):
        sched = make(max_queue=1)
        running = sched.submit(req(cpus=(0,)))
        queued = sched.submit(req(cpus=(1,)))   # same socket: waits
        overflow = sched.submit(req(cpus=(2,)))
        assert running.state is SessionState.RUNNING
        assert queued.state is SessionState.QUEUED
        assert overflow.state is SessionState.REJECTED
        assert "queue full" in overflow.reason
        sched.run_to_idle()
        assert queued.state is SessionState.COMPLETED

    def test_rejection_counts_as_terminal(self):
        sched = make()
        sched.submit(req(cpus=()))
        acc = sched.accounting()
        assert acc["rejected"] == 1
        assert acc["pending"] == 0


class TestExecution:
    def test_free_sockets_grant_immediately(self):
        sched = make()
        sess = sched.submit(req())
        assert sess.state is SessionState.RUNNING
        assert sess.queue_wait == 0.0

    def test_completion_produces_result(self):
        sched = make()
        sess = sched.submit(req(windows=3, window=0.1))
        sched.run_to_idle()
        assert sess.state is SessionState.COMPLETED
        assert sess.windows_run == 3
        assert sess.result is not None
        assert sess.result.wall_time == pytest.approx(sess.run_time)
        assert 0 in sess.result.metrics

    def test_virtual_clock_advances_by_window_time(self):
        sched = make()
        sched.submit(req(windows=4, window=0.25))
        sched.run_to_idle()
        assert sched.clock == pytest.approx(1.0)

    def test_disjoint_sockets_interleave(self):
        sched = make()
        a = sched.submit(req(cpus=(0,), windows=2))    # socket 0
        b = sched.submit(req(cpus=(6,), windows=2))    # socket 1
        assert a.state is SessionState.RUNNING
        assert b.state is SessionState.RUNNING
        sched.run_to_idle()
        assert a.state is SessionState.COMPLETED
        assert b.state is SessionState.COMPLETED

    def test_contending_sessions_serialize(self):
        sched = make()
        first = sched.submit(req(cpus=(0,), windows=2, window=0.1))
        second = sched.submit(req(cpus=(1,), windows=1))  # socket 0 too
        assert second.state is SessionState.QUEUED
        sched.run_to_idle()
        assert second.state is SessionState.COMPLETED
        # Waited exactly the first session's two windows.
        assert second.queue_wait == pytest.approx(0.2)

    def test_queue_wait_histogram_observes_grants(self):
        sched = make()
        sched.submit(req(cpus=(0,), windows=1, window=0.1))
        sched.submit(req(cpus=(1,), windows=1))
        sched.run_to_idle()
        assert sched.queue_wait_hist.summary()["count"] == 2

    def test_accounting_totals(self):
        sched = make()
        for cpu in range(4):
            sched.submit(req(cpus=(cpu,), windows=1))
        sched.run_to_idle()
        acc = sched.accounting()
        assert acc["submitted"] == 4
        assert acc["completed"] == 4
        assert acc["pending"] == 0


class TestPreemption:
    def test_lease_limit_preempts(self):
        sched = make(lease_limit=0.25)
        hog = sched.submit(req(windows=100, window=0.1))
        sched.run_to_idle()
        assert hog.state is SessionState.PREEMPTED
        assert "lease limit" in hog.reason
        assert hog.windows_run < 100
        assert hog.result is None

    def test_preemption_frees_the_socket(self):
        sched = make(lease_limit=0.25)
        sched.submit(req(cpus=(0,), windows=100, window=0.1))
        waiter = sched.submit(req(cpus=(1,), windows=1))
        sched.run_to_idle()
        assert waiter.state is SessionState.COMPLETED
        assert not sched.busy

    def test_session_finishing_within_lease_is_not_preempted(self):
        sched = make(lease_limit=0.25)
        ok = sched.submit(req(windows=2, window=0.1))
        sched.run_to_idle()
        assert ok.state is SessionState.COMPLETED


class TestCancellation:
    def test_cancel_queued(self):
        sched = make()
        sched.submit(req(cpus=(0,), windows=2))
        queued = sched.submit(req(cpus=(1,)))
        assert sched.cancel(queued.id)
        assert queued.state is SessionState.CANCELLED
        sched.run_to_idle()
        assert sched.accounting()["cancelled"] == 1

    def test_cancel_running_recovers_state(self):
        sched = make()
        running = sched.submit(req(windows=10))
        assert sched.cancel(running.id)
        assert running.state is SessionState.CANCELLED
        assert not sched.busy
        follow = sched.submit(req(windows=1))
        sched.run_to_idle()
        assert follow.state is SessionState.COMPLETED

    def test_cancel_terminal_is_noop(self):
        sched = make()
        sess = sched.submit(req(windows=1))
        sched.run_to_idle()
        assert not sched.cancel(sess.id)
        assert sess.state is SessionState.COMPLETED

    def test_cancel_unknown_raises(self):
        with pytest.raises(ServerError):
            make().cancel(999)


class TestDeadlines:
    def test_deadline_fires_while_queued(self):
        sched = make()
        sched.submit(req(cpus=(0,), windows=5, window=0.1))
        doomed = sched.submit(req(cpus=(1,), deadline=0.2))
        sched.run_to_idle()
        assert doomed.state is SessionState.TIMED_OUT
        assert "deadline" in doomed.reason
        # Waited at least its deadline before expiring.
        assert doomed.queue_wait > 0.2

    def test_deadline_does_not_fire_once_granted(self):
        sched = make()
        ok = sched.submit(req(deadline=0.05, windows=5, window=0.1))
        sched.run_to_idle()
        assert ok.state is SessionState.COMPLETED

    def test_session_document_round_trip(self):
        sched = make()
        sess = sched.submit(req(windows=1, seed=3))
        sched.run_to_idle()
        doc = sess.as_dict()
        assert doc["state"] == "completed"
        assert doc["seed"] == 3
        assert doc["result"]["counts"]["0"]
