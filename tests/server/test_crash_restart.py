"""Server SIGKILL + WAL recovery, full stack.

The crash model matches PR 5's process kills: ``abort()`` tears the
listener and every handler task down mid-flight and crashes the node
schedulers, leaving hardware residue (machines, procs, locks, orphan
drivers).  ``recover_protocol`` must rebuild a serving stack on that
residue: pristine MSR state before anything runs, terminals adopted
bit-for-bit, running sessions fenced (never silently re-run), queued
sessions requeued under their original ids, and the idempotency
window restored so pre-crash retries still deduplicate.
"""

import asyncio

import pytest

from repro.agent.fleet import NodeSpec
from repro.server.client import ServerClient
from repro.server.protocol import ProtocolServer, recover_protocol
from repro.server.retry import RetryPolicy
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer
from repro.server.wal import K_GRANT, ServerWal
from repro.server.workload import (result_from_dict, results_identical,
                                   run_standalone)

RETRIES = RetryPolicy(max_attempts=12, backoff_base=0.001,
                      backoff_cap=0.2)


def _specs():
    return [NodeSpec(name="node000", arch="westmere_ep", seed=0)]


def _request(seed=0, windows=1, cpus=(0,)):
    return SessionRequest(node="node000", cpus=cpus, group="FLOPS_DP",
                          windows=windows, window=0.05, seed=seed)


async def _boot(wal, *, lease_limit=100.0):
    server = ReproServer.from_specs(_specs(), lease_limit=lease_limit,
                                    wal=wal)
    proto = ProtocolServer(server)
    host, port = await proto.start()
    return proto, host, port


async def _granted(wal):
    """Yield until the WAL shows a lease grant — the session is now
    running (and, with hundreds of windows ahead of it, will still be
    running when the very next thing we do is pull the plug)."""
    while not any(r.kind == K_GRANT for r in wal.scan().records):
        await asyncio.sleep(0)


async def _crash_and_recover(proto, wal, host, port, *,
                             lease_limit=100.0):
    residues = await proto.abort()
    new_proto = await recover_protocol(_specs(), wal,
                                       residues=residues,
                                       lease_limit=lease_limit)
    await new_proto.start(host, port)
    return new_proto, residues


class TestCrashRestart:
    def test_completed_sessions_are_adopted_verbatim(self):
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, retry=RETRIES)
            before = await client.submit(_request(seed=3))
            assert before["state"] == "completed"

            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                after = await client.wait(before["node"],
                                          before["session"])
                assert after == before
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_running_session_is_fenced_not_rerun(self):
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, retry=RETRIES)
            # Long enough that it is still running when we pull the
            # plug (lease limit is high: no preemption racing us).
            sub = await client.submit(_request(seed=1, windows=512),
                                      wait=False)
            sid = sub["session"]
            await _granted(wal)

            proto, residues = await _crash_and_recover(
                proto, wal, host, port)
            try:
                # The kill left a real orphaned driver behind.
                assert residues["node000"].orphans
                doc = await client.wait("node000", sid)
                assert doc["state"] == "preempted"
                assert "fenced by recovery" in doc["reason"]
                total = (await client.status())["total"]
                assert total["submitted"] == 1
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_queued_sessions_requeue_under_original_ids(self):
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, retry=RETRIES)
            # One long runner holds cpu 0's socket; two more queue
            # behind it on the same cpus.
            runner = await client.submit(_request(seed=1, windows=512),
                                         wait=False)
            queued = [await client.submit(_request(seed=2 + i),
                                          wait=False)
                      for i in range(2)]
            await _granted(wal)

            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                fenced = await client.wait("node000",
                                           runner["session"])
                assert fenced["state"] == "preempted"
                for sub in queued:
                    doc = await client.wait("node000", sub["session"])
                    assert doc["session"] == sub["session"]
                    assert doc["state"] == "completed"
                total = (await client.status())["total"]
                assert total["submitted"] == 3
                assert total["completed"] == 2
                assert total["preempted"] == 1
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_recovered_node_is_pristine_for_new_work(self):
        """The fence must restore MSR state before anything executes:
        a fresh session after recovery is bit-identical to running
        the same request on a never-crashed machine."""
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, retry=RETRIES)
            await client.submit(_request(seed=1, windows=512),
                                wait=False)
            await _granted(wal)

            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                doc = await client.submit(_request(seed=42))
                assert doc["state"] == "completed"
                alone = run_standalone(_request(seed=42),
                                       "westmere_ep")
                assert results_identical(
                    result_from_dict(doc["result"]), alone)
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_retried_submit_across_restart_deduplicates(self):
        """A client whose submit reply was lost in the crash retries
        after the restart; the restored dedup window must land the
        retry on the pre-crash session instead of executing twice."""
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, client_id="ret",
                                  retry=RETRIES)
            doc = {"op": "submit", "wait": False, "client": "ret",
                   "seq": 1, "node": "node000", "cpus": [0],
                   "group": "FLOPS_DP", "windows": 1, "window": 0.05,
                   "seed": 7}
            first = await client.call(dict(doc))
            assert first["ok"]

            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                retry = await client.call(dict(doc))
                assert retry["ok"]
                assert retry["deduplicated"] is True
                assert retry["session"] == first["session"]
                terminal = await client.wait("node000",
                                             first["session"])
                assert terminal["state"] in ("completed", "preempted")
                total = (await client.status())["total"]
                assert total["submitted"] == 1
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_ingest_dedup_survives_restart(self):
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            batch = {"node": "n0", "group": "MEM", "window": 0,
                     "time": 0.05, "duration": 0.05, "seq": 0,
                     "samples": [{"scope": "cpu", "id": 0,
                                  "metric": "CPI", "value": 1.0,
                                  "seq": 0}]}
            client = ServerClient(host, port, client_id="agent",
                                  retry=RETRIES)
            doc = {"op": "ingest", "batch": batch, "client": "agent",
                   "seq": 1}
            first = await client.call(dict(doc))
            assert first["accepted"] == 1

            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                replayed = await client.call(dict(doc))
                assert replayed["ok"]
                assert replayed["accepted"] == 1
                # The replay is served from the restored dedup window
                # without touching the (fresh, empty) aggregator: the
                # rollup died with the crash, but the batch is not
                # counted a second time.
                assert proto.ingested == 1
                assert proto.aggregator.total_samples == 0
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())

    def test_double_crash_double_recovery(self):
        """Recovery output is itself WAL-journaled: a second crash on
        the recovered incarnation classifies exactly."""
        async def body():
            wal = ServerWal()
            proto, host, port = await _boot(wal)
            client = ServerClient(host, port, retry=RETRIES)
            first = await client.submit(_request(seed=5))
            proto, _ = await _crash_and_recover(proto, wal, host, port)
            second = await client.submit(_request(seed=6))
            proto, _ = await _crash_and_recover(proto, wal, host, port)
            try:
                for doc in (first, second):
                    again = await client.wait("node000",
                                              doc["session"])
                    assert again["result"] == doc["result"]
                total = (await client.status())["total"]
                assert total["submitted"] == 2
                assert total["completed"] == 2
            finally:
                await client.close()
                await proto.close()
        asyncio.run(body())
