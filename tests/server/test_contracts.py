"""The ISSUE 9 concurrency contracts.

Four behaviors the server guarantees, each pinned exactly:

1. two sessions contending one socket serialize deterministically —
   same grant order and bit-identical results on every run;
2. a deadline timeout fires while the session is still queued;
3. a preempted session's MSR state recovers to pristine via
   write-ahead journal replay (the PR 5 machinery);
4. the deficit-fair queue bounds tenant skew under a 4-tenant
   saturated load.
"""

import pytest

from repro.hw.arch import create_machine
from repro.oskern.journal import state_mutating_addresses
from repro.server.scheduler import (NodeScheduler, SessionRequest,
                                    SessionState)
from repro.server.workload import results_identical, run_standalone

ARCH = "westmere_ep"


def snapshot(machine):
    """Every state-mutating register of every hwthread, by value."""
    addrs = sorted(state_mutating_addresses(machine.spec))
    return {(cpu, addr): machine.msr[cpu].peek(addr)
            for cpu in range(machine.num_hwthreads)
            for addr in addrs}


def contend_once():
    """Two sessions fighting over socket 0; returns terminal order
    and both results."""
    sched = NodeScheduler("n0", ARCH, lease_limit=10.0)
    order = []
    sched.on_terminal = lambda s: order.append((s.id, s.state.value))
    a = sched.submit(SessionRequest("n0", (0, 1), "FLOPS_DP",
                                    tenant="a", windows=3,
                                    window=0.1, seed=5))
    b = sched.submit(SessionRequest("n0", (1, 2), "MEM", tenant="b",
                                    windows=2, window=0.1, seed=6))
    assert a.state is SessionState.RUNNING
    assert b.state is SessionState.QUEUED
    sched.run_to_idle()
    return order, a, b


class TestDeterministicSerialization:
    def test_contenders_serialize(self):
        order, a, b = contend_once()
        assert order == [(a.id, "completed"), (b.id, "completed")]
        # b waited exactly a's three windows on the virtual clock.
        assert b.queue_wait == pytest.approx(0.3)

    def test_two_runs_are_bit_identical(self):
        order1, a1, b1 = contend_once()
        order2, a2, b2 = contend_once()
        assert order1 == order2
        assert results_identical(a1.result, a2.result)
        assert results_identical(b1.result, b2.result)

    def test_serialized_results_match_standalone(self):
        _, a, b = contend_once()
        for sess in (a, b):
            alone = run_standalone(sess.request, ARCH)
            assert results_identical(sess.result, alone)


class TestDeadlineWhileQueued:
    def test_timeout_fires_before_any_grant(self):
        sched = NodeScheduler("n0", ARCH, lease_limit=10.0)
        hog = sched.submit(SessionRequest("n0", (0,), "FLOPS_DP",
                                          windows=10, window=0.1))
        doomed = sched.submit(SessionRequest("n0", (1,), "MEM",
                                             deadline=0.25))
        sched.run_to_idle()
        assert hog.state is SessionState.COMPLETED
        assert doomed.state is SessionState.TIMED_OUT
        assert doomed.grant_clock is None       # never granted
        assert doomed.windows_run == 0
        assert doomed.result is None
        acc = sched.accounting()
        assert acc["timed_out"] == 1
        assert acc["completed"] + acc["timed_out"] == acc["submitted"]


class TestPreemptionRecoversPristine:
    def test_msr_state_replays_to_pristine(self):
        sched = NodeScheduler("n0", ARCH, lease_limit=0.25)
        pristine = snapshot(sched.machine)
        hog = sched.submit(SessionRequest("n0", (0, 1), "FLOPS_DP",
                                          windows=100, window=0.1))
        sched.run_to_idle()
        assert hog.state is SessionState.PREEMPTED
        assert snapshot(sched.machine) == pristine, \
            "preempted session left dirty MSR state"
        assert not sched.locks.held(), "preempted session leaked locks"

    def test_next_session_measures_clean_after_preemption(self):
        sched = NodeScheduler("n0", ARCH, lease_limit=0.25)
        sched.submit(SessionRequest("n0", (0,), "FLOPS_DP",
                                    windows=100, window=0.1, seed=1))
        after = sched.submit(SessionRequest("n0", (1,), "MEM",
                                            windows=2, window=0.1,
                                            seed=2))
        sched.run_to_idle()
        assert after.state is SessionState.COMPLETED
        alone = run_standalone(after.request, ARCH)
        assert results_identical(after.result, alone), \
            "post-preemption measurement differs from standalone"

    def test_preemption_reclaims_stale_locks(self):
        sched = NodeScheduler("n0", ARCH, lease_limit=0.25)
        spec = create_machine(ARCH).spec
        cpus = tuple(range(spec.num_hwthreads // spec.sockets))[:2]
        hog = sched.submit(SessionRequest("n0", cpus, "MEM",
                                          windows=100, window=0.1))
        assert sched.busy             # lease held
        sched.run_to_idle()
        assert hog.state is SessionState.PREEMPTED
        assert not sched.busy
        assert not sched.locks.held()


class TestFairnessBound:
    def test_skewed_tenants_stay_within_bound(self):
        """Four tenants, tenant0 offering 8× tenant3's load, all on
        one contended socket: deficit round-robin must keep realized
        service shares within a small constant of each other while
        every tenant stays backlogged."""
        sched = NodeScheduler("n0", ARCH, lease_limit=10.0,
                              max_queue=10_000)
        offered = {"tenant0": 32, "tenant1": 16, "tenant2": 8,
                   "tenant3": 4}
        for tenant, count in offered.items():
            for i in range(count):
                sched.submit(SessionRequest(
                    "n0", (0,), "FLOPS_DP", tenant=tenant,
                    windows=1, window=0.1, seed=i))
        sched.run_to_idle()
        acc = sched.accounting()
        assert acc["completed"] == sum(offered.values())
        service = {t: sched.queue.service(t) for t in offered}
        assert all(v > 0 for v in service.values())
        # While all four tenants were backlogged the scheduler must
        # alternate them evenly; the skew only shows after the light
        # tenants drain.  tenant3's 4 sessions all finish within the
        # first 16 grants => its service is within 8x of tenant0's
        # (pure FIFO would give tenant0 a full 32-session head start).
        assert max(service.values()) / min(service.values()) \
            <= len(offered) * 2 + 0.01

    def test_light_tenant_not_starved(self):
        """A light tenant arriving behind a heavy backlog is granted
        before the heavy tenant's queue drains."""
        sched = NodeScheduler("n0", ARCH, lease_limit=10.0,
                              max_queue=10_000)
        order = []
        sched.on_terminal = lambda s: order.append(s.tenant)
        for i in range(10):
            sched.submit(SessionRequest("n0", (0,), "FLOPS_DP",
                                        tenant="heavy", windows=1,
                                        window=0.1, seed=i))
        late = sched.submit(SessionRequest("n0", (0,), "MEM",
                                           tenant="light", windows=1,
                                           window=0.1))
        sched.run_to_idle()
        assert late.state is SessionState.COMPLETED
        position = order.index("light")
        assert position <= 2, \
            f"light tenant served {position} deep behind heavy backlog"
