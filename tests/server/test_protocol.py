"""Wire protocol, asyncio server and clients (ISSUE 9).

Everything here spins the real stack: ReproServer node tasks, the
JSON-lines TCP listener on an ephemeral port, and the async/sync
clients connecting through the loopback.  Tests run the event loop
via ``asyncio.run`` — no plugin needed.
"""

import asyncio
import math

import pytest

from repro.agent.batch import AgentSample, SampleBatch
from repro.agent.fleet import NodeSpec
from repro.errors import ServerError
from repro.server.client import (ServerClient, SyncServerClient,
                                 parse_endpoint)
from repro.server.ingest import batch_from_dict, batch_to_dict
from repro.server.protocol import (ProtocolServer, request_from_dict,
                                   request_to_dict)
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer


def specs(n=2, arch="westmere_ep"):
    return [NodeSpec(name=f"node{i:03d}", arch=arch, seed=i)
            for i in range(n)]


def with_stack(coro_factory, *, nodes=2, lease_limit=10.0):
    """Boot server + listener, run the coroutine, tear down."""
    async def runner():
        server = ReproServer.from_specs(specs(nodes),
                                        lease_limit=lease_limit)
        proto = ProtocolServer(server)
        host, port = await proto.start()
        try:
            return await coro_factory(proto, host, port)
        finally:
            await proto.close()
    return asyncio.run(runner())


class TestRequestRoundTrip:
    def test_round_trip_is_exact(self):
        req = SessionRequest("n0", (0, 3), "MEM", tenant="t",
                             windows=5, window=0.25, deadline=1.5,
                             seed=9)
        assert request_from_dict(request_to_dict(req)) == req

    def test_defaults_fill_in(self):
        req = request_from_dict({"node": "n0", "cpus": [0],
                                 "group": "MEM"})
        assert req.tenant == "default"
        assert req.windows == 1
        assert req.deadline is None

    def test_missing_fields_raise(self):
        with pytest.raises(ServerError):
            request_from_dict({"node": "n0"})


class TestBatchRoundTrip:
    def make_batch(self, value=2.5):
        sample = AgentSample("n0", "MEM", 3, 1.5, "cpu", 0,
                             "MBytes/s", value, seq=7)
        return SampleBatch("n0", "MEM", 3, 1.5, 0.5, (sample,), seq=2)

    def test_round_trip_is_exact(self):
        batch = self.make_batch()
        assert batch_from_dict(batch_to_dict(batch)) == batch

    def test_nan_survives_the_wire(self):
        batch = self.make_batch(value=math.nan)
        back = batch_from_dict(batch_to_dict(batch))
        assert math.isnan(back.samples[0].value)

    def test_malformed_batch_raises(self):
        with pytest.raises(ServerError):
            batch_from_dict({"node": "n0"})


class TestEndpointParsing:
    def test_host_port(self):
        assert parse_endpoint("127.0.0.1:7710") == ("127.0.0.1", 7710)

    def test_bad_endpoints(self):
        for text in ("nohost", ":123", "h:notaport"):
            with pytest.raises(ServerError):
                parse_endpoint(text)


class TestProtocolOverTcp:
    def test_ping_lists_nodes(self):
        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                return await client.ping()
        reply = with_stack(go)
        assert reply["server"] == "likwid-server"
        assert reply["nodes"] == ["node000", "node001"]

    def test_submit_wait_and_status(self):
        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                doc = await client.submit(SessionRequest(
                    "node000", (0, 1), "FLOPS_DP", windows=2,
                    window=0.1, seed=4))
                status = await client.status()
                return doc, status
        doc, status = with_stack(go)
        assert doc["state"] == "completed"
        assert doc["windows_run"] == 2
        assert doc["result"]["counts"]["0"]
        assert status["total"]["completed"] == 1
        assert status["total"]["submitted"] == 1

    def test_submit_nowait_then_wait(self):
        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                first = await client.submit(SessionRequest(
                    "node000", (0,), "MEM"), wait=False)
                return await client.wait("node000", first["session"])
        doc = with_stack(go)
        assert doc["state"] == "completed"

    def test_unknown_node_is_an_error_reply(self):
        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                with pytest.raises(ServerError, match="unknown node"):
                    await client.submit(SessionRequest(
                        "nope", (0,), "MEM"))
                return await client.ping()   # connection survives
        assert with_stack(go)["ok"]

    def test_unknown_op_and_bad_json(self):
        async def go(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "frobnicate"}\n')
            writer.write(b'this is not json\n')
            await writer.drain()
            import json
            bad_op = json.loads(await reader.readline())
            bad_json = json.loads(await reader.readline())
            writer.close()
            return bad_op, bad_json
        bad_op, bad_json = with_stack(go)
        assert not bad_op["ok"]
        assert "unknown op" in bad_op["error"]
        assert not bad_json["ok"]

    def test_cancel_queued_session(self):
        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                await client.submit(SessionRequest(
                    "node000", (0,), "FLOPS_DP", windows=50,
                    window=0.1), wait=False)
                queued = await client.submit(SessionRequest(
                    "node000", (1,), "MEM"), wait=False)
                reply = await client.cancel("node000",
                                            queued["session"])
                doc = await client.wait("node000", queued["session"])
                return reply, doc
        reply, doc = with_stack(go)
        assert doc["state"] in ("cancelled", "completed")

    def test_ingest_feeds_the_aggregator(self):
        sample = AgentSample("ext0", "MEM", 0, 0.5, "cpu", 0,
                             "MBytes/s", 125.0)
        batch = SampleBatch("ext0", "MEM", 0, 0.5, 0.5, (sample,))

        async def go(proto, host, port):
            async with ServerClient(host, port) as client:
                reply = await client.call(
                    {"op": "ingest", "batch": batch_to_dict(batch)})
                status = await client.status()
            return reply, proto.aggregator.node_samples("ext0"), status
        reply, ingested, status = with_stack(go)
        assert reply["ok"] and reply["accepted"] == 1
        assert ingested == 1
        assert status["ingested"] == 1

    def test_sync_client_round_trip(self):
        async def go(proto, host, port):
            def blocking():
                with SyncServerClient(host, port) as client:
                    doc = client.submit(SessionRequest(
                        "node001", (0,), "BRANCH", windows=1))
                    return doc, client.status()
            return await asyncio.get_running_loop() \
                .run_in_executor(None, blocking)
        doc, status = with_stack(go)
        assert doc["state"] == "completed"
        assert status["total"]["completed"] == 1

    def test_concurrent_clients_share_one_node(self):
        async def go(proto, host, port):
            async def one(i):
                async with ServerClient(host, port) as client:
                    return await client.submit(SessionRequest(
                        "node000", (i % 4,), "FLOPS_DP", windows=1,
                        window=0.05, seed=i, tenant=f"t{i % 2}"))
            docs = await asyncio.gather(*[one(i) for i in range(12)])
            return docs, proto.server.status()
        docs, status = with_stack(go)
        assert all(d["state"] == "completed" for d in docs)
        assert status["total"]["submitted"] == 12
        assert status["total"]["completed"] == 12
