"""Client-side robustness: close semantics, retry loop, deadlines.

Includes the regression tests for the two ``close()`` satellite
fixes: the async client must ``await writer.wait_closed()`` (dropping
the reference loses buffered data and leaks the transport until GC),
and the sync client must not leak its socket when the buffered file
wrapper's ``close()`` raises mid-flush.
"""

import asyncio
import random
import socket

import pytest

from repro.agent.fleet import NodeSpec
from repro.errors import ServerError
from repro.server.client import ServerClient, SyncServerClient
from repro.server.protocol import ProtocolServer
from repro.server.retry import (NO_RETRY, RetryPolicy, retryable,
                                TRANSPORT_ERRORS)
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer


def _specs():
    return [NodeSpec(name="node000", arch="westmere_ep", seed=0)]


def with_stack(coro_factory):
    async def runner():
        server = ReproServer.from_specs(_specs(), lease_limit=10.0)
        proto = ProtocolServer(server)
        host, port = await proto.start()
        try:
            return await coro_factory(proto, host, port)
        finally:
            await proto.close()
    return asyncio.run(runner())


class TestAsyncClose:
    def test_close_waits_for_transport(self):
        """Regression: close() must call wait_closed(), not just drop
        the writer."""
        closed = {"waited": False}

        async def body(proto, host, port):
            client = ServerClient(host, port)
            await client.connect()
            writer = client._writer
            orig = writer.wait_closed

            async def spying_wait_closed():
                closed["waited"] = True
                await orig()
            writer.wait_closed = spying_wait_closed
            await client.close()
            assert client._writer is None and client._reader is None
        with_stack(body)
        assert closed["waited"]

    def test_close_is_idempotent_and_safe_unconnected(self):
        async def body(proto, host, port):
            client = ServerClient(host, port)
            await client.close()            # never connected
            await client.connect()
            await client.close()
            await client.close()            # double close
        with_stack(body)

    def test_close_absorbs_transport_errors(self):
        async def body(proto, host, port):
            client = ServerClient(host, port)
            await client.connect()

            class Exploding:
                def close(self):
                    raise ConnectionResetError("already gone")

                async def wait_closed(self):
                    raise AssertionError("unreachable")
            client._writer = Exploding()
            await client.close()            # must not raise
            assert client._writer is None
        with_stack(body)


class TestSyncClose:
    def test_close_survives_failing_file_flush(self):
        """Regression: a failing buffered flush in file.close() must
        never leak the socket."""
        async def body(proto, host, port):
            def check():
                client = SyncServerClient(host, port)
                client.connect()
                sock = client._sock

                class ExplodingFile:
                    def close(self):
                        raise OSError("flush failed")
                client._file = ExplodingFile()
                client.close()              # must not raise
                assert client._sock is None
                # The real socket was closed despite the file error.
                assert sock.fileno() == -1
            await asyncio.to_thread(check)
        with_stack(body)

    def test_close_idempotent(self):
        client = SyncServerClient("127.0.0.1", 1)    # never connected
        client.close()
        client.close()


class _FlakyServer:
    """A raw TCP server that kills the first N connections before
    replying, then behaves."""

    def __init__(self, failures: int,
                 reply: bytes = b'{"ok": true, "pong": 1}\n'):
        self.failures = failures
        self.reply = reply
        self.connections = 0
        self._server = None

    async def handle(self, reader, writer):
        self.connections += 1
        await reader.readline()
        if self.connections <= self.failures:
            writer.transport.abort()
            return
        writer.write(self.reply)
        await writer.drain()
        writer.close()

    async def __aenter__(self):
        self._server = await asyncio.start_server(self.handle,
                                                  "127.0.0.1", 0)
        return self._server.sockets[0].getsockname()

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()


class TestRetryLoop:
    def test_retries_ride_out_transient_failures(self):
        async def body():
            flaky = _FlakyServer(failures=2)
            async with flaky as (host, port):
                client = ServerClient(
                    host, port, retry=RetryPolicy(
                        max_attempts=5, backoff_base=0.0001,
                        backoff_cap=0.001))
                try:
                    reply = await client.call({"op": "ping"})
                    assert reply["ok"]
                    assert client.retries == 2
                finally:
                    await client.close()
        asyncio.run(body())

    def test_no_retry_policy_fails_fast(self):
        async def body():
            flaky = _FlakyServer(failures=1)
            async with flaky as (host, port):
                client = ServerClient(host, port, retry=NO_RETRY)
                try:
                    with pytest.raises(ServerError) as exc:
                        await client.call({"op": "ping"})
                    assert exc.value.code == "retries-exhausted"
                    assert flaky.connections == 1
                finally:
                    await client.close()
        asyncio.run(body())

    def test_exhaustion_has_stable_code(self):
        async def body():
            flaky = _FlakyServer(failures=99)
            async with flaky as (host, port):
                client = ServerClient(
                    host, port, retry=RetryPolicy(
                        max_attempts=3, backoff_base=0.0001,
                        backoff_cap=0.001))
                try:
                    with pytest.raises(ServerError) as exc:
                        await client.call({"op": "ping"})
                    assert exc.value.code == "retries-exhausted"
                    assert client.retries == 3
                finally:
                    await client.close()
        asyncio.run(body())

    def test_fatal_error_replies_are_not_retried(self):
        async def body(proto, host, port):
            client = ServerClient(host, port)
            try:
                # call() returns fatal error replies (they are
                # terminal); only the typed verbs raise.
                reply = await client.call({"op": "warp"})
                assert reply["ok"] is False
                assert reply["code"] == "unknown-op"
                assert reply["retryable"] is False
                assert client.retries == 0
            finally:
                await client.close()
        with_stack(body)

    def test_sync_client_retries_too(self):
        async def body():
            flaky = _FlakyServer(failures=2)
            async with flaky as (host, port):
                def check():
                    client = SyncServerClient(
                        host, port, retry=RetryPolicy(
                            max_attempts=5, backoff_base=0.0001,
                            backoff_cap=0.001))
                    try:
                        reply = client.call({"op": "ping"})
                        assert reply["ok"]
                        assert client.retries == 2
                    finally:
                        client.close()
                await asyncio.to_thread(check)
        asyncio.run(body())


class TestDeadlines:
    def test_call_deadline_on_silent_server(self):
        async def body():
            async def mute(reader, writer):
                await reader.readline()
                await asyncio.sleep(3600)
            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()
            client = ServerClient(host, port)
            try:
                with pytest.raises(ServerError) as exc:
                    await client.call({"op": "ping"}, deadline=0.2)
                assert exc.value.code == "deadline-exceeded"
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
        asyncio.run(body())

    def test_deadline_exceeded_is_not_retried(self):
        async def body():
            async def mute(reader, writer):
                await reader.readline()
                await asyncio.sleep(3600)
            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()
            client = ServerClient(
                host, port, deadline=0.2,
                retry=RetryPolicy(max_attempts=50,
                                  backoff_base=0.0001,
                                  backoff_cap=0.001))
            try:
                with pytest.raises(ServerError) as exc:
                    await client.ping()
                assert exc.value.code == "deadline-exceeded"
                # The budget bounds the whole call: a handful of
                # attempts at most, never the full 50.
                assert client.retries < 50
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
        asyncio.run(body())

    def test_sync_deadline(self):
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        client = SyncServerClient(host, port, timeout=0.05)
        try:
            with pytest.raises(ServerError) as exc:
                client.call({"op": "ping"}, deadline=0.2)
            assert exc.value.code == "deadline-exceeded"
        finally:
            client.close()
            listener.close()


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=10, backoff_base=0.01,
                             backoff_cap=0.05, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(r, rng) for r in range(6)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.01)
        assert delays[-1] == pytest.approx(0.05)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_cap=1.0,
                             jitter=0.5)
        a = [policy.delay(2, random.Random(7)) for _ in range(5)]
        b = [policy.delay(2, random.Random(7)) for _ in range(5)]
        assert a == b                       # same rng, same jitter
        for delay in a:
            assert 0.04 <= delay <= 0.04 * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_retryable_classification(self):
        assert retryable(ConnectionResetError("x"))
        assert retryable(TimeoutError("x"))
        assert retryable(EOFError("x"))
        assert retryable(ServerError("x", retryable=True))
        assert not retryable(ServerError("x", code="bad-request"))
        assert not retryable(ValueError("x"))
        for kind in TRANSPORT_ERRORS:
            assert issubclass(kind, Exception)


class TestErrorCodes:
    def test_stable_codes_via_client_surface(self):
        async def body(proto, host, port):
            client = ServerClient(host, port)
            try:
                # Raw call() returns fatal error replies verbatim —
                # the wire code is the contract.
                for doc, code in [
                        ({"op": "warp"}, "unknown-op"),
                        ({"op": "submit", "node": "node000",
                          "cpus": "zero"}, "bad-request"),
                        ({"op": "wait", "node": "ghost",
                          "session": 1}, "unknown-node"),
                        ({"op": "wait", "node": "node000",
                          "session": 99}, "unknown-session")]:
                    reply = await client.call(doc)
                    assert reply["ok"] is False
                    assert reply["code"] == code
                    assert reply["retryable"] is False
            finally:
                await client.close()
        with_stack(body)

    def test_verbs_raise_typed_errors(self):
        async def body(proto, host, port):
            client = ServerClient(host, port)
            try:
                with pytest.raises(ServerError) as exc:
                    await client.wait("ghost", 1)
                assert exc.value.code == "unknown-node"
                assert not exc.value.retryable
                with pytest.raises(ServerError) as exc:
                    await client.wait("node000", 99)
                assert exc.value.code == "unknown-session"
            finally:
                await client.close()
        with_stack(body)

    def test_invalid_requests_become_rejected_sessions(self):
        """Shape-valid but semantically impossible submissions are
        *admitted and rejected* — a terminal state, so the accounting
        stays exact — rather than surfaced as protocol errors."""
        async def body(proto, host, port):
            client = ServerClient(host, port)
            try:
                doc = await client.submit(SessionRequest(
                    node="node000", cpus=(9999,), group="FLOPS_DP"))
                assert doc["state"] == "rejected"
                assert "cpu set" in doc["reason"]
            finally:
                await client.close()
        with_stack(body)

    def test_draining_server_is_retryable(self):
        async def body(proto, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            proto._draining = True
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            import json
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert reply["code"] == "shutting-down"
            assert reply["retryable"] is True
            writer.close()
            await writer.wait_closed()
        with_stack(body)
