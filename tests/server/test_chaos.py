"""ChaosPlan parsing/determinism and chaos-hardened stack runs.

Every test here drives the *real* stack — ReproServer node tasks,
TCP listener, retrying clients — with seeded network faults armed
client-side, and asserts the server plane's invariants hold anyway:
exact terminal accounting, no double execution, idempotent retries.
The integration-marked acceptance test at the bottom is the PR's
headline: 1000 sessions under full chaos + msr read faults + one
mid-run SIGKILL/restart, reconciled exactly.
"""

import asyncio

import pytest

from repro.agent.fleet import NodeSpec
from repro.errors import ChaosError
from repro.server.chaos import (DELIVER, DUPLICATE, TORN_REQUEST,
                                ChaosPlan)
from repro.server.client import ServerClient
from repro.server.loadtest import LoadTestConfig, run_load_test
from repro.server.protocol import ProtocolServer
from repro.server.retry import RetryPolicy
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer

RETRIES = RetryPolicy(max_attempts=10, backoff_base=0.0005,
                      backoff_cap=0.01)


class TestPlanParsing:
    def test_aliases_map_to_rate_fields(self):
        plan = ChaosPlan.from_string(
            "seed=3,refuse=0.1,drop_request=0.2,drop_reply=0.3,"
            "torn_reply=0.4,duplicate=0.5,delay=0.6")
        assert plan.seed == 3
        assert plan.refuse_rate == 0.1
        assert plan.drop_request_rate == 0.2
        assert plan.drop_reply_rate == 0.3
        assert plan.torn_reply_rate == 0.4
        assert plan.duplicate_rate == 0.5
        assert plan.delay_rate == 0.6

    def test_canonical_names_and_hex_seed(self):
        plan = ChaosPlan.from_string("seed=0x10,drop_reply_rate=0.25")
        assert plan.seed == 16
        assert plan.drop_reply_rate == 0.25

    def test_empty_segments_tolerated(self):
        plan = ChaosPlan.from_string("refuse=0.5,,")
        assert plan.refuse_rate == 0.5

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChaosPlan.from_string("refuse=0.1,refuse_rate=0.2")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos key"):
            ChaosPlan.from_string("explode=1.0")

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            ChaosPlan.from_string("refuse")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ChaosPlan.from_string("refuse=1.5")
        with pytest.raises(ValueError):
            ChaosPlan(drop_reply_rate=-0.1)

    def test_active_only_with_nonzero_rate(self):
        assert not ChaosPlan().active
        assert not ChaosPlan(seed=7).active
        assert ChaosPlan(duplicate_rate=0.01).active


class TestDeterminism:
    def test_same_stream_id_same_fault_sequence(self):
        plan = ChaosPlan(seed=11, drop_request_rate=0.3,
                         duplicate_rate=0.3, drop_reply_rate=0.2,
                         torn_reply_rate=0.2)
        a = plan.arm("client-x")
        b = plan.arm("client-x")
        fates = [(a.request_fate(), a.reply_fate()) for _ in range(200)]
        assert fates == [(b.request_fate(), b.reply_fate())
                         for _ in range(200)]
        assert a.injected == b.injected

    def test_different_stream_ids_diverge(self):
        plan = ChaosPlan(seed=11, drop_request_rate=0.5)
        a = plan.arm("client-x")
        b = plan.arm("client-y")
        assert [a.request_fate() for _ in range(64)] \
            != [b.request_fate() for _ in range(64)]

    def test_tear_is_a_strict_prefix(self):
        state = ChaosPlan(seed=1, drop_request_rate=1.0).arm("s")
        data = b'{"op": "ping"}\n'
        for _ in range(50):
            torn = state.tear(data)
            assert len(torn) < len(data)
            assert data.startswith(torn)
        assert state.tear(b"x") == b""

    def test_injections_are_counted_per_kind(self):
        state = ChaosPlan(seed=1, duplicate_rate=1.0).arm("s")
        for _ in range(3):
            assert state.request_fate() == DUPLICATE
        assert state.injected == {"duplicated": 3}


def _specs(n=1):
    return [NodeSpec(name=f"node{i:03d}", arch="westmere_ep", seed=i)
            for i in range(n)]


def _request(i=0, windows=1):
    return SessionRequest(node="node000", cpus=(0,), group="FLOPS_DP",
                          windows=windows, window=0.05, seed=i)


def with_chaotic_stack(coro_factory, plan, *, retry=RETRIES):
    """Boot the stack, hand the coroutine a chaos-armed client."""
    async def runner():
        server = ReproServer.from_specs(_specs(), lease_limit=10.0)
        proto = ProtocolServer(server)
        host, port = await proto.start()
        client = ServerClient(host, port, client_id="chaos-t",
                              retry=retry, chaos=plan)
        try:
            return await coro_factory(proto, client)
        finally:
            await client.close()
            await proto.close()
    return asyncio.run(runner())


class TestChaoticStack:
    """One fault kind at a time, against the live stack."""

    @pytest.mark.parametrize("kind,plan", [
        ("torn_request", ChaosPlan(seed=5, drop_request_rate=0.4)),
        ("duplicated", ChaosPlan(seed=5, duplicate_rate=0.4)),
        ("dropped_reply", ChaosPlan(seed=5, drop_reply_rate=0.4)),
        ("torn_reply", ChaosPlan(seed=5, torn_reply_rate=0.4)),
        ("delayed", ChaosPlan(seed=5, delay_rate=0.4, delay_s=0.0001)),
    ])
    def test_submits_survive_one_fault_kind(self, kind, plan):
        async def body(proto, client):
            docs = [await client.submit(_request(i)) for i in range(8)]
            assert all(d["state"] == "completed" for d in docs)
            status = await client.status()
            return docs, status, dict(client.chaos.injected)

        docs, status, injected = with_chaotic_stack(
            lambda proto, client: body(proto, client), plan)
        # No double execution: the server admitted exactly one session
        # per logical submission, whatever the weather.
        assert status["total"]["submitted"] == 8
        assert status["total"]["completed"] == 8
        # The seeded plan actually fired (rate 0.4 over >= 8 calls).
        assert injected.get(kind, 0) > 0

    def test_refused_connects_are_retried(self):
        plan = ChaosPlan(seed=2, refuse_rate=0.5)

        async def body(proto, client):
            doc = await client.submit(_request())
            assert doc["state"] == "completed"
            return dict(client.chaos.injected), client.retries

        injected, retries = with_chaotic_stack(
            lambda proto, client: body(proto, client), plan)
        assert injected.get("refused", 0) > 0
        assert retries >= injected["refused"]

    def test_duplicate_deliveries_hit_the_dedup_window(self):
        plan = ChaosPlan(seed=9, duplicate_rate=1.0)

        async def body(proto, client):
            docs = [await client.submit(_request(i)) for i in range(4)]
            assert all(d["state"] == "completed" for d in docs)
            return proto, (await client.status())["total"]

        proto, total = with_chaotic_stack(
            lambda proto, client: body(proto, client), plan)
        # Every submit line arrived twice; the second delivery must be
        # served from the dedup window, not executed again.
        assert total["submitted"] == 4
        assert proto.dedup_hits >= 4

    def test_dropped_replies_do_not_double_execute(self):
        plan = ChaosPlan(seed=4, drop_reply_rate=0.5)

        async def body(proto, client):
            docs = [await client.submit(_request(i)) for i in range(6)]
            sids = [(d["node"], d["session"]) for d in docs]
            assert len(set(sids)) == len(sids)
            return (await client.status())["total"], client.retries

        total, retries = with_chaotic_stack(
            lambda proto, client: body(proto, client), plan)
        assert total["submitted"] == 6
        assert retries > 0

    def test_unarmed_client_raises_no_chaos(self):
        async def runner():
            server = ReproServer.from_specs(_specs(), lease_limit=10.0)
            proto = ProtocolServer(server)
            host, port = await proto.start()
            client = ServerClient(host, port, chaos=ChaosPlan(seed=1))
            try:
                assert client.chaos is None     # inactive plan
                doc = await client.submit(_request())
                assert doc["state"] == "completed"
            finally:
                await client.close()
                await proto.close()
        asyncio.run(runner())

    def test_chaos_error_is_retryable(self):
        err = ChaosError("boom", kind="torn-request")
        assert err.retryable
        assert err.code == "chaos-torn-request"


FULL_CHAOS = ("refuse=0.05,drop_request=0.05,drop_reply=0.05,"
              "torn_reply=0.05,duplicate=0.1")


class TestChaoticLoadTest:
    def test_small_chaotic_load_test_reconciles(self):
        report = run_load_test(LoadTestConfig(
            sessions=40, clients=8, nodes=2, seed=13,
            chaos=FULL_CHAOS))
        assert report.accounting_errors() == []
        assert report.retries > 0
        assert report.chaos          # something fired

    def test_chaos_spec_reuses_config_seed(self):
        # Two runs, same seed: identical per-client fault injection.
        reports = [run_load_test(LoadTestConfig(
            sessions=30, clients=6, nodes=2, seed=21,
            chaos="duplicate=0.2")) for _ in range(2)]
        assert reports[0].chaos == reports[1].chaos
        assert reports[0].accounting_errors() == []

    @pytest.mark.integration
    def test_acceptance_1000_sessions_chaos_faults_and_kill(self):
        """The PR's acceptance bar: 1000 sessions, 100 clients, full
        chaos, 10% msr read faults, one mid-run SIGKILL + WAL
        recovery — exact accounting, zero duplicate executions, and a
        sampled bit-identity replay."""
        report = run_load_test(LoadTestConfig(
            sessions=1000, clients=100, nodes=8, tenants=4, seed=0,
            faults="read_fault_rate=0.1", chaos=FULL_CHAOS,
            kill_after=300))
        assert report.server_restarts == 1
        assert report.retries > 0
        assert report.dedup_hits > 0
        for kind in ("refused", "torn_request", "dropped_reply",
                     "torn_reply", "duplicated"):
            assert report.chaos.get(kind, 0) > 0, kind
        assert report.verify(sample=25) == []
