"""ServerWal codec, damage handling and replay classification.

The WAL follows the PR 5 journal contract: CRC32 per record, torn
tail truncated, mid-log damage raises (mis-restoring is worse than
not restoring) — applied to variable-length JSON records.
"""

import struct

import pytest

from repro.errors import JournalCorruptError, JournalError
from repro.server.wal import (HEADER, K_ADMIT, K_GRANT, K_INGEST,
                              K_INTENT, K_TERMINAL, MAGIC, ServerWal,
                              WalRecord)

REQ = {"node": "node000", "cpus": [0], "group": "FLOPS_DP",
       "tenant": "default", "windows": 1, "window": 0.05,
       "deadline": None, "seed": 0}


def terminal_doc(session, state="completed"):
    return dict(REQ, session=session, state=state)


class TestCodec:
    def test_record_round_trip(self):
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 1)
        wal.record_grant("node000", 1)
        wal.record_terminal("node000", terminal_doc(1))
        wal.record_ingest("c:2", 16)
        records = wal.scan().records
        assert [r.kind for r in records] == [
            K_INTENT, K_ADMIT, K_GRANT, K_TERMINAL, K_INGEST]
        assert [r.seq for r in records] == [0, 1, 2, 3, 4]
        assert records[0].doc == {"intent": 1, "key": "c:1",
                                  "req": REQ}
        assert records[4].doc == {"key": "c:2", "accepted": 16}
        assert wal.record_count == 5

    def test_kind_names(self):
        assert WalRecord(0, K_GRANT, {}).kind_name == "grant"
        assert WalRecord(0, 99, {}).kind_name == "kind99"

    def test_empty_wal(self):
        wal = ServerWal()
        assert wal.scan().empty
        assert wal.replay().empty
        assert wal.record_count == 0

    def test_intent_ids_are_unique_and_monotonic(self):
        wal = ServerWal()
        ids = [wal.record_intent(None, REQ) for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestFileBacked:
    def test_reopen_resumes_seq_and_intent(self, tmp_path):
        path = tmp_path / "server.wal"
        wal = ServerWal(path)
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 1)

        again = ServerWal(path)
        assert again.record_count == 2
        # New appends continue both counters past the old log.
        assert again.record_intent("c:2", REQ) == intent + 1
        assert again.scan().records[-1].seq == 2

    def test_bad_magic_raises_corrupt(self, tmp_path):
        path = tmp_path / "server.wal"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(JournalCorruptError, match="bad magic"):
            ServerWal(path)

    def test_future_format_version_refused(self, tmp_path):
        path = tmp_path / "server.wal"
        path.write_bytes(MAGIC + struct.pack("<HH", 99, 0))
        with pytest.raises(JournalError, match="v99"):
            ServerWal(path)

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "server.wal"
        wal = ServerWal(path)
        wal.record_intent(None, REQ)
        assert path.exists()
        wal.clear()
        assert not path.exists()
        assert wal.record_count == 0


class TestDamage:
    def _populated(self):
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 1)
        wal.record_grant("node000", 1)
        return wal

    def test_torn_tail_is_truncated(self):
        wal = self._populated()
        del wal.buffer[-7:]          # tear the last record mid-CRC
        scan = wal.scan()
        assert [r.kind for r in scan.records] == [K_INTENT, K_ADMIT]
        assert scan.torn_bytes > 0
        # The image was rewritten without the torn bytes: a second
        # scan is clean.
        assert wal.scan().torn_bytes == 0

    def test_mid_log_corruption_raises(self):
        wal = self._populated()
        # Flip a payload byte of the *first* record: valid records
        # follow, so this is damage, not a torn append.
        wal.buffer[len(HEADER) + 8] ^= 0xFF
        with pytest.raises(JournalCorruptError, match="corrupt"):
            wal.scan()

    def test_torn_tail_survives_reopen(self, tmp_path):
        path = tmp_path / "server.wal"
        wal = ServerWal(path)
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 1)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        again = ServerWal(path)
        assert again.record_count == 1
        # Appends after the truncation keep the log scannable.
        again.record_grant("node000", 1)
        assert again.record_count == 2


class TestReplay:
    def test_intent_without_admit_requeues_fresh(self):
        wal = ServerWal()
        wal.record_intent("c:1", REQ)
        replay = wal.replay()
        assert replay.requeue_intended == [(REQ, "c:1")]
        assert not replay.terminals and not replay.fenced \
            and not replay.requeue_admitted
        assert replay.dedup == {}

    def test_admit_without_grant_requeues_preserved_id(self):
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 7)
        replay = wal.replay()
        assert replay.requeue_admitted == [("node000", 7, REQ, "c:1")]
        assert replay.requeue_intended == []
        assert replay.dedup == {"c:1": ("node000", 7)}

    def test_grant_without_terminal_is_fenced(self):
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 7)
        wal.record_grant("node000", 7)
        replay = wal.replay()
        assert replay.fenced == [("node000", 7, REQ)]
        assert replay.requeue_admitted == []

    def test_terminal_is_adopted(self):
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_admit(intent, "node000", 7)
        wal.record_grant("node000", 7)
        doc = terminal_doc(7)
        wal.record_terminal("node000", doc)
        replay = wal.replay()
        assert replay.terminals == [("node000", 7, doc)]
        assert not replay.fenced
        assert replay.dedup == {"c:1": ("node000", 7)}

    def test_grant_before_admit_still_classifies(self):
        # ADMIT is written atomically with session creation, which can
        # happen *after* a synchronous immediate grant hit the log —
        # replay must not depend on record order.
        wal = ServerWal()
        intent = wal.record_intent("c:1", REQ)
        wal.record_grant("node000", 7)
        wal.record_admit(intent, "node000", 7)
        replay = wal.replay()
        assert replay.fenced == [("node000", 7, REQ)]
        assert replay.requeue_intended == []

    def test_keyless_submissions_replay_without_dedup(self):
        wal = ServerWal()
        intent = wal.record_intent(None, REQ)
        wal.record_admit(intent, "node000", 3)
        replay = wal.replay()
        assert replay.requeue_admitted == [("node000", 3, REQ, None)]
        assert replay.dedup == {}

    def test_ingest_records_replay_in_order(self):
        wal = ServerWal()
        wal.record_ingest("a:1", 8)
        wal.record_ingest(None, 4)
        assert wal.replay().ingest == [("a:1", 8), (None, 4)]

    def test_mixed_log_classifies_every_session(self):
        wal = ServerWal()
        docs = {}
        for sid, fate in enumerate(("terminal", "fenced", "admitted",
                                    "intended"), start=1):
            key = f"c:{sid}"
            intent = wal.record_intent(key, dict(REQ, seed=sid))
            if fate == "intended":
                continue
            wal.record_admit(intent, "node000", sid)
            if fate == "admitted":
                continue
            wal.record_grant("node000", sid)
            if fate == "terminal":
                docs[sid] = terminal_doc(sid)
                wal.record_terminal("node000", docs[sid])
        replay = wal.replay()
        assert replay.terminals == [("node000", 1, docs[1])]
        assert replay.fenced == [("node000", 2, dict(REQ, seed=2))]
        assert replay.requeue_admitted == [
            ("node000", 3, dict(REQ, seed=3), "c:3")]
        assert replay.requeue_intended == [(dict(REQ, seed=4), "c:4")]
        assert set(replay.dedup) == {"c:1", "c:2", "c:3"}
