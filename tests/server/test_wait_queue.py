"""FairWaitQueue and waitable socket acquisition (ISSUE 9).

The wait queue is the scheduler's fairness core: deficit round-robin
across tenants, FIFO within a tenant, bounded-bypass aging for
multi-socket requests, and deadline expiry.  Everything here runs in
the caller's virtual clock domain — no real time anywhere.
"""

import pytest

from repro.errors import SocketLockError
from repro.oskern.locks import FairWaitQueue, SocketLockTable
from repro.oskern.proc import SimProcessTable


def drain(queue, busy=frozenset(), now=0.0):
    granted = []
    while True:
        waiter = queue.grant_next(set(busy), now)
        if waiter is None:
            return granted
        granted.append(waiter)


class TestPickOrder:
    def test_fifo_within_one_tenant(self):
        q = FairWaitQueue()
        a = q.enqueue((0,), tenant="t")
        b = q.enqueue((0,), tenant="t")
        c = q.enqueue((1,), tenant="t")
        assert drain(q) == [a, b, c]

    def test_least_served_tenant_wins(self):
        q = FairWaitQueue()
        q.charge("heavy", 10.0)
        first = q.enqueue((0,), tenant="heavy")
        second = q.enqueue((1,), tenant="light")
        # light has consumed nothing — it overtakes the earlier arrival
        assert drain(q) == [second, first]

    def test_charges_accumulate(self):
        q = FairWaitQueue()
        q.charge("t", 1.5)
        q.charge("t", 0.5)
        assert q.service("t") == 2.0
        assert q.service("other") == 0.0

    def test_busy_sockets_are_skipped(self):
        q = FairWaitQueue()
        blocked = q.enqueue((0,), tenant="a")
        runnable = q.enqueue((1,), tenant="a")
        assert q.grant_next({0}) is runnable
        assert q.grant_next({0}) is None
        assert q.waiting() == [blocked]

    def test_multi_socket_grant_is_atomic(self):
        q = FairWaitQueue()
        wide = q.enqueue((0, 1), tenant="a")
        assert q.grant_next({1}) is None      # half-free is not enough
        assert q.grant_next(set()) is wide


class TestAging:
    def test_aged_waiter_reserves_its_sockets(self):
        q = FairWaitQueue(age_limit=1.0)
        wide = q.enqueue((0, 1), tenant="a", now=0.0)
        young = q.enqueue((1,), tenant="a", now=2.0)
        # Socket 0 busy: wide is not grantable, but it has aged past
        # the limit, so it reserves socket 1 — young cannot overtake.
        assert q.grant_next({0}, now=2.0) is None
        assert len(q) == 2
        # Once socket 0 frees, the aged request goes first.
        assert q.grant_next(set(), now=2.0) is wide
        assert q.grant_next(set(), now=2.0) is young

    def test_young_waiter_overtakes_without_aging(self):
        q = FairWaitQueue(age_limit=None)
        q.enqueue((0, 1), tenant="a", now=0.0)
        young = q.enqueue((1,), tenant="a", now=2.0)
        # No age limit: work conservation lets the young one through.
        assert q.grant_next({0}, now=2.0) is young


class TestExpiry:
    def test_deadline_fires(self):
        q = FairWaitQueue()
        doomed = q.enqueue((0,), tenant="a", now=0.0, deadline=1.0)
        patient = q.enqueue((0,), tenant="a", now=0.0)
        assert q.expire(now=0.5) == []
        assert q.expire(now=1.5) == [doomed]
        assert q.waiting() == [patient]

    def test_expired_waiter_is_not_granted(self):
        q = FairWaitQueue()
        q.enqueue((0,), tenant="a", now=0.0, deadline=1.0)
        q.expire(now=2.0)
        assert q.grant_next(set(), now=2.0) is None

    def test_cancel(self):
        q = FairWaitQueue()
        w = q.enqueue((0,), tenant="a")
        assert q.cancel(w)
        assert not q.cancel(w)          # already gone
        assert len(q) == 0


class TestWaitableAcquisition:
    def make_table(self):
        procs = SimProcessTable()
        return SocketLockTable(procs), procs

    def test_free_lock_is_taken_immediately(self):
        locks, procs = self.make_table()
        pid = procs.spawn()
        q = FairWaitQueue()
        assert locks.acquire_waitable(0, 0, pid, 1, queue=q) is None
        assert locks.holder(0).owner_pid == pid
        assert len(q) == 0

    def test_held_lock_enqueues_instead_of_raising(self):
        locks, procs = self.make_table()
        owner, waiter_pid = procs.spawn(), procs.spawn()
        locks.acquire(0, 0, owner, 1)
        q = FairWaitQueue()
        ticket = locks.acquire_waitable(0, 2, waiter_pid, 2, queue=q,
                                        tenant="t", now=3.0,
                                        deadline=2.0, payload="p")
        assert ticket is not None
        assert ticket.sockets == (0,)
        assert ticket.tenant == "t"
        assert ticket.enqueued_at == 3.0
        assert ticket.payload == "p"
        assert locks.holder(0).owner_pid == owner
        # The plain API still raises on the same state.
        with pytest.raises(SocketLockError):
            locks.acquire(0, 2, waiter_pid, 2)

    def test_stale_lock_is_reclaimed_not_queued(self):
        locks, procs = self.make_table()
        owner = procs.spawn()
        locks.acquire(0, 0, owner, 1)
        procs.kill(owner)
        q = FairWaitQueue()
        claimant = procs.spawn()
        assert locks.acquire_waitable(0, 0, claimant, 2, queue=q) is None
        assert locks.holder(0).owner_pid == claimant
