"""Tests for the ECM-style contention solver."""

import pytest

from repro.hw.arch import get_arch
from repro.hw.events import Channel
from repro.model.ecm import KernelPhase, PlacedWork, solve


SPEC = get_arch("westmere_ep")
PERF = SPEC.perf


def mem_phase(iters=1_000_000, bytes_per_iter=24.0, **kw):
    defaults = dict(mem_read_bytes_per_iter=bytes_per_iter * 2 / 3,
                    mem_write_bytes_per_iter=bytes_per_iter / 3,
                    cycles_per_iter=0.5)
    defaults.update(kw)
    return KernelPhase("mem", iters, **defaults)


def compute_phase(iters=1_000_000, cycles=2.0):
    return KernelPhase("compute", iters, cycles_per_iter=cycles)


def place(phases_cpus, memory_socket=None):
    work = []
    for tid, (phase, cpu) in enumerate(phases_cpus):
        sock = SPEC.socket_of(cpu) if memory_socket is None else memory_socket
        work.append(PlacedWork(tid, cpu, sock, phase))
    return work


class TestSingleThread:
    def test_compute_bound_rate(self):
        result = solve(SPEC, place([(compute_phase(cycles=2.0), 0)]))
        rate = result.threads[0].rate
        assert rate == pytest.approx(SPEC.clock_hz / 2.0, rel=1e-6)

    def test_memory_bound_rate(self):
        phase = mem_phase(bytes_per_iter=24.0)
        result = solve(SPEC, place([(phase, 0)]))
        assert result.threads[0].rate == pytest.approx(
            PERF.thread_mem_bw / 24.0, rel=1e-6)

    def test_l3_bound_rate(self):
        phase = KernelPhase("l3", 1_000_000, cycles_per_iter=0.1,
                            l3_bytes_per_iter=64.0)
        result = solve(SPEC, place([(phase, 0)]))
        assert result.threads[0].rate == pytest.approx(
            PERF.thread_l3_bw / 64.0, rel=1e-6)

    def test_empty_work(self):
        result = solve(SPEC, [])
        assert result.total_time == 0.0


class TestSharedResources:
    def test_socket_bandwidth_saturates(self):
        cpus = [0, 1, 2, 3, 4, 5]   # six cores of socket 0
        work = place([(mem_phase(), c) for c in cpus])
        result = solve(SPEC, work)
        total_bw = sum(t.rate for t in result.threads) * 24.0
        assert total_bw == pytest.approx(PERF.socket_mem_bw, rel=1e-3)

    def test_two_sockets_double_bandwidth(self):
        work = place([(mem_phase(), c) for c in
                      [0, 1, 2, 6, 7, 8]])   # 3 cores on each socket
        result = solve(SPEC, work)
        total_bw = sum(t.rate for t in result.threads) * 24.0
        assert total_bw == pytest.approx(2 * PERF.socket_mem_bw, rel=1e-3)

    def test_remote_memory_penalty(self):
        # Thread runs on socket 1, memory on socket 0.
        work = [PlacedWork(0, 6, 0, mem_phase())]
        result = solve(SPEC, work)
        assert result.threads[0].rate == pytest.approx(
            PERF.thread_mem_bw * PERF.remote_mem_penalty / 24.0, rel=1e-6)

    def test_partial_remote_fraction(self):
        work = [PlacedWork(0, 0, 0, mem_phase(), remote_fraction=0.5)]
        result = solve(SPEC, work)
        expected_bw = PERF.thread_mem_bw * (0.5 + 0.5 * PERF.remote_mem_penalty)
        assert result.threads[0].rate == pytest.approx(
            expected_bw / 24.0, rel=1e-6)

    def test_compute_threads_unaffected_by_memory_saturation(self):
        work = place([(mem_phase(), c) for c in [0, 1, 2, 3]]
                     + [(compute_phase(cycles=1.0), 4)])
        result = solve(SPEC, work)
        assert result.threads[-1].rate == pytest.approx(SPEC.clock_hz,
                                                        rel=1e-6)


class TestOccupancyEffects:
    def test_timeslicing_halves_compute(self):
        work = place([(compute_phase(), 0), (compute_phase(), 0)])
        result = solve(SPEC, work)
        solo = solve(SPEC, place([(compute_phase(), 0)])).threads[0]
        # Both finish together at roughly double the solo runtime.
        assert result.total_time == pytest.approx(2 * solo.runtime, rel=0.01)

    def test_smt_siblings_share_issue_width(self):
        # cpus 0 and 12 are SMT siblings of core 0.
        work = place([(compute_phase(), 0), (compute_phase(), 12)])
        result = solve(SPEC, work)
        expected = SPEC.clock_hz * PERF.smt_issue_scale / 2 / 2.0
        for t in result.threads:
            assert t.rate == pytest.approx(expected, rel=1e-6)

    def test_separate_cores_full_speed(self):
        work = place([(compute_phase(), 0), (compute_phase(), 1)])
        result = solve(SPEC, work)
        for t in result.threads:
            assert t.rate == pytest.approx(SPEC.clock_hz / 2.0, rel=1e-6)

    def test_progressive_redistribution(self):
        """A slow (oversubscribed) thread speeds up after the fast ones
        finish: total time is far below the static worst case."""
        fast = mem_phase(iters=1_000_000)
        slow = mem_phase(iters=1_000_000)
        work = place([(fast, 0), (fast, 1), (fast, 2),
                      (slow, 3), (slow, 3)])   # two threads timeshare cpu 3
        result = solve(SPEC, work)
        runtimes = sorted(t.runtime for t in result.threads)
        # The stragglers finish later but not 2x later (they inherit
        # the finished threads' bandwidth share).
        assert runtimes[-1] < 1.9 * runtimes[0]


class TestChannels:
    def test_flop_channels_split_packed_scalar(self):
        phase = KernelPhase("f", 1000, flops_per_iter=4.0,
                            packed_fraction=0.5)
        result = solve(SPEC, [PlacedWork(0, 0, 0, phase)])
        ch = result.threads[0].channels
        assert ch[Channel.FLOPS_PACKED_DP] == 1000.0   # 4*0.5/2*1000
        assert ch[Channel.FLOPS_SCALAR_DP] == 2000.0

    def test_cycles_match_runtime(self):
        result = solve(SPEC, place([(compute_phase(), 0)]))
        t = result.threads[0]
        assert t.channels[Channel.CORE_CYCLES] == pytest.approx(
            t.runtime * SPEC.clock_hz)

    def test_socket_channels_accumulate(self):
        work = place([(mem_phase(iters=64_000), c) for c in (0, 1)])
        result = solve(SPEC, work)
        sock = result.socket_channels[0]
        expected_reads = 2 * 64_000 * 16.0 / 64
        assert sock[Channel.MEM_READS] == pytest.approx(expected_reads)
        assert sock[Channel.UNC_CYCLES] > 0

    def test_nt_stores_excluded_from_l3_victims(self):
        phase = KernelPhase("nt", 1000, stores_per_iter=1.0,
                            nt_store_fraction=1.0,
                            mem_read_bytes_per_iter=16.0,
                            mem_write_bytes_per_iter=8.0)
        result = solve(SPEC, [PlacedWork(0, 0, 0, phase)])
        sock = result.socket_channels[0]
        assert sock[Channel.L3_LINES_OUT] == pytest.approx(
            1000 * 16.0 / 64)   # only the read stream victimises

    def test_total_time_is_max_runtime(self):
        work = place([(compute_phase(iters=1000), 0),
                      (compute_phase(iters=100_000), 1)])
        result = solve(SPEC, work)
        assert result.total_time == max(t.runtime for t in result.threads)
