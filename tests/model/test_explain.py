"""Tests for the model bottleneck diagnosis."""

import pytest

from repro.hw.arch import get_arch
from repro.model.ecm import KernelPhase, PlacedWork
from repro.model.explain import diagnose

SPEC = get_arch("westmere_ep")


def work_for(phase, cpus, memory_socket=None):
    return [PlacedWork(i, cpu,
                       SPEC.socket_of(cpu) if memory_socket is None
                       else memory_socket, phase)
            for i, cpu in enumerate(cpus)]


class TestBottleneckAttribution:
    def test_compute_bound(self):
        phase = KernelPhase("c", 1_000_000, cycles_per_iter=4.0)
        d = diagnose(SPEC, work_for(phase, [0]))
        assert d.threads[0].bottleneck == "in-core issue"
        assert d.threads[0].efficiency == pytest.approx(1.0)

    def test_single_stream_memory_bound(self):
        phase = KernelPhase("m", 1_000_000, cycles_per_iter=0.2,
                            mem_read_bytes_per_iter=24.0)
        d = diagnose(SPEC, work_for(phase, [0]))
        assert d.threads[0].bottleneck == "memory concurrency"

    def test_saturated_socket(self):
        phase = KernelPhase("m", 1_000_000, cycles_per_iter=0.2,
                            mem_read_bytes_per_iter=24.0)
        d = diagnose(SPEC, work_for(phase, [0, 1, 2, 3, 4, 5]))
        assert all(t.bottleneck == "socket memory bandwidth"
                   for t in d.threads)
        assert d.sockets[0].mem_utilisation == pytest.approx(1.0, abs=0.01)

    def test_remote_memory(self):
        phase = KernelPhase("m", 1_000_000, cycles_per_iter=0.2,
                            mem_read_bytes_per_iter=24.0)
        # Many threads on socket 1 hammering socket 0's memory.
        cpus = SPEC.hwthreads_of_socket(1)[:6]
        d = diagnose(SPEC, work_for(phase, cpus, memory_socket=0))
        assert any(t.bottleneck == "interconnect / remote memory"
                   for t in d.threads)

    def test_l3_bound(self):
        phase = KernelPhase("l3", 1_000_000, cycles_per_iter=0.1,
                            l3_bytes_per_iter=128.0)
        d = diagnose(SPEC, work_for(phase, [0]))
        assert d.threads[0].bottleneck == "L3 path"

    def test_bottleneck_histogram(self):
        mem = KernelPhase("m", 1_000_000, cycles_per_iter=0.2,
                          mem_read_bytes_per_iter=24.0)
        cpu = KernelPhase("c", 1_000_000, cycles_per_iter=4.0)
        work = work_for(mem, [0, 1, 2, 3]) + [
            PlacedWork(99, 4, 0, cpu)]
        d = diagnose(SPEC, work)
        hist = d.bottlenecks()
        assert hist.get("socket memory bandwidth", 0) == 4
        assert hist.get("in-core issue", 0) == 1

    def test_render(self):
        phase = KernelPhase("m", 1_000_000, cycles_per_iter=0.2,
                            mem_read_bytes_per_iter=24.0)
        d = diagnose(SPEC, work_for(phase, [0, 1, 2]))
        text = d.render()
        assert "bottleneck" in text
        assert "mem util" in text

    def test_diagnosis_consistent_with_solver(self):
        """Rates in the diagnosis equal the plain solve() rates."""
        from repro.model.ecm import solve
        phase = KernelPhase("m", 500_000, cycles_per_iter=0.5,
                            mem_read_bytes_per_iter=16.0,
                            mem_write_bytes_per_iter=8.0)
        work = work_for(phase, [0, 1, 6, 7])
        d = diagnose(SPEC, work)
        plain = solve(SPEC, work)
        for dt, pt in zip(d.threads, plain.threads):
            assert dt.rate == pytest.approx(pt.rate, rel=1e-9)
