"""LK6xx protocol-analysis suite (ISSUE 7).

Three layers of assurance, mirroring how PR 2 proved the original
linter:

* a broken-fixture suite — one minimal snippet per code, positive
  (fires) and negative (the fixed form stays silent);
* seeded-bug tests — the acceptance scenarios: strip the ``with``
  teardown from ``LikwidPerfCtr.wrap`` or the epoch compare from
  ``SocketLockTable.release`` *in a mutated copy of the real source*
  and assert LK601/LK602 catch it;
* the self-check — the shipped runtime has zero unsuppressed LK6xx
  findings, which is what lets CI gate on the pass at all.
"""

import json
import textwrap

import pytest

from repro.analysis.protocol import (lint_protocol, protocol_sources)
from repro.analysis.report import render_json
from repro.analysis.runner import lint_changed


def lint_snippet(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_protocol(paths=[str(path)])


def codes(diags):
    return sorted({d.code for d in diags})


# -- broken fixtures: one positive and one negative per code -----------------

BROKEN = {
    "LK601-leak-on-exception": """
        def f(driver, cpu):
            msr = driver.open(cpu)
            msr.read_msr(0x38F)
            msr.close()
    """,
    "LK601-double-start": """
        def f(perfctr, cpus, group):
            session = perfctr.session(cpus, group)
            session.start()
            session.start()
            session.close()
    """,
    "LK601-read-after-close": """
        def f(perfctr, cpus, group):
            session = perfctr.session(cpus, group)
            session.start()
            session.close()
            return session.read()
    """,
    "LK601-epoch-leak": """
        def f(driver, work):
            epoch = driver.begin_epoch()
            work()
            driver.end_epoch(epoch)
    """,
    "LK602-unreleased-branch": """
        def f(table, socket, pid, epoch, risky):
            table.acquire(socket, pid, epoch)
            if risky:
                return None
            table.release(socket, pid, epoch)
    """,
    "LK602-release-without-epoch": """
        def f(driver, socket, pid):
            driver.release_socket_lock(socket)
    """,
    "LK602-removal-without-compare": """
        def release(self, socket, pid, epoch):
            current = self._locks.get(socket)
            if current is None or current.owner_pid != pid:
                return False
            del self._locks[socket]
            return True
    """,
    "LK603-unguarded-write": """
        def flush(self, reg, value):
            if self.journal is not None:
                pass
            self.write_msr(reg, value)
    """,
    "LK605-bare-span": """
        def f(tracer):
            tracer.span("work")
    """,
    "LK605-entered-not-exited": """
        def f(tracer, work):
            s = tracer.span("work")
            s.__enter__()
            work()
    """,
}

FIXED = {
    "LK601-leak-on-exception": """
        def f(driver, cpu):
            msr = driver.open(cpu)
            try:
                msr.read_msr(0x38F)
            finally:
                msr.close()
    """,
    "LK601-double-start": """
        def f(perfctr, cpus, group):
            session = perfctr.session(cpus, group)
            session.start()
            session.stop()
            session.close()
    """,
    "LK601-read-after-close": """
        def f(perfctr, cpus, group):
            session = perfctr.session(cpus, group)
            session.start()
            session.stop()
            result = session.read()
            session.close()
            return result
    """,
    "LK601-epoch-leak": """
        def f(driver, work):
            epoch = driver.begin_epoch()
            try:
                work()
            finally:
                driver.end_epoch(epoch)
    """,
    "LK602-unreleased-branch": """
        def f(table, socket, pid, epoch, risky):
            table.acquire(socket, pid, epoch)
            try:
                if risky:
                    return None
            finally:
                table.release(socket, pid, epoch)
    """,
    "LK602-release-without-epoch": """
        def f(driver, socket, pid, epoch):
            driver.release_socket_lock(socket, epoch)
    """,
    "LK602-removal-without-compare": """
        def release(self, socket, pid, epoch):
            current = self._locks.get(socket)
            if current is None or current.owner_pid != pid \\
                    or current.epoch != epoch:
                return False
            del self._locks[socket]
            return True
    """,
    "LK603-unguarded-write": """
        def flush(self, reg, value):
            if self.journal is None:
                self.write_msr(reg, value)
                return
            self.journal.record_write(reg, value)
            self.write_msr(reg, value)
    """,
    "LK605-bare-span": """
        def f(tracer, work):
            with tracer.span("work"):
                work()
    """,
    "LK605-entered-not-exited": """
        def f(tracer, work):
            s = tracer.span("work")
            s.__enter__()
            try:
                work()
            finally:
                s.__exit__(None, None, None)
    """,
}


@pytest.mark.parametrize("name", sorted(BROKEN))
def test_broken_fixture_fires(tmp_path, name):
    expected = name.split("-")[0]
    diags = lint_snippet(tmp_path, BROKEN[name])
    assert expected in codes(diags), \
        f"{name}: expected {expected}, got {[str(d) for d in diags]}"


@pytest.mark.parametrize("name", sorted(FIXED))
def test_fixed_fixture_is_silent(tmp_path, name):
    target = name.split("-")[0]
    diags = lint_snippet(tmp_path, FIXED[name])
    assert target not in codes(diags), \
        f"{name}: fixed form still reports {[str(d) for d in diags]}"


class TestLockOrder:
    SOURCE = """
        def first(t, pid, e):
            t.acquire(0, pid, e)
            try:
                t.acquire(1, pid, e)
                t.release(1, pid, e)
            finally:
                t.release(0, pid, e)

        def second(t, pid, e):
            t.acquire(1, pid, e)
            try:
                t.acquire(0, pid, e)
                t.release(0, pid, e)
            finally:
                t.release(1, pid, e)
    """

    def test_conflicting_order_is_a_deadlock_hazard(self, tmp_path):
        diags = lint_snippet(tmp_path, self.SOURCE)
        lk604 = [d for d in diags if d.code == "LK604"]
        assert len(lk604) == 1
        assert "deadlock" in lk604[0].message
        assert "first" in lk604[0].message
        assert "second" in lk604[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        consistent = self.SOURCE.replace(
            "def second(t, pid, e):\n            t.acquire(1, pid, e)",
            "def second(t, pid, e):\n            t.acquire(0, pid, e)"
        ).replace(
            "t.acquire(0, pid, e)\n                t.release(0, pid, e)",
            "t.acquire(1, pid, e)\n                t.release(1, pid, e)"
        ).replace(
            "finally:\n                t.release(1, pid, e)",
            "finally:\n                t.release(0, pid, e)")
        diags = lint_snippet(tmp_path, consistent)
        assert "LK604" not in codes(diags)

    def test_order_graph_spans_files(self, tmp_path):
        a = tmp_path / "a.py"
        a.write_text(textwrap.dedent("""
            def first(t, pid, e):
                t.acquire(0, pid, e)
                t.acquire(1, pid, e)
                t.release(1, pid, e)
                t.release(0, pid, e)
        """))
        b = tmp_path / "b.py"
        b.write_text(textwrap.dedent("""
            def second(t, pid, e):
                t.acquire(1, pid, e)
                t.acquire(0, pid, e)
                t.release(0, pid, e)
                t.release(1, pid, e)
        """))
        diags = lint_protocol(paths=[str(a), str(b)])
        assert "LK604" in codes(diags)


class TestSuppression:
    def test_suppressed_finding_is_silent(self, tmp_path):
        diags = lint_snippet(tmp_path, """
            def f(tracer):
                tracer.span("work")   # lk: disable=LK605 -- fixture
        """)
        assert codes(diags) == []

    def test_unused_suppression_reports_lk609(self, tmp_path):
        diags = lint_snippet(tmp_path, """
            def f(tracer, work):
                with tracer.span("w"):   # lk: disable=LK605 -- stale
                    work()
        """)
        assert codes(diags) == ["LK609"]
        assert "matched no finding" in diags[0].message

    def test_suppression_is_per_code(self, tmp_path):
        # Disabling LK601 does not hide the LK605 on the same line.
        diags = lint_snippet(tmp_path, """
            def f(tracer):
                tracer.span("work")   # lk: disable=LK601 -- wrong code
        """)
        assert "LK605" in codes(diags)
        assert "LK609" in codes(diags)    # the LK601 disable is unused

    def test_multiple_codes_one_comment(self, tmp_path):
        diags = lint_snippet(tmp_path, """
            def f(driver, socket, pid):
                driver.release_socket_lock(socket)   # lk: disable=LK602,LK601 -- x
        """)
        assert "LK602" not in codes(diags)
        assert "LK609" in codes(diags)    # the LK601 half is unused


class TestGoldenJsonReport:
    def test_report_with_suppressions(self, tmp_path):
        path = tmp_path / "golden_fixture.py"
        path.write_text(textwrap.dedent("""
            def leaky(tracer):
                tracer.span("a")

            def excused(tracer):
                tracer.span("b")   # lk: disable=LK605 -- exercised by tests

            def stale(tracer, work):
                with tracer.span("c"):   # lk: disable=LK605 -- outdated
                    work()
        """))
        document = json.loads(render_json(lint_protocol(paths=[str(path)])))
        assert document == {
            "version": 1,
            "diagnostics": [
                {"arch": None, "code": "LK605", "column": None,
                 "group": None,
                 "locus": "source:golden_fixture.py:3",
                 "message": "leaky creates a tracer span and never "
                            "enters it (use `with ...span(...):`)",
                 "severity": "warning",
                 "title": "tracer span unbalanced (never entered, or "
                          "not exited on some path)"},
                {"arch": None, "code": "LK609", "column": None,
                 "group": None,
                 "locus": "source:golden_fixture.py:9",
                 "message": "suppression `# lk: disable=LK605` on "
                            "golden_fixture.py:9 matched no finding; "
                            "remove it or fix the rot",
                 "severity": "note",
                 "title": "unused `# lk: disable` suppression"},
            ],
            "summary": {"errors": 0, "warnings": 1, "notes": 1},
        }


# -- seeded-bug tests over mutated real sources ------------------------------

def mutate(tmp_path, relpath, old, new):
    import pathlib
    source = pathlib.Path("src/repro") / relpath
    text = source.read_text()
    assert old in text, f"seed anchor drifted in {relpath}"
    out = tmp_path / source.name
    out.write_text(text.replace(old, new))
    return str(out)


class TestSeededBugs:
    def test_dropping_session_teardown_is_caught(self, tmp_path):
        """Replace wrap()'s `with session:` teardown with bare calls:
        an exception in the workload now leaks a started session."""
        path = mutate(
            tmp_path, "core/perfctr/measurement.py",
            "            session = self.session(cpus, group_or_events)\n"
            "            with session:\n"
            "                with _trace.span(\"perfctr.workload\"):\n"
            "                    payload = run()\n"
            "                session.stop()\n"
            "                wall = getattr(payload, \"total_time\","
            " None)\n"
            "                return session.read(wall_time=wall)\n",
            "            session = self.session(cpus, group_or_events)\n"
            "            session.start()\n"
            "            with _trace.span(\"perfctr.workload\"):\n"
            "                payload = run()\n"
            "            session.stop()\n"
            "            wall = getattr(payload, \"total_time\","
            " None)\n"
            "            return session.read(wall_time=wall)\n")
        diags = lint_protocol(paths=[path])
        assert "LK601" in codes(diags)
        assert any("session" in d.message and "exception" in d.message
                   for d in diags if d.code == "LK601")

    def test_dropping_epoch_compare_is_caught(self, tmp_path):
        """Strip the epoch compare from SocketLockTable.release: the
        entry removal is no longer guarded against reclaimed locks."""
        path = mutate(
            tmp_path, "oskern/locks.py",
            "        if current is None or current.owner_pid != pid \\\n"
            "                or current.epoch != epoch:\n",
            "        if current is None or current.owner_pid != pid:\n")
        diags = lint_protocol(paths=[path])
        assert "LK602" in codes(diags)
        assert any("epoch" in d.message for d in diags
                   if d.code == "LK602")


# -- the self-check ----------------------------------------------------------

class TestSelfCheck:
    def test_shipped_runtime_is_protocol_clean(self):
        diags = lint_protocol()
        assert diags == [], "\n".join(str(d) for d in diags)

    def test_scan_covers_the_measurement_runtime(self):
        names = {p.rsplit("/", 1)[-1] for p in protocol_sources()}
        assert "measurement.py" in names     # sessions
        assert "locks.py" in names           # socket locks
        assert "msr_driver.py" in names      # journal + epochs
        assert "features.py" in names        # likwid-features
        assert "perfctr_cmd.py" in names     # CLI front-end

    def test_clean_exemplars_stay_clean(self):
        """The runtime patterns the checks were calibrated against."""
        import repro
        base = repro.__path__[0]
        for rel in ("core/perfctr/counters.py",
                    "core/perfctr/measurement.py",
                    "core/features.py",
                    "oskern/locks.py",
                    "oskern/msr_driver.py"):
            assert lint_protocol(paths=[f"{base}/{rel}"]) == [], rel


# -- `repro-lint --changed` ---------------------------------------------------

class TestLintChanged:
    def test_runtime_source_restricts_to_source_passes(self):
        diags = lint_changed(files=["src/repro/core/features.py"])
        assert diags == []      # the shipped file is clean

    def test_irrelevant_files_produce_nothing(self):
        assert lint_changed(files=["README.md", "docs/linting.md"]) == []

    def test_changed_groupfile_lints_that_group(self):
        diags = lint_changed(
            files=["src/repro/core/perfctr/groupfiles/nehalem_ep/MEM.txt"])
        loci = {d.locus for d in diags}
        assert loci <= {"groupfile:nehalem_ep/MEM.txt"}

    def test_analysis_change_falls_back_to_full_matrix(self):
        subset = lint_changed(files=["src/repro/analysis/protocol.py"])
        from repro.analysis.runner import lint_all
        assert len(subset) == len(lint_all())

    def test_broken_source_fails_like_a_full_run(self, tmp_path,
                                                 monkeypatch):
        """On the selected subset, findings surface with the same
        codes the full run would give for that file."""
        bad = tmp_path / "rogue.py"
        bad.write_text("def f(tracer):\n    tracer.span('x')\n")
        import repro.analysis.protocol as protocol
        monkeypatch.setattr(protocol, "protocol_sources",
                            lambda: [str(bad)])
        diags = lint_changed(files=[str(bad)])
        assert codes(diags) == ["LK605"]


class TestCliFlags:
    def test_fail_unused_gates_on_lk609(self, monkeypatch, capsys):
        from repro.analysis.diagnostics import Diagnostic, Severity
        from repro.cli import lint_cmd

        stale = [Diagnostic("LK609", Severity.NOTE,
                            "suppression `# lk: disable=LK605` on x.py:1 "
                            "matched no finding; remove it or fix the rot",
                            locus="source:x.py:1")]
        monkeypatch.setattr("repro.analysis.runner.lint_changed",
                            lambda ref: stale)
        assert lint_cmd.main(["--changed", "HEAD"]) == 0
        assert lint_cmd.main(["--changed", "HEAD", "--fail-unused"]) == 1

    def test_changed_flag_defaults_to_origin_main(self):
        from repro.cli import lint_cmd
        parser = lint_cmd.build_parser()
        assert parser.parse_args(["--changed"]).changed == "origin/main"
        assert parser.parse_args(["--changed", "HEAD~1"]).changed == "HEAD~1"
        assert parser.parse_args([]).changed is None
