"""Golden-file test pinning the JSON report format.

The JSON document is a contract for CI tooling: versioned, sorted
keys, deterministic diagnostic order.  Any change to the shape must
update ``golden/report.json`` deliberately.
"""

import json
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.report import render_json, render_text

GOLDEN = Path(__file__).parent / "golden" / "report.json"

# A fixed, reporter-order-scrambled set covering every field shape:
# with/without group, locus, and column, all three severities.
FIXED_DIAGNOSTICS = [
    Diagnostic("LK203", Severity.NOTE,
               "metric 'CPI' divides by a raw counter value; a zero "
               "count yields NaN for this metric",
               arch="nehalem_ep", group="MEM", locus="builtin:MEM",
               column=23),
    Diagnostic("LK101", Severity.ERROR,
               "event 'BOGUS' is not defined in the nehalem_ep event table",
               arch="nehalem_ep", group="CUSTOM", locus="events:BOGUS:PMC0"),
    Diagnostic("LK107", Severity.WARNING,
               "32-bit counters wrap after 0.4s at peak event rate "
               "(4/cycle at 2.93 GHz); measurements longer than that "
               "lose counts",
               arch="core2", locus="registers:core2"),
]


def test_json_report_matches_golden():
    assert render_json(FIXED_DIAGNOSTICS) == GOLDEN.read_text()


def test_golden_is_valid_versioned_json():
    doc = json.loads(GOLDEN.read_text())
    assert doc["version"] == 1
    assert doc["summary"] == {"errors": 1, "warnings": 1, "notes": 1}
    # Deterministic order: sorted by (arch, locus, ...), so core2
    # leads and the builtin: locus precedes the events: locus.
    assert [d["code"] for d in doc["diagnostics"]] == \
        ["LK107", "LK203", "LK101"]
    # Every entry carries the full, stable key set.
    for entry in doc["diagnostics"]:
        assert sorted(entry) == ["arch", "code", "column", "group",
                                 "locus", "message", "severity", "title"]


def test_text_report_hides_notes_unless_pedantic():
    plain = render_text(FIXED_DIAGNOSTICS)
    assert "LK203" not in plain
    assert "LK101" in plain and "LK107" in plain
    assert "1 error(s), 1 warning(s), 1 note(s)" in plain
    pedantic = render_text(FIXED_DIAGNOSTICS, pedantic=True)
    assert "LK203" in pedantic and "(column 23)" in pedantic
