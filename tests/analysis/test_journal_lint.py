"""LK5xx self-check: the shipped tool layer writes MSRs only through
the journaling API, and the journal's state-mutating classification
covers the whole write surface on every architecture (ISSUE 5
satellite 3)."""

import pytest

from repro.analysis.journal_lint import (cli_layer_sources,
                                         lint_backend_bypass,
                                         lint_journal_coverage,
                                         lint_write_sites,
                                         programmer_write_surface,
                                         tool_layer_sources)
from repro.hw.arch import available, get_arch
from repro.oskern.journal import state_mutating_addresses


class TestWriteSiteScan:
    def test_shipped_tool_layer_is_clean(self):
        assert lint_write_sites() == []

    def test_scanned_surface_is_the_tool_layer(self):
        names = {path.rsplit("/", 1)[-1] for path in tool_layer_sources()}
        assert "counters.py" in names       # the programmer
        assert "measurement.py" in names    # the session runtime
        assert "features.py" in names       # likwid-features

    def test_raw_write_site_detected(self, tmp_path):
        bad = tmp_path / "rogue.py"
        bad.write_text(
            "def setup(msr):\n"
            "    msr.read_msr(0x38F)\n"           # reads are fine
            "    msr.write_msr(0x38F, 0x3)\n"     # LK501
            "    msr.journaled_write(0x186, 1)\n" # the blessed path
            "    msr.pwrite(0x186, b'x' * 8)\n")  # LK501
        diags = lint_write_sites([str(bad)])
        assert [d.code for d in diags] == ["LK501", "LK501"]
        assert "rogue.py:3" in diags[0].message
        assert ".pwrite()" in diags[1].message

    def test_diagnostics_are_errors_with_loci(self, tmp_path):
        bad = tmp_path / "one.py"
        bad.write_text("handle.write_msr(1, 2)\n")
        [diag] = lint_write_sites([str(bad)])
        from repro.analysis.diagnostics import Severity
        assert diag.severity is Severity.ERROR
        assert diag.locus == "source:one.py:1"


class TestBackendBypassScan:
    def test_shipped_cli_layer_is_clean(self):
        assert lint_backend_bypass() == []

    def test_scanned_surface_is_the_cli_layer(self):
        names = {path.rsplit("/", 1)[-1] for path in cli_layer_sources()}
        assert "common.py" in names         # driver plumbing
        assert "perfctr_cmd.py" in names    # likwid-perfctr
        assert "features_cmd.py" in names   # likwid-features

    def test_direct_construction_detected(self, tmp_path):
        bad = tmp_path / "rogue_cli.py"
        bad.write_text(
            "from repro.oskern import msr_driver\n"
            "from repro.oskern.msr_driver import MsrDriver\n"
            "from repro.oskern.access import open_backend\n"
            "def run(machine):\n"
            "    d1 = MsrDriver(machine)\n"              # LK503
            "    d2 = msr_driver.MsrDriver(machine)\n"   # LK503
            "    b = open_backend('msr', machine)\n"     # the blessed path
            "    return d1, d2, b\n")
        diags = lint_backend_bypass([str(bad)])
        assert [d.code for d in diags] == ["LK503", "LK503"]
        assert "rogue_cli.py:5" in diags[0].message
        assert "open_backend" in diags[0].message

    def test_diagnostics_are_errors_with_loci(self, tmp_path):
        bad = tmp_path / "one_cli.py"
        bad.write_text("d = MsrDriver(m)\n")
        [diag] = lint_backend_bypass([str(bad)])
        from repro.analysis.diagnostics import Severity
        assert diag.severity is Severity.ERROR
        assert diag.locus == "source:one_cli.py:1"


class TestAliasHardening:
    """ISSUE 7 satellite: the scans must see through aliased imports
    and local rebinding, not just bare attribute/name matches."""

    def test_rebound_write_method_detected(self, tmp_path):
        bad = tmp_path / "rebound.py"
        bad.write_text(
            "def setup(msr):\n"
            "    w = msr.write_msr\n"
            "    w(0x38F, 0x3)\n")
        diags = lint_write_sites([str(bad)])
        assert [d.code for d in diags] == ["LK501"]
        assert diags[0].locus == "source:rebound.py:3"

    def test_chained_rebinding_detected(self, tmp_path):
        bad = tmp_path / "chain.py"
        bad.write_text(
            "def setup(msr):\n"
            "    a = msr.pwrite\n"
            "    b = a\n"
            "    b(0x186, b'x' * 8)\n")
        diags = lint_write_sites([str(bad)])
        assert [d.code for d in diags] == ["LK501"]

    def test_rebound_safe_method_is_not_flagged(self, tmp_path):
        good = tmp_path / "safe.py"
        good.write_text(
            "def setup(msr):\n"
            "    w = msr.journaled_write\n"
            "    w(0x38F, 0x3)\n")
        assert lint_write_sites([str(good)]) == []

    def test_aliased_import_construction_detected(self, tmp_path):
        bad = tmp_path / "aliased_cli.py"
        bad.write_text(
            "from repro.oskern.msr_driver import MsrDriver as D\n"
            "def run(machine):\n"
            "    return D(machine)\n")
        diags = lint_backend_bypass([str(bad)])
        assert [d.code for d in diags] == ["LK503"]
        assert diags[0].locus == "source:aliased_cli.py:3"

    def test_rebound_class_construction_detected(self, tmp_path):
        bad = tmp_path / "rebound_cli.py"
        bad.write_text(
            "from repro.oskern import msr_driver\n"
            "def run(machine):\n"
            "    cls = msr_driver.MsrDriver\n"
            "    return cls(machine)\n")
        diags = lint_backend_bypass([str(bad)])
        assert [d.code for d in diags] == ["LK503"]

    def test_unrelated_alias_is_not_flagged(self, tmp_path):
        good = tmp_path / "fine_cli.py"
        good.write_text(
            "from repro.oskern.access import open_backend as ob\n"
            "def run(machine):\n"
            "    return ob('msr', machine)\n")
        assert lint_backend_bypass([str(good)]) == []


@pytest.mark.parametrize("arch", available())
class TestJournalCoverage:
    def test_classification_covers_write_surface(self, arch):
        assert lint_journal_coverage(get_arch(arch)) == []

    def test_broken_classifier_detected(self, arch, monkeypatch):
        """Drop one register from the classification: LK502 fires."""
        spec = get_arch(arch)
        surface = programmer_write_surface(spec)
        assert surface, f"{arch} has an empty write surface"
        victim = min(surface)
        real = state_mutating_addresses

        def broken(s):
            return frozenset(real(s) - {victim})

        monkeypatch.setattr("repro.analysis.journal_lint."
                            "state_mutating_addresses", broken)
        diags = lint_journal_coverage(spec)
        assert [d.code for d in diags] == ["LK502"]
        assert diags[0].arch == arch
        assert f"0x{victim:X}" in diags[0].message
