"""Self-check: the shipped configuration matrix lints clean.

This is the tier-1 guarantee behind ``repro-lint --all --strict``:
every builtin and file-backed group on every architecture produces
zero errors and zero warnings (NOTEs — e.g. CPI's raw-counter
denominator — are informational and expected).
"""

import pytest

from repro.analysis import catalog_for, lint_all, lint_group, lint_spec
from repro.analysis.diagnostics import Severity
from repro.hw.arch import available, get_arch


def gating(diags):
    return [d for d in diags if d.severity is not Severity.NOTE]


@pytest.mark.parametrize("arch", available())
def test_arch_surface_is_clean(arch):
    assert gating(lint_spec(get_arch(arch))) == []


@pytest.mark.parametrize("arch", available())
def test_every_group_pair_is_clean(arch):
    spec = get_arch(arch)
    catalog = catalog_for(spec)
    assert catalog, f"{arch} ships no lintable groups"
    for locus, group in catalog:
        diags = gating(lint_group(spec, group, locus=locus))
        assert diags == [], f"{arch} {locus}: {[str(d) for d in diags]}"


def test_whole_matrix_and_notes_survive():
    diags = lint_all()
    assert gating(diags) == []
    # The informational layer is still there (CPI-style denominators).
    assert any(d.code == "LK203" for d in diags)


def test_cli_strict_exits_zero(capsys):
    from repro.cli.lint_cmd import main
    assert main(["--all", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_cli_unknown_group_is_usage_error(capsys):
    from repro.cli.lint_cmd import main
    assert main(["--arch", "nehalem_ep", "-g", "NO_SUCH_GROUP"]) == 2
