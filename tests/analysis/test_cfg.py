"""Unit tests for the CFG builder and the dataflow engine (ISSUE 7
tentpole): the shapes the LK6xx protocol checks rely on — exception
edges, ``finally`` inlining, ``with`` desugaring, loop/branch labels —
asserted directly, so a protocol-check regression can be bisected to
either the graph or the checks."""

import ast
import textwrap

from repro.analysis import cfg as C
from repro.analysis.dataflow import Analysis, solve


def build(src: str) -> C.CFG:
    tree = ast.parse(textwrap.dedent(src))
    func = next(n for n in ast.walk(tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    return build_func(func)


def build_func(func) -> C.CFG:
    return C.build_cfg(func)


class Lines(Analysis):
    """May-analysis: the set of source lines that can have executed.
    Small enough to validate path structure end to end."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, fact):
        if node.stmt is not None and hasattr(node.stmt, "lineno"):
            return fact | {node.stmt.lineno}
        return fact


def lines_at_exit(graph: C.CFG) -> frozenset:
    return solve(graph, Lines()).get(graph.exit, frozenset())


def lines_at_exc_exit(graph: C.CFG) -> frozenset:
    return solve(graph, Lines()).get(graph.exc_exit, frozenset())


class TestStructure:
    def test_linear_body_reaches_exit(self):
        graph = build("""
            def f():
                a = 1
                b = 2
        """)
        assert lines_at_exit(graph) == {3, 4}

    def test_branch_edges_are_labelled(self):
        graph = build("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
        """)
        test_node = next(n for n in graph.real_nodes()
                         if n.kind == C.TEST)
        labels = {label[2] for _dst, label in graph.succs[test_node.nid]
                  if label is not None and label[0] == "cond"}
        assert labels == {True, False}

    def test_only_one_branch_arm_per_path(self):
        graph = build("""
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                c = 3
        """)
        # May-union at exit sees both arms; each individual path sees
        # one — the test node must not fall through to both arms
        # unconditionally.
        assert lines_at_exit(graph) == {3, 4, 6, 7}

    def test_while_loop_has_back_edge_and_exit(self):
        graph = build("""
            def f(n):
                while n:
                    n = step(n)
                done()
        """)
        assert 5 in lines_at_exit(graph)      # loop exit reached
        # the loop body can execute before the exit
        assert 4 in lines_at_exit(graph)

    def test_break_leaves_the_loop(self):
        graph = build("""
            def f(xs):
                for x in xs:
                    if x:
                        break
                    tail = 1
                after = 2
        """)
        assert 7 in lines_at_exit(graph)

    def test_return_skips_following_statements(self):
        graph = build("""
            def f():
                return 1
                dead = 2
        """)
        assert 4 not in lines_at_exit(graph)


class TestExceptions:
    def test_call_statement_has_exception_edge(self):
        graph = build("""
            def f():
                risky()
        """)
        stmt = next(n for n in graph.real_nodes() if n.kind == C.STMT)
        assert any(label is not None and label[0] == "exc"
                   for _dst, label in graph.succs[stmt.nid])
        assert graph.exc_exit in {dst for dst, _ in graph.succs[stmt.nid]}

    def test_finally_runs_on_return_and_exception(self):
        graph = build("""
            def f():
                try:
                    return risky()
                finally:
                    cleanup()
        """)
        assert 6 in lines_at_exit(graph)
        assert 6 in lines_at_exc_exit(graph)

    def test_catchall_handler_swallows_the_exception(self):
        graph = build("""
            def f():
                try:
                    risky()
                except Exception:
                    handled = 1
        """)
        facts = solve(graph, Lines())
        assert graph.exc_exit not in facts    # nothing escapes

    def test_narrow_handler_still_propagates(self):
        graph = build("""
            def f():
                try:
                    risky()
                except KeyError:
                    fallback()
        """)
        facts = solve(graph, Lines())
        assert graph.exc_exit in facts

    def test_exception_edge_carries_in_state(self):
        # If the statement itself raises, its effect is not assumed:
        # line 3 must not be "executed" on its own exception edge.
        graph = build("""
            def f():
                risky()
        """)
        assert 3 not in lines_at_exc_exit(graph)


class TestWith:
    def test_with_desugars_to_enter_and_exit_nodes(self):
        graph = build("""
            def f(ctx):
                with ctx:
                    body()
        """)
        kinds = {n.kind for n in graph.real_nodes()}
        assert C.WITH_ENTER in kinds
        assert C.WITH_EXIT in kinds

    def test_with_exit_runs_on_body_exception(self):
        graph = build("""
            def f(ctx):
                with ctx:
                    risky()
        """)
        exits = [n for n in graph.real_nodes() if n.kind == C.WITH_EXIT]
        facts = solve(graph, Lines())
        # at least one WITH_EXIT copy sits on the exception route
        assert any(n.nid in facts and
                   graph.exc_exit in {d for d, _ in graph.succs[n.nid]}
                   for n in exits)


class TestEngine:
    def test_refine_narrows_branch_edges(self):
        class TruthOfX(Analysis):
            def initial(self):
                return "unknown"

            def join(self, a, b):
                return a if a == b else "unknown"

            def refine(self, fact, label):
                if label is not None and label[0] == "cond" \
                        and isinstance(label[1], ast.Name) \
                        and label[1].id == "x":
                    return "truthy" if label[2] else "falsy"
                return fact

        graph = build("""
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
        """)
        facts = solve(graph, TruthOfX())
        by_line = {n.stmt.lineno: facts[n.nid]
                   for n in graph.real_nodes()
                   if n.kind == C.STMT and n.nid in facts}
        assert by_line[4] == "truthy"
        assert by_line[6] == "falsy"
        assert facts[graph.exit] == "unknown"

    def test_loop_reaches_fixpoint(self):
        graph = build("""
            def f(n):
                total = 0
                while n:
                    total = total + n
                    n = n - 1
                return total
        """)
        assert lines_at_exit(graph) == {3, 4, 5, 6, 7}

    def test_lambda_builds(self):
        tree = ast.parse("g = lambda a: a.close()")
        lam = next(n for n in ast.walk(tree) if isinstance(n, ast.Lambda))
        graph = C.build_cfg(lam)
        assert lines_at_exit(graph) == {1}
