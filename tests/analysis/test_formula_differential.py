"""Differential test: the recursive-descent formula parser against a
trusted reference (Python's own expression semantics), over randomly
generated expressions — plus column-accuracy checks for the token
positions the parser now carries."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.perfctr import formula as fm
from repro.errors import GroupError

VARIABLES = {"A": 3.5, "B": 0.25, "C": 0.0, "time": 2.0}


def _leaf():
    numbers = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                        allow_infinity=False).map(repr)
    return st.one_of(numbers, st.sampled_from(sorted(VARIABLES)))


def _compose(inner):
    binop = st.tuples(inner, st.sampled_from("+-*/"), inner).map(
        lambda t: f"({t[0]}{t[1]}{t[2]})")
    negation = inner.map(lambda e: f"(-{e})")
    return st.one_of(binop, negation)


expressions = st.recursive(_leaf(), _compose, max_leaves=16)


def reference_eval(text: str) -> float:
    """Python's evaluator, with the formula module's division-by-zero
    convention (NaN instead of an exception)."""
    try:
        return float(eval(text, {"__builtins__": {}}, dict(VARIABLES)))
    except ZeroDivisionError:
        return float("nan")


@given(expressions)
def test_parser_agrees_with_reference(text):
    got = fm.evaluate(text, VARIABLES)
    expected = reference_eval(text)
    if math.isnan(expected):
        assert math.isnan(got)
    elif math.isinf(expected):
        assert got == expected
    else:
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)


@given(expressions)
def test_ast_variables_match_textual_scan(text):
    ast = fm.parse(text)
    from_ast = {v.name for v in fm.variables(ast)}
    assert from_ast == fm.formula_variables(text)


class TestColumns:
    def test_token_columns_are_one_based(self):
        tokens = fm.tokenize("A + B2*3")
        assert [(t.text, t.column) for t in tokens] == [
            ("A", 1), ("+", 3), ("B2", 5), ("*", 7), ("3", 8)]

    def test_tokens_still_unpack_as_pairs(self):
        kinds = [k for k, _ in fm.tokenize("1+x")]
        assert kinds == ["num", "op", "ident"]

    def test_bad_character_column(self):
        with pytest.raises(GroupError, match=r"column 3"):
            fm.tokenize("1+@")

    def test_unknown_variable_column(self):
        with pytest.raises(GroupError, match=r"column 5"):
            fm.evaluate("1.0*XY+1", {})

    def test_trailing_tokens_column(self):
        with pytest.raises(GroupError, match=r"column 3"):
            fm.parse("1 2")

    def test_var_nodes_carry_columns(self):
        ast = fm.parse("1e-6*(PACKED*2.0+SCALAR)/time")
        columns = {v.name: v.column for v in fm.variables(ast)}
        assert columns == {"PACKED": 7, "SCALAR": 18, "time": 26}

    def test_denominator_extraction(self):
        ast = fm.parse("A/B+C/(time*2)")
        denoms = list(fm.denominators(ast))
        assert len(denoms) == 2
