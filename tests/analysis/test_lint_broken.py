"""Deliberately broken configurations produce the expected LKxxx codes,
in both the text and the JSON reporters."""

import dataclasses
import json

import pytest

from repro.analysis import (Severity, lint_affinity, lint_event_string,
                            lint_group, render_json, render_text)
from repro.analysis.checks import encoding_diagnostics
from repro.analysis.feasibility import lint_events
from repro.analysis.registers_lint import lint_arch_registers
from repro.core.perfctr.counters import (Assignment, CounterMap,
                                         CounterProgrammer,
                                         validate_assignments)
from repro.core.perfctr.events import EventSpec, parse_event_string
from repro.core.perfctr.groups import GroupDef
from repro.errors import CounterError
from repro.hw.arch import create_machine, get_arch
from repro.hw.events import Channel, EventDef, EventTable
from repro.hw.pmu import PmuSpec
from repro.oskern.msr_driver import MsrDriver


def codes(diags):
    return {d.code for d in diags}


def table_of(*events):
    table = EventTable("testarch")
    table.add_all(list(events))
    return table


def spec_with(**changes):
    return dataclasses.replace(get_arch("nehalem_ep"), **changes)


NEHALEM = get_arch("nehalem_ep")


class TestFeasibilityCodes:
    def test_unknown_event_lk101(self):
        assert codes(lint_event_string(NEHALEM, "BOGUS:PMC0")) == {"LK101"}

    def test_missing_counter_lk102(self):
        assert codes(lint_event_string(NEHALEM, "L1D_REPL:PMC9")) == {"LK102"}

    def test_duplicate_counter_lk103(self):
        diags = lint_events(NEHALEM, [EventSpec("L1D_REPL", "PMC0"),
                                      EventSpec("L1D_M_EVICT", "PMC0")])
        assert "LK103" in codes(diags)

    def test_fixed_event_wrong_counter_lk110(self):
        diags = lint_event_string(NEHALEM, "INSTR_RETIRED_ANY:PMC0")
        assert codes(diags) == {"LK110"}

    def test_options_on_fixed_counter_lk111(self):
        diags = lint_event_string(NEHALEM, "INSTR_RETIRED_ANY:FIXC0:EDGEDETECT")
        assert codes(diags) == {"LK111"}

    def test_uncore_event_on_core_counter_lk112(self):
        diags = lint_event_string(NEHALEM, "UNC_L3_LINES_IN_ANY:PMC0")
        assert codes(diags) == {"LK112"}

    def test_core_event_on_uncore_counter_lk113(self):
        diags = lint_event_string(NEHALEM, "L1D_REPL:UPMC0")
        assert codes(diags) == {"LK113"}

    def test_restricted_event_lk114(self):
        diags = lint_event_string(NEHALEM,
                                  "OFFCORE_RESPONSE_0_ANY_REQUEST:PMC2")
        assert codes(diags) == {"LK114"}

    def test_no_matching_lk104(self):
        # Three events all restricted to PMC0/PMC1: each individual
        # binding can be made legal, but no conflict-free assignment
        # of all three exists.
        restricted = [EventDef(f"R{i}", 0x10 + i, 0, Channel.LOADS,
                               counter_mask=frozenset({0, 1}))
                      for i in range(3)]
        spec = spec_with(events=table_of(*restricted))
        diags = lint_events(spec, [EventSpec("R0", "PMC0"),
                                   EventSpec("R1", "PMC1"),
                                   EventSpec("R2", "PMC0")])
        assert "LK104" in codes(diags)
        lk104 = [d for d in diags if d.code == "LK104"]
        assert lk104[0].severity is Severity.ERROR

    def test_oversubscription_lk105(self):
        events = [EventDef(f"E{i}", 0x20 + i, 0, Channel.LOADS)
                  for i in range(5)]
        spec = spec_with(events=table_of(*events))
        specs = [EventSpec(f"E{i}", f"PMC{i % 4}") for i in range(5)]
        diags = lint_events(spec, specs)
        assert "LK105" in codes(diags)
        assert [d for d in diags if d.code == "LK105"][0].severity \
            is Severity.WARNING

    def test_unschedulable_event_lk106(self):
        impossible = EventDef("NOWHERE", 0x30, 0, Channel.LOADS,
                              counter_mask=frozenset({9}))
        spec = spec_with(events=table_of(impossible))
        diags = lint_events(spec, [EventSpec("NOWHERE", "PMC0")])
        assert "LK106" in codes(diags)


class TestRegisterCodes:
    def test_event_field_overflow_lk301(self):
        spec = spec_with(events=table_of(
            EventDef("TOO_WIDE", 0x1FF, 0x00, Channel.LOADS)))
        assert "LK301" in codes(lint_arch_registers(spec))

    def test_umask_overflow_lk302(self):
        spec = spec_with(events=table_of(
            EventDef("WIDE_UMASK", 0x10, 0x100, Channel.LOADS)))
        assert "LK302" in codes(lint_arch_registers(spec))

    def test_cmask_overflow_lk303_and_reserved_spill_lk304(self):
        event = NEHALEM.events.lookup("L1D_REPL")
        diags = encoding_diagnostics(event, NEHALEM.pmu, cmask=0x200)
        # The oversized cmask both overflows its 8-bit field and, once
        # shifted, lands in the reserved bits above bit 31.
        assert codes(diags) == {"LK303", "LK304"}

    def test_fixed_index_out_of_range_lk305(self):
        spec = spec_with(events=table_of(
            EventDef("PHANTOM_FIXED", 0x00, 0x00, Channel.INSTRUCTIONS,
                     fixed_index=7)))
        assert "LK305" in codes(lint_arch_registers(spec))

    def test_fixed_event_without_fixed_counters_lk305(self):
        amd = get_arch("amd_istanbul")
        spec = dataclasses.replace(amd, events=table_of(
            EventDef("PHANTOM_FIXED", 0x00, 0x00, Channel.INSTRUCTIONS,
                     fixed_index=0)))
        assert "LK305" in codes(lint_arch_registers(spec))

    def test_narrow_counter_overflow_hazard_lk107(self):
        spec = spec_with(pmu=PmuSpec(num_pmcs=4, has_fixed=True,
                                     counter_width=32))
        diags = lint_arch_registers(spec)
        assert "LK107" in codes(diags)
        assert [d for d in diags if d.code == "LK107"][0].severity \
            is Severity.WARNING

    def test_full_width_counter_has_no_hazard(self):
        assert "LK107" not in codes(lint_arch_registers(NEHALEM))


class TestFormulaCodes:
    def _group(self, metrics, events=(("L1D_REPL", "PMC0"),)):
        return GroupDef("TESTGRP", "test group",
                        tuple(EventSpec(e, c) for e, c in events),
                        tuple(metrics))

    def test_unknown_identifier_lk201_with_column(self):
        group = self._group([("bad", "1.0*NOT_MEASURED/time")])
        diags = lint_group(NEHALEM, group)
        lk201 = [d for d in diags if d.code == "LK201"]
        assert len(lk201) == 1
        assert lk201[0].column == 5

    def test_unused_event_lk202(self):
        group = self._group([("noop", "time*1.0")])
        diags = lint_group(NEHALEM, group)
        assert "LK202" in codes(diags)

    def test_raw_denominator_lk203_is_note(self):
        group = self._group([("ratio", "1.0/L1D_REPL")])
        lk203 = [d for d in lint_group(NEHALEM, group)
                 if d.code == "LK203"]
        assert len(lk203) == 1
        assert lk203[0].severity is Severity.NOTE

    def test_unparseable_formula_lk204(self):
        group = self._group([("broken", "L1D_REPL*")])
        assert "LK204" in codes(lint_group(NEHALEM, group))


class TestAffinityCodes:
    def test_core_oversubscription_lk401(self):
        diags = lint_affinity(NEHALEM, "0,8")  # SMT siblings of core 0
        assert "LK401" in codes(diags)

    def test_skip_mask_mismatch_lk402(self):
        diags = lint_affinity(NEHALEM, "0", skip_mask=0x3)
        assert "LK402" in codes(diags)

    def test_socket_lock_sharing_lk403_is_note(self):
        from repro.core.perfctr.groups import lookup_group
        mem = lookup_group(NEHALEM, "MEM")
        lk403 = [d for d in lint_affinity(NEHALEM, "0-3", group=mem)
                 if d.code == "LK403"]
        assert len(lk403) == 1
        assert lk403[0].severity is Severity.NOTE

    def test_bad_expression_lk404(self):
        assert codes(lint_affinity(NEHALEM, "0-")) == {"LK404"}
        assert codes(lint_affinity(NEHALEM, "Z9:0-3")) == {"LK404"}


class TestReporters:
    def _broken_diags(self):
        return lint_event_string(NEHALEM, "BOGUS:PMC0,L1D_REPL:PMC9")

    def test_text_report_carries_codes(self):
        text = render_text(self._broken_diags())
        assert "LK101" in text and "LK102" in text
        assert "2 error(s)" in text

    def test_json_report_carries_codes(self):
        doc = json.loads(render_json(self._broken_diags()))
        assert doc["version"] == 1
        assert [d["code"] for d in doc["diagnostics"]] == ["LK101", "LK102"]
        assert doc["summary"] == {"errors": 2, "warnings": 0, "notes": 0}

    def test_cli_json_and_exit_code(self, capsys):
        from repro.cli.lint_cmd import main
        rc = main(["--arch", "nehalem_ep", "-g", "BOGUS:PMC0", "--json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["diagnostics"][0]["code"] == "LK101"


class TestRuntimeSharesCheckDefinitions:
    """The dedup satellite: validate_assignments and CounterProgrammer
    raise errors rendered from the same diagnostics the linter emits."""

    def test_validator_error_carries_lint_code(self):
        cm = CounterMap(NEHALEM)
        with pytest.raises(CounterError, match="LK110.*hard-wired"):
            validate_assignments(NEHALEM.events, cm,
                                 parse_event_string("INSTR_RETIRED_ANY:PMC0"))
        with pytest.raises(CounterError, match="LK114.*cannot be counted"):
            validate_assignments(
                NEHALEM.events, cm,
                parse_event_string("OFFCORE_RESPONSE_0_ANY_REQUEST:PMC2"))

    def test_programmer_refuses_what_the_linter_rejects(self):
        machine = create_machine("nehalem_ep")
        cm = CounterMap(machine.spec)
        programmer = CounterProgrammer(MsrDriver(machine), cm)
        bad_event = EventDef("TOO_WIDE", 0x1FF, 0x00, Channel.LOADS)
        assignment = Assignment(bad_event, cm.lookup("PMC0"))
        lint_codes = codes(encoding_diagnostics(bad_event, machine.spec.pmu))
        assert lint_codes == {"LK301"}
        with pytest.raises(CounterError, match="LK301"):
            programmer.setup_core(0, [assignment])
