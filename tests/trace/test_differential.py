"""Observing a measurement must not change it.

Runs the same workloads with tracing disabled (the default) and
enabled, and asserts every produced number is bit-for-bit identical —
the tracer may only add latency, never touch results.
"""

import pytest

from repro import trace
from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.measurement import derive_metrics
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.workloads.kernels import streaming_triad, strided_load
from repro.workloads.runner import run_trace


@pytest.fixture
def traced():
    """Enable the global tracer for the test body, always restore."""
    trace.enable(reset=True)
    yield trace.TRACER
    trace.disable()
    trace.reset()


def wrap_measurement():
    """One FLOPS_DP wrap; wall time pinned so derived metrics (which
    divide by the real, nondeterministic runtime) become comparable."""
    machine = create_machine("nehalem_ep")
    result = LikwidPerfCtr(machine).wrap(
        "0-3", "FLOPS_DP",
        lambda: machine.apply_counts(
            {cpu: {Channel.FLOPS_PACKED_DP: 1e6,
                   Channel.INSTRUCTIONS: 4e6,
                   Channel.CORE_CYCLES: 5e6} for cpu in range(4)}))
    result.wall_time = 1.0
    derive_metrics(result, result.group, machine.spec.clock_hz)
    return result


class TestMeasurementUnchanged:
    def test_wrap_result_bit_identical(self, traced):
        baseline = wrap_measurement()          # tracing on (fixture)
        trace.disable()
        dark = wrap_measurement()              # tracing off
        assert dark.counts == baseline.counts
        assert dark.metrics == baseline.metrics
        assert dark.io_retries == baseline.io_retries
        assert dark.warnings == baseline.warnings

    def test_wrap_produced_spans(self, traced):
        wrap_measurement()
        names = {r.name for r in traced.records()}
        assert {"perfctr.wrap", "perfctr.start", "perfctr.program",
                "perfctr.read", "perfctr.workload"} <= names
        assert traced.metrics.value("perfctr.sessions.started") == 1


class TestRunTraceUnchanged:
    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_channels_bit_identical(self, traced, engine):
        def run():
            machine = create_machine("core2")
            return run_trace(machine, 0, streaming_triad(2048),
                             engine=engine)

        lit = run()
        trace.disable()
        dark = run()
        assert dark == lit                     # dict of floats, exact

    def test_batched_strided_identical(self, traced):
        def run():
            machine = create_machine("nehalem_ep")
            return run_trace(machine, 0, strided_load(4000, 128))

        lit = run()
        trace.disable()
        assert run() == lit

    def test_replay_spans_recorded(self, traced):
        machine = create_machine("core2")
        run_trace(machine, 0, streaming_triad(1024))
        names = {r.name for r in traced.records()}
        assert "runner.run_trace" in names
        assert {"batch.replay", "batch.replay_fast"} & names
