"""Metrics registry: counters, gauges, histogram percentile math."""

import math

import pytest

from repro.trace.metrics import Histogram, MetricsRegistry


class TestCounters:
    def test_incr_and_value(self):
        reg = MetricsRegistry()
        reg.incr("msr.pread")
        reg.incr("msr.pread", 4)
        assert reg.value("msr.pread") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().value("never.touched") == 0

    def test_counter_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.set_gauge("g", 3.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("batch.cache.bytes", 10)
        reg.set_gauge("batch.cache.bytes", 250)
        assert reg.snapshot()["gauges"]["batch.cache.bytes"] == 250.0


class TestKindCollision:
    def test_name_cannot_change_kind(self):
        reg = MetricsRegistry()
        reg.incr("x")
        with pytest.raises(ValueError):
            reg.observe("x", 1.0)
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestHistogramPercentiles:
    def test_linear_interpolation_definition(self):
        h = Histogram("t")
        for v in (10.0, 20.0, 30.0, 40.0):
            h.observe(v)
        # rank = p/100 * (n-1); n=4 -> p50 lands midway between 20, 30
        assert h.percentile(0) == 10.0
        assert h.percentile(50) == 25.0
        assert h.percentile(100) == 40.0
        assert h.percentile(25) == pytest.approx(17.5)

    def test_percentiles_match_numpy(self):
        numpy = pytest.importorskip("numpy")
        h = Histogram("t")
        values = [float((17 * i) % 101) for i in range(101)]
        for v in values:
            h.observe(v)
        for p in (0, 10, 50, 90, 99, 100):
            assert h.percentile(p) == pytest.approx(
                float(numpy.percentile(values, p)))

    def test_single_observation(self):
        h = Histogram("t")
        h.observe(7.0)
        assert h.percentile(0) == h.percentile(50) == h.percentile(100) == 7.0

    def test_unordered_input(self):
        h = Histogram("t")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.percentile(50) == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(Histogram("t").percentile(50))

    def test_out_of_range_raises(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_summary_fields(self):
        h = Histogram("t")
        for v in range(1, 11):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 10
        assert s["sum"] == 55.0
        assert s["min"] == 1.0
        assert s["max"] == 10.0
        assert s["mean"] == 5.5
        assert s["p50"] == 5.5
        assert s["p90"] == pytest.approx(9.1)

    def test_empty_summary_is_json_safe(self):
        s = Histogram("t").summary()
        assert s["count"] == 0
        assert all(isinstance(v, (int, float)) and v == v
                   for v in s.values())   # no NaN leaks into exports

    def test_bounded_samples_keep_exact_count_sum_minmax(self):
        h = Histogram("t", max_samples=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == sum(range(100))
        assert h.min == 0.0 and h.max == 99.0
        # Percentiles degrade to the retained prefix, but stay defined.
        assert 0.0 <= h.percentile(50) <= 99.0
