"""Exporters: Chrome trace-event golden file, schema validation,
text report."""

import json
from pathlib import Path

import pytest

from repro.trace.export import (PROFILE_SCHEMA, chrome_trace_events,
                                profile_dict, text_report, validate_profile,
                                write_profile)
from repro.trace.tracer import SpanRecord, Tracer

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace.json"


def make_tracer() -> Tracer:
    """A tracer with a fixed, hand-written history (deterministic
    timestamps/thread ids, so the export is byte-stable)."""
    tracer = Tracer()
    tracer._records = [
        SpanRecord(span_id=1, name="perfctr.wrap", start_ns=1_000,
                   duration_ns=900_000, thread_id=7, depth=0,
                   parent_id=None, args={"group": "FLOPS_DP"}),
        SpanRecord(span_id=2, name="batch.replay", start_ns=2_000,
                   duration_ns=500_000, thread_id=7, depth=1,
                   parent_id=1, args={"engine": "batch", "accesses": 128}),
        SpanRecord(span_id=3, name="perfctr.read", start_ns=600_000,
                   duration_ns=1_500, thread_id=8, depth=0,
                   parent_id=None, args={}, error="MsrIOError"),
    ]
    tracer.metrics.incr("batch.cache.hits", 3)
    tracer.metrics.incr("msr.pread", 40)
    tracer.metrics.set_gauge("batch.cache.bytes", 4096)
    for v in (100.0, 200.0, 300.0):
        tracer.metrics.observe("msr.pread.ns", v)
    return tracer


class TestChromeTraceGolden:
    def test_matches_golden_file(self):
        profile = profile_dict(make_tracer(), tool="golden", pid=1)
        golden = json.loads(GOLDEN.read_text())
        assert profile == golden, (
            "exporter output drifted from tests/trace/golden/"
            "chrome_trace.json — if the change is intentional, "
            "regenerate the golden file and bump PROFILE_VERSION "
            "if the shape changed")

    def test_golden_is_schema_valid(self):
        assert validate_profile(json.loads(GOLDEN.read_text())) == []

    def test_events_are_chrome_complete_events(self):
        events = chrome_trace_events(make_tracer().records(), pid=1)
        assert all(e["ph"] == "X" for e in events)
        # Microsecond units: 900_000 ns -> 900 us.
        wrap = next(e for e in events if e["name"] == "perfctr.wrap")
        assert wrap["ts"] == 1.0 and wrap["dur"] == 900.0
        # Events sorted by start time, pid/tid integral.
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        assert all(isinstance(e["tid"], int) for e in events)

    def test_error_spans_carry_error_arg(self):
        events = chrome_trace_events(make_tracer().records())
        read = next(e for e in events if e["name"] == "perfctr.read")
        assert read["args"]["error"] == "MsrIOError"


class TestProfileSchema:
    def test_real_profile_round_trips(self, tmp_path):
        path = tmp_path / "p.json"
        write_profile(str(path), make_tracer(), tool="test")
        reloaded = json.loads(path.read_text())
        assert validate_profile(reloaded) == []
        assert reloaded["meta"]["tool"] == "test"

    def test_empty_tracer_is_valid(self):
        assert validate_profile(profile_dict(Tracer())) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda p: p.pop("traceEvents"), "traceEvents"),
        (lambda p: p["meta"].pop("version"), "version"),
        (lambda p: p["meta"].update(version=99), "not in"),
        (lambda p: p["traceEvents"][0].pop("ts"), "ts"),
        (lambda p: p["traceEvents"][0].update(ph="Z"), "not in"),
        (lambda p: p["traceEvents"][0].update(tid="main"), "integer"),
        (lambda p: p["metrics"].pop("histograms"), "histograms"),
        (lambda p: p["spans"][0].update(duration_ns=-5), "negative"),
        (lambda p: p["spans"][0].pop("name"), "name"),
    ])
    def test_validator_catches_drift(self, mutate, fragment):
        profile = profile_dict(make_tracer())
        mutate(profile)
        errors = validate_profile(profile)
        assert errors, "mutation not caught"
        assert any(fragment in e for e in errors), errors

    def test_schema_is_json_serialisable(self):
        json.dumps(PROFILE_SCHEMA)

    def test_validate_cli(self, tmp_path, capsys):
        from repro.trace.validate import main
        path = tmp_path / "p.json"
        write_profile(str(path), make_tracer())
        assert main([str(path)]) == 0
        path.write_text("{}")
        assert main([str(path)]) == 1
        path.write_text("not json")
        assert main([str(path)]) == 1
        assert main([]) == 2


class TestTextReport:
    def test_mentions_spans_and_metrics(self):
        report = text_report(make_tracer())
        assert "perfctr.wrap" in report
        assert "batch.replay" in report
        assert "batch.cache.hits = 3" in report
        assert "msr.pread.ns" in report
        assert "p50=200" in report

    def test_empty_tracer(self):
        report = text_report(Tracer())
        assert "no spans recorded" in report

    def test_sorted_by_total_time(self):
        report = text_report(make_tracer())
        lines = report.splitlines()
        assert lines.index([l for l in lines if "perfctr.wrap" in l][0]) \
            < lines.index([l for l in lines if "perfctr.read" in l][0])
