"""Span tracer semantics: nesting, exception safety, thread-local
stacks, the decorator form, and the disabled no-op fast path."""

import threading

import pytest

from repro.trace.tracer import Tracer, _NULL_SPAN


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestNesting:
    def test_parent_and_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent_id == by_name["middle"].span_id

    def test_siblings_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_children_recorded_before_parents(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r.name for r in tracer.records()] == ["inner", "outer"]

    def test_monotonic_containment(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records()
        assert outer.start_ns <= inner.start_ns
        assert (inner.start_ns + inner.duration_ns
                <= outer.start_ns + outer.duration_ns)

    def test_args_recorded(self, tracer):
        with tracer.span("replay", engine="batch", accesses=42):
            pass
        (record,) = tracer.records()
        assert record.args == {"engine": "batch", "accesses": 42}


class TestExceptionSafety:
    def test_exception_propagates_and_is_recorded(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record.error == "ValueError"

    def test_stack_unwound_after_raise(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        # A new root span must not inherit a phantom parent.
        with tracer.span("fresh"):
            pass
        fresh = tracer.spans_named("fresh")[0]
        assert fresh.depth == 0
        assert fresh.parent_id is None
        assert tracer.spans_named("outer")[0].error == "RuntimeError"

    def test_success_has_no_error(self, tracer):
        with tracer.span("fine"):
            pass
        assert tracer.records()[0].error is None


class TestThreadLocalStacks:
    def test_threads_do_not_see_each_other(self, tracer):
        release = threading.Event()
        entered = threading.Barrier(3)

        def work(name):
            with tracer.span(name):
                entered.wait(timeout=5)   # both threads inside a span
                release.wait(timeout=5)
                with tracer.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        entered.wait(timeout=5)
        release.set()
        for t in threads:
            t.join(timeout=5)
        for i in range(2):
            parent = tracer.spans_named(f"t{i}")[0]
            child = tracer.spans_named(f"t{i}.child")[0]
            # Each child's parent is its own thread's span, never the
            # concurrently open span of the other thread.
            assert child.parent_id == parent.span_id
            assert child.thread_id == parent.thread_id
            assert parent.depth == 0 and child.depth == 1

    def test_thread_id_recorded(self, tracer):
        ids = {}

        def work():
            with tracer.span("in-thread"):
                ids["thread"] = threading.get_ident()

        t = threading.Thread(target=work)
        t.start()
        t.join()
        assert tracer.records()[0].thread_id == ids["thread"]


class TestDecorator:
    def test_traced_records_per_call(self, tracer):
        @tracer.traced("fn.span", kind="test")
        def fn(x):
            return x * 2

        assert fn(3) == 6
        assert fn(4) == 8
        spans = tracer.spans_named("fn.span")
        assert len(spans) == 2
        assert spans[0].args == {"kind": "test"}

    def test_traced_default_name(self, tracer):
        @tracer.traced()
        def some_function():
            return 1

        some_function()
        assert any("some_function" in r.name for r in tracer.records())

    def test_traced_respects_runtime_toggle(self):
        tracer = Tracer(enabled=False)

        @tracer.traced("toggled")
        def fn():
            return 1

        fn()
        assert tracer.records() == []
        tracer.enable()
        fn()
        assert len(tracer.spans_named("toggled")) == 1

    def test_traced_propagates_exception(self, tracer):
        @tracer.traced("raises")
        def fn():
            raise KeyError("x")

        with pytest.raises(KeyError):
            fn()
        assert tracer.spans_named("raises")[0].error == "KeyError"


class TestDisabledFastPath:
    def test_span_returns_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b", key="value") is tracer.span("c")

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible"):
            pass
        assert tracer.records() == []

    def test_enable_reset_clears(self):
        tracer = Tracer(enabled=True)
        with tracer.span("old"):
            pass
        tracer.metrics.incr("old.counter")
        tracer.enable(reset=True)
        assert tracer.records() == []
        assert tracer.metrics.value("old.counter") == 0

    def test_enable_without_reset_keeps(self):
        tracer = Tracer(enabled=True)
        with tracer.span("kept"):
            pass
        tracer.disable()
        tracer.enable(reset=False)
        assert len(tracer.spans_named("kept")) == 1

    def test_disable_keeps_records_readable(self):
        tracer = Tracer(enabled=True)
        with tracer.span("exported-later"):
            pass
        tracer.disable()
        assert len(tracer.records()) == 1


def test_global_tracer_disabled_by_default():
    from repro import trace
    assert trace.TRACER.enabled is False
