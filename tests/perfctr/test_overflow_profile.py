"""Tests for PMU overflow interrupts and the sampling profiler."""

import pytest

from repro.core.profile import CodeSegment, SamplingProfiler
from repro.errors import CounterError
from repro.hw import registers as regs
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.hw.pmu import COUNTER_MASK


@pytest.fixture
def machine():
    return create_machine("nehalem_ep")


class TestOverflowStatus:
    def _arm_pmc0(self, machine, preload):
        ev = machine.spec.events.lookup("L1D_REPL")
        machine.wrmsr(0, regs.IA32_PERFEVTSEL0,
                      regs.evtsel_encode(ev.event_code, ev.umask,
                                         enable=True))
        machine.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b1)
        machine.msr[0].poke(regs.IA32_PMC0, preload)

    def test_wrap_sets_status_bit(self, machine):
        self._arm_pmc0(machine, COUNTER_MASK - 5)
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10}})
        status = machine.rdmsr(0, regs.IA32_PERF_GLOBAL_STATUS)
        assert status & 0b1

    def test_no_wrap_no_status(self, machine):
        self._arm_pmc0(machine, 0)
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10}})
        assert machine.rdmsr(0, regs.IA32_PERF_GLOBAL_STATUS) == 0

    def test_ovf_ctrl_acknowledges(self, machine):
        self._arm_pmc0(machine, COUNTER_MASK - 1)
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10}})
        machine.wrmsr(0, regs.IA32_PERF_GLOBAL_OVF_CTRL, 0b1)
        assert machine.rdmsr(0, regs.IA32_PERF_GLOBAL_STATUS) == 0

    def test_fixed_counter_overflow_bit_32(self, machine):
        machine.wrmsr(0, regs.IA32_FIXED_CTR_CTRL,
                      regs.fixed_ctr_ctrl_encode(0))
        machine.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL,
                      regs.global_ctrl_fixed_bit(0))
        machine.msr[0].poke(regs.IA32_FIXED_CTR0, COUNTER_MASK)
        machine.apply_counts({0: {Channel.INSTRUCTIONS: 2}})
        assert machine.rdmsr(0, regs.IA32_PERF_GLOBAL_STATUS) & (1 << 32)

    def test_handler_called_on_overflow(self, machine):
        fired = []
        machine.core_pmus[0].overflow_handlers.append(
            lambda hw, bit: fired.append((hw, bit)))
        self._arm_pmc0(machine, COUNTER_MASK - 1)
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 5}})
        assert fired == [(0, 0)]


class TestSamplingProfiler:
    SEGMENTS = [
        CodeSegment("main", 1_000_000),
        CodeSegment("hot_kernel", 8_000_000,
                    {Channel.FLOPS_PACKED_DP: 4_000_000}),
        CodeSegment("cleanup", 1_000_000),
    ]

    def test_profile_matches_cycle_distribution(self, machine):
        profiler = SamplingProfiler(machine, 0, period=50_000)
        profiler.run(self.SEGMENTS)
        profile = {e.symbol: e.fraction for e in profiler.profile()}
        assert profile["hot_kernel"] == pytest.approx(0.8, abs=0.02)
        assert profile["main"] == pytest.approx(0.1, abs=0.02)

    def test_hottest_symbol_first(self, machine):
        profiler = SamplingProfiler(machine, 0, period=100_000)
        profiler.run(self.SEGMENTS)
        assert profiler.profile()[0].symbol == "hot_kernel"

    def test_estimated_events_scale_with_period(self, machine):
        profiler = SamplingProfiler(machine, 0, period=200_000)
        profiler.run(self.SEGMENTS)
        total = sum(e.estimated_events for e in profiler.profile())
        assert total == pytest.approx(10_000_000, rel=0.05)

    def test_finer_period_more_samples(self, machine):
        coarse = SamplingProfiler(machine, 0, period=500_000)
        coarse.run(self.SEGMENTS)
        fine = SamplingProfiler(create_machine("nehalem_ep"), 0,
                                period=50_000)
        fine.run(self.SEGMENTS)
        assert sum(fine.samples.values()) > 5 * sum(coarse.samples.values())

    def test_event_based_profile(self, machine):
        """Sampling on a PMC event attributes misses, not cycles."""
        segments = [
            CodeSegment("compute", 5_000_000,
                        {Channel.L1D_REPLACEMENT: 1_000}),
            CodeSegment("memory_bound", 1_000_000,
                        {Channel.L1D_REPLACEMENT: 99_000}),
        ]
        profiler = SamplingProfiler(machine, 0, event="L1D_REPL",
                                    period=1_000)
        profiler.run(segments, chunk=50_000)
        profile = {e.symbol: e.fraction for e in profiler.profile()}
        assert profile["memory_bound"] > 0.9

    def test_run_twice_rejected(self, machine):
        profiler = SamplingProfiler(machine, 0)
        profiler.run([CodeSegment("a", 1000)])
        with pytest.raises(CounterError, match="already ran"):
            profiler.run([CodeSegment("b", 1000)])

    def test_invalid_period(self, machine):
        with pytest.raises(CounterError, match="period"):
            SamplingProfiler(machine, 0, period=0)

    def test_render(self, machine):
        profiler = SamplingProfiler(machine, 0, period=100_000)
        profiler.run(self.SEGMENTS)
        text = profiler.render()
        assert "hot_kernel" in text and "samples" in text
