"""Driver fault counts and programmer retry counts cannot disagree.

The bug this guards against: ``DriverStats.faults`` and the
programmer's retry counter used to be maintained independently, so a
refactor touching one path could silently desynchronise them.  Both
now flow through one :class:`~repro.trace.metrics.MetricsRegistry`
(the programmer's ``retries`` is *derived* from it), making the
invariant structural:

    msr.faults.transient == msr.io.retries
                         == driver.stats.faults == result.io_retries

whenever every fault is transient and every retry succeeds.
"""

from repro.core.perfctr import LikwidPerfCtr
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.msr_driver import FaultPlan, MsrDriver
from repro.trace.metrics import MetricsRegistry


def faulty_wrap(registry, *, seed=1234, rate=0.1):
    machine = create_machine("nehalem_ep")
    driver = MsrDriver(machine,
                       faults=FaultPlan(seed=seed, read_fault_rate=rate),
                       metrics=registry)
    result = LikwidPerfCtr(machine, driver).wrap(
        "0-3", "FLOPS_DP",
        lambda: machine.apply_counts(
            {cpu: {Channel.FLOPS_PACKED_DP: 1e6,
                   Channel.INSTRUCTIONS: 4e6,
                   Channel.CORE_CYCLES: 5e6} for cpu in range(4)}))
    return driver, result


class TestReconciliation:
    def test_ten_percent_eagain_counters_agree(self):
        """The ISSUE's regression test: 10% injected EAGAIN, all four
        views of 'how many transient faults' must be equal."""
        registry = MetricsRegistry()
        driver, result = faulty_wrap(registry)

        transient = registry.value("msr.faults.transient")
        retries = registry.value("msr.io.retries")
        assert transient > 0                       # faults did happen
        assert registry.value("msr.io.giveups") == 0
        assert transient == retries
        assert driver.stats.faults == transient
        assert result.io_retries == retries

    def test_agreement_is_seed_independent(self):
        for seed in (1, 7, 42):
            registry = MetricsRegistry()
            driver, result = faulty_wrap(registry, seed=seed, rate=0.15)
            assert (driver.stats.faults
                    == registry.value("msr.faults.transient")
                    == registry.value("msr.io.retries")
                    == result.io_retries)

    def test_fault_free_run_all_zero(self):
        registry = MetricsRegistry()
        driver, result = faulty_wrap(registry, rate=0.0)
        assert driver.stats.faults == 0
        assert registry.value("msr.faults.transient") == 0
        assert registry.value("msr.io.retries") == 0
        assert result.io_retries == 0

    def test_fault_counters_are_always_on(self):
        """Fault accounting must not depend on the tracer being
        enabled — it feeds ``DriverStats``/``io_retries`` which are
        part of the tool's normal (untraced) output."""
        from repro import trace
        assert trace.TRACER.enabled is False       # default state
        registry = MetricsRegistry()
        _, result = faulty_wrap(registry)
        assert registry.value("msr.faults.transient") > 0
        assert result.io_retries > 0

    def test_private_registry_does_not_pollute_global(self):
        from repro import trace
        before = trace.metrics().value("msr.faults.transient")
        faulty_wrap(MetricsRegistry())
        assert trace.metrics().value("msr.faults.transient") == before
