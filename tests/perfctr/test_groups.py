"""Tests for the preconfigured event groups and their availability."""

import pytest

from repro.core.perfctr.counters import CounterMap, validate_assignments
from repro.core.perfctr.formula import formula_variables
from repro.core.perfctr.groups import (GROUP_FUNCTIONS, groups_for,
                                       lookup_group)
from repro.errors import GroupError
from repro.hw.arch import ARCH_SPECS, get_arch


class TestCatalog:
    def test_paper_group_table_complete(self):
        assert set(GROUP_FUNCTIONS) == {
            "FLOPS_DP", "FLOPS_SP", "L2", "L3", "MEM", "CACHE",
            "L2CACHE", "L3CACHE", "DATA", "BRANCH", "TLB"}

    def test_nehalem_offers_all_groups(self):
        groups = groups_for(get_arch("nehalem_ep"))
        assert set(groups) == set(GROUP_FUNCTIONS)

    def test_core2_has_no_l3_groups(self):
        """Paper: groups are provided 'as long as the native events
        support them' — Core 2 has no L3."""
        groups = groups_for(get_arch("core2"))
        assert "L3" not in groups
        assert "L3CACHE" not in groups
        assert "MEM" in groups   # via L2 line traffic (L2 is the LLC)

    def test_amd_groups_consume_pmcs_for_cpi(self):
        group = lookup_group(get_arch("amd_istanbul"), "FLOPS_DP")
        counters = [e.counter for e in group.events]
        assert "PMC0" in counters and "PMC1" in counters  # instr + cycles
        assert len(group.events) == 4

    def test_unknown_group(self):
        with pytest.raises(GroupError, match="not available"):
            lookup_group(get_arch("core2"), "L3")
        with pytest.raises(GroupError, match="not available"):
            lookup_group(get_arch("nehalem_ep"), "NOT_A_GROUP")

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_flops_dp_everywhere(self, arch):
        assert "FLOPS_DP" in groups_for(get_arch(arch))


class TestGroupWellFormedness:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_all_groups_validate_against_counters(self, arch):
        """Every group's event list must pass the same validation the
        tool applies to explicit event strings."""
        spec = get_arch(arch)
        cm = CounterMap(spec)
        for name, group in groups_for(spec).items():
            assignments = validate_assignments(spec.events, cm,
                                               list(group.events))
            assert len(assignments) == len(group.events), name

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_metric_formulas_reference_counted_events(self, arch):
        """Each formula variable must be an event of the group, an
        auto-counted fixed event, or a built-in (time, clock)."""
        spec = get_arch(arch)
        has_fixed = spec.pmu.has_fixed
        builtin = {"time", "clock"}
        auto = ({"INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE",
                 "CPU_CLK_UNHALTED_REF"} if has_fixed else set())
        for name, group in groups_for(spec).items():
            event_names = {e.event for e in group.events}
            for label, formula in group.metrics:
                unknown = (formula_variables(formula) - event_names
                           - builtin - auto)
                assert not unknown, f"{arch}/{name}/{label}: {unknown}"

    def test_uncore_groups_use_upmc(self):
        for name in ("MEM", "L3CACHE"):
            group = lookup_group(get_arch("westmere_ep"), name)
            assert all(e.counter.startswith("UPMC") for e in group.events)

    def test_groups_fit_counter_budget(self):
        """No group may demand more PMCs than the architecture has."""
        for arch in sorted(ARCH_SPECS):
            spec = get_arch(arch)
            for name, group in groups_for(spec).items():
                pmcs = [e for e in group.events if e.counter.startswith("PMC")]
                assert len(pmcs) <= spec.pmu.num_pmcs, f"{arch}/{name}"
