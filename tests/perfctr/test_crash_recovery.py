"""Crash matrix: kill the tool at every device-op index, recover,
and demand bit-identical pristine MSR state with zero leaked locks
(ISSUE 5 acceptance).

``kill_after=N`` models SIGKILL: the N-th device operation raises
``ProcessKilled``, the driver's process model is dead, and no
teardown mutates anything.  Recovery then replays the write-ahead
journal backwards and reclaims the dead pid's socket locks.
"""

import math

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.errors import ProcessKilled, SimulatedInterrupt
from repro.hw.arch import available, create_machine
from repro.hw.events import Channel, CounterScope
from repro.oskern.journal import state_mutating_addresses
from repro.oskern.msr_driver import FaultPlan, MsrDriver
from repro.oskern.recovery import RecoveryEngine

ALL_ARCHES = available()


def snapshot(machine):
    """Every state-mutating register of every hwthread, by value."""
    addrs = sorted(state_mutating_addresses(machine.spec))
    return {(cpu, addr): machine.msr[cpu].peek(addr)
            for cpu in range(machine.num_hwthreads)
            for addr in addrs}


def first_pmc_event(spec):
    for name in spec.events.names():
        ev = spec.events.lookup(name)
        if not ev.is_fixed and ev.scope == CounterScope.CORE \
                and ev.allowed_on(0):
            return ev
    raise AssertionError(f"no PMC event on {spec.name}")


def run_measurement(machine, driver, group_or_events, cpus):
    perfctr = LikwidPerfCtr(machine, driver)
    return perfctr.wrap(
        cpus, group_or_events,
        lambda: machine.apply_counts(
            {cpu: {Channel.INSTRUCTIONS: 1e6, Channel.CORE_CYCLES: 2e6}
             for cpu in cpus}))


def count_ops(arch, group_or_events, cpus, *, plan=None):
    """Device-op count of one complete measurement under *plan*."""
    machine = create_machine(arch)
    driver = MsrDriver(machine, faults=plan or FaultPlan(seed=0))
    run_measurement(machine, driver, group_or_events, cpus)
    return driver._faults.op_count


def crash_and_recover(arch, group_or_events, cpus, kill_at, *,
                      read_fault_rate=0.0, seed=0):
    """Kill at op *kill_at*, recover, and return (machine, driver,
    pristine snapshot, recovery report)."""
    machine = create_machine(arch)
    pristine = snapshot(machine)
    plan = FaultPlan(seed=seed, kill_after=kill_at,
                     read_fault_rate=read_fault_rate)
    driver = MsrDriver(machine, faults=plan)
    with pytest.raises(ProcessKilled):
        run_measurement(machine, driver, group_or_events, cpus)
    # The dead process refuses everything, including recovery.
    with pytest.raises(ProcessKilled):
        driver.open(0)
    driver.respawn()
    report = RecoveryEngine(driver).recover()
    return machine, driver, pristine, report


class TestCrashMatrixFullGroup:
    """Every kill index of a full uncore measurement on nehalem_ep."""

    GROUP = "MEM"          # programs core + fixed + uncore, takes locks
    CPUS = list(range(8))  # both sockets

    def test_every_op_index(self):
        # kill_after=k lets k ops survive and kills the (k+1)-th, so
        # every crash point of a run with N ops is k in [1, N-1].
        total = count_ops("nehalem_ep", self.GROUP, self.CPUS)
        assert total > 50
        for kill_at in range(1, total):
            machine, driver, pristine, report = crash_and_recover(
                "nehalem_ep", self.GROUP, self.CPUS, kill_at)
            assert snapshot(machine) == pristine, \
                f"state not pristine after kill at op {kill_at}"
            assert driver.locks.held() == {}, \
                f"leaked locks after kill at op {kill_at}"
            assert driver.journal.record_count == 0

    def test_locks_reclaimed_when_killed_mid_measurement(self):
        """A kill with both socket locks held must reclaim exactly 2."""
        total = count_ops("nehalem_ep", self.GROUP, self.CPUS)
        _, driver, _, report = crash_and_recover(
            "nehalem_ep", self.GROUP, self.CPUS, total - 5)
        assert report.stale_locks_reclaimed == 2
        assert driver.metrics.value("recover.stale_locks_reclaimed") >= 2


@pytest.mark.parametrize("arch", ALL_ARCHES)
def test_crash_matrix_all_arches(arch):
    """Sampled kill indices on every architecture, with 10% transient
    EAGAIN layered on top of the kill (the ISSUE acceptance mix)."""
    spec = create_machine(arch).spec
    ev = first_pmc_event(spec)
    events = f"{ev.name}:PMC0"
    total = count_ops(arch, events, [0],
                      plan=FaultPlan(seed=3, read_fault_rate=0.1))
    assert total > 5
    step = max(1, total // 7)
    for kill_at in range(1, total, step):
        machine, driver, pristine, _ = crash_and_recover(
            arch, events, [0], kill_at, read_fault_rate=0.1, seed=3)
        assert snapshot(machine) == pristine, \
            f"{arch}: state not pristine after kill at op {kill_at}"
        assert driver.locks.held() == {}


class TestRecoverySemantics:
    def test_recovery_refused_while_dead(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(kill_after=10))
        with pytest.raises(ProcessKilled):
            run_measurement(machine, driver, "FLOPS_DP", [0, 1])
        from repro.errors import JournalError
        with pytest.raises(JournalError, match="respawn"):
            RecoveryEngine(driver).recover()

    def test_recovery_is_idempotent(self):
        machine, driver, pristine, first = crash_and_recover(
            "nehalem_ep", "FLOPS_DP", [0, 1], 20)
        assert not first.clean
        second = RecoveryEngine(driver).recover()
        assert second.clean
        assert snapshot(machine) == pristine

    def test_clean_run_leaves_nothing(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        run_measurement(machine, driver, "MEM", list(range(8)))
        assert driver.journal.record_count == 0
        assert driver.locks.held() == {}
        assert RecoveryEngine(driver).recover().clean

    def test_metrics_flow(self):
        # The driver shares the global trace registry; assert deltas.
        from repro import trace as _trace
        registry = _trace.metrics()
        restored0 = registry.value("recover.restored")
        records0 = registry.value("journal.records")
        _, driver, _, report = crash_and_recover(
            "nehalem_ep", "FLOPS_DP", [0, 1], 25)
        assert report.restored_writes > 0
        assert registry.value("recover.restored") - restored0 \
            == report.restored_writes
        assert registry.value("journal.records") > records0


class TestSimulatedSigint:
    def test_graceful_interrupt_tears_down(self):
        """SIGINT (unlike SIGKILL) runs the context-manager teardown:
        locks released, journal retired, nothing left to recover."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(sigint_after=60))
        with pytest.raises(SimulatedInterrupt):
            run_measurement(machine, driver, "MEM", list(range(8)))
        assert driver.process_alive
        assert driver.locks.held() == {}
        assert driver.journal.record_count == 0
        assert RecoveryEngine(driver).recover().clean

    def test_sigint_fires_once(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(sigint_after=10))
        with pytest.raises(SimulatedInterrupt):
            run_measurement(machine, driver, "FLOPS_DP", [0])
        # The one-shot has fired; a rerun on the same driver succeeds.
        result = run_measurement(machine, driver, "FLOPS_DP", [0])
        assert math.isfinite(result.total("INSTR_RETIRED_ANY"))


class TestLockEpochConflict:
    """Satellite 2: teardown compares pid *and* epoch before release."""

    def test_stolen_lock_left_with_new_owner(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session(list(range(8)), "MEM")
        session.start()
        assert set(driver.locks.held()) == {0, 1}
        # Simulate another session stealing socket 0's lock after a
        # reclaim: new owner pid, new epoch.
        thief = driver.procs.spawn()
        driver.locks.force_release(0)
        assert driver.locks.acquire(0, cpu=0, pid=thief, epoch=999)
        before = driver.metrics.value("recover.lock_conflict")
        session.stop()
        session.close()
        # The thief's entry survives; the conflict was counted.
        holder = driver.locks.holder(0)
        assert holder is not None and holder.owner_pid == thief
        assert driver.metrics.value("recover.lock_conflict") == before + 1
        # The session's own lock (socket 1) was released normally.
        assert 1 not in driver.locks.held()

    def test_live_owner_conflict_degrades_not_fatal(self):
        """A lock held by a live foreign pid degrades the socket's
        uncore events to NaN instead of failing the measurement."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        squatter = driver.procs.spawn()
        driver.locks.acquire(0, cpu=0, pid=squatter, epoch=1)
        result = run_measurement(machine, driver, "MEM", list(range(8)))
        assert result.degraded
        assert any("socket 0" in w for w in result.warnings)
        # Socket 1 still measured: its uncore events are finite.
        assert driver.locks.holder(0).owner_pid == squatter

    def test_stale_owner_reclaimed_at_acquisition(self):
        """A lock whose owner is dead is stolen in place, not fatal."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        ghost = driver.procs.spawn()
        driver.locks.acquire(0, cpu=0, pid=ghost, epoch=1)
        driver.procs.kill(ghost)
        before = driver.metrics.value("recover.stale_locks_reclaimed")
        result = run_measurement(machine, driver, "MEM", list(range(8)))
        assert not result.degraded
        assert driver.metrics.value("recover.stale_locks_reclaimed") \
            == before + 1
        assert driver.locks.held() == {}
