"""Tests for the marker API (named regions, §II.A)."""

import pytest

from repro.core.perfctr import LikwidPerfCtr, MarkerAPI
from repro.errors import MarkerError
from repro.hw.arch import create_machine
from repro.hw.events import Channel


@pytest.fixture
def setup():
    machine = create_machine("core2")
    perfctr = LikwidPerfCtr(machine)
    session = perfctr.session("0-3", "FLOPS_DP")
    session.start()
    marker = MarkerAPI(session)
    return machine, session, marker


def emit(machine, cpu, packed=0, instr=100, cycles=150):
    machine.apply_counts({cpu: {Channel.FLOPS_PACKED_DP: packed,
                                Channel.INSTRUCTIONS: instr,
                                Channel.CORE_CYCLES: cycles}})


class TestLifecycle:
    def test_paper_usage_flow(self, setup):
        """The paper's marker listing: Init/RegisterRegion/Start/Stop/
        Close with accumulation over a loop."""
        machine, _session, marker = setup
        marker.likwid_markerInit(1, 2)
        main_id = marker.likwid_markerRegisterRegion("Main")
        accum_id = marker.likwid_markerRegisterRegion("Accum")
        marker.likwid_markerStartRegion(0, 0)
        emit(machine, 0, packed=1000)
        marker.likwid_markerStopRegion(0, 0, main_id)
        for _ in range(3):
            marker.likwid_markerStartRegion(0, 0)
            emit(machine, 0, packed=10)
            marker.likwid_markerStopRegion(0, 0, accum_id)
        marker.likwid_markerClose()

        main = marker.region_result("Main")
        accum = marker.region_result("Accum")
        assert main.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 1000
        assert accum.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 30

    def test_region_excludes_outside_events(self, setup):
        machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("R")
        emit(machine, 0, packed=555)          # before the region
        marker.likwid_markerStartRegion(0, 0)
        emit(machine, 0, packed=7)
        marker.likwid_markerStopRegion(0, 0, rid)
        emit(machine, 0, packed=555)          # after the region
        marker.likwid_markerClose()
        result = marker.region_result("R")
        assert result.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 7

    def test_multithreaded_regions(self, setup):
        machine, _session, marker = setup
        marker.likwid_markerInit(4, 1)
        rid = marker.likwid_markerRegisterRegion("Bench")
        for thread, core in enumerate(range(4)):
            marker.likwid_markerStartRegion(thread, core)
        for core in range(4):
            emit(machine, core, packed=core * 10)
        for thread, core in enumerate(range(4)):
            marker.likwid_markerStopRegion(thread, core, rid)
        marker.likwid_markerClose()
        result = marker.region_result("Bench")
        assert result.cpus == [0, 1, 2, 3]
        assert result.event(3, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 30

    def test_metrics_derived_per_region(self, setup):
        machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("R")
        marker.likwid_markerStartRegion(0, 0)
        emit(machine, 0, packed=4096, instr=10000, cycles=15000)
        marker.likwid_markerStopRegion(0, 0, rid)
        marker.likwid_markerClose()
        result = marker.region_result("R")
        assert result.metric(0, "CPI") == pytest.approx(1.5)
        assert result.metric(0, "DP MFlops/s") > 0


class TestMisuse:
    def test_nesting_rejected(self, setup):
        """Paper: 'Nesting or partial overlap of code regions is not
        allowed.'"""
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 2)
        marker.likwid_markerRegisterRegion("A")
        marker.likwid_markerStartRegion(0, 0)
        with pytest.raises(MarkerError, match="nesting"):
            marker.likwid_markerStartRegion(0, 0)

    def test_stop_without_start(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("A")
        with pytest.raises(MarkerError, match="without starting"):
            marker.likwid_markerStopRegion(0, 0, rid)

    def test_api_before_init(self, setup):
        _machine, _session, marker = setup
        with pytest.raises(MarkerError, match="markerInit"):
            marker.likwid_markerRegisterRegion("A")

    def test_double_init(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        with pytest.raises(MarkerError, match="twice"):
            marker.likwid_markerInit(1, 1)

    def test_too_many_regions(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        marker.likwid_markerRegisterRegion("A")
        with pytest.raises(MarkerError, match="more regions"):
            marker.likwid_markerRegisterRegion("B")

    def test_duplicate_region_name(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 2)
        marker.likwid_markerRegisterRegion("A")
        with pytest.raises(MarkerError, match="registered twice"):
            marker.likwid_markerRegisterRegion("A")

    def test_thread_id_range_checked(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(2, 1)
        with pytest.raises(MarkerError, match="thread id"):
            marker.likwid_markerStartRegion(2, 0)

    def test_core_outside_measurement_set(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        with pytest.raises(MarkerError, match="not part of"):
            marker.likwid_markerStartRegion(0, 99)

    def test_migrating_thread_detected(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("A")
        marker.likwid_markerStartRegion(0, 0)
        with pytest.raises(MarkerError, match="pinned"):
            marker.likwid_markerStopRegion(0, 1, rid)

    def test_close_with_open_region(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        marker.likwid_markerRegisterRegion("A")
        marker.likwid_markerStartRegion(0, 0)
        with pytest.raises(MarkerError, match="still open"):
            marker.likwid_markerClose()

    def test_results_only_after_close(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        marker.likwid_markerRegisterRegion("A")
        with pytest.raises(MarkerError, match="after likwid_markerClose"):
            marker.region_result("A")

    def test_unknown_region_result(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        marker.likwid_markerRegisterRegion("A")
        marker.likwid_markerClose()
        with pytest.raises(MarkerError, match="unknown region"):
            marker.region_result("Z")

    def test_unknown_region_id_on_stop(self, setup):
        _machine, _session, marker = setup
        marker.likwid_markerInit(1, 1)
        marker.likwid_markerRegisterRegion("A")
        marker.likwid_markerStartRegion(0, 0)
        with pytest.raises(MarkerError, match="unknown region id"):
            marker.likwid_markerStopRegion(0, 0, 5)
