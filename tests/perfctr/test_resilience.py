"""The perfctr runtime against a fault-injecting msr driver.

Acceptance properties (ISSUE 3):

* With a seeded FaultPlan injecting transient EAGAIN on 10% of reads,
  wrapper-mode counts are bit-identical to the no-fault run — retries
  are invisible in results, visible in ``DriverStats.faults``.
* A forced mid-interval counter overflow produces a non-negative,
  width-corrected timeline delta.
* Sessions never leak: no live msr handles and no enabled counters
  after a failure, whatever the failure.
"""

import math

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.counters import counter_delta
from repro.core.perfctr.timeline import TimelineMeasurement
from repro.errors import (DegradedError, MsrError, MsrIOError,
                          MsrPermissionError)
from repro.hw import registers as regs
from repro.hw.arch import available, create_machine
from repro.hw.events import Channel, CounterScope
from repro.oskern.msr_driver import FaultPlan, MsrDriver

ALL_ARCHES = available()


def first_pmc_event(spec):
    """Some PMC-schedulable core event of an architecture."""
    for name in spec.events.names():
        ev = spec.events.lookup(name)
        if not ev.is_fixed and ev.scope == CounterScope.CORE \
                and ev.allowed_on(0):
            return ev
    raise AssertionError(f"no PMC event on {spec.name}")


def measure(machine, driver, ev, count=12345.0):
    """One single-CPU wrapper measurement of *ev* with *count* events."""
    perfctr = LikwidPerfCtr(machine, driver)
    return perfctr.wrap(
        [0], f"{ev.name}:PMC0",
        lambda: machine.apply_counts({0: {ev.channel: count}}))


class TestTransparentRetries:
    """Transient faults must be invisible in the counts."""

    def test_ten_percent_eagain_bit_identical(self):
        """The ISSUE's acceptance criterion, verbatim."""
        clean_machine = create_machine("nehalem_ep")
        clean = LikwidPerfCtr(clean_machine).wrap(
            "0-3", "FLOPS_DP",
            lambda: clean_machine.apply_counts(
                {cpu: {Channel.FLOPS_PACKED_DP: 1e6,
                       Channel.INSTRUCTIONS: 4e6,
                       Channel.CORE_CYCLES: 5e6} for cpu in range(4)}))

        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine,
                           faults=FaultPlan(seed=1234, read_fault_rate=0.1))
        faulty = LikwidPerfCtr(machine, driver).wrap(
            "0-3", "FLOPS_DP",
            lambda: machine.apply_counts(
                {cpu: {Channel.FLOPS_PACKED_DP: 1e6,
                       Channel.INSTRUCTIONS: 4e6,
                       Channel.CORE_CYCLES: 5e6} for cpu in range(4)}))

        assert faulty.counts == clean.counts          # bit-identical
        assert driver.stats.faults > 0                # faults happened
        assert faulty.io_retries > 0                  # and were retried
        assert not faulty.warnings                    # nothing degraded
        assert driver.stats.live_handles == 0         # nothing leaked

    @pytest.mark.parametrize("arch", ALL_ARCHES)
    @pytest.mark.parametrize("plan", [
        FaultPlan(seed=7, read_fault_rate=0.2),
        FaultPlan(seed=7, write_fault_rate=0.2),
        FaultPlan(seed=7, read_fault_rate=0.1, write_fault_rate=0.1,
                  transient_errno="EIO"),
        FaultPlan(overflow_after=1000),
        FaultPlan(seed=3, read_fault_rate=0.15, overflow_after=500),
    ], ids=["read-eagain", "write-eagain", "rw-eio", "forced-overflow",
            "combined"])
    def test_fault_matrix_counts_identical(self, arch, plan):
        """Every recoverable fault kind × every architecture: counts
        match the fault-free run exactly."""
        spec = create_machine(arch).spec
        ev = first_pmc_event(spec)

        clean_machine = create_machine(arch)
        clean = measure(clean_machine, MsrDriver(clean_machine), ev)

        machine = create_machine(arch)
        driver = MsrDriver(machine, faults=plan)
        faulty = measure(machine, driver, ev)

        assert faulty.counts == clean.counts
        assert driver.stats.live_handles == 0

    def test_retry_count_deterministic(self):
        def run_once():
            machine = create_machine("core2")
            driver = MsrDriver(machine,
                               faults=FaultPlan(seed=9, read_fault_rate=0.3))
            ev = first_pmc_event(machine.spec)
            result = measure(machine, driver, ev)
            return driver.stats.faults, result.io_retries

        assert run_once() == run_once()


class TestFatalFaults:
    """Unrecoverable faults abort cleanly: error raised, nothing torn."""

    @pytest.mark.parametrize("arch", ["nehalem_ep", "amd_istanbul"])
    def test_mid_run_module_unload(self, arch):
        machine = create_machine(arch)
        driver = MsrDriver(machine, faults=FaultPlan(unload_after=6))
        ev = first_pmc_event(machine.spec)
        with pytest.raises(MsrError):
            measure(machine, driver, ev)
        # With the module gone the hardware is unreachable — teardown
        # cannot disable counters (just like after a real ``rmmod``),
        # but the runtime must still release every device handle.
        assert driver.stats.live_handles == 0

    @pytest.mark.parametrize("arch", ["nehalem_ep", "amd_istanbul"])
    def test_mid_run_permission_revocation(self, arch):
        machine = create_machine(arch)
        driver = MsrDriver(machine, faults=FaultPlan(revoke_write_after=3))
        ev = first_pmc_event(machine.spec)
        with pytest.raises(MsrPermissionError):
            measure(machine, driver, ev)
        assert driver.stats.live_handles == 0
        assert not machine.core_pmus[0].pmc_active(0)

    def test_sticky_core_counter_aborts(self):
        """A sticky fault on a *core* counter is not maskable: the
        measurement would be silently wrong, so it raises."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(
            sticky_addresses=(regs.IA32_PMC0,)))
        ev = first_pmc_event(machine.spec)
        with pytest.raises(MsrIOError):
            measure(machine, driver, ev)
        assert driver.stats.live_handles == 0

    def test_exhausted_retries_raise_with_context(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine,
                           faults=FaultPlan(read_fault_rate=1.0))
        ev = first_pmc_event(machine.spec)
        with pytest.raises(MsrIOError, match="giving up") as info:
            measure(machine, driver, ev)
        assert info.value.exhausted
        assert driver.stats.live_handles == 0


class TestUncoreDegradation:
    """Uncore permission/lock failures yield NaN, not an abort."""

    def _run_uncore(self, driver, machine, **perfctr_kwargs):
        perfctr = LikwidPerfCtr(machine, driver, **perfctr_kwargs)
        return perfctr.wrap(
            [0], "UNC_L3_LINES_IN_ANY:UPMC0",
            lambda: machine.apply_counts(
                {0: {Channel.INSTRUCTIONS: 500.0}},
                uncore_counts={0: {Channel.L3_LINES_IN: 900.0}}))

    def test_sticky_uncore_degrades_to_nan_with_warning(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(
            sticky_addresses=(regs.MSR_UNCORE_PMC0,)))
        result = self._run_uncore(driver, machine)
        assert math.isnan(result.event(0, "UNC_L3_LINES_IN_ANY"))
        assert result.degraded
        assert any("degraded" in w for w in result.warnings)
        # Core-side counting is untouched.
        assert result.event(0, "INSTR_RETIRED_ANY") == 500.0
        assert driver.stats.live_handles == 0

    def test_strict_io_raises_instead(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(
            sticky_addresses=(regs.MSR_UNCORE_PMC0,)))
        with pytest.raises(DegradedError):
            self._run_uncore(driver, machine, strict_io=True)
        assert driver.stats.live_handles == 0
        assert not machine.core_pmus[0].pmc_active(0)

    def test_healthy_socket_unaffected_by_degraded_one(self):
        """Sticky fault on socket 1's owner only: socket 0 still
        delivers its uncore counts."""
        machine = create_machine("nehalem_ep")
        # cpu 4 is the first cpu of socket 1 -> its socket-lock owner.
        owner1 = next(c for c in range(machine.num_hwthreads)
                      if machine.spec.socket_of(c) == 1)
        plan = FaultPlan(sticky_addresses=(regs.MSR_UNCORE_PERFEVTSEL0,),
                         seed=0)
        # PERFEVTSEL is written during uncore setup on both sockets;
        # restrict the fault to socket 1 by flipping the sticky address
        # set after socket 0's setup is done — simpler: inject a fault
        # plan whose sticky address is only touched by socket 1's
        # owner.  Both owners touch the same addresses, so instead
        # verify the weaker but still meaningful property on a single
        # socket below.
        del plan
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        result = perfctr.wrap(
            [0, owner1], "UNC_L3_LINES_IN_ANY:UPMC0",
            lambda: machine.apply_counts(
                {0: {Channel.INSTRUCTIONS: 1.0}},
                uncore_counts={0: {Channel.L3_LINES_IN: 11.0},
                               1: {Channel.L3_LINES_IN: 22.0}}))
        assert result.event(0, "UNC_L3_LINES_IN_ANY") == 11.0
        assert result.event(owner1, "UNC_L3_LINES_IN_ANY") == 22.0


class TestSessionLifecycle:
    def test_context_manager_starts_and_closes(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0], "FLOPS_DP")
        with session as s:
            assert s is session
            assert s.active
            machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 42.0}})
        assert not session.active
        assert not machine.core_pmus[0].pmc_active(0)
        assert driver.stats.live_handles == 0
        assert session.read().event(
            0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 42.0

    def test_close_is_idempotent(self):
        machine = create_machine("core2")
        session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
        session.start()
        session.close()
        session.close()

    def test_exception_inside_with_tears_down(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        session = LikwidPerfCtr(machine, driver).session([0, 1], "FLOPS_DP")
        with pytest.raises(RuntimeError, match="boom"):
            with session:
                raise RuntimeError("boom")
        for cpu in (0, 1):
            assert not machine.core_pmus[cpu].pmc_active(0)
        assert driver.stats.live_handles == 0

    def test_overflow_handlers_deregistered_on_close(self):
        machine = create_machine("core2")
        before = len(machine.core_pmus[0].overflow_handlers)
        session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
        with session:
            assert len(machine.core_pmus[0].overflow_handlers) == before + 1
        assert len(machine.core_pmus[0].overflow_handlers) == before

    def test_failed_start_rolls_back_enabled_cpus(self):
        """start() enables cpu 0, then faults on cpu 1: cpu 0 must be
        disabled again before the error propagates."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0, 1], "FLOPS_DP")

        original = session.programmer.start_core

        def flaky_start(cpu, assignments):
            if cpu == 1:
                raise MsrIOError("EIO", "injected", cpu=1)
            original(cpu, assignments)

        session.programmer.start_core = flaky_start
        with pytest.raises(MsrIOError):
            session.start()
        session.programmer.start_core = original
        assert not machine.core_pmus[0].pmc_active(0)
        assert not machine.core_pmus[0].fixed_active(0)
        assert driver.stats.live_handles == 0


class TestOverflowCorrection:
    def test_forced_overflow_timeline_delta_non_negative(self):
        """ISSUE acceptance: mid-interval wrap yields the true,
        width-corrected (non-negative) delta, not a negative or empty
        bar."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=150))
        perfctr = LikwidPerfCtr(machine, driver)
        timeline = TimelineMeasurement(perfctr, [0], "L1D_REPL:PMC0",
                                       interval=1.0)
        timeline.run(
            lambda i, dt: machine.apply_counts(
                {0: {Channel.L1D_REPLACEMENT: 100.0}}), 3)
        # The counter starts 150 below the wrap point: it wraps during
        # interval 2.  Every delta must still read exactly 100.
        assert timeline.series(0, "L1D_REPL") == [100.0, 100.0, 100.0]

    def test_wrapper_mode_exact_across_multiple_wraps(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=50))
        perfctr = LikwidPerfCtr(machine, driver)

        def run():
            for _ in range(3):
                machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 60.0}})

        result = perfctr.wrap([0], "L1D_REPL:PMC0", run)
        # 180 events through a counter that wraps after 50: without
        # overflow accounting the readout would be 180 - 2**48.
        assert result.event(0, "L1D_REPL") == 180.0

    def test_counter_delta_helper(self):
        width = 48
        top = 1 << width
        assert counter_delta(100.0, 40.0, width) == 60.0
        assert counter_delta(10.0, float(top - 50), width) == 60.0
        assert math.isnan(counter_delta(float("nan"), 0.0, width))

    def test_marker_region_survives_wrap(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(overflow_after=120))
        perfctr = LikwidPerfCtr(machine, driver)
        from repro.core.perfctr import MarkerAPI
        session = perfctr.session([0], "L1D_REPL:PMC0")
        with session:
            marker = MarkerAPI(session)
            marker.likwid_markerInit(1, 1)
            rid = marker.likwid_markerRegisterRegion("R")
            for _ in range(3):
                marker.likwid_markerStartRegion(0, 0)
                machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 70.0}})
                marker.likwid_markerStopRegion(0, 0, rid)
            marker.likwid_markerClose()
            session.stop()
        assert marker.region_result("R").event(0, "L1D_REPL") == 210.0
