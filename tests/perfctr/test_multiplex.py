"""Tests for counter multiplexing (round-robin event sets)."""

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.multiplex import measure_multiplexed, split_event_sets
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.hw.events import Channel


@pytest.fixture
def machine():
    return create_machine("core2")   # 2 PMCs: easy to oversubscribe


class TestSplitting:
    def test_no_conflict_single_set(self, machine):
        sets = split_event_sets(LikwidPerfCtr(machine),
                                "A:PMC0,B:PMC1")
        assert sets == ["A:PMC0,B:PMC1"]

    def test_counter_conflict_round_robins(self, machine):
        sets = split_event_sets(LikwidPerfCtr(machine),
                                "A:PMC0,B:PMC1,C:PMC0,D:PMC1")
        assert sets == ["A:PMC0,B:PMC1", "C:PMC0,D:PMC1"]

    def test_three_way_conflict(self, machine):
        sets = split_event_sets(LikwidPerfCtr(machine),
                                "A:PMC0,B:PMC0,C:PMC0")
        assert len(sets) == 3


class TestMultiplexedMeasurement:
    def _run_slice(self, machine, per_slice):
        def run(fraction):
            counts = {name: value * fraction
                      for name, value in per_slice.items()}
            machine.apply_counts({0: counts})
        return run

    def test_uniform_workload_extrapolates_exactly(self, machine):
        """For a steady workload, count/scheduled_fraction recovers the
        true total (the favourable case for multiplexing)."""
        perfctr = LikwidPerfCtr(machine)
        total = {Channel.FLOPS_PACKED_DP: 8000.0,
                 Channel.L1D_REPLACEMENT: 4000.0}
        run = self._run_slice(machine, total)
        sets = ["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0",
                "L1D_REPL:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=10)
        assert result.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == \
            pytest.approx(8000.0)
        assert result.event(0, "L1D_REPL") == pytest.approx(4000.0)
        assert result.scheduled_fraction["L1D_REPL"] == pytest.approx(0.5)

    def test_phased_workload_carries_error(self, machine):
        """A bursty workload makes extrapolation wrong — the statistical
        error the paper warns about for short measurements."""
        perfctr = LikwidPerfCtr(machine)
        state = {"slice": 0}
        def run(fraction):
            state["slice"] += 1
            # All flops land in the very first slice (a startup burst).
            flops = 1000.0 if state["slice"] == 1 else 0.0
            machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: flops}})
        sets = ["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0",
                "L1D_REPL:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=4)
        estimate = result.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")
        # True total is 1000; the burst fell entirely into set 0's
        # scheduled half, so extrapolation doubles it.
        assert estimate == pytest.approx(2000.0)

    def test_fixed_events_not_scaled(self, machine):
        perfctr = LikwidPerfCtr(machine)
        run = self._run_slice(machine, {Channel.INSTRUCTIONS: 1000.0,
                                        Channel.CORE_CYCLES: 1000.0})
        sets = ["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0",
                "L1D_REPL:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=4)
        # Fixed events counted in every slice: no extrapolation.
        assert result.event(0, "INSTR_RETIRED_ANY") == pytest.approx(1000.0)

    def test_amd_pmc_events_are_extrapolated(self):
        """Regression: the always-counted set used to be the hardcoded
        Intel fixed-event names, so on AMD (no fixed counters) the
        cycle/instruction events were wrongly treated as full-run counts
        and never extrapolated — halving them for two sets."""
        amd = create_machine("amd_istanbul")
        perfctr = LikwidPerfCtr(amd)
        run = self._run_slice(amd, {Channel.INSTRUCTIONS: 8000.0,
                                    Channel.CORE_CYCLES: 6000.0})
        sets = ["RETIRED_INSTRUCTIONS:PMC0", "CPU_CLOCKS_UNHALTED:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=10)
        assert result.scheduled_fraction["RETIRED_INSTRUCTIONS"] == \
            pytest.approx(0.5)
        # The old code returned 4000/3000 here.
        assert result.event(0, "RETIRED_INSTRUCTIONS") == \
            pytest.approx(8000.0)
        assert result.event(0, "CPU_CLOCKS_UNHALTED") == \
            pytest.approx(6000.0)

    def test_fixedless_intel_extrapolates_instructions(self):
        """Same bug on Pentium M: INSTR_RETIRED_ANY matches an Intel
        fixed-event *name* but lives on a general PMC there and is
        multiplexed like any other event."""
        pm = create_machine("pentium_m")
        perfctr = LikwidPerfCtr(pm)
        run = self._run_slice(pm, {Channel.INSTRUCTIONS: 8000.0,
                                   Channel.LOADS: 4000.0})
        sets = ["INSTR_RETIRED_ANY:PMC0", "DATA_MEM_REFS:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=10)
        assert result.event(0, "INSTR_RETIRED_ANY") == pytest.approx(8000.0)
        assert result.event(0, "DATA_MEM_REFS") == pytest.approx(4000.0)

    def test_duplicate_event_within_set_not_double_scheduled(self, machine):
        """An event programmed on two counters of the same set observes
        that set's slices once — its scheduled fraction must not be
        double-counted (which would halve the extrapolated estimate)."""
        perfctr = LikwidPerfCtr(machine)
        run = self._run_slice(machine, {Channel.L1D_REPLACEMENT: 4000.0,
                                        Channel.FLOPS_PACKED_DP: 2000.0})
        sets = ["L1D_REPL:PMC0,L1D_REPL:PMC1",
                "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0"]
        result = measure_multiplexed(perfctr, [0], sets, run, rotations=10)
        assert result.scheduled_fraction["L1D_REPL"] == pytest.approx(0.5)
        # The event observed 2000 during set 0's scheduled half (results
        # are keyed by event name, so the twin counters collapse to one
        # reading); 2000 / 0.5 recovers the true 4000.  Double-counting
        # the fraction would have yielded 2000.
        assert result.event(0, "L1D_REPL") == pytest.approx(4000.0)

    def test_too_few_rotations_rejected(self, machine):
        perfctr = LikwidPerfCtr(machine)
        with pytest.raises(CounterError, match="rotations"):
            measure_multiplexed(perfctr, [0], ["A:PMC0", "B:PMC0"],
                                lambda f: None, rotations=1)

    def test_empty_sets_rejected(self, machine):
        with pytest.raises(CounterError, match="no event sets"):
            measure_multiplexed(LikwidPerfCtr(machine), [0], [],
                                lambda f: None)
