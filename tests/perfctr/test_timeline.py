"""Tests for timeline (periodic-sampling) mode."""

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.timeline import TimelineMeasurement, render_timeline
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.hw.events import Channel


@pytest.fixture
def machine():
    return create_machine("nehalem_ep")


def ramp_slice(machine, cpu=0):
    """A workload whose intensity grows linearly with the interval."""
    def run(index, interval):
        machine.apply_counts(
            {cpu: {Channel.L1D_REPLACEMENT: 100.0 * (index + 1),
                   Channel.INSTRUCTIONS: 1000.0,
                   Channel.CORE_CYCLES: 0.5e9 * interval}},
            elapsed_seconds=interval)
    return run


class TestTimeline:
    def test_deltas_per_interval(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.5)
        timeline.run(ramp_slice(machine), 4)
        assert timeline.series(0, "L1D_REPL") == [100, 200, 300, 400]

    def test_sample_times(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.25)
        samples = timeline.run(ramp_slice(machine), 3)
        assert [s.time for s in samples] == [0.25, 0.5, 0.75]

    def test_group_metrics_per_interval(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "FLOPS_DP", interval=1.0)

        def run(index, interval):
            machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 1e6 * (index + 1),
                     Channel.INSTRUCTIONS: 1e6,
                     Channel.CORE_CYCLES: 2.66e9 * interval}})
        timeline.run(run, 3)
        mflops = timeline.metric_series(0, "DP MFlops/s")
        assert mflops[1] == pytest.approx(2 * mflops[0], rel=0.01)
        assert mflops[2] == pytest.approx(3 * mflops[0], rel=0.01)

    def test_total_equals_wrapper_mode(self, machine):
        """Sum of interval deltas == a single aggregate measurement."""
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0")
        timeline.run(ramp_slice(machine), 5)
        assert sum(timeline.series(0, "L1D_REPL")) == 1500

    def test_multi_cpu(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0, 1],
                                       "L1D_REPL:PMC0")

        def run(index, interval):
            machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10},
                                  1: {Channel.L1D_REPLACEMENT: 20}})
        timeline.run(run, 2)
        assert timeline.series(0, "L1D_REPL") == [10, 10]
        assert timeline.series(1, "L1D_REPL") == [20, 20]

    def test_invalid_parameters(self, machine):
        perfctr = LikwidPerfCtr(machine)
        with pytest.raises(CounterError, match="interval"):
            TimelineMeasurement(perfctr, [0], "L1D_REPL:PMC0", interval=0)
        timeline = TimelineMeasurement(perfctr, [0], "L1D_REPL:PMC0")
        with pytest.raises(CounterError, match="interval"):
            timeline.run(lambda i, dt: None, 0)

    def test_render(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.5)
        timeline.run(ramp_slice(machine), 3)
        text = render_timeline(timeline, 0, "L1D_REPL")
        assert "t=   1.50s" in text
        assert text.count("|") == 6   # two bars per line, three lines
