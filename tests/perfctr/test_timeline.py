"""Tests for timeline (periodic-sampling) mode."""

import math
import time

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.timeline import (TimelineMeasurement,
                                         advance_baseline, render_timeline,
                                         timeline_deltas)
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.hw.events import Channel


@pytest.fixture
def machine():
    return create_machine("nehalem_ep")


def ramp_slice(machine, cpu=0):
    """A workload whose intensity grows linearly with the interval."""
    def run(index, interval):
        machine.apply_counts(
            {cpu: {Channel.L1D_REPLACEMENT: 100.0 * (index + 1),
                   Channel.INSTRUCTIONS: 1000.0,
                   Channel.CORE_CYCLES: 0.5e9 * interval}},
            elapsed_seconds=interval)
    return run


class TestTimeline:
    def test_deltas_per_interval(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.5)
        timeline.run(ramp_slice(machine), 4)
        assert timeline.series(0, "L1D_REPL") == [100, 200, 300, 400]

    def test_sample_times(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.25)
        samples = timeline.run(ramp_slice(machine), 3)
        assert [s.time for s in samples] == [0.25, 0.5, 0.75]

    def test_group_metrics_per_interval(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "FLOPS_DP", interval=1.0)

        def run(index, interval):
            machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 1e6 * (index + 1),
                     Channel.INSTRUCTIONS: 1e6,
                     Channel.CORE_CYCLES: 2.66e9 * interval}})
        timeline.run(run, 3)
        mflops = timeline.metric_series(0, "DP MFlops/s")
        assert mflops[1] == pytest.approx(2 * mflops[0], rel=0.01)
        assert mflops[2] == pytest.approx(3 * mflops[0], rel=0.01)

    def test_total_equals_wrapper_mode(self, machine):
        """Sum of interval deltas == a single aggregate measurement."""
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0")
        timeline.run(ramp_slice(machine), 5)
        assert sum(timeline.series(0, "L1D_REPL")) == 1500

    def test_multi_cpu(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0, 1],
                                       "L1D_REPL:PMC0")

        def run(index, interval):
            machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10},
                                  1: {Channel.L1D_REPLACEMENT: 20}})
        timeline.run(run, 2)
        assert timeline.series(0, "L1D_REPL") == [10, 10]
        assert timeline.series(1, "L1D_REPL") == [20, 20]

    def test_invalid_parameters(self, machine):
        perfctr = LikwidPerfCtr(machine)
        with pytest.raises(CounterError, match="interval"):
            TimelineMeasurement(perfctr, [0], "L1D_REPL:PMC0", interval=0)
        timeline = TimelineMeasurement(perfctr, [0], "L1D_REPL:PMC0")
        with pytest.raises(CounterError, match="interval"):
            timeline.run(lambda i, dt: None, 0)

    def test_overrun_slice_advances_actual_time(self, machine):
        """Regression (ISSUE 8): a slice that overruns its nominal
        interval must advance the timeline clock by the *measured*
        duration, not the nominal one — otherwise every derived rate
        is skewed by the overrun factor."""
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "FLOPS_DP", interval=0.5)

        def run(index, interval):
            # The second slice would not yield for 2.0 s (4x overrun);
            # slices report their own duration like the simulated
            # workloads do.
            actual = 2.0 if index == 1 else interval
            machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 1e6 * actual}},
                elapsed_seconds=actual)
            return actual

        samples = timeline.run(run, 3)
        assert [s.duration for s in samples] == [0.5, 2.0, 0.5]
        assert [s.time for s in samples] == [0.5, 2.5, 3.0]
        # Constant intensity => constant rate, even across the overrun
        # (before the fix the overrun sample reported 4x the rate).
        mflops = timeline.metric_series(0, "DP MFlops/s")
        assert mflops[1] == pytest.approx(mflops[0], rel=0.01)
        assert mflops[2] == pytest.approx(mflops[0], rel=0.01)

    def test_wall_clock_overrun_is_measured(self, machine):
        """A slice that simply takes too long (no self-report) is
        timed with the wall clock."""
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.001)

        def run(index, interval):
            machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 10.0}})
            time.sleep(0.03)

        samples = timeline.run(run, 1)
        assert samples[0].duration >= 0.03
        assert samples[0].time == samples[0].duration

    def test_nan_readout_does_not_poison_next_delta(self, machine):
        """Regression (ISSUE 8): one degraded (NaN) readout must cost
        exactly one NaN sample; the next successful readout computes
        its delta against the last *finite* baseline."""
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.5)
        session = timeline.session
        real_read = session.read_raw
        degraded = {1}

        def read_raw(cpu):
            values = real_read(cpu)
            if read_raw.interval in degraded:
                values["L1D_REPL"] = float("nan")
            return values
        read_raw.interval = -1      # the pre-loop baseline readout

        session.read_raw = read_raw

        def run(index, interval):
            read_raw.interval = index
            machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 100.0}},
                                 elapsed_seconds=interval)

        timeline.run(run, 3)
        series = timeline.series(0, "L1D_REPL")
        assert series[0] == 100.0
        assert math.isnan(series[1])          # the degraded interval
        # Recovery: the delta spans the degraded interval and lands on
        # its true two-interval count — finite, never NaN.
        assert series[2] == 200.0

    def test_absent_name_cannot_fabricate_full_count(self, machine):
        """Regression (ISSUE 8): an event name missing from the
        previous readout has no baseline; its delta is NaN, not the
        full cumulative count."""
        current = {0: {"L1D_REPL": 5000.0, "NEW_EVENT": 4096.0}}
        previous = {0: {"L1D_REPL": 4900.0}}
        deltas = timeline_deltas(current, previous, width=48)
        assert deltas[0]["L1D_REPL"] == 100.0
        assert math.isnan(deltas[0]["NEW_EVENT"])

    def test_advance_baseline_keeps_last_finite(self):
        previous = {0: {"A": 10.0, "B": 20.0}}
        advance_baseline(previous, {0: {"A": float("nan"), "B": 30.0,
                                        "C": 1.0}})
        assert previous == {0: {"A": 10.0, "B": 30.0, "C": 1.0}}

    def test_render(self, machine):
        timeline = TimelineMeasurement(LikwidPerfCtr(machine), [0],
                                       "L1D_REPL:PMC0", interval=0.5)
        timeline.run(ramp_slice(machine), 3)
        text = render_timeline(timeline, 0, "L1D_REPL")
        assert "t=   1.50s" in text
        assert text.count("|") == 6   # two bars per line, three lines
