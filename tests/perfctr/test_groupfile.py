"""Tests for the performance-group file format and loader."""

import textwrap

import pytest

from repro.core.perfctr.groupfile import (groupfile_dir, load_group_dir,
                                          parse_group_file, serialize_group)
from repro.core.perfctr.groups import (builtin_groups_for, file_groups_for,
                                       groups_for)
from repro.errors import GroupError
from repro.hw.arch import ARCH_SPECS, get_arch

SAMPLE = textwrap.dedent("""\
    SHORT Double Precision MFlops/s

    EVENTSET
    PMC0  FP_COMP_OPS_EXE_SSE_FP_PACKED
    PMC1  FP_COMP_OPS_EXE_SSE_FP_SCALAR

    METRICS
    Runtime [s]  FIXC1/clock
    CPI  FIXC1/FIXC0
    DP MFlops/s  1.0E-06*(PMC0*2.0+PMC1)/time

    LONG
    Flop rate with packed ops counted twice.
    """)


class TestParsing:
    def test_sections(self):
        pg = parse_group_file(SAMPLE, name="FLOPS_DP")
        assert pg.short == "Double Precision MFlops/s"
        assert pg.events == [
            ("PMC0", "FP_COMP_OPS_EXE_SSE_FP_PACKED"),
            ("PMC1", "FP_COMP_OPS_EXE_SSE_FP_SCALAR")]
        assert pg.metrics[1] == ("CPI", "FIXC1/FIXC0")
        assert "counted twice" in pg.long

    def test_counter_rewrite(self):
        pg = parse_group_file(SAMPLE, name="FLOPS_DP")
        metrics = dict(pg.rewritten_metrics())
        assert metrics["CPI"] == "CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY"
        assert "FP_COMP_OPS_EXE_SSE_FP_PACKED*2.0" in metrics["DP MFlops/s"]

    def test_unknown_counter_in_formula(self):
        bad = SAMPLE.replace("FIXC1/FIXC0", "UPMC5/FIXC0")
        pg = parse_group_file(bad, name="X")
        with pytest.raises(GroupError, match="UPMC5"):
            pg.rewritten_metrics()

    def test_empty_eventset_rejected(self):
        with pytest.raises(GroupError, match="empty EVENTSET"):
            parse_group_file("SHORT x\nEVENTSET\nMETRICS\nA  1+1\n")

    def test_malformed_metric_line(self):
        bad = "SHORT x\nEVENTSET\nPMC0 EV\nMETRICS\nlabel-without-formula\n"
        with pytest.raises(GroupError, match="METRICS line"):
            parse_group_file(bad)

    def test_content_outside_section(self):
        with pytest.raises(GroupError, match="outside any section"):
            parse_group_file("stray line\n")

    def test_roundtrip(self):
        pg = parse_group_file(SAMPLE, name="FLOPS_DP")
        text = serialize_group("FLOPS_DP", pg.short, pg.event_specs(),
                               tuple(pg.rewritten_metrics()), long=pg.long)
        pg2 = parse_group_file(text, name="FLOPS_DP")
        assert pg2.events == pg.events
        assert pg2.rewritten_metrics() == pg.rewritten_metrics()


class TestShippedFiles:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_every_arch_has_a_directory(self, arch):
        assert groupfile_dir(arch).is_dir()
        assert load_group_dir(groupfile_dir(arch))

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_files_equal_builtin_catalog(self, arch):
        """The shipped files must round-trip the built-in definitions:
        same groups, same events, same (event-name) formulas."""
        spec = get_arch(arch)
        from_files = file_groups_for(spec)
        builtin = {name: g for name, g in builtin_groups_for(spec).items()
                   if all(e.event in spec.events for e in g.events)}
        assert from_files is not None
        assert set(from_files) == set(builtin)
        for name, group in builtin.items():
            loaded = from_files[name]
            assert [(e.event, e.counter) for e in loaded.events] == \
                [(e.event, e.counter) for e in group.events], name
            assert dict(loaded.metrics) == dict(group.metrics), name

    def test_groups_for_prefers_files(self, tmp_path, monkeypatch):
        """A user-dropped group file extends the catalog."""
        import repro.core.perfctr.groupfile as gf
        spec = get_arch("nehalem_ep")
        custom_dir = tmp_path / "nehalem_ep"
        custom_dir.mkdir()
        # Copy one real group and add a custom one.
        (custom_dir / "FLOPS_DP.txt").write_text(SAMPLE)
        (custom_dir / "MYGROUP.txt").write_text(textwrap.dedent("""\
            SHORT My custom view

            EVENTSET
            PMC0  L1D_REPL

            METRICS
            Misses per cycle  PMC0/FIXC1
            """))
        monkeypatch.setattr(gf, "GROUPFILE_ROOT", tmp_path)
        groups = groups_for(spec)
        assert set(groups) == {"FLOPS_DP", "MYGROUP"}
        assert groups["MYGROUP"].metrics[0][1] == \
            "L1D_REPL/CPU_CLK_UNHALTED_CORE"

    def test_measurement_with_file_loaded_group(self):
        """End-to-end: the file-backed FLOPS_DP group measures."""
        from repro.core.perfctr import LikwidPerfCtr
        from repro.hw.arch import create_machine
        from repro.hw.events import Channel
        machine = create_machine("westmere_ep")
        result = LikwidPerfCtr(machine).wrap(
            [0], "FLOPS_DP",
            lambda: machine.apply_counts(
                {0: {Channel.FLOPS_PACKED_DP: 1e6,
                     Channel.INSTRUCTIONS: 4e6,
                     Channel.CORE_CYCLES: 8e6}}))
        assert result.metric(0, "CPI") == 2.0
        assert result.metric(0, "DP MFlops/s") > 0


class TestGroupfileProperties:
    """Property: serialize→parse round-trips arbitrary group shapes."""

    def test_roundtrip_random_groups(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.core.perfctr.events import EventSpec

        names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ_",
                        min_size=3, max_size=20).filter(
                            lambda s: not s.startswith("_"))

        @settings(max_examples=30, deadline=None)
        @given(data=st.data())
        def run(data):
            n_events = data.draw(st.integers(1, 4))
            event_names = data.draw(st.lists(names, min_size=n_events,
                                             max_size=n_events,
                                             unique=True))
            events = tuple(EventSpec(name, f"PMC{i}")
                           for i, name in enumerate(event_names))
            # Formulas over the declared events plus builtins.
            metrics = tuple(
                (f"metric {i}", f"{event_names[i % n_events]}/time")
                for i in range(data.draw(st.integers(1, 3))))
            text = serialize_group("G", "short desc", events, metrics)
            pg = parse_group_file(text, name="G")
            assert pg.event_specs() == events
            assert tuple(pg.rewritten_metrics()) == metrics
        run()
