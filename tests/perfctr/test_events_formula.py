"""Tests for event-string parsing and the metric formula evaluator."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.perfctr.events import (EventSpec, is_event_string,
                                       parse_event_string)
from repro.core.perfctr.formula import evaluate, formula_variables, tokenize
from repro.errors import EventError, GroupError


class TestEventParsing:
    def test_paper_example(self):
        text = ("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,"
                "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1")
        specs = parse_event_string(text)
        assert specs == [
            EventSpec("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", "PMC0"),
            EventSpec("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", "PMC1")]
        assert specs[0].counter_class == "PMC"
        assert specs[1].counter_index == 1

    def test_uncore_counter_names(self):
        specs = parse_event_string("UNC_L3_LINES_IN_ANY:UPMC3")
        assert specs[0].counter_class == "UPMC"
        assert specs[0].counter_index == 3

    @pytest.mark.parametrize("bad", [
        "", "EVENT", "EVENT:", ":PMC0", "EVENT:XYZ0", "EVENT:PMC",
        "A:PMC0,,B:PMC1", "EVENT:pmc0",
    ])
    def test_malformed(self, bad):
        with pytest.raises(EventError):
            parse_event_string(bad)

    def test_duplicate_counter_rejected(self):
        with pytest.raises(EventError, match="assigned twice"):
            parse_event_string("A:PMC0,B:PMC0")

    def test_group_heuristic(self):
        assert not is_event_string("FLOPS_DP")
        assert is_event_string("A:PMC0")


class TestFormulaEvaluator:
    def test_paper_flops_formula(self):
        value = evaluate(
            "1.0E-06*(PACKED*2.0+SCALAR)/time",
            {"PACKED": 8.192e6, "SCALAR": 1, "time": 0.01})
        assert value == pytest.approx(1638.4, rel=1e-4)

    @pytest.mark.parametrize("formula,expected", [
        ("1+2*3", 7.0),
        ("(1+2)*3", 9.0),
        ("-4+6", 2.0),
        ("2*-3", -6.0),
        ("10/4", 2.5),
        ("1.5e3", 1500.0),
        (".5*4", 2.0),
        ("A/B", 2.0),
    ])
    def test_arithmetic(self, formula, expected):
        assert evaluate(formula, {"A": 4, "B": 2}) == expected

    def test_division_by_zero_is_nan(self):
        assert math.isnan(evaluate("A/B", {"A": 1, "B": 0}))

    def test_unknown_variable(self):
        with pytest.raises(GroupError, match="unknown variable"):
            evaluate("X+1", {})

    @pytest.mark.parametrize("bad", ["1+", "(1", "1)", "", "1 2", "@", "a b"])
    def test_malformed_formula(self, bad):
        with pytest.raises(GroupError):
            evaluate(bad, {"a": 1, "b": 2})

    def test_variables_extraction(self):
        assert formula_variables("1e-6*(A_1*2+B)/time") == {"A_1", "B", "time"}

    def test_tokenizer_classes(self):
        tokens = tokenize("1.5e-2*(ABC/x)")
        kinds = [k for k, _ in tokens]
        assert kinds == ["num", "op", "op", "ident", "op", "ident", "op"]


@given(a=st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False),
       b=st.floats(min_value=1e-3, max_value=1e6))
def test_formula_matches_python_semantics(a, b):
    """Property: the hand-written parser agrees with Python arithmetic
    on a representative expression shape."""
    value = evaluate("(A+2.0)*B-A/B", {"A": a, "B": b})
    expected = (a + 2.0) * b - a / b
    assert value == pytest.approx(expected, rel=1e-9, abs=1e-9)
