"""Tests for the wrapper-mode measurement engine."""

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.scheduler import OSKernel
from repro.workloads.stream import run_stream


@pytest.fixture
def nehalem():
    return create_machine("nehalem_ep")


def synthetic_run(machine, cpus, channels):
    """Apply fixed channel counts to given cpus (a fake application)."""
    def run():
        machine.apply_counts({cpu: dict(channels) for cpu in cpus},
                             elapsed_seconds=0.01)
    return run


class TestWrapperMode:
    def test_counts_only_during_window(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        channels = {Channel.L1D_REPLACEMENT: 100,
                    Channel.INSTRUCTIONS: 1000,
                    Channel.CORE_CYCLES: 2000}
        # Events before the session must not appear.
        nehalem.apply_counts({0: channels})
        result = perfctr.wrap([0], "L1D_REPL:PMC0",
                              synthetic_run(nehalem, [0], channels))
        assert result.event(0, "L1D_REPL") == 100
        # Events after the window don't change the result either.
        nehalem.apply_counts({0: channels})
        assert result.event(0, "L1D_REPL") == 100

    def test_fixed_events_always_added(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        result = perfctr.wrap([0], "L1D_REPL:PMC0",
                              synthetic_run(nehalem, [0],
                                            {Channel.INSTRUCTIONS: 500,
                                             Channel.CORE_CYCLES: 700}))
        assert result.event(0, "INSTR_RETIRED_ANY") == 500
        assert result.event(0, "CPU_CLK_UNHALTED_CORE") == 700

    def test_multiple_cores_measured_simultaneously(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        def run():
            nehalem.apply_counts({
                0: {Channel.L1D_REPLACEMENT: 10},
                1: {Channel.L1D_REPLACEMENT: 20},
                2: {Channel.L1D_REPLACEMENT: 30},
            })
        result = perfctr.wrap("0-2", "L1D_REPL:PMC0", run)
        assert [result.event(c, "L1D_REPL") for c in (0, 1, 2)] == \
            [10, 20, 30]

    def test_core_based_not_process_based(self, nehalem):
        """Paper §II.A: everything that runs on the core is counted —
        an interloper's events are indistinguishable."""
        perfctr = LikwidPerfCtr(nehalem)
        def run():
            nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 100}})
            # Another "process" lands on the same core mid-measurement.
            nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 999}})
        result = perfctr.wrap([0], "L1D_REPL:PMC0", run)
        assert result.event(0, "L1D_REPL") == 1099

    def test_group_metrics_derived(self, nehalem):
        kernel = OSKernel(nehalem, seed=1)
        perfctr = LikwidPerfCtr(nehalem)
        result = perfctr.wrap(
            "0-3", "FLOPS_DP",
            lambda: run_stream(nehalem, kernel, nthreads=4, compiler="icc",
                               pin_cpus=[0, 1, 2, 3]).result)
        for cpu in range(4):
            assert result.metric(cpu, "DP MFlops/s") > 0
            assert result.metric(cpu, "CPI") > 0
            assert result.metric(cpu, "Runtime [s]") > 0

    def test_sleep_measures_nothing(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        result = perfctr.wrap(
            "0-7", "FLOPS_DP",
            lambda: nehalem.apply_counts({}, elapsed_seconds=1.0))
        assert result.total("FP_COMP_OPS_EXE_SSE_FP_PACKED") == 0


class TestSocketLocks:
    def test_lock_owner_is_first_cpu_per_socket(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        session = perfctr.session([2, 3, 4, 5],
                                  "UNC_L3_LINES_IN_ANY:UPMC0")
        assert session.socket_locks == {0: 2, 1: 4}

    def test_uncore_counts_attributed_once(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        def run():
            nehalem.apply_counts({}, {0: {Channel.L3_LINES_IN: 500}})
        result = perfctr.wrap("0-3", "UNC_L3_LINES_IN_ANY:UPMC0", run)
        values = [result.event(c, "UNC_L3_LINES_IN_ANY") for c in range(4)]
        assert values == [500, 0, 0, 0]
        assert result.total("UNC_L3_LINES_IN_ANY") == 500

    def test_uncore_rejected_without_uncore_pmu(self):
        core2 = create_machine("core2")
        perfctr = LikwidPerfCtr(core2)
        from repro.errors import EventError
        with pytest.raises((CounterError, EventError)):
            perfctr.session([0], "UNC_L3_LINES_IN_ANY:UPMC0")


class TestSessionValidation:
    def test_duplicate_cpus_rejected(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        with pytest.raises(CounterError, match="duplicate"):
            perfctr.session([0, 0], "L1D_REPL:PMC0")

    def test_stop_before_start_rejected(self, nehalem):
        perfctr = LikwidPerfCtr(nehalem)
        session = perfctr.session([0], "L1D_REPL:PMC0")
        with pytest.raises(CounterError, match="not started"):
            session.stop()

    def test_amd_measurement_path(self):
        machine = create_machine("amd_istanbul")
        perfctr = LikwidPerfCtr(machine)
        def run():
            machine.apply_counts({0: {Channel.INSTRUCTIONS: 100,
                                      Channel.CORE_CYCLES: 250}})
        result = perfctr.wrap([0], "FLOPS_DP", run)
        assert result.event(0, "RETIRED_INSTRUCTIONS") == 100
        assert result.metric(0, "CPI") == 2.5

    def test_available_events_listing(self, nehalem):
        events = LikwidPerfCtr(nehalem).available_events()
        assert "UNC_L3_LINES_IN_ANY" in events
        assert "L1D_REPL" in events
