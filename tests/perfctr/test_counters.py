"""Tests for counter mapping, assignment validation, and programming."""

import pytest

from repro.core.perfctr.counters import (CounterMap, CounterProgrammer,
                                         auto_fixed_assignments,
                                         validate_assignments)
from repro.core.perfctr.events import parse_event_string
from repro.errors import CounterError
from repro.hw import registers as regs
from repro.hw.arch import create_machine, get_arch
from repro.oskern.msr_driver import MsrDriver


class TestCounterMap:
    def test_nehalem_resources(self):
        cm = CounterMap(get_arch("nehalem_ep"))
        assert cm.names("PMC") == ["PMC0", "PMC1", "PMC2", "PMC3"]
        assert cm.names("FIXC") == ["FIXC0", "FIXC1", "FIXC2"]
        assert len(cm.names("UPMC")) == 8
        assert cm.names("UFIXC") == ["UFIXC0"]

    def test_core2_resources(self):
        cm = CounterMap(get_arch("core2"))
        assert cm.names("PMC") == ["PMC0", "PMC1"]
        assert cm.names("UPMC") == []

    def test_amd_resources(self):
        cm = CounterMap(get_arch("amd_istanbul"))
        assert len(cm.names("PMC")) == 4
        assert cm.names("FIXC") == []
        assert cm.lookup("PMC0").config_addr == regs.AMD_PERFEVTSEL0

    def test_unknown_counter(self):
        cm = CounterMap(get_arch("core2"))
        with pytest.raises(CounterError, match="no counter"):
            cm.lookup("PMC7")

    def test_addresses(self):
        cm = CounterMap(get_arch("nehalem_ep"))
        assert cm.lookup("PMC2").counter_addr == regs.IA32_PMC0 + 2
        assert cm.lookup("FIXC1").counter_addr == regs.IA32_FIXED_CTR1
        assert cm.lookup("UPMC3").counter_addr == regs.MSR_UNCORE_PMC0 + 3
        assert cm.lookup("FIXC0").config_addr is None


class TestValidation:
    def _validate(self, arch, text):
        spec = get_arch(arch)
        return validate_assignments(spec.events, CounterMap(spec),
                                    parse_event_string(text))

    def test_valid_core_assignment(self):
        out = self._validate("nehalem_ep", "L1D_REPL:PMC0,L1D_M_EVICT:PMC1")
        assert [a.counter.name for a in out] == ["PMC0", "PMC1"]

    def test_fixed_event_must_use_its_fixed_counter(self):
        with pytest.raises(CounterError, match="hard-wired"):
            self._validate("nehalem_ep", "INSTR_RETIRED_ANY:PMC0")
        with pytest.raises(CounterError, match="hard-wired"):
            self._validate("nehalem_ep", "INSTR_RETIRED_ANY:FIXC1")
        out = self._validate("nehalem_ep", "INSTR_RETIRED_ANY:FIXC0")
        assert out[0].counter.name == "FIXC0"

    def test_uncore_event_requires_upmc(self):
        with pytest.raises(CounterError, match="requires a UPMC"):
            self._validate("nehalem_ep", "UNC_L3_LINES_IN_ANY:PMC0")
        out = self._validate("nehalem_ep", "UNC_L3_LINES_IN_ANY:UPMC0")
        assert out[0].counter.is_uncore

    def test_core_event_rejects_upmc(self):
        with pytest.raises(CounterError, match="requires a PMC"):
            self._validate("nehalem_ep", "L1D_REPL:UPMC0")

    def test_unknown_event(self):
        from repro.errors import EventError
        with pytest.raises(EventError):
            self._validate("nehalem_ep", "BOGUS_EVENT:PMC0")

    def test_counter_beyond_capacity(self):
        with pytest.raises(CounterError, match="no counter"):
            self._validate("core2", "L1D_REPL:PMC2")

    def test_auto_fixed_on_intel(self):
        spec = get_arch("westmere_ep")
        extra = auto_fixed_assignments(spec.events, CounterMap(spec))
        assert [a.event.name for a in extra] == [
            "INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE",
            "CPU_CLK_UNHALTED_REF"]

    def test_auto_fixed_empty_on_amd(self):
        spec = get_arch("amd_k8")
        assert auto_fixed_assignments(spec.events, CounterMap(spec)) == []


class TestProgramming:
    def _setup(self, arch="nehalem_ep"):
        machine = create_machine(arch)
        spec = machine.spec
        cm = CounterMap(spec)
        programmer = CounterProgrammer(MsrDriver(machine), cm)
        assignments = validate_assignments(
            spec.events, cm, parse_event_string("L1D_REPL:PMC0"))
        assignments += auto_fixed_assignments(spec.events, cm)
        return machine, programmer, assignments

    def test_setup_programs_evtsel_without_counting(self):
        machine, programmer, assignments = self._setup()
        programmer.setup_core(0, assignments)
        evtsel = machine.rdmsr(0, regs.IA32_PERFEVTSEL0)
        ev = machine.spec.events.lookup("L1D_REPL")
        assert regs.evtsel_event(evtsel) == ev.event_code
        assert regs.evtsel_umask(evtsel) == ev.umask
        assert not machine.core_pmus[0].pmc_active(0)  # global ctrl off

    def test_start_activates_counters(self):
        machine, programmer, assignments = self._setup()
        programmer.setup_core(0, assignments)
        programmer.start_core(0, assignments)
        assert machine.core_pmus[0].pmc_active(0)
        assert machine.core_pmus[0].fixed_active(0)
        assert machine.core_pmus[0].fixed_active(1)

    def test_stop_deactivates(self):
        machine, programmer, assignments = self._setup()
        programmer.setup_core(0, assignments)
        programmer.start_core(0, assignments)
        programmer.stop_core(0, assignments)
        assert not machine.core_pmus[0].pmc_active(0)

    def test_setup_zeroes_counters(self):
        machine, programmer, assignments = self._setup()
        machine.msr[0].poke(regs.IA32_PMC0, 999)
        programmer.setup_core(0, assignments)
        assert machine.rdmsr(0, regs.IA32_PMC0) == 0

    def test_read_returns_by_counter_name(self):
        machine, programmer, assignments = self._setup()
        programmer.setup_core(0, assignments)
        machine.msr[0].poke(regs.IA32_PMC0, 77)
        raw = programmer.read_core(0, assignments)
        assert raw["PMC0"] == 77

    def test_amd_start_stop_via_en_bit(self):
        machine = create_machine("amd_istanbul")
        spec = machine.spec
        cm = CounterMap(spec)
        programmer = CounterProgrammer(MsrDriver(machine), cm)
        assignments = validate_assignments(
            spec.events, cm,
            parse_event_string("RETIRED_INSTRUCTIONS:PMC0"))
        programmer.setup_core(0, assignments)
        assert not machine.core_pmus[0].pmc_active(0)
        programmer.start_core(0, assignments)
        assert machine.core_pmus[0].pmc_active(0)
        programmer.stop_core(0, assignments)
        assert not machine.core_pmus[0].pmc_active(0)

    def test_uncore_programming(self):
        machine = create_machine("nehalem_ep")
        spec = machine.spec
        cm = CounterMap(spec)
        programmer = CounterProgrammer(MsrDriver(machine), cm)
        assignments = validate_assignments(
            spec.events, cm,
            parse_event_string("UNC_L3_LINES_IN_ANY:UPMC0"))
        programmer.setup_uncore(0, assignments)
        programmer.start_uncore(0, assignments)
        assert machine.uncore_pmus[0].upmc_active(0)
        programmer.stop_uncore(0)
        assert not machine.uncore_pmus[0].upmc_active(0)


class TestCounterConstraints:
    """Events tied to specific counters (offcore-response facility)."""

    def _validate(self, text):
        spec = get_arch("nehalem_ep")
        return validate_assignments(spec.events, CounterMap(spec),
                                    parse_event_string(text))

    def test_allowed_counters_accepted(self):
        out = self._validate("OFFCORE_RESPONSE_0_ANY_REQUEST:PMC0")
        assert out[0].counter.index == 0
        out = self._validate("OFFCORE_RESPONSE_0_ANY_REQUEST:PMC1")
        assert out[0].counter.index == 1

    def test_disallowed_counter_rejected(self):
        with pytest.raises(CounterError, match="cannot be counted on PMC2"):
            self._validate("OFFCORE_RESPONSE_0_ANY_REQUEST:PMC2")

    def test_constrained_event_still_counts(self):
        from repro.core.perfctr.measurement import LikwidPerfCtr
        from repro.hw.events import Channel
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap(
            [0], "OFFCORE_RESPONSE_0_ANY_REQUEST:PMC1",
            lambda: machine.apply_counts({0: {Channel.DRAM_READS: 321}}))
        assert result.event(0, "OFFCORE_RESPONSE_0_ANY_REQUEST") == 321
