"""Tests for event-option parsing and programming (EDGEDETECT etc.)."""

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.events import (EventOptions, parse_event_string,
                                       parse_options)
from repro.errors import CounterError, EventError
from repro.hw import registers as regs
from repro.hw.arch import create_machine


class TestParsing:
    def test_plain_assignment_default_options(self):
        spec = parse_event_string("L1D_REPL:PMC0")[0]
        assert spec.options == EventOptions()

    def test_flags(self):
        spec = parse_event_string(
            "L1D_REPL:PMC0:EDGEDETECT:INVERT:ANYTHREAD")[0]
        assert spec.options.edge
        assert spec.options.invert
        assert spec.options.anythread

    def test_cmask_values(self):
        assert parse_event_string("A:PMC0:CMASK=2")[0].options.cmask == 2
        assert parse_event_string("A:PMC0:CMASK=0x10")[0].options.cmask == 16

    def test_ring_filters(self):
        kernel = parse_event_string("A:PMC0:KERNEL")[0].options
        assert kernel.kernel_only and not kernel.user_only
        user = parse_event_string("A:PMC0:USER")[0].options
        assert user.user_only

    def test_kernel_and_user_exclusive(self):
        with pytest.raises(EventError, match="exclusive"):
            parse_event_string("A:PMC0:KERNEL:USER")

    @pytest.mark.parametrize("bad", ["A:PMC0:FOO", "A:PMC0:CMASK=z",
                                     "A:PMC0:CMASK=300"])
    def test_bad_options(self, bad):
        with pytest.raises(EventError):
            parse_event_string(bad)

    def test_case_insensitive(self):
        spec = parse_event_string("A:PMC0:edgedetect")[0]
        assert spec.options.edge

    def test_render_roundtrip(self):
        text = "A:PMC0:EDGEDETECT:KERNEL:CMASK=0x2"
        spec = parse_event_string(text)[0]
        assert parse_event_string(spec.render())[0] == spec


class TestProgramming:
    def test_options_land_in_evtsel(self):
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        session = perfctr.session(
            [0], "L1D_REPL:PMC0:EDGEDETECT:CMASK=0x3:KERNEL")
        session.start()
        evtsel = machine.rdmsr(0, regs.IA32_PERFEVTSEL0)
        assert evtsel & regs.EVTSEL_EDGE
        assert (evtsel >> regs.EVTSEL_CMASK_SHIFT) & 0xFF == 3
        assert not evtsel & regs.EVTSEL_USR   # KERNEL = ring 0 only
        assert evtsel & regs.EVTSEL_OS
        session.stop()

    def test_counting_still_matches_event(self):
        from repro.hw.events import Channel
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap(
            [0], "L1D_REPL:PMC0:EDGEDETECT",
            lambda: machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 9}}))
        assert result.event(0, "L1D_REPL") == 9

    def test_fixed_counters_reject_options(self):
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        with pytest.raises(CounterError, match="options"):
            perfctr.session([0], "INSTR_RETIRED_ANY:FIXC0:EDGEDETECT")

    def test_parse_options_direct(self):
        options = parse_options(["EDGEDETECT", "CMASK=1"], "ctx")
        assert options.edge and options.cmask == 1
