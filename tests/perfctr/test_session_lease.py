"""SessionLease: scheduler-granted epochs and lifecycle hooks.

The concurrent-session server opens a driver epoch *before* the
measurement session starts (the lease grant is journaled under it)
and hands it to the session through a :class:`SessionLease`.  The
session must adopt the epoch — re-entrant lock acquisition, no
``begin_epoch`` of its own — and must NOT end it on close: the lease
holder ends it once the lease is over.
"""

from repro.core.perfctr import LikwidPerfCtr, SessionLease
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.access import open_backend

ARCH = "westmere_ep"


def stack():
    machine = create_machine(ARCH)
    backend = open_backend("msr", machine)
    return machine, backend, LikwidPerfCtr(machine, backend=backend)


def run_window(machine, session, cpus):
    machine.apply_counts(
        {cpu: {Channel.INSTRUCTIONS: 1e6, Channel.CORE_CYCLES: 2e6}
         for cpu in cpus})
    session.stop()
    return session.read(wall_time=0.1)


class TestAdoptedEpoch:
    def test_session_uses_the_lease_epoch(self):
        machine, backend, perfctr = stack()
        driver = backend.driver
        epoch = driver.begin_epoch()
        lease = SessionLease(epoch=epoch)
        with perfctr.session([0], "FLOPS_DP", lease=lease) as session:
            assert session._epoch == epoch
            run_window(machine, session, [0])
        # The session closed but the lease owns the epoch: it is
        # still open and the journal not yet retired.
        assert epoch in driver._open_epochs
        driver.end_epoch(epoch)
        assert epoch not in driver._open_epochs

    def test_leaseless_session_manages_its_own_epoch(self):
        machine, backend, perfctr = stack()
        driver = backend.driver
        with perfctr.session([0], "FLOPS_DP") as session:
            own = session._epoch
            assert own in driver._open_epochs
            run_window(machine, session, [0])
        assert own not in driver._open_epochs    # ended on close

    def test_uncore_locks_are_reentrant_under_the_lease(self):
        """The scheduler journals its lease grant under the epoch;
        the session's own uncore acquisition with the same pid and
        epoch must be re-entrant, not a conflict."""
        machine, backend, perfctr = stack()
        driver = backend.driver
        epoch = driver.begin_epoch()
        driver.acquire_socket_lock(0, 0, epoch)   # the "grant"
        lease = SessionLease(epoch=epoch)
        with perfctr.session([0], "MEM", lease=lease) as session:
            run_window(machine, session, [0])
        result = session.read(wall_time=0.1)
        # No degraded-uncore warnings: the lock was re-entrant.
        assert not result.warnings
        driver.release_socket_lock(0, epoch)
        driver.end_epoch(epoch)


class TestLifecycleHooks:
    def test_hooks_fire_once_in_order(self):
        machine, backend, perfctr = stack()
        calls = []
        lease = SessionLease(
            on_start=lambda s: calls.append(("start", s)),
            on_release=lambda s: calls.append(("release", s)))
        with perfctr.session([0], "FLOPS_DP", lease=lease) as session:
            assert calls == [("start", session)]
            run_window(machine, session, [0])
        assert [name for name, _ in calls] == ["start", "release"]

    def test_release_fires_even_when_workload_raises(self):
        machine, backend, perfctr = stack()
        calls = []
        lease = SessionLease(
            on_release=lambda s: calls.append("release"))
        try:
            with perfctr.session([0], "FLOPS_DP", lease=lease):
                raise RuntimeError("workload blew up")
        except RuntimeError:
            pass
        assert calls == ["release"]

    def test_hookless_lease_is_inert(self):
        machine, backend, perfctr = stack()
        with perfctr.session([0], "FLOPS_DP",
                             lease=SessionLease()) as session:
            result = run_window(machine, session, [0])
        assert result.counts[0]
