"""Failure-injection tests: the tool layer against a hostile OS.

The paper sells ease of installation ("no additional kernel modules
and patches") but the msr module and its device permissions are still
real-world failure points; these tests pin the error behaviour.
"""

import pytest

from repro.core.features import LikwidFeatures
from repro.core.perfctr import LikwidPerfCtr
from repro.errors import CounterError, MsrError
from repro.hw.arch import create_machine
from repro.oskern.msr_driver import MsrDriver


class TestDriverFailures:
    def test_measurement_without_msr_module(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, loaded=False)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0], "FLOPS_DP")
        with pytest.raises(MsrError, match="modprobe msr"):
            session.start()

    def test_measurement_with_readonly_devices(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, device_writable=False)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0], "FLOPS_DP")
        with pytest.raises(MsrError, match="permission denied"):
            session.start()

    def test_module_unloaded_mid_session(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0], "FLOPS_DP")
        session.start()
        driver.unload()
        with pytest.raises(MsrError):
            session.read()

    def test_features_with_readonly_device(self):
        machine = create_machine("core2")
        driver = MsrDriver(machine, device_writable=False)
        features = LikwidFeatures(driver)
        # Reading the report works (read-only open)...
        assert "Hardware Prefetcher" in features.report()
        # ...but toggling needs a writable device.
        with pytest.raises(MsrError, match="permission denied"):
            features.disable("CL_PREFETCHER")

    def test_failed_start_leaves_no_partial_enable(self):
        """If programming cpu 1 fails, cpu 0's counters must not be
        left running (no torn sessions)."""
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0, 1], "FLOPS_DP")

        original_open = driver.open
        calls = {"n": 0}

        def flaky_open(cpu, *, write=True):
            calls["n"] += 1
            if cpu == 1:
                raise MsrError("injected failure")
            return original_open(cpu, write=write)

        driver.open = flaky_open
        with pytest.raises(MsrError, match="injected"):
            session.start()
        driver.open = original_open
        # cpu 0 was set up but never globally enabled (start_core for
        # cpu 0 runs after all setup_core calls, which failed first).
        assert not machine.core_pmus[0].pmc_active(0)

    def test_read_after_stop_is_stable(self):
        from repro.hw.events import Channel
        machine = create_machine("nehalem_ep")
        perfctr = LikwidPerfCtr(machine)
        session = perfctr.session([0], "L1D_REPL:PMC0")
        session.start()
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 5}})
        session.stop()
        first = session.read()
        machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 100}})
        second = session.read()
        assert first.event(0, "L1D_REPL") == second.event(0, "L1D_REPL") == 5


class TestWrapTeardown:
    """Regression: ``LikwidPerfCtr.wrap`` used to leak the started
    session when the workload raised — counters stayed enabled and the
    msr handles stayed open for the rest of the process."""

    class Boom(RuntimeError):
        pass

    def test_wrap_tears_down_when_workload_raises(self):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)

        def exploding_workload():
            raise self.Boom("workload died")

        with pytest.raises(self.Boom):
            perfctr.wrap([0, 1], "FLOPS_DP", exploding_workload)
        for cpu in (0, 1):
            assert not machine.core_pmus[cpu].pmc_active(0)
            assert not machine.core_pmus[cpu].fixed_active(0)
        assert driver.stats.live_handles == 0

    def test_wrap_tears_down_uncore_when_workload_raises(self):
        from repro.hw import registers as regs
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        with pytest.raises(self.Boom):
            perfctr.wrap([0], "UNC_L3_LINES_IN_ANY:UPMC0",
                         lambda: (_ for _ in ()).throw(self.Boom()))
        assert machine.rdmsr(0, regs.MSR_UNCORE_PERF_GLOBAL_CTRL) == 0
        assert driver.stats.live_handles == 0

    def test_measurement_works_after_failed_wrap(self):
        from repro.hw.events import Channel
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        with pytest.raises(self.Boom):
            perfctr.wrap([0], "L1D_REPL:PMC0",
                         lambda: (_ for _ in ()).throw(self.Boom()))
        result = perfctr.wrap(
            [0], "L1D_REPL:PMC0",
            lambda: machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 9}}))
        assert result.event(0, "L1D_REPL") == 9.0


class TestSessionMisuse:
    def test_double_stop(self):
        machine = create_machine("core2")
        session = LikwidPerfCtr(machine).session([0], "FLOPS_DP")
        session.start()
        session.stop()
        # Stopping twice is a CounterError (not started anymore)?  The
        # session keeps its started timestamp; second stop recomputes
        # wall time — must not raise.
        session.stop()

    def test_restart_rezeros_counters(self):
        from repro.hw.events import Channel
        machine = create_machine("core2")
        perfctr = LikwidPerfCtr(machine)
        session = perfctr.session([0], "FLOPS_DP")
        session.start()
        machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 50}})
        session.stop()
        session.start()   # fresh measurement window
        machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 7}})
        session.stop()
        assert session.read().event(
            0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == 7

    def test_empty_cpu_list(self):
        machine = create_machine("core2")
        with pytest.raises(CounterError, match="no cpus"):
            LikwidPerfCtr(machine).session([], "FLOPS_DP")
