"""Differential backend agreement (ISSUE 6 satellite c).

The msr and perf backends must be interchangeable for any in-capacity
measurement: identical workload, seed, and group produce identical
counts on every shared architecture (a single perf event set is never
scaled, so agreement is exact, not approximate).  Oversubscribed
requests are the perf backend's own territory — kernel-side rotation
with ``time_enabled``/``time_running`` extrapolation — and its scaled
estimates must land on the true totals within multiplex-scaling
tolerance.  The POWER9 legs re-run the PR 5 crash matrix and the
recovery-idempotence invariant under both backends.
"""

import math

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.counters import CounterMap, validate_assignments
from repro.core.perfctr.events import parse_event_string
from repro.core.perfctr.groups import groups_for
from repro.errors import ProcessKilled
from repro.hw.arch import available, create_machine, get_arch
from repro.hw.events import Channel
from repro.oskern.access import (ACCESS_MODES, MsrBackend, PerfEventBackend,
                                 backend_for, open_backend)
from repro.oskern.journal import state_mutating_addresses
from repro.oskern.msr_driver import FaultPlan, MsrDriver
from repro.oskern.recovery import RecoveryEngine

ALL_ARCHES = available()

# A broad synthetic slice: every channel produces, so whatever events a
# group selects, both backends observe the same non-trivial state.
WORKLOAD = {ch: 1000.0 * (i + 1) for i, ch in enumerate(Channel)}


def measure(arch: str, mode: str, group: str):
    machine = create_machine(arch)
    perfctr = LikwidPerfCtr(machine, backend=open_backend(mode, machine))
    cpus = [0, 1] if machine.num_hwthreads > 1 else [0]
    return perfctr.wrap(
        cpus, group,
        lambda: machine.apply_counts({cpu: dict(WORKLOAD) for cpu in cpus},
                                     elapsed_seconds=0.25))


def same_value(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


class TestRegistry:
    def test_unknown_mode_rejected(self):
        machine = create_machine("nehalem_ep")
        with pytest.raises(ValueError, match="msr, perf"):
            open_backend("xenon", machine)
        with pytest.raises(ValueError, match="unknown access mode"):
            backend_for("ptrace", MsrDriver(machine))

    def test_modes_map_to_classes(self):
        machine = create_machine("nehalem_ep")
        assert isinstance(open_backend("msr", machine), MsrBackend)
        assert isinstance(open_backend("perf", machine), PerfEventBackend)
        assert tuple(ACCESS_MODES) == ("msr", "perf")

    def test_capability_matrix(self):
        msr = MsrBackend.capabilities
        perf = PerfEventBackend.capabilities
        assert msr.direct_msr and not perf.direct_msr
        assert perf.kernel_multiplexing and not msr.kernel_multiplexing
        assert perf.userspace_read and not msr.userspace_read
        assert msr.needs_socket_locks and not perf.needs_socket_locks
        assert msr.feature_control and not perf.feature_control


@pytest.mark.parametrize("arch", ALL_ARCHES)
def test_backends_agree_on_every_group(arch):
    """Identical workload/seed/group: msr and perf counts are equal on
    every event of every group the architecture offers (exact — a
    single event set multiplex-scales by 1.0)."""
    spec = get_arch(arch)
    for group in sorted(groups_for(spec)):
        via_msr = measure(arch, "msr", group)
        via_perf = measure(arch, "perf", group)
        assert via_msr.cpus == via_perf.cpus
        for cpu in via_msr.cpus:
            events_msr = via_msr.counts[cpu]
            events_perf = via_perf.counts[cpu]
            assert set(events_msr) == set(events_perf), (arch, group)
            for name, value in events_msr.items():
                assert same_value(value, events_perf[name]), \
                    f"{arch} {group} cpu{cpu} {name}: " \
                    f"msr={value} perf={events_perf[name]}"


def test_perf_reads_cost_no_device_ops():
    """rdpmc semantics: the perf backend's core reads never touch the
    device node, so the same measurement needs strictly fewer device
    ops than under msr — and cannot take read faults."""
    ops = {}
    for mode in ACCESS_MODES:
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine, faults=FaultPlan(seed=0))
        perfctr = LikwidPerfCtr(machine, backend=backend_for(mode, driver))
        perfctr.wrap([0, 1], "FLOPS_DP",
                     lambda m=machine: m.apply_counts(
                         {0: dict(WORKLOAD), 1: dict(WORKLOAD)}))
        ops[mode] = driver._faults.op_count
    assert ops["perf"] < ops["msr"]


class TestMultiplexScaling:
    """Oversubscription: two events claim PMC0; the kernel rotates."""

    EVENTS = ("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0,"
              "FP_COMP_OPS_EXE_SSE_FP_SCALAR:PMC0")

    def _run(self, ticks=20):
        machine = create_machine("nehalem_ep")
        backend = open_backend("perf", machine)
        counters = CounterMap(machine.spec)
        backend.attach(counters)
        specs = parse_event_string(self.EVENTS, allow_duplicates=True)
        assignments = validate_assignments(machine.spec.events, counters,
                                           specs)
        backend.program_core(0, assignments)
        backend.start_core(0, assignments)
        for _ in range(ticks):
            machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 100.0,
                                      Channel.FLOPS_SCALAR_DP: 300.0}},
                                 elapsed_seconds=0.05)
        backend.stop_core(0, assignments)
        return machine, backend, assignments

    def test_scaled_estimates_hit_true_totals(self):
        machine, backend, assignments = self._run(ticks=20)
        assert backend.rotations(0) > 5
        records = {r["event"]: r for r in backend.read_events(0)}
        packed = records["FP_COMP_OPS_EXE_SSE_FP_PACKED"]
        scalar = records["FP_COMP_OPS_EXE_SSE_FP_SCALAR"]
        # Each event ran ~half the window and the workload is uniform
        # per tick, so extrapolation recovers the true totals exactly;
        # the acceptance bound is the multiplex-scaling tolerance.
        assert packed["scaled"] == pytest.approx(20 * 100.0, rel=0.15)
        assert scalar["scaled"] == pytest.approx(20 * 300.0, rel=0.15)
        assert packed["raw"] < 20 * 100.0
        assert scalar["raw"] < 20 * 300.0
        assert 0.0 < packed["time_running"] < packed["time_enabled"]

    def test_starved_event_reports_zero(self):
        """Regression (ISSUE 8): an event that was enabled but never
        scheduled (``time_running == 0`` with ``time_enabled > 0``)
        cannot have observed anything — stale residue on the physical
        counter must not be reported as its count."""
        from repro.oskern.access.perf import PerfEvent
        starved = PerfEvent(3, None)
        starved.time_enabled = 0.5
        starved.time_running = 0.0
        assert starved.scaled(12345) == 0.0
        assert starved.scaled(0) == 0.0
        # Never *enabled* is different: the baseline snapshot taken
        # before any tick must see preloaded counter state raw.
        unstarted = PerfEvent(4, None)
        assert unstarted.scaled(777) == 777.0

    def test_rotation_starvation_in_read_events(self):
        """The fd-level view of the same bug: after one tick the
        rotation has scheduled set 1, which has not been credited any
        running time yet — stale counts poked onto its counter must
        read back as a scaled estimate of 0, not as raw truth."""
        machine, backend, assignments = self._run(ticks=1)
        ctx = backend._cpus[0]
        active = {ev.assignment.event.name
                  for ev in ctx.sets[ctx.active]}
        # Simulate stale residue: counts the active-but-never-ticked
        # event could not have observed.
        addr = assignments[0].counter.counter_addr
        machine.msr[0].poke(addr, 999_999)
        starved = [r for r in backend.read_events(0)
                   if r["event"] in active and r["time_running"] == 0.0]
        assert starved, "expected a scheduled-but-never-ticked event"
        for record in starved:
            assert record["time_enabled"] > 0.0
            assert record["scaled"] == 0.0

    def test_in_capacity_context_is_never_scaled(self):
        machine = create_machine("nehalem_ep")
        backend = open_backend("perf", machine)
        counters = CounterMap(machine.spec)
        backend.attach(counters)
        assignments = validate_assignments(
            machine.spec.events, counters,
            parse_event_string("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0,"
                               "FP_COMP_OPS_EXE_SSE_FP_SCALAR:PMC1"))
        backend.program_core(0, assignments)
        backend.start_core(0, assignments)
        machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 500.0,
                                  Channel.FLOPS_SCALAR_DP: 700.0}},
                             elapsed_seconds=0.1)
        backend.stop_core(0, assignments)
        assert backend.rotations(0) == 0
        values = backend.read_batch(0, assignments)
        assert values["PMC0"] == 500
        assert values["PMC1"] == 700


# -- POWER9 crash matrix and recovery idempotence, per backend -------------


def snapshot(machine):
    addrs = sorted(state_mutating_addresses(machine.spec))
    return {(cpu, addr): machine.msr[cpu].peek(addr)
            for cpu in range(machine.num_hwthreads)
            for addr in addrs}


def backend_measurement(machine, driver, mode, group, cpus):
    perfctr = LikwidPerfCtr(machine, backend=backend_for(mode, driver))
    return perfctr.wrap(
        cpus, group,
        lambda: machine.apply_counts({cpu: dict(WORKLOAD) for cpu in cpus}))


def count_ops(arch, mode, group, cpus):
    machine = create_machine(arch)
    driver = MsrDriver(machine, faults=FaultPlan(seed=0))
    backend_measurement(machine, driver, mode, group, cpus)
    return driver._faults.op_count


def crash_and_recover(arch, mode, group, cpus, kill_at):
    machine = create_machine(arch)
    pristine = snapshot(machine)
    driver = MsrDriver(machine, faults=FaultPlan(seed=0, kill_after=kill_at))
    with pytest.raises(ProcessKilled):
        backend_measurement(machine, driver, mode, group, cpus)
    driver.respawn()
    report = RecoveryEngine(driver).recover()
    return machine, driver, pristine, report


@pytest.mark.parametrize("mode", ACCESS_MODES)
class TestPower9CrashMatrix:
    GROUP = "FLOPS_DP"   # payload pair + the PMC4/PMC5 run-latch pair
    CPUS = [0, 4]        # two cores of socket 0 (SMT4 stride)

    def test_sampled_kill_indices(self, mode):
        total = count_ops("power9", mode, self.GROUP, self.CPUS)
        assert total > 5
        step = max(1, total // 7)
        for kill_at in range(1, total, step):
            machine, driver, pristine, _ = crash_and_recover(
                "power9", mode, self.GROUP, self.CPUS, kill_at)
            assert snapshot(machine) == pristine, \
                f"{mode}: state not pristine after kill at op {kill_at}"
            assert driver.locks.held() == {}
            assert driver.journal.record_count == 0

    def test_recovery_is_idempotent(self, mode):
        total = count_ops("power9", mode, self.GROUP, self.CPUS)
        machine, driver, pristine, first = crash_and_recover(
            "power9", mode, self.GROUP, self.CPUS, total // 2)
        assert not first.clean
        second = RecoveryEngine(driver).recover()
        assert second.clean
        assert snapshot(machine) == pristine
