"""Process-level isolation between tests.

The CLI front-ends legitimately flip the process SIGPIPE disposition:
filter-style commands install ``SIG_DFL`` (``restore_sigpipe``, so
``likwid-topology | head`` dies quietly) while socket-hosting ones
install ``SIG_IGN`` (``ignore_sigpipe``, so a vanished peer surfaces
as ``BrokenPipeError``).  Inside one pytest process that disposition
would leak from a CLI test into every later socket test — a chaos
test writing into an aborted connection would then kill the whole
test run with a real SIGPIPE (observed: exit 141 at the first
server-plane test after ``tests/cli``).  Restore the interpreter's
startup default (ignored) after every test.
"""

import signal

import pytest


@pytest.fixture(autouse=True)
def _isolate_sigpipe():
    yield
    try:
        signal.signal(signal.SIGPIPE, signal.SIG_IGN)
    except (AttributeError, ValueError):
        pass  # non-Unix platform or non-main thread
