"""Tests for trace kernels and the exact trace runner."""

import pytest

from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.workloads.kernels import (blocked_sum, copy_kernel, pointer_chase,
                                     random_load, streaming_load,
                                     streaming_triad, strided_load)
from repro.workloads.runner import run_trace


class TestTraceGenerators:
    def test_streaming_load_shape(self):
        trace = list(streaming_load(10, base=64))
        assert trace[0] == ("L", 64, 0)
        assert trace[-1] == ("L", 64 + 9 * 8, 0)
        assert all(op == "L" for op, _a, _s in trace)

    def test_triad_three_streams(self):
        trace = list(streaming_triad(4))
        assert len(trace) == 12
        ops = [op for op, _a, _s in trace]
        assert ops[:3] == ["L", "L", "S"]
        streams = {s for _o, _a, s in trace}
        assert streams == {1, 2, 3}

    def test_triad_nontemporal(self):
        trace = list(streaming_triad(2, nontemporal=True))
        assert [op for op, _a, _s in trace][2] == "N"

    def test_strided(self):
        trace = list(strided_load(3, 256))
        assert [a for _o, a, _s in trace] == [0, 256, 512]

    def test_random_deterministic(self):
        a = list(random_load(50, 1 << 16, seed=3))
        b = list(random_load(50, 1 << 16, seed=3))
        assert a == b
        assert len({addr for _o, addr, _s in a}) > 10

    def test_pointer_chase_covers_footprint(self):
        trace = list(pointer_chase(64, 64 * 64))
        addrs = {a for _o, a, _s in trace}
        assert len(addrs) == 64   # visits every line exactly once

    def test_blocked_sum_repeats_blocks(self):
        trace = list(blocked_sum(32, 8 * 8, repeats=2))
        addrs = [a for _o, a, _s in trace]
        assert addrs[:8] == addrs[8:16]   # first block swept twice

    def test_copy_kernel(self):
        trace = list(copy_kernel(2))
        assert [op for op, _a, _s in trace] == ["L", "S", "L", "S"]


class TestRunTrace:
    def test_counts_land_in_pmu(self):
        machine = create_machine("core2")
        from repro.core.perfctr import LikwidPerfCtr
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap(
            [0], "L1D_REPL:PMC0",
            lambda: run_trace(machine, 0, streaming_load(4096)))
        # 4096 sequential 8-byte loads = 512 lines into L1, plus the
        # streamer prefetching a line or two past the end.
        assert 512 <= result.event(0, "L1D_REPL") <= 516

    def test_prefetcher_toggle_changes_measurement(self):
        """The end-to-end likwid-features story: toggling a prefetcher
        bit changes what likwid-perfctr measures."""
        from repro.core.features import LikwidFeatures
        from repro.oskern.msr_driver import MsrDriver

        def measure(disable_prefetch):
            machine = create_machine("core2")
            if disable_prefetch:
                features = LikwidFeatures(MsrDriver(machine))
                for key in ("HW_PREFETCHER", "CL_PREFETCHER",
                            "DCU_PREFETCHER", "IP_PREFETCHER"):
                    features.disable(key)
            channels = run_trace(machine, 0, strided_load(4000, 128),
                                 apply_counts=False)
            return channels

        with_pf = measure(False)
        without_pf = measure(True)
        assert with_pf[Channel.L1D_REPLACEMENT] > \
            without_pf[Channel.L1D_REPLACEMENT]  # prefetch fills extra lines

    def test_invalid_op_rejected(self):
        machine = create_machine("core2")
        with pytest.raises(ValueError, match="unknown trace op"):
            run_trace(machine, 0, [("X", 0, 0)])

    def test_returns_channel_dict(self):
        machine = create_machine("core2")
        channels = run_trace(machine, 0, copy_kernel(512),
                             apply_counts=False)
        assert channels[Channel.LOADS] == 512
        assert channels[Channel.STORES] == 512
        assert channels[Channel.INSTRUCTIONS] > 0
