"""Tests for the Jacobi workload (case studies 2/3 behaviours)."""

import pytest

from repro.errors import WorkloadError
from repro.hw.arch import create_machine, get_arch
from repro.hw.events import Channel
from repro.oskern.scheduler import OSKernel
from repro.workloads.jacobi import (JacobiConfig, in_cache,
                                    layer_condition_factor, run_jacobi,
                                    wavefront_depth)

SPEC = get_arch("nehalem_ep")
SOCKET0 = [0, 1, 2, 3]
SPLIT = [0, 1, 4, 5]


@pytest.fixture(scope="module")
def machine():
    return create_machine("nehalem_ep")


def run(machine, variant, n=480, sweeps=6, pin=None):
    kernel = OSKernel(machine, seed=2)
    cfg = JacobiConfig(variant, n, sweeps, 4)
    return run_jacobi(machine, kernel, cfg, pin_cpus=pin or SOCKET0)


class TestModelIngredients:
    def test_layer_condition_threshold(self):
        # 3 planes of N^2 doubles vs a 2 MB L3 share (8 MB / 4 threads).
        assert layer_condition_factor(SPEC, 200, 4) == 1.0
        assert layer_condition_factor(SPEC, 480, 4) == pytest.approx(1.4)

    def test_wavefront_depth_saturates(self):
        assert wavefront_depth(SPEC, 480) == pytest.approx(4.55, rel=0.01)
        assert wavefront_depth(SPEC, 100) == 8.0    # capped
        assert wavefront_depth(SPEC, 5000) == 1.5   # floor

    def test_in_cache_threshold(self):
        assert in_cache(SPEC, 50)
        assert not in_cache(SPEC, 100)

    def test_invalid_variant(self):
        with pytest.raises(WorkloadError):
            JacobiConfig("magic", 100, 1, 4)

    def test_tiny_grid_rejected(self):
        with pytest.raises(WorkloadError):
            JacobiConfig("threaded", 4, 1, 4)


class TestTable2Values:
    """The paper's Table II within 3% (shape calibration targets)."""

    def test_threaded(self, machine):
        r = run(machine, "threaded")
        assert r.mlups == pytest.approx(784, rel=0.03)

    def test_threaded_nt(self, machine):
        r = run(machine, "threaded_nt")
        assert r.mlups == pytest.approx(1032, rel=0.03)

    def test_wavefront(self, machine):
        r = run(machine, "wavefront")
        assert r.mlups == pytest.approx(1331, rel=0.03)

    def test_nt_saves_one_third_of_traffic(self, machine):
        t = run(machine, "threaded").result.socket_channels[0]
        nt = run(machine, "threaded_nt").result.socket_channels[0]
        ratio = nt[Channel.L3_LINES_IN] / t[Channel.L3_LINES_IN]
        assert ratio == pytest.approx(11.2 / 19.2, rel=0.02)

    def test_blocking_cuts_traffic_4_5x(self, machine):
        t = run(machine, "threaded").result.socket_channels[0]
        w = run(machine, "wavefront").result.socket_channels[0]
        ratio = t[Channel.L3_LINES_IN] / w[Channel.L3_LINES_IN]
        assert ratio == pytest.approx(4.55, rel=0.03)

    def test_speedup_subproportional_to_traffic(self, machine):
        """Paper: 'the 4.5-fold decrease in memory traffic does not
        translate into a proportional performance boost'."""
        t = run(machine, "threaded")
        w = run(machine, "wavefront")
        assert 1.5 < w.mlups / t.mlups < 2.0


class TestFig11Shape:
    def test_wavefront_beats_baseline_at_all_sizes(self, machine):
        for n in (100, 200, 300, 480):
            w = run(machine, "wavefront", n=n).mlups
            b = run(machine, "threaded_nt", n=n).mlups
            assert w > b, f"N={n}"

    def test_split_pinning_is_hazardous(self, machine):
        """Fig 11: pinning pairs of wavefront threads to different
        sockets roughly halves performance and drops below baseline."""
        for n in (300, 480):
            good = run(machine, "wavefront", n=n).mlups
            bad = run(machine, "wavefront", n=n, pin=SPLIT).mlups
            base = run(machine, "threaded_nt", n=n).mlups
            assert bad < 0.65 * good
            assert bad < base

    def test_baseline_split_insensitive(self, machine):
        """The non-blocked code doesn't care which cores it uses as
        long as sockets are balanced."""
        same = run(machine, "threaded_nt", n=480).mlups
        split = run(machine, "threaded_nt", n=480, pin=SPLIT).mlups
        assert split >= same   # two memory controllers even help

    def test_unpinned_wavefront_underperforms(self, machine):
        kernel = OSKernel(machine, seed=5)
        cfg = JacobiConfig("wavefront", 480, 6, 4)
        unpinned = run_jacobi(machine, kernel, cfg, migrate=True)
        pinned = run(machine, "wavefront")
        assert unpinned.mlups <= pinned.mlups * 1.001


class TestCounters:
    def test_uncore_lines_match_analysis(self, machine):
        r = run(machine, "threaded", sweeps=6)
        sc = r.result.socket_channels[0]
        updates = r.config.updates
        assert sc[Channel.L3_LINES_IN] == pytest.approx(
            updates * 19.2 / 64, rel=0.01)

    def test_flops_counted(self, machine):
        r = run(machine, "threaded", n=100, sweeps=2)
        packed = r.result.aggregate(Channel.FLOPS_PACKED_DP)
        assert packed == pytest.approx(r.config.updates * 8 / 2, rel=0.01)

    def test_pin_list_length_validated(self, machine):
        kernel = OSKernel(machine, seed=0)
        cfg = JacobiConfig("threaded", 100, 2, 4)
        with pytest.raises(WorkloadError, match="pin list"):
            run_jacobi(machine, kernel, cfg, pin_cpus=[0, 1])


class TestWavefrontGroupLayouts:
    """Reference [8]'s multi-group layouts: independent wavefront teams
    per socket use both memory controllers and both L3s."""

    def test_2x1x2_beats_1x4(self, machine):
        kernel = OSKernel(machine, seed=2)
        one = run_jacobi(machine, kernel,
                         JacobiConfig("wavefront", 480, 6, 4),
                         pin_cpus=SOCKET0).mlups
        two = run_jacobi(machine, kernel,
                         JacobiConfig("wavefront", 480, 6, 4, groups=2),
                         pin_cpus=[0, 1, 4, 5]).mlups
        assert two > 1.3 * one

    def test_groups_must_not_span_sockets(self, machine):
        """A 1x4 group over two sockets is the hazardous case even when
        declared as one group."""
        kernel = OSKernel(machine, seed=2)
        good = run_jacobi(machine, kernel,
                          JacobiConfig("wavefront", 480, 6, 4, groups=2),
                          pin_cpus=[0, 1, 4, 5]).mlups
        # Same cpus, but as ONE group: 2+2 split -> reuse destroyed.
        bad = run_jacobi(machine, kernel,
                         JacobiConfig("wavefront", 480, 6, 4, groups=1),
                         pin_cpus=[0, 1, 4, 5]).mlups
        assert bad < 0.6 * good

    def test_invalid_group_split(self):
        with pytest.raises(WorkloadError, match="equal groups"):
            JacobiConfig("wavefront", 100, 2, 4, groups=3)

    def test_group_layer_condition_uses_group_share(self, machine):
        """With 2 threads per group, each thread's L3 share doubles, so
        the layer condition holds to larger N."""
        from repro.workloads.jacobi import jacobi_phase
        spec = machine.spec
        n = 350   # 3*350^2*8 = 2.9 MB: fails at 2 MB share, holds at 4 MB
        one_group = jacobi_phase(spec, JacobiConfig("wavefront", n, 2, 4))
        two_groups = jacobi_phase(spec,
                                  JacobiConfig("wavefront", n, 2, 4,
                                               groups=2))
        assert two_groups.mem_read_bytes_per_iter < \
            one_group.mem_read_bytes_per_iter
