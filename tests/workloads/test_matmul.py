"""Tests for the blocked DGEMM workload (roofline behaviour)."""

import pytest

from repro.errors import WorkloadError
from repro.hw.arch import create_machine, get_arch
from repro.hw.events import Channel
from repro.model.explain import diagnose
from repro.model.ecm import PlacedWork
from repro.oskern.scheduler import OSKernel
from repro.workloads.matmul import (MatmulConfig, matmul_phase, peak_gflops,
                                    run_matmul)

SPEC = get_arch("westmere_ep")


@pytest.fixture(scope="module")
def machine():
    return create_machine("westmere_ep")


def run(machine, block, nthreads=1, n=512, compiler="icc"):
    kernel = OSKernel(machine, seed=0)
    cfg = MatmulConfig(n, block, nthreads, compiler)
    return run_matmul(machine, kernel, cfg,
                      pin_cpus=machine.spec.scatter_order()[:nthreads])


class TestRoofline:
    def test_large_blocks_reach_near_peak(self, machine):
        r = run(machine, block=32)
        assert r.gflops == pytest.approx(peak_gflops(SPEC, 1), rel=0.05)

    def test_tiny_blocks_memory_bound(self, machine):
        r = run(machine, block=1)
        assert r.gflops < 0.15 * peak_gflops(SPEC, 1)

    def test_gflops_monotone_in_block_size(self, machine):
        values = [run(machine, block=b).gflops for b in (1, 2, 4, 8, 16, 32)]
        for a, b in zip(values, values[1:]):
            assert b >= a * 0.999

    def test_crossover_block_matches_machine_balance(self, machine):
        """The block size where DGEMM turns compute-bound is set by the
        machine balance: peak_flops*16/b <= thread_mem_bw."""
        peak = SPEC.clock_hz * 4.0          # flops/s, one core
        balance_block = peak / 2 * 16.0 / SPEC.perf.thread_mem_bw
        below = run(machine, block=max(1, int(balance_block / 4))).gflops
        above = run(machine, block=int(balance_block * 4)).gflops
        assert above > 1.5 * below

    def test_scales_across_cores_when_compute_bound(self, machine):
        one = run(machine, block=32, nthreads=1).gflops
        six = run(machine, block=32, nthreads=6).gflops
        assert six == pytest.approx(6 * one, rel=0.05)

    def test_memory_bound_does_not_scale_past_socket(self, machine):
        one = run(machine, block=1, nthreads=1).gflops
        six = run(machine, block=1, nthreads=6).gflops
        assert six < 6 * one  # socket bandwidth clips the scaling

    def test_gcc_scalar_half_rate(self, machine):
        icc = run(machine, block=32, compiler="icc").gflops
        gcc = run(machine, block=32, compiler="gcc").gflops
        assert gcc < 0.5 * icc


class TestCountersAndDiagnosis:
    def test_flops_counted_exactly(self, machine):
        r = run(machine, block=16, n=256)
        packed = r.result.aggregate(Channel.FLOPS_PACKED_DP)
        assert packed * 2 == pytest.approx(r.config.flops, rel=0.01)

    def test_diagnosis_flips_with_block_size(self, machine):
        for block, expected in ((1, "memory concurrency"),
                                (64, "in-core issue")):
            phase = matmul_phase(SPEC, MatmulConfig(512, block, 1))
            d = diagnose(SPEC, [PlacedWork(0, 0, 0, phase)])
            assert d.threads[0].bottleneck == expected, block

    def test_invalid_configs(self):
        with pytest.raises(WorkloadError):
            MatmulConfig(128, 0, 1)
        with pytest.raises(WorkloadError):
            MatmulConfig(128, 256, 1)
        with pytest.raises(WorkloadError):
            MatmulConfig(128, 8, 1, compiler="rustc")

    def test_pin_list_validated(self, machine):
        kernel = OSKernel(machine, seed=0)
        with pytest.raises(WorkloadError, match="pin list"):
            run_matmul(machine, kernel, MatmulConfig(128, 8, 4),
                       pin_cpus=[0])
