"""Tests for the STREAM triad workload (case study 1 behaviours)."""

import statistics

import pytest

from repro.errors import WorkloadError
from repro.hw.arch import create_machine
from repro.oskern.scheduler import OSKernel
from repro.workloads.stream import (run_stream, scatter_pin_list,
                                    stream_samples, triad_phase)


@pytest.fixture(scope="module")
def westmere():
    return create_machine("westmere_ep")


class TestPhases:
    def test_icc_uses_nt_stores(self):
        phase = triad_phase("icc", 1000)
        assert phase.nt_store_fraction == 1.0
        assert phase.mem_bytes_per_iter == 24.0
        assert phase.packed_fraction == 1.0

    def test_gcc_write_allocates(self):
        phase = triad_phase("gcc", 1000)
        assert phase.nt_store_fraction == 0.0
        assert phase.mem_bytes_per_iter == 32.0
        assert phase.packed_fraction == 0.0

    def test_unknown_compiler(self):
        with pytest.raises(WorkloadError):
            triad_phase("clang", 10)


class TestPinnedBandwidth:
    def test_single_thread(self, westmere):
        kernel = OSKernel(westmere, seed=0)
        r = run_stream(westmere, kernel, nthreads=1, compiler="icc",
                       pin_cpus=[0])
        assert r.bandwidth_mb_s == pytest.approx(9500, rel=0.01)

    def test_scatter_scaling(self, westmere):
        kernel = OSKernel(westmere, seed=0)
        bw = {}
        for n in (1, 2, 4, 12):
            pin = scatter_pin_list(westmere.spec, n)
            bw[n] = run_stream(westmere, kernel, nthreads=n,
                               compiler="icc", pin_cpus=pin).bandwidth_mb_s
        assert bw[2] == pytest.approx(2 * bw[1], rel=0.01)
        assert bw[12] == pytest.approx(42000, rel=0.02)
        assert bw[4] < bw[12]

    def test_one_socket_caps_at_half(self, westmere):
        kernel = OSKernel(westmere, seed=0)
        r = run_stream(westmere, kernel, nthreads=6, compiler="icc",
                       pin_cpus=[0, 1, 2, 3, 4, 5])   # all socket 0
        assert r.bandwidth_mb_s == pytest.approx(21000, rel=0.02)

    def test_gcc_saturates_lower(self, westmere):
        """The write-allocate traffic costs gcc ~25% of reported
        bandwidth at saturation (Figs 5 vs 8)."""
        kernel = OSKernel(westmere, seed=0)
        pin = scatter_pin_list(westmere.spec, 12)
        icc = run_stream(westmere, kernel, nthreads=12, compiler="icc",
                         pin_cpus=pin).bandwidth_mb_s
        gcc = run_stream(westmere, kernel, nthreads=12, compiler="gcc",
                         pin_cpus=pin).bandwidth_mb_s
        assert gcc == pytest.approx(icc * 0.75, rel=0.02)

    def test_oversubscribed_pin_list_wraps(self, westmere):
        kernel = OSKernel(westmere, seed=0)
        pin = scatter_pin_list(westmere.spec, 26)
        assert len(pin) == 24   # wrap handled by the overlay
        r = run_stream(westmere, kernel, nthreads=26, compiler="icc",
                       pin_cpus=pin)
        assert r.bandwidth_mb_s > 30000   # still near saturation


class TestUnpinnedVariance:
    def test_unpinned_is_volatile_and_below_pinned(self, westmere):
        unpinned = stream_samples(westmere, nthreads=4, compiler="icc",
                                  pinned=False, samples=40)
        pinned = stream_samples(westmere, nthreads=4, compiler="icc",
                                pinned=True, samples=5)
        assert max(unpinned) - min(unpinned) > 5000     # large spread
        assert max(pinned) - min(pinned) < 100          # deterministic
        assert statistics.median(unpinned) < statistics.median(pinned)

    def test_deterministic_given_seed(self, westmere):
        a = stream_samples(westmere, nthreads=3, compiler="icc",
                           pinned=False, samples=5, seed=7)
        b = stream_samples(westmere, nthreads=3, compiler="icc",
                           pinned=False, samples=5, seed=7)
        assert a == b

    def test_kmp_scatter_matches_likwid_pin(self, westmere):
        """Fig 6: the Intel runtime's scatter affinity is as good as
        likwid-pin."""
        kmp = stream_samples(westmere, nthreads=8, compiler="icc",
                             pinned=False, kmp_affinity="scatter",
                             samples=5)
        pinned = stream_samples(westmere, nthreads=8, compiler="icc",
                                pinned=True, samples=5)
        assert statistics.median(kmp) == pytest.approx(
            statistics.median(pinned), rel=0.02)


class TestIstanbul:
    def test_pinned_max_25gb(self):
        machine = create_machine("amd_istanbul")
        kernel = OSKernel(machine, seed=0)
        pin = scatter_pin_list(machine.spec, 12)
        r = run_stream(machine, kernel, nthreads=12, compiler="icc",
                       pin_cpus=pin)
        assert r.bandwidth_mb_s == pytest.approx(25000, rel=0.02)

    def test_unpinned_varies(self):
        machine = create_machine("amd_istanbul")
        samples = stream_samples(machine, nthreads=4, compiler="icc",
                                 pinned=False, samples=30)
        assert max(samples) - min(samples) > 3000


class TestFullStreamSuite:
    """All four STREAM kernels (copy/scale/add/triad)."""

    def test_kernel_catalog(self):
        from repro.workloads.stream import STREAM_KERNELS
        assert set(STREAM_KERNELS) == {"copy", "scale", "add", "triad"}
        assert STREAM_KERNELS["copy"].reported_bytes == 16.0
        assert STREAM_KERNELS["triad"].reported_bytes == 24.0

    def test_icc_all_kernels_saturate(self, westmere):
        from repro.workloads.stream import run_full_stream
        kernel = OSKernel(westmere, seed=0)
        pin = scatter_pin_list(westmere.spec, 12)
        bws = run_full_stream(westmere, kernel, nthreads=12,
                              compiler="icc", pin_cpus=pin)
        for name, bw in bws.items():
            assert bw == pytest.approx(42000, rel=0.02), name

    def test_gcc_copy_worse_than_triad(self, westmere):
        """Without NT stores, copy moves 24 B for 16 reported (2/3
        efficiency) while triad moves 32 for 24 (3/4) — the classic
        STREAM asymmetry."""
        from repro.workloads.stream import run_full_stream
        kernel = OSKernel(westmere, seed=0)
        pin = scatter_pin_list(westmere.spec, 12)
        bws = run_full_stream(westmere, kernel, nthreads=12,
                              compiler="gcc", pin_cpus=pin)
        # copy efficiency 16/24, triad efficiency 24/32 -> ratio 8/9.
        assert bws["copy"] == pytest.approx(bws["triad"] * 8 / 9, rel=0.02)
        assert bws["copy"] < bws["triad"]

    def test_unknown_kernel_rejected(self, westmere):
        from repro.workloads.stream import stream_phase
        with pytest.raises(WorkloadError, match="unknown STREAM kernel"):
            stream_phase("daxpy", "icc", 10)

    def test_flop_counts_per_kernel(self, westmere):
        from repro.hw.events import Channel
        from repro.workloads.stream import run_stream
        kernel = OSKernel(westmere, seed=0)
        copy = run_stream(westmere, kernel, nthreads=1, compiler="icc",
                          stream_kernel="copy", pin_cpus=[0],
                          n_elements=1_000_000)
        assert copy.result.aggregate(Channel.FLOPS_PACKED_DP) == 0
        triad = run_stream(westmere, kernel, nthreads=1, compiler="icc",
                           stream_kernel="triad", pin_cpus=[0],
                           n_elements=1_000_000)
        assert triad.result.aggregate(Channel.FLOPS_PACKED_DP) == \
            pytest.approx(1_000_000)
