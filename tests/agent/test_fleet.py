"""FleetSimulator: mixed-arch fleets, one ingest pipeline, rollups."""

import math

import pytest

from repro.agent import (Aggregator, AggregatorSink, FleetSimulator,
                         NodeSpec, default_fleet)
from repro.agent.batch import AgentSample, SampleBatch
from repro.hw.arch import available


def sample(node="n0", group="MEM", window=0, value=1.0, scope="cpu",
           ident=0, metric="Memory bandwidth [MBytes/s]", seq=0):
    return AgentSample(node, group, window, 0.1, scope, ident, metric,
                       value, seq)


class TestAggregator:
    def test_percentiles_over_ingested_values(self):
        agg = Aggregator()
        samples = tuple(sample(value=float(i), seq=i) for i in range(100))
        agg.ingest(SampleBatch("n0", "MEM", 0, 0.1, 0.1, samples))
        stats = agg.rollup()["groups"]["MEM"][
            "Memory bandwidth [MBytes/s]"]
        assert stats["count"] == 100
        assert stats["p50"] == pytest.approx(49.5)
        assert stats["p99"] == pytest.approx(98.01)
        assert stats["min"] == 0.0 and stats["max"] == 99.0

    def test_nan_samples_counted_not_aggregated(self):
        agg = Aggregator()
        samples = (sample(value=float("nan"), seq=0),
                   sample(value=5.0, seq=1))
        agg.ingest(SampleBatch("n0", "MEM", 0, 0.1, 0.1, samples))
        rollup = agg.rollup()
        assert rollup["nodes"]["n0"]["nan_samples"] == 1
        assert rollup["nodes"]["n0"]["samples"] == 2
        stats = rollup["groups"]["MEM"]["Memory bandwidth [MBytes/s]"]
        assert stats["count"] == 1 and not math.isnan(stats["mean"])

    def test_socket_totals_accumulate_across_windows(self):
        agg = Aggregator()
        for window in range(3):
            agg.ingest(SampleBatch("n0", "MEM", window, 0.1, 0.1,
                                   (sample(scope="socket", window=window,
                                           value=10.0, seq=window),)))
        totals = agg.rollup()["sockets"]["n0/socket0"]
        assert totals["Memory bandwidth [MBytes/s]"] == pytest.approx(30.0)

    def test_aggregator_sink_exerts_back_pressure(self):
        from repro.agent import SinkLane
        agg = Aggregator()
        lane = SinkLane(AggregatorSink(agg, max_batch=3))
        samples = tuple(sample(seq=i, value=float(i)) for i in range(10))
        lane.push(SampleBatch("n0", "MEM", 0, 0.1, 0.1, samples))
        assert lane.accounting.dropped == 7
        assert agg.node_samples("n0") == 3 == lane.accounting.emitted


class TestDefaultFleet:
    def test_round_robins_archs_and_modes(self):
        nodes = default_fleet(8, seed=4)
        archs = {n.arch for n in nodes}
        modes = {n.access_mode for n in nodes}
        assert len(archs) == min(8, len(available()))
        assert modes == {"msr", "perf"}
        assert len({n.seed for n in nodes}) == 8
        assert [n.name for n in nodes] == [f"node{i:03d}" for i in range(8)]

    def test_fault_template_reseeded_per_node(self):
        nodes = default_fleet(3, seed=10, faults="read_fault_rate=0.1")
        assert [n.faults for n in nodes] == [
            "seed=10,read_fault_rate=0.1",
            "seed=11,read_fault_rate=0.1",
            "seed=12,read_fault_rate=0.1"]

    def test_explicit_seed_in_template_is_kept(self):
        nodes = default_fleet(2, faults="seed=99,read_fault_rate=0.5")
        assert all(n.faults == "seed=99,read_fault_rate=0.5"
                   for n in nodes)


class TestFleetSimulator:
    def test_mixed_fleet_produces_consistent_rollup(self):
        nodes = default_fleet(6, seed=1)
        sim = FleetSimulator(nodes, ("FLOPS_DP", "MEM"),
                             window=0.02, rotations=2)
        report = sim.run()
        assert not report.inconsistencies()
        rollup = report.rollup
        assert set(rollup["nodes"]) == {n.name for n in nodes}
        assert rollup["total_samples"] == report.total_emitted
        for node in rollup["nodes"].values():
            assert node["windows"] == 4        # 2 groups x 2 rotations
        assert set(rollup["groups"]) == {"FLOPS_DP", "MEM"}

    def test_unsupported_groups_filtered_per_node(self):
        # L3 is Nehalem-only among these two; the banias node monitors
        # the subset it supports instead of failing the whole fleet.
        nodes = [NodeSpec("a", arch="nehalem_ep"),
                 NodeSpec("b", arch="banias", seed=1)]
        sim = FleetSimulator(nodes, ("FLOPS_DP", "L3"),
                             window=0.02, rotations=1)
        report = sim.run()
        assert report.rollup["nodes"]["a"]["windows"] == 2
        assert report.rollup["nodes"]["b"]["windows"] == 1

    def test_node_with_no_supported_group_raises(self):
        nodes = [NodeSpec("a", arch="banias")]
        sim = FleetSimulator(nodes, ("L3",), window=0.02)
        with pytest.raises(ValueError, match="supports none"):
            sim.run()

    def test_ingest_capacity_drops_are_accounted(self):
        nodes = default_fleet(4, seed=2, ingest_capacity=5)
        sim = FleetSimulator(nodes, ("FLOPS_DP", "MEM"),
                             window=0.02, rotations=2)
        report = sim.run()
        assert report.total_dropped > 0
        assert not report.inconsistencies()
        for name, agent_report in report.reports.items():
            emitted = sum(lane.emitted for lane in agent_report.lanes)
            assert report.ingested[name] == emitted

    def test_fleet_replay_is_deterministic(self):
        rollups = []
        for _ in range(2):
            nodes = default_fleet(3, seed=7,
                                  faults="read_fault_rate=0.05")
            sim = FleetSimulator(nodes, ("FLOPS_DP", "MEM"),
                                 window=0.02, rotations=2)
            rollups.append(sim.run().rollup)
        assert rollups[0] == rollups[1]

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetSimulator([], ("MEM",))
