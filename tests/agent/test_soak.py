"""ISSUE 8 acceptance soak: a 50-node fleet rotating 3 groups for 21
windows each under 10% read-fault injection and real back-pressure,
with *zero* unaccounted samples at the end.
"""

import pytest

from repro import trace
from repro.agent import FleetSimulator, default_fleet

NODES = 50
GROUPS = ("FLOPS_DP", "MEM", "BRANCH")
ROTATIONS = 7                  # 3 groups x 7 = 21 windows per node


@pytest.fixture(scope="module")
def soak_report():
    trace.reset()
    nodes = default_fleet(NODES, seed=0, faults="read_fault_rate=0.1",
                          ingest_capacity=6)
    sim = FleetSimulator(nodes, GROUPS, window=0.05, rotations=ROTATIONS)
    return sim.run()


class TestSoak:
    def test_every_node_completed_every_window(self, soak_report):
        nodes = soak_report.rollup["nodes"]
        assert len(nodes) == NODES
        assert all(n["windows"] == len(GROUPS) * ROTATIONS
                   for n in nodes.values())

    def test_back_pressure_actually_fired(self, soak_report):
        assert soak_report.total_dropped > 0

    def test_zero_unaccounted_samples(self, soak_report):
        assert soak_report.inconsistencies() == []

    def test_per_node_ingest_equals_emitted(self, soak_report):
        for name, report in soak_report.reports.items():
            emitted = sum(lane.emitted for lane in report.lanes)
            dropped = sum(lane.dropped for lane in report.lanes)
            assert report.samples == emitted + dropped
            assert soak_report.ingested[name] == emitted

    def test_drop_counter_reconciles_through_trace_registry(
            self, soak_report):
        # The always-on counter must agree with the per-lane books —
        # one registry reconciles the whole fleet (docs/observability).
        assert trace.metrics().value("agent.samples.dropped") == \
            soak_report.total_dropped

    def test_rollup_covers_every_group(self, soak_report):
        groups = soak_report.rollup["groups"]
        assert set(groups) == set(GROUPS)
        for metrics in groups.values():
            for stats in metrics.values():
                assert stats["count"] > 0
                assert stats["min"] <= stats["p50"] <= stats["p99"] \
                    <= stats["max"]
