"""MonitorAgent: rotation order, normalization, overrun accounting."""

import math

import pytest

from repro.agent import (FLOPS_ANY, AgentConfig, CollectorSink,
                         MonitorAgent, SyntheticLoad)
from repro.errors import CounterError
from repro.hw.arch import create_machine
from repro.oskern.access import open_backend


def make_agent(groups=("FLOPS_DP", "MEM"), *, rotations=2, cpus=(0, 1),
               arch="nehalem_ep", seed=0, overrun_rate=0.0, sinks=None,
               access_mode="msr", window=0.05):
    machine = create_machine(arch)
    backend = open_backend(access_mode, machine)
    config = AgentConfig(groups=tuple(groups), cpus=tuple(cpus),
                         window=window, rotations=rotations, seed=seed)
    sinks = sinks if sinks is not None else (CollectorSink(),)
    workload = SyntheticLoad(machine, cpus, seed=seed,
                             overrun_rate=overrun_rate)
    return MonitorAgent(machine, backend, config, sinks=sinks,
                        workload=workload), sinks


class TestConfig:
    def test_rejects_empty_groups(self):
        with pytest.raises(CounterError):
            AgentConfig(groups=(), cpus=(0,))

    def test_rejects_empty_cpus(self):
        with pytest.raises(CounterError):
            AgentConfig(groups=("MEM",), cpus=())

    def test_rejects_bad_window_and_rotations(self):
        with pytest.raises(CounterError):
            AgentConfig(groups=("MEM",), cpus=(0,), window=0.0)
        with pytest.raises(CounterError):
            AgentConfig(groups=("MEM",), cpus=(0,), rotations=0)


class TestRotation:
    def test_groups_rotate_in_order(self):
        agent, (sink,) = make_agent(("FLOPS_DP", "MEM", "BRANCH"),
                                    rotations=2)
        report = agent.run()
        assert report.windows == 6
        assert [b.group for b in sink.batches] == \
            ["FLOPS_DP", "MEM", "BRANCH"] * 2
        assert [b.window for b in sink.batches] == list(range(6))

    def test_batch_seq_is_monotonic(self):
        agent, (sink,) = make_agent(rotations=3)
        agent.run()
        assert [b.seq for b in sink.batches] == list(range(6))

    def test_sample_seq_has_no_gaps(self):
        agent, (sink,) = make_agent(rotations=2)
        report = agent.run()
        seqs = [s.seq for s in sink.samples]
        assert seqs == list(range(report.samples))

    def test_report_reconciles_with_sink(self):
        agent, (sink,) = make_agent(rotations=2)
        report = agent.run()
        assert report.consistent
        assert not report.inconsistencies()
        assert report.samples == len(sink.samples)


class TestNormalization:
    def test_flops_any_published_per_cpu(self):
        agent, (sink,) = make_agent(("FLOPS_DP",), rotations=1)
        agent.run()
        per_cpu = {s.ident: s.value for s in sink.samples
                   if s.metric == FLOPS_ANY and s.scope == "cpu"}
        dp = {s.ident: s.value for s in sink.samples
              if s.metric == "DP MFlops/s"}
        assert set(per_cpu) == {0, 1}
        for cpu, value in per_cpu.items():
            assert value == pytest.approx(2.0 * dp[cpu])

    def test_socket_rollup_sums_extensive_metrics(self):
        agent, (sink,) = make_agent(("MEM",), rotations=1)
        agent.run()
        per_cpu = [s.value for s in sink.samples
                   if s.metric == "Memory bandwidth [MBytes/s]"
                   and s.scope == "cpu" and not math.isnan(s.value)]
        rollup = [s for s in sink.samples
                  if s.metric == "Memory bandwidth [MBytes/s]"
                  and s.scope == "socket"]
        assert len(rollup) == 1
        assert rollup[0].ident == 0
        assert rollup[0].value == pytest.approx(sum(per_cpu))

    def test_ratio_metrics_have_no_socket_rollup(self):
        agent, (sink,) = make_agent(("FLOPS_DP",), rotations=1)
        agent.run()
        assert not [s for s in sink.samples
                    if s.metric == "CPI" and s.scope == "socket"]

    def test_perf_backend_produces_same_shape(self):
        msr_agent, (msr_sink,) = make_agent(rotations=1)
        perf_agent, (perf_sink,) = make_agent(rotations=1,
                                              access_mode="perf")
        msr_agent.run()
        perf_agent.run()
        key = [(s.group, s.scope, s.ident, s.metric)
               for s in msr_sink.samples]
        assert key == [(s.group, s.scope, s.ident, s.metric)
                       for s in perf_sink.samples]


class TestOverrun:
    def test_overrun_windows_account_measured_duration(self):
        agent, (sink,) = make_agent(("FLOPS_DP",), rotations=6,
                                    overrun_rate=0.5, seed=11)
        agent.run()
        durations = [b.duration for b in sink.batches]
        overrun = [d for d in durations if d > 0.05 * 2]
        nominal = [d for d in durations if d <= 0.05 * 2]
        assert overrun, "seeded overruns did not fire"
        assert nominal, "every window overran; seed draw is broken"
        for d in overrun:
            assert d == pytest.approx(0.05 * 3.0)

    def test_overrun_keeps_rates_calibrated(self):
        # The synthetic load produces counts proportional to the
        # actual duration; accounting the window at its measured
        # length keeps the published rate in the same band as a
        # nominal window instead of 3x it.
        agent, (sink,) = make_agent(("FLOPS_DP",), rotations=6,
                                    overrun_rate=0.5, seed=11)
        agent.run()
        rates = {}
        for batch in sink.batches:
            for s in batch.samples:
                if s.metric == "DP MFlops/s" and s.ident == 0:
                    rates[batch.window] = (batch.duration, s.value)
        values = [v for _, v in rates.values()]
        assert max(values) < 2.0 * min(values)

    def test_agent_clock_accumulates_durations(self):
        agent, (sink,) = make_agent(("FLOPS_DP",), rotations=3,
                                    overrun_rate=1.0, seed=2)
        agent.run()
        times = [b.time for b in sink.batches]
        expected = []
        acc = 0.0
        for b in sink.batches:
            acc += b.duration
            expected.append(acc)
        assert times == pytest.approx(expected)

    def test_deterministic_replay(self):
        runs = []
        for _ in range(2):
            agent, (sink,) = make_agent(rotations=2, seed=5,
                                        overrun_rate=0.3)
            agent.run()
            runs.append([(s.seq, s.metric, s.value)
                         for s in sink.samples])
        assert runs[0] == runs[1]
