"""Sink layer: back-pressure, deterministic downsampling, accounting.

The satellite coverage ISSUE 8 demands: downsampling is reproducible
under a fixed seed, drop counters reconcile *exactly* (``offered ==
emitted + dropped`` on every lane), and the ring sink evicts oldest
first so ``latest()`` is always newest-first.
"""

import io
import json

import pytest

from repro import trace
from repro.agent import (AgentSample, CollectorSink, JsonlSink,
                         LineProtocolSink, RingSink, SampleBatch,
                         SinkLane, downsample)


def make_samples(n, *, window=0, node="n0", group="FLOPS_DP"):
    return tuple(
        AgentSample(node, group, window, 0.1 * (window + 1), "cpu",
                    i % 2, f"metric{i}", float(i), seq=window * n + i)
        for i in range(n))


def make_batch(n, *, window=0, seq=None, node="n0"):
    return SampleBatch(node, "FLOPS_DP", window, 0.1 * (window + 1),
                       0.1, make_samples(n, window=window, node=node),
                       seq=window if seq is None else seq)


class TestDownsample:
    def test_deterministic_under_fixed_seed(self):
        samples = make_samples(20)
        first = downsample(samples, 7, 42, 3)
        second = downsample(samples, 7, 42, 3)
        assert first == second
        assert len(first) == 7

    def test_different_batch_seq_changes_selection(self):
        samples = make_samples(50)
        assert downsample(samples, 10, 42, 0) != \
            downsample(samples, 10, 42, 1)

    def test_different_seed_changes_selection(self):
        samples = make_samples(50)
        assert downsample(samples, 10, 1, 0) != downsample(samples, 10, 2, 0)

    def test_survivors_keep_original_order(self):
        samples = make_samples(30)
        kept = downsample(samples, 11, 7, 0)
        seqs = [s.seq for s in kept]
        assert seqs == sorted(seqs)

    def test_keep_all_and_keep_none(self):
        samples = make_samples(5)
        assert downsample(samples, 5, 0, 0) == list(samples)
        assert downsample(samples, 9, 0, 0) == list(samples)
        assert downsample(samples, 0, 0, 0) == []


class TestLaneAccounting:
    def test_drops_reconcile_exactly(self):
        sink = CollectorSink(max_batch=6)
        lane = SinkLane(sink, seed=3)
        for window in range(10):
            lane.push(make_batch(9, window=window))
        acct = lane.accounting
        assert acct.offered == 90
        assert acct.emitted == 60
        assert acct.dropped == 30
        assert acct.consistent
        assert len(sink.samples) == acct.emitted

    def test_unbounded_sink_never_drops(self):
        lane = SinkLane(CollectorSink())
        for window in range(5):
            lane.push(make_batch(4, window=window))
        assert lane.accounting.dropped == 0
        assert lane.accounting.offered == lane.accounting.emitted == 20

    def test_drop_counter_surfaced_in_trace_registry(self):
        trace.reset()
        lane = SinkLane(CollectorSink(max_batch=2), seed=1)
        lane.push(make_batch(10))
        # Always-on, even with tracing disabled (like msr.faults.*).
        assert not trace.TRACER.enabled
        assert trace.metrics().value("agent.samples.dropped") == 8

    def test_replayed_lane_emits_identical_stream(self):
        kept = []
        for _ in range(2):
            sink = CollectorSink(max_batch=5)
            lane = SinkLane(sink, seed=9)
            for window in range(6):
                lane.push(make_batch(8, window=window))
            kept.append([s.seq for s in sink.samples])
        assert kept[0] == kept[1]


class TestRingSink:
    def test_eviction_preserves_newest_first_ordering(self):
        ring = RingSink(10)
        lane = SinkLane(ring)
        for window in range(5):
            lane.push(make_batch(4, window=window))
        assert len(ring) == 10
        assert ring.evicted == 10
        latest = ring.latest()
        seqs = [s.seq for s in latest]
        assert seqs == sorted(seqs, reverse=True)
        assert seqs[0] == 19          # the newest sample survives
        assert ring.latest(3) == latest[:3]

    def test_eviction_is_not_a_drop(self):
        ring = RingSink(3)
        lane = SinkLane(ring)
        lane.push(make_batch(9))
        assert lane.accounting.dropped == 0
        assert lane.accounting.emitted == 9
        assert ring.evicted == 6

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingSink(0)


class TestFileSinks:
    def test_jsonl_round_trips(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        SinkLane(sink).push(make_batch(4))
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 4 == sink.lines
        doc = json.loads(lines[0])
        assert doc["node"] == "n0" and doc["scope"] == "cpu"

    def test_line_protocol_escapes_tags(self):
        sink = LineProtocolSink(io.StringIO())
        sample = AgentSample("n 0", "ME,M", 0, 0.5, "socket", 1,
                             "Memory bandwidth [MBytes/s]", 123.5)
        line = sink.format(sample)
        tags, _, rest = line.partition(" value=")
        assert "node=n\\ 0" in tags
        assert "group=ME\\,M" in tags
        assert "metric=Memory\\ bandwidth\\ [MBytes/s]" in tags
        value, _, stamp = rest.partition(" ")
        assert float(value) == 123.5
        assert stamp == str(int(0.5 * 1e9))

    def test_line_protocol_writes_one_line_per_sample(self):
        buf = io.StringIO()
        sink = LineProtocolSink(buf, measurement="m")
        SinkLane(sink).push(make_batch(3))
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 3 == sink.lines
        assert all(line.startswith("m,node=n0,") for line in lines)
