"""Tests for the shared formatting helpers (units, tables, errors)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.tables import banner, render_table, star_banner
from repro.units import (KIB, MIB, format_count, format_hz, format_size,
                         mbytes_per_s, mflops_per_s, mlups, parse_size)


class TestUnits:
    @pytest.mark.parametrize("hz,text", [
        (2.93e9, "2.93 GHz"),
        (2.83e9, "2.83 GHz"),
        (800e6, "800.00 MHz"),
        (32e3, "32.00 kHz"),
        (50, "50 Hz"),
    ])
    def test_format_hz(self, hz, text):
        assert format_hz(hz) == text

    @pytest.mark.parametrize("nbytes,text", [
        (32 * KIB, "32 kB"),
        (256 * KIB, "256 kB"),
        (12 * MIB, "12 MB"),
        (2 * MIB, "2 MB"),
        (6 * 1024 * MIB, "6 GB"),
        (100, "100 B"),
    ])
    def test_format_size(self, nbytes, text):
        assert format_size(nbytes) == text

    @pytest.mark.parametrize("text,nbytes", [
        ("32 kB", 32 * KIB), ("12MB", 12 * MIB), ("64", 64),
        ("1 GB", 1024 * MIB),
    ])
    def test_parse_size(self, text, nbytes):
        assert parse_size(text) == nbytes

    @given(st.sampled_from([KIB, MIB]) , st.integers(1, 512))
    def test_size_roundtrip(self, unit, count):
        assert parse_size(format_size(count * unit)) == count * unit

    def test_rates(self):
        assert mbytes_per_s(24e9, 1.0) == 24000
        assert mflops_per_s(1e9, 0.5) == 2000
        assert mlups(1e8, 0.1) == 1000
        assert mbytes_per_s(1, 0) == 0.0

    @pytest.mark.parametrize("value,text", [
        (313742, "313742"),
        (1.88024e7, "1.88024e+07"),
        (0, "0"),
        (1.5, "1.5"),
        (float("nan"), "nan"),
    ])
    def test_format_count(self, value, text):
        assert format_count(value) == text


class TestTables:
    def test_borders_and_alignment(self):
        table = render_table(["Event", "core 0"],
                             [["INSTR_RETIRED_ANY", 313742]])
        lines = table.splitlines()
        assert lines[0] == lines[2] == lines[-1]
        assert lines[0].startswith("+-")
        assert "| INSTR_RETIRED_ANY | 313742 |" in table

    def test_ragged_rows_padded(self):
        table = render_table(["a", "b", "c"], [["x"], ["y", "z"]])
        widths = {len(line) for line in table.splitlines()}
        assert len(widths) == 1

    def test_column_width_fits_widest(self):
        table = render_table(["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in table

    def test_banner(self):
        text = banner("CPU name:\tfoo")
        lines = text.splitlines()
        assert lines[0] == "-" * 61
        assert lines[-1] == "-" * 61

    def test_star_banner(self):
        text = star_banner("Cache Topology")
        assert text.splitlines()[0] == "*" * 61
        assert "Cache Topology" in text

    @given(st.lists(st.lists(st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=12), min_size=1, max_size=4), min_size=1, max_size=6))
    def test_table_always_rectangular(self, rows):
        table = render_table(["h1", "h2"], rows)
        widths = {len(line) for line in table.splitlines()}
        assert len(widths) == 1


class TestErrors:
    def test_hierarchy(self):
        for cls in (errors.CpuidError, errors.MsrError, errors.TopologyError,
                    errors.AffinityError, errors.SchedulerError,
                    errors.EventError, errors.CounterError, errors.GroupError,
                    errors.MarkerError, errors.FeatureError,
                    errors.WorkloadError):
            assert issubclass(cls, errors.ReproError)

    def test_papi_error_carries_code(self):
        exc = errors.PapiError(-7, "no such event")
        assert exc.code == -7
        assert "PAPI error -7" in str(exc)
