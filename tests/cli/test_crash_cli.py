"""CLI-level crash safety: --journal / --no-journal / --recover and
the exit codes that distinguish killed, recovered, unrecoverable and
clean outcomes (ISSUE 5).

Exit codes under test (docs/robustness.md):
0 clean · 2 usage · 5 recovered · 6 unrecoverable · 7 killed.
"""

import pytest

from repro.cli import features_cmd, perfctr_cmd
from repro.cli.common import (EXIT_KILLED, EXIT_RECOVERED,
                              EXIT_UNRECOVERABLE)


@pytest.fixture
def journal(tmp_path):
    return str(tmp_path / "msr.journal")


def kill_run(journal, kill_after=40, group="FLOPS_DP", cpus="0-3"):
    return perfctr_cmd.main(
        ["-c", cpus, "-g", group, "--journal", journal,
         "--msr-faults", f"kill_after={kill_after}",
         "stream_icc", "--arch", "nehalem_ep"])


class TestUsage:
    def test_recover_without_journal(self, capsys):
        assert perfctr_cmd.main(["--recover"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_recover_with_no_journal(self, capsys):
        assert features_cmd.main(["--recover", "--no-journal"]) == 2
        assert "contradictory" in capsys.readouterr().err


class TestPerfctrCrashCycle:
    def test_kill_recover_rerecover(self, journal, capsys):
        import os
        assert kill_run(journal) == EXIT_KILLED
        err = capsys.readouterr().err
        assert "killed" in err
        assert "--recover" in err         # the hint names the remedy
        assert os.path.exists(journal)    # orphaned journal survives

        rc = perfctr_cmd.main(["--recover", "--journal", journal,
                               "--arch", "nehalem_ep"])
        assert rc == EXIT_RECOVERED
        assert "restored" in capsys.readouterr().out
        assert not os.path.exists(journal)   # retired after recovery

        rc = perfctr_cmd.main(["--recover", "--journal", journal,
                               "--arch", "nehalem_ep"])
        assert rc == 0                       # nothing left: clean
        assert "journal clean" in capsys.readouterr().out

    def test_uncore_locks_reclaimed(self, journal, capsys):
        assert kill_run(journal, kill_after=120, group="MEM",
                        cpus="0-7") == EXIT_KILLED
        capsys.readouterr()
        rc = perfctr_cmd.main(["--recover", "--journal", journal,
                               "--arch", "nehalem_ep"])
        assert rc == EXIT_RECOVERED
        assert "reclaimed 2 stale socket lock(s)" in \
            capsys.readouterr().out

    def test_corrupt_journal_unrecoverable(self, journal, capsys):
        assert kill_run(journal) == EXIT_KILLED
        with open(journal, "r+b") as fh:
            fh.seek(20)
            fh.write(b"\xff\xff\xff")     # mid-journal corruption
        rc = perfctr_cmd.main(["--recover", "--journal", journal,
                               "--arch", "nehalem_ep"])
        assert rc == EXIT_UNRECOVERABLE
        assert "unrecoverable" in capsys.readouterr().err

    def test_orphaned_journal_warns_next_run(self, journal, capsys):
        assert kill_run(journal) == EXIT_KILLED
        capsys.readouterr()
        rc = perfctr_cmd.main(["-c", "0-3", "-g", "FLOPS_DP",
                               "--journal", journal,
                               "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 0
        assert "run --recover first" in capsys.readouterr().err

    def test_clean_run_retires_file_journal(self, journal):
        import os
        rc = perfctr_cmd.main(["-c", "0-3", "-g", "FLOPS_DP",
                               "--journal", journal,
                               "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 0
        assert not os.path.exists(journal)

    def test_no_journal_mode_still_measures(self, capsys):
        rc = perfctr_cmd.main(["-c", "0-3", "-g", "FLOPS_DP",
                               "--no-journal",
                               "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 0
        assert "DP MFlops/s" in capsys.readouterr().out

    def test_sigint_exits_130_clean(self, journal, capsys):
        import os
        rc = perfctr_cmd.main(
            ["-c", "0-3", "-g", "FLOPS_DP", "--journal", journal,
             "--msr-faults", "sigint_after=40",
             "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err
        assert not os.path.exists(journal)   # graceful teardown ran


class TestFeaturesCrashCycle:
    def test_clean_toggle_retires_journal(self, tmp_path, capsys):
        import os
        journal = str(tmp_path / "features.journal")
        rc = features_cmd.main(["-u", "CL_PREFETCHER",
                                "--journal", journal,
                                "--arch", "core2"])
        assert rc == 0
        assert "CL_PREFETCHER: disabled" in capsys.readouterr().out
        assert not os.path.exists(journal)
        rc = features_cmd.main(["--recover", "--journal", journal,
                                "--arch", "core2"])
        assert rc == 0
        assert "journal clean" in capsys.readouterr().out

    def test_recover_perfctr_journal_via_features(self, journal, capsys):
        """One journal format, one recovery engine: either front-end
        can recover the other's orphaned state."""
        assert kill_run(journal) == EXIT_KILLED
        capsys.readouterr()
        rc = features_cmd.main(["--recover", "--journal", journal,
                                "--arch", "nehalem_ep"])
        assert rc == EXIT_RECOVERED
        assert "restored" in capsys.readouterr().out
