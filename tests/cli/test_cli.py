"""Smoke and behaviour tests for the command-line front-ends."""

import pytest

from repro.cli import (bench_cmd, features_cmd, perfctr_cmd, pin_cmd,
                       topology_cmd)


class TestTopologyCmd:
    def test_default(self, capsys):
        assert topology_cmd.main(["--arch", "westmere_ep"]) == 0
        out = capsys.readouterr().out
        assert "Sockets:\t\t2" in out
        assert "Cache Topology" not in out   # -c not given

    def test_caches_and_graphics(self, capsys):
        assert topology_cmd.main(["-c", "-g", "--arch", "westmere_ep"]) == 0
        out = capsys.readouterr().out
        assert "Cache Topology" in out
        assert "12 MB" in out
        assert out.count("+") > 20   # ASCII art frame

    def test_every_arch(self, capsys):
        from repro.hw.arch import available
        for arch in available():
            assert topology_cmd.main(["--arch", arch]) == 0


class TestPerfctrCmd:
    def test_group_measurement(self, capsys):
        rc = perfctr_cmd.main(["-c", "0-3", "-g", "FLOPS_DP", "--pin",
                               "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Measuring group FLOPS_DP" in out
        assert "DP MFlops/s" in out

    def test_explicit_events(self, capsys):
        rc = perfctr_cmd.main([
            "-c", "0", "-g", "L1D_REPL:PMC0", "stream_icc",
            "--arch", "nehalem_ep"])
        assert rc == 0
        assert "L1D_REPL" in capsys.readouterr().out

    def test_sleep_monitoring_idiom(self, capsys):
        rc = perfctr_cmd.main(["-c", "0-7", "-g", "FLOPS_DP", "sleep",
                               "--arch", "nehalem_ep"])
        assert rc == 0

    def test_list_groups(self, capsys):
        assert perfctr_cmd.main(["-a", "--arch", "core2"]) == 0
        out = capsys.readouterr().out
        assert "FLOPS_DP" in out and "L3" not in out.split()

    def test_missing_group_is_usage_error(self, capsys):
        assert perfctr_cmd.main(["-c", "0", "--arch", "core2"]) == 2

    def test_bad_group_reports_error(self, capsys):
        rc = perfctr_cmd.main(["-c", "0", "-g", "NOPE", "stream_icc",
                               "--arch", "core2"])
        assert rc == 1
        assert "not available" in capsys.readouterr().err

    def test_uncore_table2_events(self, capsys):
        rc = perfctr_cmd.main([
            "-c", "0-3", "-g",
            "UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1",
            "--pin", "jacobi_wavefront", "--arch", "nehalem_ep"])
        assert rc == 0
        assert "UNC_L3_LINES_IN_ANY" in capsys.readouterr().out


class TestPinCmd:
    def test_pin_stream(self, capsys):
        rc = pin_cmd.main(["-c", "0-3", "-t", "intel", "stream_icc",
                           "--arch", "westmere_ep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "measured bandwidth" in out

    def test_skip_mask(self, capsys):
        rc = pin_cmd.main(["-c", "0-7", "-s", "0x3", "stream_icc",
                           "--arch", "westmere_ep"])
        assert rc == 0

    def test_bad_corelist(self, capsys):
        rc = pin_cmd.main(["-c", "0-99", "stream_gcc",
                           "--arch", "westmere_ep"])
        assert rc == 1
        assert "likwid-pin:" in capsys.readouterr().err

    def test_jacobi_workload(self, capsys):
        rc = pin_cmd.main(["-c", "0-3", "jacobi_threaded",
                           "--arch", "nehalem_ep"])
        assert rc == 0
        assert "thread placements" in capsys.readouterr().out


class TestFeaturesCmd:
    def test_report(self, capsys):
        assert features_cmd.main([]) == 0
        assert "Hardware Prefetcher: enabled" in capsys.readouterr().out

    def test_disable_cl_prefetcher(self, capsys):
        rc = features_cmd.main(["-u", "CL_PREFETCHER"])
        assert rc == 0
        assert "CL_PREFETCHER: disabled" in capsys.readouterr().out

    def test_enable(self, capsys):
        rc = features_cmd.main(["-e", "CL_PREFETCHER"])
        assert rc == 0
        assert "CL_PREFETCHER: enabled" in capsys.readouterr().out

    def test_non_core2_fails(self, capsys):
        rc = features_cmd.main(["--arch", "westmere_ep"])
        assert rc == 1
        assert "Core 2" in capsys.readouterr().err


class TestBenchCmd:
    def test_fig1(self, capsys):
        assert bench_cmd.main(["fig1"]) == 0
        assert "Hardware Thread Topology" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert bench_cmd.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "LIKWID" in out and "PAPI" in out

    def test_stream_fig(self, capsys):
        assert bench_cmd.main(["fig", "5", "--samples", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "median" in out

    def test_fig11(self, capsys):
        assert bench_cmd.main(["fig11"]) == 0
        assert "wavefront 1x4" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert bench_cmd.main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "UNC_L3_LINES_IN_ANY" in out
        assert "MLUPS" in out


class TestPerfctrMarkerMode:
    def test_marker_mode_regions(self, capsys):
        rc = perfctr_cmd.main(["-c", "0-3", "-g", "FLOPS_DP", "-m",
                               "stream_icc", "--arch", "nehalem_ep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Region: Init" in out
        assert "Region: Benchmark" in out
        # Init does no SIMD arithmetic; Benchmark does.
        init, benchmark = out.split("Region: Benchmark")
        assert "| FP_COMP_OPS_EXE_SSE_FP_PACKED | 0 " in init
        assert "| FP_COMP_OPS_EXE_SSE_FP_PACKED | 2e+06" in benchmark

    def test_marker_mode_xml(self, capsys):
        import xml.etree.ElementTree as ET
        rc = perfctr_cmd.main(["-c", "0-1", "-g", "FLOPS_DP", "-m",
                               "--xml", "stream_gcc", "--arch", "core2"])
        assert rc == 0
        out = capsys.readouterr().out
        docs = [d for d in out.split("<measurement")[1:]]
        assert len(docs) == 2
        first = ET.fromstring("<measurement" + docs[0])
        assert first.get("region") == "Init"

    def test_marker_mode_rejects_other_workloads(self, capsys):
        with pytest.raises(SystemExit):
            perfctr_cmd.main(["-c", "0", "-g", "FLOPS_DP", "-m",
                              "jacobi_threaded", "--arch", "nehalem_ep"])


class TestMpirunCmd:
    def test_hybrid_run(self, capsys):
        from repro.cli import mpirun_cmd
        rc = mpirun_cmd.main(["-np", "2", "--omp", "4", "-c", "0-3",
                              "-g", "FLOPS_DP", "stream_icc",
                              "--arch", "westmere_ep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank 0:" in out and "rank 1:" in out
        assert "max/avg" in out

    def test_rejects_non_stream(self, capsys):
        from repro.cli import mpirun_cmd
        rc = mpirun_cmd.main(["jacobi_threaded"])
        assert rc == 2

    def test_too_many_ranks_for_pernode(self, capsys):
        from repro.cli import mpirun_cmd
        # -pernode always holds; cluster is sized to nranks, so this
        # only fails through ReproError paths internally; smoke it.
        rc = mpirun_cmd.main(["-np", "1", "stream_gcc",
                              "--arch", "core2"])
        assert rc == 0


class TestBenchToolCmds:
    def test_ladder(self, capsys):
        assert bench_cmd.main(["ladder", "-k", "triad", "--threads", "2",
                               "--arch", "nehalem_ep"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth ladder" in out and "MEM" in out

    def test_bwmap(self, capsys):
        assert bench_cmd.main(["bwmap", "--arch", "amd_istanbul"]) == 0
        out = capsys.readouterr().out
        assert "ccNUMA bandwidth map" in out
        assert "M1" in out


class TestBenchToolCli:
    def test_likwid_bench_run(self, capsys):
        from repro.cli import benchtool_cmd
        rc = benchtool_cmd.main(["-t", "triad", "-w", "S0:256MB:4",
                                 "--arch", "westmere_ep"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_likwid_bench_list(self, capsys):
        from repro.cli import benchtool_cmd
        assert benchtool_cmd.main(["-a"]) == 0
        assert "triad" in capsys.readouterr().out

    def test_likwid_bench_bad_workgroup(self, capsys):
        from repro.cli import benchtool_cmd
        rc = benchtool_cmd.main(["-w", "NOPE"])
        assert rc == 1
        assert "likwid-bench:" in capsys.readouterr().err


class TestBenchAllCmd:
    def test_all_regenerates_everything(self, capsys):
        rc = bench_cmd.main(["all", "--samples", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        for marker in ("Figure 1", "Table I", "Figure 4", "Figure 10",
                       "Figure 11", "Table II", "UNC_L3_LINES_IN_ANY"):
            assert marker in out, marker


class TestTopofileCli:
    def test_gen_and_read(self, capsys, tmp_path):
        path = str(tmp_path / "topo.xml")
        assert topology_cmd.main(["--gen-topofile", path,
                                  "--arch", "westmere_ep"]) == 0
        assert "wrote topology" in capsys.readouterr().out
        assert topology_cmd.main(["--topofile", path, "-c",
                                  "--arch", "westmere_ep"]) == 0
        out = capsys.readouterr().out
        assert "Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )" in out
        assert "Non Inclusive cache" in out


class TestEventListingCli:
    def test_list_events(self, capsys):
        assert perfctr_cmd.main(["-e", "--arch", "nehalem_ep"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Counters: PMC0 PMC1 PMC2 PMC3 FIXC0")
        assert "UNC_L3_LINES_IN_ANY\t0x0A:0x0F\tUPMC" in out
        assert "INSTR_RETIRED_ANY\t0xC0:0x00\tFIXC0" in out


class TestBenchCsvFlags:
    def test_table2_csv(self, capsys):
        assert bench_cmd.main(["table2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("variant,l3_lines_in")
        assert "wavefront" in out

    def test_fig_csv(self, capsys):
        assert bench_cmd.main(["fig", "5", "--samples", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("arch,compiler,mode,threads,sample")

    def test_fig11_csv(self, capsys):
        assert bench_cmd.main(["fig11", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,size,mlups")
