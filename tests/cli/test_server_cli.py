"""likwid-server front-end tests: all three subcommands.

``serve`` + ``submit`` are exercised against a real listener running
on a background thread (its own event loop, ephemeral port); the
load-test path runs fully in-process through ``main()``.
"""

import asyncio
import json
import threading

import pytest

from repro.agent.fleet import NodeSpec
from repro.cli.server_cmd import main
from repro.server.protocol import ProtocolServer
from repro.server.server import ReproServer


@pytest.fixture()
def live_server():
    """A real likwid-server listener on an ephemeral port, hosted on
    a background thread so the sync CLI client can talk to it."""
    started = threading.Event()
    stop = None
    endpoint = {}

    def run():
        nonlocal stop

        async def body():
            nonlocal stop
            server = ReproServer.from_specs(
                [NodeSpec(name="node000", arch="westmere_ep"),
                 NodeSpec(name="node001", arch="westmere_ep")],
                lease_limit=10.0)
            proto = ProtocolServer(server)
            host, port = await proto.start()
            endpoint["addr"] = f"{host}:{port}"
            stop = asyncio.Event()
            started.set()
            await stop.wait()
            await proto.close()

        asyncio.run(body())

    loop_thread = threading.Thread(target=run, daemon=True)
    loop_thread.start()
    assert started.wait(timeout=10), "server thread failed to start"
    yield endpoint["addr"]
    stop.set()
    loop_thread.join(timeout=10)


class TestSubmit:
    def test_completed_session_exits_zero(self, live_server, capsys):
        code = main(["submit", "--server", live_server,
                     "--node", "node000", "-c", "0,1",
                     "-g", "FLOPS_DP", "--windows", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed after 2 window(s)" in out

    def test_json_document(self, live_server, capsys):
        code = main(["submit", "--server", live_server,
                     "--node", "node001", "-c", "0", "-g", "MEM",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "completed"
        assert doc["result"]["counts"]["0"]

    def test_rejected_session_exits_one(self, live_server, capsys):
        code = main(["submit", "--server", live_server,
                     "--node", "node000", "-c", "0",
                     "-g", "NOSUCH"])
        assert code == 1
        assert "rejected" in capsys.readouterr().out

    def test_unknown_node_exits_one(self, live_server, capsys):
        code = main(["submit", "--server", live_server,
                     "--node", "ghost", "-c", "0", "-g", "MEM"])
        assert code == 1
        assert "unknown node" in capsys.readouterr().err

    def test_bad_endpoint_exits_one(self, capsys):
        code = main(["submit", "--server", "nonsense",
                     "--node", "node000", "-c", "0", "-g", "MEM"])
        assert code == 1
        assert "endpoint" in capsys.readouterr().err


class TestLoadTest:
    def test_small_run_verifies(self, capsys):
        code = main(["load-test", "--sessions", "40",
                     "--clients", "10", "--nodes", "2",
                     "--tenants", "2", "--verify"])
        captured = capsys.readouterr()
        assert code == 0
        assert "40 session(s)" in captured.out
        assert "verified" in captured.err

    def test_json_report(self, capsys):
        code = main(["load-test", "--sessions", "30",
                     "--clients", "10", "--nodes", "2",
                     "--tenants", "2", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["submitted"] == 30
        total = sum(doc["counts"][k] for k in
                    ("completed", "timed_out", "rejected",
                     "preempted", "cancelled", "failed"))
        assert total == 30

    def test_faulted_run_with_verify_sample(self, capsys):
        code = main(["load-test", "--sessions", "40",
                     "--clients", "10", "--nodes", "2",
                     "--tenants", "4",
                     "--msr-faults", "read_fault_rate=0.1",
                     "--verify", "--verify-sample", "10"])
        assert code == 0

    def test_bad_fault_spec_is_usage_error(self, capsys):
        code = main(["load-test", "--sessions", "10",
                     "--msr-faults", "bogus"])
        assert code == 2
        assert "bad --msr-faults" in capsys.readouterr().err

    def test_bad_shape_is_usage_error(self, capsys):
        code = main(["load-test", "--sessions", "0"])
        assert code == 2

    def test_chaotic_run_verifies(self, capsys):
        code = main(["load-test", "--sessions", "40",
                     "--clients", "8", "--nodes", "2",
                     "--chaos", "refuse=0.1,duplicate=0.2,"
                     "drop_reply=0.1", "--verify"])
        captured = capsys.readouterr()
        assert code == 0
        assert "robustness:" in captured.out
        assert "chaos injected:" in captured.out

    def test_chaotic_kill_run_reports_restart(self, capsys):
        code = main(["load-test", "--sessions", "60",
                     "--clients", "10", "--nodes", "2",
                     "--chaos", "drop_reply=0.1,duplicate=0.1",
                     "--kill-server-after", "20", "--verify",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["submitted"] == 60
        assert doc["server_restarts"] == 1
        assert doc["chaos_injected"]

    def test_bad_chaos_spec_is_usage_error(self, capsys):
        code = main(["load-test", "--sessions", "10",
                     "--chaos", "explode=1.0"])
        assert code == 2
        assert "bad --chaos" in capsys.readouterr().err

    def test_bad_kill_after_is_usage_error(self, capsys):
        code = main(["load-test", "--sessions", "10",
                     "--kill-server-after", "0"])
        assert code == 2


class TestAgentServerIngest:
    def test_agent_ships_batches_to_server(self, live_server, capsys):
        from repro.cli.agent_cmd import main as agent_main
        from repro.server.client import SyncServerClient, parse_endpoint
        code = agent_main(["-c", "0-1", "-g", "FLOPS_DP,MEM",
                           "--window", "0.02", "--rotations", "2",
                           "--server", live_server, "--verify",
                           "--json"])
        captured = capsys.readouterr()
        assert code == 0
        doc = json.loads(captured.out)
        lanes = {lane["sink"]: lane for lane in doc["lanes"]}
        assert lanes["server"]["emitted"] == doc["samples"]
        assert lanes["server"]["dropped"] == 0
        host, port = parse_endpoint(live_server)
        with SyncServerClient(host, port) as client:
            status = client.status()
        assert status["ingested"] == doc["samples"]


class TestUsage:
    def test_missing_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_serve_rejects_bad_fault_spec(self, capsys):
        code = main(["serve", "--msr-faults", "nope"])
        assert code == 2
