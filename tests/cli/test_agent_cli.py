"""likwid-agent front-end smoke tests."""

import json

from repro.cli.agent_cmd import main


class TestSingleNode:
    def test_basic_run_verifies(self, capsys):
        code = main(["-c", "0-1", "-g", "FLOPS_DP,MEM",
                     "--window", "0.02", "--rotations", "2", "--verify"])
        captured = capsys.readouterr()
        out = captured.out
        assert code == 0
        assert "4 window(s)" in out
        assert "accounting verified" in captured.err
        assert "Group FLOPS_DP:" in out and "Group MEM:" in out
        assert "flops_any [MFlops/s]" in out

    def test_json_output(self, capsys):
        code = main(["-c", "0", "-g", "FLOPS_DP", "--window", "0.02",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["windows"] == 1
        lanes = {lane["sink"]: lane for lane in doc["lanes"]}
        assert lanes["collector"]["offered"] == doc["samples"]
        assert "FLOPS_DP" in doc["rollup"]["groups"]

    def test_file_sinks_and_backpressure(self, tmp_path, capsys):
        jsonl = tmp_path / "agent.jsonl"
        line = tmp_path / "agent.lp"
        code = main(["-c", "0-1", "-g", "MEM", "--window", "0.02",
                     "--rotations", "3",
                     "--sink", f"jsonl:{jsonl}",
                     "--sink", f"line:{line}",
                     "--sink", "ring:8",
                     "--sink-capacity", "4", "--verify", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        lanes = {lane["sink"]: lane for lane in doc["lanes"]}
        assert lanes["jsonl"]["dropped"] > 0
        assert lanes["jsonl"]["offered"] == \
            lanes["jsonl"]["emitted"] + lanes["jsonl"]["dropped"]
        assert len(jsonl.read_text().splitlines()) == \
            lanes["jsonl"]["emitted"]
        assert len(line.read_text().splitlines()) == \
            lanes["line"]["emitted"]

    def test_fault_injection_with_perf_backend(self, capsys):
        code = main(["-c", "0-1", "-g", "FLOPS_DP", "--window", "0.02",
                     "--rotations", "2", "--access-mode", "perf",
                     "--msr-faults", "seed=3,read_fault_rate=0.1",
                     "--verify"])
        assert code == 0
        assert "accounting verified" in capsys.readouterr().err


class TestFleet:
    def test_fleet_run_verifies(self, capsys):
        code = main(["--fleet", "6", "-g", "FLOPS_DP,MEM,BRANCH",
                     "--window", "0.02", "--rotations", "2",
                     "--msr-faults", "read_fault_rate=0.1",
                     "--sink-capacity", "6", "--verify"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Fleet of 6 node(s)" in captured.out
        assert "accounting verified" in captured.err

    def test_fleet_json_rollup(self, capsys):
        code = main(["--fleet", "4", "-g", "MEM", "--window", "0.02",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fleet"] == 4
        assert len(doc["rollup"]["nodes"]) == 4
        assert doc["emitted"] == doc["rollup"]["total_samples"]

    def test_zero_nodes_is_usage_error(self, capsys):
        assert main(["--fleet", "0"]) == 2


class TestUsageErrors:
    def test_unknown_group(self, capsys):
        assert main(["-g", "NOPE"]) == 2
        assert "unknown group" in capsys.readouterr().err

    def test_bad_sink_spec(self, capsys):
        assert main(["--sink", "nope:x"]) == 2

    def test_bad_fault_spec(self, capsys):
        assert main(["--msr-faults", "wat=1"]) == 2
        assert "bad --msr-faults" in capsys.readouterr().err

    def test_empty_group_list(self, capsys):
        assert main(["-g", " , "]) == 2

    def test_contradictory_journal_flags(self, capsys):
        assert main(["--recover", "--no-journal"]) == 2

    def test_bad_server_spill(self, capsys):
        assert main(["--server", "127.0.0.1:1",
                     "--server-spill", "0"]) == 2
        assert "bad --server-spill" in capsys.readouterr().err


class TestServerSink:
    def test_dead_server_spills_behind_the_breaker(self, capsys):
        """A server that never answers must not fail the agent run:
        the breaker opens, every batch becomes a counted drop, and
        --verify still balances."""
        import socket
        # A bound-but-unlistened port: connects are refused fast.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["-c", "0", "-g", "FLOPS_DP", "--window", "0.02",
                     "--rotations", "2", "--server",
                     f"127.0.0.1:{port}", "--server-spill", "1",
                     "--verify", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        assert "unreachable" in captured.err
        doc = json.loads(captured.out)
        sink = doc["server_sink"]
        assert sink["breaker_open"] is True
        assert sink["breaker_trips"] >= 1
        assert sink["shipped"] == 0
        assert sink["offered"] == sink["dropped"] + sink["pending"]
