"""Tests for the PAPI-like baseline library."""

import pytest

from repro.errors import PapiError
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.papi import (PAPI_BR_INS, PAPI_DP_OPS, PAPI_L1_DCM, PAPI_OK,
                        PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_VER_CURRENT,
                        PapiLibrary)


@pytest.fixture
def papi():
    lib = PapiLibrary(create_machine("nehalem_ep"), cpu=0)
    lib.PAPI_library_init(PAPI_VER_CURRENT)
    return lib


class TestInit:
    def test_version_mismatch_rejected(self):
        lib = PapiLibrary(create_machine("core2"))
        with pytest.raises(PapiError, match="version mismatch"):
            lib.PAPI_library_init(123)

    def test_api_requires_init(self):
        lib = PapiLibrary(create_machine("core2"))
        with pytest.raises(PapiError, match="library_init"):
            lib.PAPI_create_eventset()

    def test_num_counters(self, papi):
        assert papi.PAPI_num_counters() == 4

    def test_query_event(self, papi):
        assert papi.PAPI_query_event(PAPI_TOT_INS) == PAPI_OK
        with pytest.raises(PapiError, match="unknown preset"):
            papi.PAPI_query_event(0x12345)

    def test_unmapped_preset_on_small_arch(self):
        from repro.papi import PAPI_LD_INS
        lib = PapiLibrary(create_machine("atom"))
        lib.PAPI_library_init(PAPI_VER_CURRENT)
        with pytest.raises(PapiError, match="no native mapping"):
            lib.PAPI_query_event(PAPI_LD_INS)


class TestCounting:
    def test_basic_count(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_add_event(es, PAPI_L1_DCM)
        papi.PAPI_start(es)
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 1234,
                                       Channel.L1D_REPLACEMENT: 56}})
        values = papi.PAPI_stop(es)
        assert values == [1234, 56]

    def test_read_while_running(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_start(es)
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 10}})
        assert papi.PAPI_read(es) == [10]
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 5}})
        assert papi.PAPI_read(es) == [15]
        papi.PAPI_stop(es)

    def test_accum_folds_and_resets(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_start(es)
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 10}})
        assert papi.PAPI_accum(es) == [10]
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 7}})
        assert papi.PAPI_stop(es) == [17]

    def test_reset(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_start(es)
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 10}})
        papi.PAPI_reset(es)
        papi.machine.apply_counts({0: {Channel.INSTRUCTIONS: 3}})
        assert papi.PAPI_stop(es) == [3]

    def test_counts_only_own_cpu(self):
        machine = create_machine("nehalem_ep")
        lib = PapiLibrary(machine, cpu=2)
        lib.PAPI_library_init(PAPI_VER_CURRENT)
        es = lib.PAPI_create_eventset()
        lib.PAPI_add_event(es, PAPI_TOT_INS)
        lib.PAPI_start(es)
        machine.apply_counts({0: {Channel.INSTRUCTIONS: 100},
                              2: {Channel.INSTRUCTIONS: 42}})
        assert lib.PAPI_stop(es) == [42]

    def test_agrees_with_likwid_measurement(self):
        """Both tools over the same substrate must report identical
        counts for the same window."""
        from repro.core.perfctr import LikwidPerfCtr
        machine = create_machine("nehalem_ep")
        lib = PapiLibrary(machine, cpu=0)
        lib.PAPI_library_init(PAPI_VER_CURRENT)
        es = lib.PAPI_create_eventset()
        lib.PAPI_add_event(es, PAPI_L1_DCM)

        perfctr = LikwidPerfCtr(machine)

        def run():
            lib.PAPI_start(es)
            machine.apply_counts({0: {Channel.L1D_REPLACEMENT: 777}})

        result = perfctr.wrap([0], "L1D_REPL:PMC0", run)
        papi_values = lib.PAPI_stop(es)
        # NOTE: both programmed PMCs on cpu 0; LIKWID chose PMC0, PAPI
        # allocated the next free one dynamically.
        assert papi_values == [777]
        assert result.event(0, "L1D_REPL") == 777


class TestAllocation:
    def test_fixed_counter_preferred_on_intel(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        assignment = papi._eventsets[es].assignments[0]
        assert assignment.counter.cls == "FIXC"

    def test_resource_exhaustion(self, papi):
        from repro.papi import PAPI_L2_TCA, PAPI_L2_TCM
        es = papi.PAPI_create_eventset()
        for code in (PAPI_L1_DCM, PAPI_BR_INS, PAPI_DP_OPS, PAPI_L2_TCM):
            papi.PAPI_add_event(es, code)
        with pytest.raises(PapiError, match="counter resources"):
            papi.PAPI_add_event(es, PAPI_L2_TCA)

    def test_uncore_presets_rejected(self):
        """Classic PAPI: no shared-resource measurement (Table I)."""
        machine = create_machine("nehalem_ep")
        # Forge a mapping to an uncore event to exercise the guard.
        lib = PapiLibrary(machine)
        lib.PAPI_library_init(PAPI_VER_CURRENT)
        lib._native = dict(lib._native)
        lib._native[PAPI_L1_DCM] = "UNC_L3_LINES_IN_ANY"
        es = lib.PAPI_create_eventset()
        with pytest.raises(PapiError, match="uncore"):
            lib.PAPI_add_event(es, PAPI_L1_DCM)


class TestStateMachine:
    def test_double_start(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_start(es)
        with pytest.raises(PapiError, match="already running"):
            papi.PAPI_start(es)

    def test_stop_before_start(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        with pytest.raises(PapiError, match="not running"):
            papi.PAPI_stop(es)

    def test_empty_eventset_cannot_start(self, papi):
        es = papi.PAPI_create_eventset()
        with pytest.raises(PapiError, match="empty"):
            papi.PAPI_start(es)

    def test_add_while_running_rejected(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        papi.PAPI_start(es)
        with pytest.raises(PapiError, match="running"):
            papi.PAPI_add_event(es, PAPI_TOT_CYC)

    def test_destroy_requires_cleanup(self, papi):
        es = papi.PAPI_create_eventset()
        papi.PAPI_add_event(es, PAPI_TOT_INS)
        with pytest.raises(PapiError, match="cleaned up"):
            papi.PAPI_destroy_eventset(es)
        papi.PAPI_cleanup_eventset(es)
        assert papi.PAPI_destroy_eventset(es) == PAPI_OK
        with pytest.raises(PapiError, match="no such eventset"):
            papi.PAPI_read(es)

    def test_error_carries_code(self, papi):
        try:
            papi.PAPI_read(999)
        except PapiError as exc:
            assert exc.code < 0
