"""Unit and property tests for APIC id bit-field handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.apic import ApicLayout, field_width, layout_for


class TestFieldWidth:
    @pytest.mark.parametrize("max_value,width", [
        (0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (10, 4),
        (15, 4), (16, 5),
    ])
    def test_widths(self, max_value, width):
        assert field_width(max_value) == width

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            field_width(-1)


class TestLayout:
    def test_westmere_layout(self):
        # 2 SMT threads, core ids up to 10 -> 1 smt bit, 4 core bits.
        layout = layout_for(1, 10)
        assert layout.smt_bits == 1
        assert layout.core_bits == 4
        assert layout.package_shift == 5

    def test_westmere_sparse_core_encoding(self):
        layout = layout_for(1, 10)
        # socket 1, physical core 8, SMT thread 1
        apic = layout.compose(1, 8, 1)
        assert apic == (1 << 5) | (8 << 1) | 1
        assert layout.decompose(apic) == (1, 8, 1)

    def test_single_core_no_smt(self):
        layout = layout_for(0, 0)
        assert layout.compose(3, 0, 0) == 3
        assert layout.decompose(3) == (3, 0, 0)

    def test_core_overflow_rejected(self):
        layout = ApicLayout(smt_bits=1, core_bits=2)
        with pytest.raises(ValueError):
            layout.compose(0, 4, 0)

    def test_smt_overflow_rejected(self):
        layout = ApicLayout(smt_bits=1, core_bits=2)
        with pytest.raises(ValueError):
            layout.compose(0, 0, 2)


@given(smt_bits=st.integers(0, 3), core_bits=st.integers(0, 5),
       package=st.integers(0, 7), data=st.data())
def test_compose_decompose_roundtrip(smt_bits, core_bits, package, data):
    """Property: decompose(compose(x)) == x for in-range fields."""
    layout = ApicLayout(smt_bits, core_bits)
    core = data.draw(st.integers(0, (1 << core_bits) - 1))
    smt = data.draw(st.integers(0, (1 << smt_bits) - 1))
    apic = layout.compose(package, core, smt)
    assert layout.decompose(apic) == (package, core, smt)


@given(st.integers(0, 10_000))
def test_field_width_is_minimal(max_value):
    """Property: the width fits max_value and width-1 would not."""
    w = field_width(max_value)
    assert max_value < (1 << w)
    if w > 0:
        assert max_value >= (1 << (w - 1))
