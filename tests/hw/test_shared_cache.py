"""Tests for the multi-core shared-LLC trace system."""

import pytest

from repro.errors import WorkloadError
from repro.hw.arch import get_arch
from repro.hw.shared import SharedCacheSystem


@pytest.fixture
def system():
    return SharedCacheSystem(get_arch("nehalem_ep"))


class TestConstruction:
    def test_private_and_shared_levels(self, system):
        assert len(system.private) == 4
        assert len(system.private[0]) == 2   # L1 + L2 private
        assert system.shared.spec.level == 3

    def test_rejects_arch_without_shared_llc(self):
        with pytest.raises(WorkloadError, match="no shared"):
            SharedCacheSystem(get_arch("pentium_m"))

    def test_core_bounds(self, system):
        with pytest.raises(WorkloadError, match="no core"):
            system.load(7, 0)


class TestBasicPaths:
    def test_cold_load_from_dram(self, system):
        assert system.load(0, 0) == "dram"
        assert system.dram_reads == 1

    def test_second_load_private(self, system):
        system.load(0, 0)
        assert system.load(0, 8) == "private"   # same line

    def test_cross_core_read_hits_llc(self, system):
        """Core 1 reads what core 0 loaded: served by the shared L3,
        no memory traffic — the shared-cache benefit."""
        system.load(0, 0)
        assert system.load(1, 0) == "llc"
        assert system.dram_reads == 1

    def test_clean_lines_replicate(self, system):
        system.load(0, 0)
        system.load(1, 0)
        assert system.load(0, 0) == "private"
        assert system.load(1, 0) == "private"


class TestCoherence:
    def test_store_invalidates_other_copies(self, system):
        system.load(0, 0)
        system.load(1, 0)
        system.store(0, 0)
        assert system.invalidations == 1
        # Core 1 must re-fetch; core 0's dirty copy is forwarded.
        assert system.load(1, 0) == "forward"

    def test_forward_counts_no_dram(self, system):
        system.store(0, 64)        # dirty in core 0 (1 allocate read)
        reads_before = system.dram_reads
        assert system.load(2, 64) == "forward"
        assert system.dram_reads == reads_before

    def test_dirty_writeback_lands_in_llc(self, system):
        # Dirty a line, then flush core 0's private caches with a sweep.
        system.store(0, 0)
        l1 = system.private[0][0]
        l2 = system.private[0][1]
        sweep_lines = l2.num_sets * l2.ways * 2
        for i in range(1, sweep_lines + 1):
            system.load(0, i * 64)
        del l1
        # The dirty line must now be in the LLC: core 1 reads it there.
        assert system.load(1, 0) in ("llc", "forward")

    def test_store_to_shared_line_keeps_single_dirty_owner(self, system):
        system.store(0, 0)
        system.store(1, 0)
        assert system._dirty_owner[0] == 1
        assert system.invalidations >= 1


class TestWavefrontInMiniature:
    """The paper's case study 2 mechanism at trace level: a pipeline
    where core 1 consumes what core 0 produced is memory-traffic-free
    if (and only if) the block fits the shared cache."""

    def _pipeline(self, system, block_lines):
        # Producer writes a block; consumer reads it back.
        for i in range(block_lines):
            system.store(0, i * 64)
        served = [system.load(1, i * 64) for i in range(block_lines)]
        return served

    def test_in_cache_pipeline_avoids_memory(self, system):
        block = 512   # 32 kB: fits everywhere
        served = self._pipeline(system, block)
        reads_for_producer = block  # write-allocate
        assert system.dram_reads == reads_for_producer
        assert all(s in ("llc", "forward") for s in served)

    def test_oversized_pipeline_spills_to_memory(self):
        system = SharedCacheSystem(get_arch("nehalem_ep"))
        llc_lines = system.shared.num_sets * system.shared.ways
        block = llc_lines * 2
        served = self._pipeline(system, block)
        assert any(s == "dram" for s in served)

    def test_traffic_ratio_matches_blocking_claim(self, system):
        """Consuming in-cache halves DRAM traffic vs consuming from
        memory — the direction of the Table II reduction."""
        block = 1024
        self._pipeline(system, block)
        small_reads = system.dram_reads
        big = SharedCacheSystem(get_arch("nehalem_ep"))
        llc_lines = big.shared.num_sets * big.shared.ways
        for i in range(llc_lines * 2):
            big.store(0, i * 64)
        for i in range(llc_lines * 2):
            big.load(1, i * 64)
        # Per line: in-cache pipeline costs 1 DRAM read; spilled
        # pipeline costs ~2 (allocate + re-read).
        assert small_reads / block == pytest.approx(1.0)
        assert big.dram_reads / (llc_lines * 2) > 1.5


class TestSharedCacheProperties:
    """Property-based invariants of the coherence protocol."""

    def test_single_dirty_owner_invariant(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=20, deadline=None)
        @given(ops=st.lists(
            st.tuples(st.sampled_from("LS"), st.integers(0, 3),
                      st.integers(0, 1 << 14)),
            min_size=1, max_size=300))
        def run(ops):
            system = SharedCacheSystem(get_arch("nehalem_ep"))
            for op, core, addr in ops:
                if op == "L":
                    system.load(core, addr)
                else:
                    system.store(core, addr)
                # Invariant: every dirty line has exactly one owner,
                # and that owner holds a private copy.
                for line, owner in system._dirty_owner.items():
                    holders = system._copies.get(line, set())
                    assert owner in holders
            # Accounting: loads/stores per core sum correctly.
            assert sum(system.loads) == sum(1 for o, _c, _a in ops
                                            if o == "L")
        run()

    def test_reads_never_exceed_unique_lines_plus_allocates(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=20, deadline=None)
        @given(ops=st.lists(
            st.tuples(st.sampled_from("LS"), st.integers(0, 3),
                      st.integers(0, 1 << 12)),
            min_size=1, max_size=200))
        def run(ops):
            system = SharedCacheSystem(get_arch("nehalem_ep"))
            for op, core, addr in ops:
                (system.load if op == "L" else system.store)(core, addr)
            unique_lines = len({addr // 64 for _o, _c, addr in ops})
            # With a small footprint nothing is ever evicted from the
            # LLC, so DRAM reads are bounded by unique lines touched.
            assert system.dram_reads <= unique_lines
        run()
