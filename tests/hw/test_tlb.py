"""Tests for the data TLB model and the end-to-end TLB group."""

import pytest

from repro.hw.cache import CacheHierarchy, SimTlb
from repro.hw.events import Channel
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec


def hierarchy(tlb_entries=8):
    return CacheHierarchy(
        [CacheSpec(1, "Data cache", 32 * 1024, 8, 64)],
        PrefetcherConfig.all_off(), tlb_entries=tlb_entries)


class TestSimTlb:
    def test_miss_then_hit(self):
        tlb = SimTlb(entries=4)
        assert not tlb.translate(0)
        assert tlb.translate(8)       # same page
        assert tlb.misses == 1

    def test_capacity_eviction_lru(self):
        tlb = SimTlb(entries=2, page_size=4096)
        tlb.translate(0)              # page 0
        tlb.translate(4096)           # page 1
        tlb.translate(0)              # touch page 0 (MRU)
        tlb.translate(8192)           # page 2 evicts page 1
        assert tlb.translate(0)       # still resident
        assert not tlb.translate(4096)

    def test_page_granularity(self):
        tlb = SimTlb(entries=4, page_size=4096)
        for offset in range(0, 4096, 64):
            tlb.translate(offset)
        assert tlb.misses == 1
        assert tlb.accesses == 64


class TestHierarchyTlb:
    def test_streaming_one_miss_per_page(self):
        h = hierarchy(tlb_entries=64)
        n = 4096
        for i in range(n):
            h.load(i * 8)
        pages = n * 8 // 4096
        assert h.tlb.misses == pages

    def test_sparse_access_thrashes_tlb(self):
        h = hierarchy(tlb_entries=8)
        # Touch 16 pages round-robin: working set exceeds the TLB.
        for rep in range(10):
            for page in range(16):
                h.load(page * 4096)
        assert h.tlb.misses == 160   # every access misses

    def test_nt_stores_translate(self):
        h = hierarchy()
        h.store(0, nontemporal=True)
        assert h.tlb.accesses == 1

    def test_channel_exported(self):
        h = hierarchy()
        for page in range(5):
            h.load(page * 4096)
        assert h.channels()[Channel.DTLB_MISSES] == 5


class TestTlbGroupEndToEnd:
    def test_tlb_group_measures_trace(self):
        """likwid-perfctr -g TLB over a traced page-strided kernel."""
        from repro.core.perfctr import LikwidPerfCtr
        from repro.hw.arch import create_machine
        from repro.workloads.kernels import strided_load
        from repro.workloads.runner import run_trace

        machine = create_machine("core2")
        perfctr = LikwidPerfCtr(machine)
        result = perfctr.wrap(
            [0], "TLB",
            lambda: run_trace(machine, 0, strided_load(1000, 4096)))
        assert result.event(0, "DTLB_MISSES_ANY") >= 1000 - 64
        assert result.metric(0, "DTLB miss rate") > 0
