"""Unit tests for ArchSpec topology arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.arch import ARCH_SPECS, get_arch


@pytest.fixture
def westmere():
    return get_arch("westmere_ep")


class TestLocations:
    def test_paper_listing_rows(self, westmere):
        # The exact rows of the paper's Westmere listing.
        assert westmere.hwthread_location(0) == (0, 0, 0)
        assert westmere.hwthread_location(3) == (0, 3, 0)    # core id 8
        assert westmere.core_ids[3] == 8
        assert westmere.hwthread_location(6) == (1, 0, 0)
        assert westmere.hwthread_location(12) == (0, 0, 1)
        assert westmere.hwthread_location(23) == (1, 5, 1)

    def test_out_of_range(self, westmere):
        with pytest.raises(ValueError):
            westmere.hwthread_location(24)
        with pytest.raises(ValueError):
            westmere.hwthread_location(-1)

    def test_smt_siblings(self, westmere):
        assert westmere.hwthreads_of_core(0, 0) == [0, 12]
        assert westmere.hwthreads_of_core(1, 3) == [9, 21]

    def test_socket_members(self, westmere):
        assert westmere.hwthreads_of_socket(0) == \
            [0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17]

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_every_hwthread_locates_uniquely(self, arch):
        spec = get_arch(arch)
        seen = set()
        for hw in range(spec.num_hwthreads):
            loc = spec.hwthread_location(hw)
            assert loc not in seen
            seen.add(loc)

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_apic_ids_unique(self, arch):
        spec = get_arch(arch)
        apics = [spec.apic_id(hw) for hw in range(spec.num_hwthreads)]
        assert len(set(apics)) == len(apics)


class TestOrders:
    def test_scatter_alternates_sockets(self, westmere):
        order = westmere.scatter_order()
        assert order[:4] == [0, 6, 1, 7]
        # Physical cores exhausted before SMT siblings appear.
        smt1_start = order.index(12)
        assert smt1_start == westmere.num_cores

    def test_compact_fills_core_first(self, westmere):
        order = westmere.compact_order()
        assert order[:4] == [0, 12, 1, 13]

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_orders_are_permutations(self, arch):
        spec = get_arch(arch)
        full = set(range(spec.num_hwthreads))
        assert set(spec.scatter_order()) == full
        assert set(spec.compact_order()) == full


class TestCaches:
    def test_data_caches_sorted_and_filtered(self, westmere):
        levels = [c.level for c in westmere.data_caches()]
        assert levels == [1, 2, 3]
        assert all(c.type != "Instruction cache"
                   for c in westmere.data_caches())

    def test_last_level_cache(self, westmere):
        assert westmere.last_level_cache().size == 12 * 1024 * 1024

    def test_cache_sets_arithmetic(self, westmere):
        l1 = westmere.data_caches()[0]
        assert l1.sets == 64
        l3 = westmere.last_level_cache()
        assert l3.sets == 12288

    def test_core_ids_length_validated(self):
        import dataclasses
        spec = get_arch("core2")
        with pytest.raises(ValueError, match="core_ids"):
            dataclasses.replace(spec, core_ids=(0, 1))


@given(arch=st.sampled_from(sorted(ARCH_SPECS)), data=st.data())
def test_location_apic_consistency(arch, data):
    """Property: apic_id composes exactly the decoded location fields."""
    spec = get_arch(arch)
    hw = data.draw(st.integers(0, spec.num_hwthreads - 1))
    socket, core_index, smt = spec.hwthread_location(hw)
    apic = spec.apic_id(hw)
    assert spec.apic_layout.decompose(apic) == \
        (socket, spec.core_ids[core_index], smt)
