"""Unit tests for event tables and PERFEVTSEL bit-field helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EventError
from repro.hw import registers as regs
from repro.hw.arch import ARCH_SPECS, get_arch
from repro.hw.events import Channel, CounterScope, EventDef, EventTable


class TestEvtselFields:
    def test_encode_fields(self):
        v = regs.evtsel_encode(0xCA, 0x04, enable=True)
        assert regs.evtsel_event(v) == 0xCA
        assert regs.evtsel_umask(v) == 0x04
        assert regs.evtsel_enabled(v)
        assert v & regs.EVTSEL_USR
        assert v & regs.EVTSEL_OS

    def test_disable(self):
        v = regs.evtsel_encode(0x10, 0x10, enable=False)
        assert not regs.evtsel_enabled(v)

    @given(event=st.integers(0, 0xFF), umask=st.integers(0, 0xFF),
           cmask=st.integers(0, 0xFF))
    def test_roundtrip_property(self, event, umask, cmask):
        v = regs.evtsel_encode(event, umask, cmask=cmask)
        assert regs.evtsel_event(v) == event
        assert regs.evtsel_umask(v) == umask
        assert (v >> regs.EVTSEL_CMASK_SHIFT) & 0xFF == cmask

    def test_fixed_ctrl_fields(self):
        v = regs.fixed_ctr_ctrl_encode(1)
        assert regs.fixed_ctr_enabled(v, 1)
        assert not regs.fixed_ctr_enabled(v, 0)
        assert not regs.fixed_ctr_enabled(v, 2)

    def test_global_ctrl_bits(self):
        assert regs.global_ctrl_pmc_bit(2) == 0b100
        assert regs.global_ctrl_fixed_bit(1) == 1 << 33


class TestMiscEnableTable:
    def test_paper_listing_feature_names(self):
        names = [b.name for b in regs.MISC_ENABLE_BITS]
        # The 14 features of the paper's likwid-features listing.
        assert len(names) == 14
        assert "Adjacent Cache Line Prefetch" in names
        assert "Intel Enhanced SpeedStep" in names

    def test_only_prefetchers_writable(self):
        writable = {b.key for b in regs.MISC_ENABLE_BITS if b.writable}
        assert writable == set(regs.PREFETCHER_KEYS)

    def test_prefetch_bits_inverted(self):
        for key in regs.PREFETCHER_KEYS:
            assert regs.MISC_ENABLE_BY_KEY[key].invert


class TestEventTable:
    def test_lookup_known_event(self):
        table = get_arch("westmere_ep").events
        ev = table.lookup("UNC_L3_LINES_IN_ANY")
        assert ev.scope is CounterScope.UNCORE
        assert ev.channel is Channel.L3_LINES_IN

    def test_unknown_event_raises(self):
        table = get_arch("core2").events
        with pytest.raises(EventError, match="unknown event"):
            table.lookup("NOT_AN_EVENT")

    def test_duplicate_event_rejected(self):
        table = EventTable("test")
        ev = EventDef("X", 1, 2, Channel.LOADS)
        table.add(ev)
        with pytest.raises(EventError, match="duplicate"):
            table.add(ev)

    def test_by_encoding_roundtrip(self):
        table = get_arch("nehalem_ep").events
        ev = table.lookup("L1D_REPL")
        assert table.by_encoding(ev.event_code, ev.umask) is ev

    def test_by_encoding_respects_scope(self):
        table = get_arch("nehalem_ep").events
        unc = table.lookup("UNC_L3_LINES_IN_ANY")
        assert table.by_encoding(unc.event_code, unc.umask) is not unc
        assert table.by_encoding(unc.event_code, unc.umask,
                                 scope=CounterScope.UNCORE) is unc

    def test_fixed_events_not_matched_by_encoding(self):
        table = get_arch("nehalem_ep").events
        fixed = table.lookup("INSTR_RETIRED_ANY")
        found = table.by_encoding(fixed.event_code, fixed.umask)
        assert found is None or not found.is_fixed

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_every_arch_has_instructions_and_cycles(self, arch):
        table = get_arch(arch).events
        channels = {table.lookup(n).channel for n in table.names()}
        assert Channel.INSTRUCTIONS in channels
        assert Channel.CORE_CYCLES in channels

    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_encodings_unique_within_scope(self, arch):
        table = get_arch(arch).events
        seen = {}
        for name in table.names():
            ev = table.lookup(name)
            if ev.is_fixed:
                continue
            key = (ev.event_code, ev.umask, ev.scope)
            assert key not in seen, f"{name} duplicates {seen.get(key)}"
            seen[key] = name

    def test_fixed_events_on_intel_only(self):
        assert get_arch("westmere_ep").events.lookup("INSTR_RETIRED_ANY").is_fixed
        assert not get_arch("amd_istanbul").events.lookup(
            "RETIRED_INSTRUCTIONS").is_fixed

    def test_allowed_on_unconstrained(self):
        ev = get_arch("core2").events.lookup("L1D_REPL")
        assert ev.allowed_on(0) and ev.allowed_on(1)

    def test_counter_mask_constraint(self):
        ev = EventDef("Y", 5, 0, Channel.LOADS,
                      counter_mask=frozenset({0}))
        assert ev.allowed_on(0)
        assert not ev.allowed_on(1)
