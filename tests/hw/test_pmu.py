"""Unit tests for core and uncore PMU counting semantics."""

import pytest

from repro.hw import registers as regs
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.hw.pmu import COUNTER_MASK


@pytest.fixture
def nehalem():
    return create_machine("nehalem_ep")


@pytest.fixture
def istanbul():
    return create_machine("amd_istanbul")


def _program_pmc(machine, cpu, index, event_name, *, enable=True):
    ev = machine.spec.events.lookup(event_name)
    machine.wrmsr(cpu, machine.spec.pmu.evtsel_address(index),
                  regs.evtsel_encode(ev.event_code, ev.umask, enable=enable))


class TestIntelCorePmu:
    def test_disabled_counter_does_not_count(self, nehalem):
        _program_pmc(nehalem, 0, 0, "L1D_REPL", enable=True)
        # Global control still zero -> no counting.
        nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 100}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0) == 0

    def test_enabled_counter_counts_matching_channel(self, nehalem):
        _program_pmc(nehalem, 0, 0, "L1D_REPL")
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b1)
        nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 100,
                                  Channel.LOADS: 999}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0) == 100

    def test_evtsel_enable_bit_required(self, nehalem):
        _program_pmc(nehalem, 0, 0, "L1D_REPL", enable=False)
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b1)
        nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 100}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0) == 0

    def test_fixed_counters_need_ctrl_and_global_bits(self, nehalem):
        counts = {0: {Channel.INSTRUCTIONS: 1000, Channel.CORE_CYCLES: 2000}}
        nehalem.apply_counts(counts)
        assert nehalem.rdmsr(0, regs.IA32_FIXED_CTR0) == 0
        nehalem.wrmsr(0, regs.IA32_FIXED_CTR_CTRL,
                      regs.fixed_ctr_ctrl_encode(0)
                      | regs.fixed_ctr_ctrl_encode(1))
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL,
                      regs.global_ctrl_fixed_bit(0)
                      | regs.global_ctrl_fixed_bit(1))
        nehalem.apply_counts(counts)
        assert nehalem.rdmsr(0, regs.IA32_FIXED_CTR0) == 1000
        assert nehalem.rdmsr(0, regs.IA32_FIXED_CTR1) == 2000

    def test_counts_accumulate(self, nehalem):
        _program_pmc(nehalem, 0, 1, "L1D_REPL")
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b10)
        for _ in range(3):
            nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 7}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0 + 1) == 21

    def test_counter_wraps_at_48_bits(self, nehalem):
        _program_pmc(nehalem, 0, 0, "L1D_REPL")
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b1)
        nehalem.msr[0].poke(regs.IA32_PMC0, COUNTER_MASK - 5)
        nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 10}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0) == 4

    def test_per_thread_counting_is_independent(self, nehalem):
        _program_pmc(nehalem, 0, 0, "L1D_REPL")
        nehalem.wrmsr(0, regs.IA32_PERF_GLOBAL_CTRL, 0b1)
        nehalem.apply_counts({0: {Channel.L1D_REPLACEMENT: 5},
                              1: {Channel.L1D_REPLACEMENT: 50}})
        assert nehalem.rdmsr(0, regs.IA32_PMC0) == 5
        assert nehalem.rdmsr(1, regs.IA32_PMC0) == 0  # cpu 1 not programmed


class TestAmdCorePmu:
    def test_amd_counts_with_en_bit_only(self, istanbul):
        ev = istanbul.spec.events.lookup("RETIRED_INSTRUCTIONS")
        istanbul.wrmsr(0, regs.AMD_PERFEVTSEL0,
                       regs.evtsel_encode(ev.event_code, ev.umask, enable=True))
        istanbul.apply_counts({0: {Channel.INSTRUCTIONS: 123}})
        assert istanbul.rdmsr(0, regs.AMD_PMC0) == 123

    def test_amd_has_no_fixed_or_global_registers(self, istanbul):
        assert not istanbul.msr[0].declared(regs.IA32_FIXED_CTR0)
        assert not istanbul.msr[0].declared(regs.IA32_PERF_GLOBAL_CTRL)

    def test_amd_four_counters(self, istanbul):
        for i in range(4):
            assert istanbul.msr[0].declared(regs.AMD_PMC0 + i)
        assert not istanbul.msr[0].declared(regs.AMD_PMC0 + 4)


class TestUncorePmu:
    def _arm_upmc0(self, machine, cpu, event="UNC_L3_LINES_IN_ANY"):
        ev = machine.spec.events.lookup(event)
        machine.wrmsr(cpu, regs.MSR_UNCORE_PERFEVTSEL0,
                      regs.evtsel_encode(ev.event_code, ev.umask, enable=True))
        machine.wrmsr(cpu, regs.MSR_UNCORE_PERF_GLOBAL_CTRL, 0b1)

    def test_uncore_counts_socket_channels(self, nehalem):
        self._arm_upmc0(nehalem, 0)
        nehalem.apply_counts({}, {0: {Channel.L3_LINES_IN: 1000}})
        assert nehalem.rdmsr(0, regs.MSR_UNCORE_PMC0) == 1000

    def test_uncore_registers_alias_across_socket(self, nehalem):
        """Any core of the socket sees the same uncore register — the
        reason socket locks exist."""
        self._arm_upmc0(nehalem, 0)
        nehalem.apply_counts({}, {0: {Channel.L3_LINES_IN: 42}})
        socket0 = nehalem.spec.hwthreads_of_socket(0)
        for cpu in socket0:
            assert nehalem.rdmsr(cpu, regs.MSR_UNCORE_PMC0) == 42

    def test_uncore_sockets_are_separate(self, nehalem):
        self._arm_upmc0(nehalem, 0)
        self._arm_upmc0(nehalem, 4)  # cpu 4 is on socket 1
        nehalem.apply_counts({}, {0: {Channel.L3_LINES_IN: 10},
                                  1: {Channel.L3_LINES_IN: 20}})
        assert nehalem.rdmsr(0, regs.MSR_UNCORE_PMC0) == 10
        assert nehalem.rdmsr(4, regs.MSR_UNCORE_PMC0) == 20

    def test_uncore_fixed_counter(self, nehalem):
        nehalem.wrmsr(0, regs.MSR_UNCORE_FIXED_CTR_CTRL, 1)
        nehalem.wrmsr(0, regs.MSR_UNCORE_PERF_GLOBAL_CTRL, 1 << 32)
        nehalem.apply_counts({}, {0: {Channel.UNC_CYCLES: 555}})
        assert nehalem.rdmsr(0, regs.MSR_UNCORE_FIXED_CTR0) == 555

    def test_no_uncore_on_core2(self):
        core2 = create_machine("core2")
        assert not core2.uncore_pmus
        with pytest.raises(ValueError, match="no uncore"):
            core2.apply_counts({}, {0: {Channel.L3_LINES_IN: 1}})


class TestTsc:
    def test_tsc_advances_with_time(self, nehalem):
        before = nehalem.rdmsr(5, regs.IA32_TSC)
        nehalem.apply_counts({}, elapsed_seconds=0.5)
        after = nehalem.rdmsr(5, regs.IA32_TSC)
        assert after - before == int(0.5 * nehalem.spec.clock_hz)
