"""Unit tests for the MSR register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MsrError
from repro.hw.msr import U64_MASK, MSRSpace


@pytest.fixture
def space():
    return MSRSpace(hwthread=0)


class TestDeclaration:
    def test_declare_and_read_reset_value(self, space):
        space.declare(0x10, reset=42)
        assert space.read(0x10) == 42

    def test_declared_predicate(self, space):
        space.declare(0x10)
        assert space.declared(0x10)
        assert not space.declared(0x11)

    def test_double_declare_rejected(self, space):
        space.declare(0x10)
        with pytest.raises(MsrError, match="already declared"):
            space.declare(0x10)

    def test_addresses_sorted(self, space):
        space.declare(0x300)
        space.declare(0x10)
        space.declare(0x186)
        assert space.addresses() == [0x10, 0x186, 0x300]


class TestAccess:
    def test_write_then_read(self, space):
        space.declare(0x186)
        space.write(0x186, 0xDEADBEEF)
        assert space.read(0x186) == 0xDEADBEEF

    def test_read_undeclared_is_gp_fault(self, space):
        with pytest.raises(MsrError, match="#GP"):
            space.read(0x999)

    def test_write_undeclared_is_gp_fault(self, space):
        with pytest.raises(MsrError, match="#GP"):
            space.write(0x999, 1)

    def test_write_out_of_range_rejected(self, space):
        space.declare(0x10)
        with pytest.raises(MsrError, match="out of 64-bit range"):
            space.write(0x10, 1 << 64)
        with pytest.raises(MsrError, match="out of 64-bit range"):
            space.write(0x10, -1)

    def test_write_mask_preserves_reserved_bits(self, space):
        # Only the low byte is writable; upper bits keep the reset value.
        space.declare(0x1A0, reset=0xFF00, write_mask=0xFF)
        space.write(0x1A0, 0xFFFF)
        assert space.read(0x1A0) == 0xFFFF & 0xFF | 0xFF00

    def test_full_width_value(self, space):
        space.declare(0x10)
        space.write(0x10, U64_MASK)
        assert space.read(0x10) == U64_MASK


class TestHooks:
    def test_read_hook_overrides_value(self, space):
        space.declare(0x10, read_hook=lambda _v: 123)
        assert space.read(0x10) == 123

    def test_write_hook_sees_masked_value(self, space):
        seen = []
        space.declare(0x10, write_mask=0xF,
                      write_hook=lambda addr, v: seen.append((addr, v)))
        space.write(0x10, 0x123)
        assert seen == [(0x10, 0x3)]

    def test_poke_bypasses_write_mask_and_hooks(self, space):
        seen = []
        space.declare(0x10, write_mask=0,
                      write_hook=lambda a, v: seen.append(v))
        space.poke(0x10, 0xABC)
        assert space.peek(0x10) == 0xABC
        assert seen == []

    def test_peek_bypasses_read_hook(self, space):
        space.declare(0x10, reset=7, read_hook=lambda _v: 0)
        assert space.peek(0x10) == 7
        assert space.read(0x10) == 0


@given(value=st.integers(min_value=0, max_value=U64_MASK),
       mask=st.integers(min_value=0, max_value=U64_MASK),
       reset=st.integers(min_value=0, max_value=U64_MASK))
def test_write_mask_algebra(value, mask, reset):
    """Property: a masked write yields (reset & ~mask) | (value & mask)."""
    space = MSRSpace()
    space.declare(0x10, reset=reset, write_mask=mask)
    space.write(0x10, value)
    assert space.read(0x10) == (reset & ~mask) | (value & mask)
