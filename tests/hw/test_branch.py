"""Tests for the branch predictor models and the BRANCH group path."""

import pytest

from repro.hw.branch import BimodalPredictor, BranchUnit, GsharePredictor
from repro.workloads.kernels import (alternating_branches, loop_branches,
                                     random_branches)


def run_outcomes(predictor, outcomes, pc=0x1000):
    for taken in outcomes:
        predictor.update(pc, taken)
    return predictor.stats


class TestBimodal:
    def test_loop_branch_near_perfect(self):
        stats = run_outcomes(BimodalPredictor(),
                             [True] * 999 + [False])
        # One miss at most for warmup plus the loop exit.
        assert stats.mispredictions <= 2
        assert stats.branches == 1000

    def test_alternating_defeats_bimodal(self):
        stats = run_outcomes(BimodalPredictor(),
                             [bool(i & 1) for i in range(1000)])
        assert stats.miss_ratio > 0.4

    def test_counters_saturate(self):
        p = BimodalPredictor(entries=1)
        for _ in range(10):
            p.update(0, True)
        assert p.predict(0)
        p.update(0, False)     # one not-taken does not flip a strong state
        assert p.predict(0)

    def test_aliasing_across_entries(self):
        p = BimodalPredictor(entries=2)
        # pcs 0x0 and 0x8 map to different entries; 0x0 and 0x10 alias.
        p.update(0x0, True)
        p.update(0x8, False)
        assert p._index(0x0) == p._index(0x10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=0)


class TestGshare:
    def test_alternating_learned_via_history(self):
        p = GsharePredictor()
        stats = run_outcomes(p, [bool(i & 1) for i in range(2000)])
        assert stats.miss_ratio < 0.1   # history disambiguates

    def test_random_branches_near_chance(self):
        p = GsharePredictor()
        for op, pc, taken in random_branches(4000):
            p.update(pc, bool(taken))
        assert 0.3 < p.stats.miss_ratio < 0.6


class TestBranchTracePath:
    def test_loop_kernel_low_miss_rate(self):
        from repro.core.perfctr import LikwidPerfCtr
        from repro.hw.arch import create_machine
        from repro.workloads.runner import run_trace
        machine = create_machine("core2")
        result = LikwidPerfCtr(machine).wrap(
            [0], "BRANCH",
            lambda: run_trace(machine, 0, loop_branches(5000,
                                                        body_branches=1)))
        assert result.event(0, "BR_INST_RETIRED_ANY") == 10000
        assert result.metric(0, "Branch misprediction ratio") < 0.01

    def test_random_kernel_high_miss_rate(self):
        from repro.core.perfctr import LikwidPerfCtr
        from repro.hw.arch import create_machine
        from repro.workloads.runner import run_trace
        machine = create_machine("core2")
        result = LikwidPerfCtr(machine).wrap(
            [0], "BRANCH",
            lambda: run_trace(machine, 0, random_branches(5000)))
        assert result.metric(0, "Branch misprediction ratio") > 0.3

    def test_mispredictions_cost_cycles(self):
        from repro.hw.arch import create_machine
        from repro.hw.events import Channel
        from repro.workloads.runner import run_trace
        machine = create_machine("core2")
        good = run_trace(machine, 0, loop_branches(4000),
                         apply_counts=False)
        bad = run_trace(create_machine("core2"), 0, random_branches(4000),
                        apply_counts=False)
        assert bad[Channel.CORE_CYCLES] > 3 * good[Channel.CORE_CYCLES]

    def test_alternating_kernel(self):
        from repro.hw.arch import create_machine
        from repro.hw.events import Channel
        from repro.workloads.runner import run_trace
        machine = create_machine("core2")
        ch = run_trace(machine, 0, alternating_branches(2000),
                       apply_counts=False)
        assert ch[Channel.BRANCH_MISSES] < 0.1 * ch[Channel.BRANCHES]
