"""Unit and property tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import CacheHierarchy, SetAssocCache
from repro.hw.events import Channel
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec


def small_cache(sets=4, ways=2, line=64):
    return SetAssocCache(CacheSpec(1, "Data cache",
                                   sets * ways * line, ways, line))


def tiny_hierarchy():
    """A small two-level hierarchy for fast exact tests."""
    return CacheHierarchy([
        CacheSpec(1, "Data cache", 4 * 1024, 4, 64),
        CacheSpec(2, "Unified cache", 32 * 1024, 8, 64),
    ], PrefetcherConfig.all_off())


class TestSetAssocCache:
    def test_miss_then_hit_after_fill(self):
        c = small_cache()
        assert not c.access(0)
        c.fill(0)
        assert c.access(0)

    def test_lru_eviction_order(self):
        c = small_cache(sets=1, ways=2)
        c.fill(0)
        c.fill(1)
        c.access(0)          # 0 becomes MRU
        victim = c.fill(2)   # evicts 1 (LRU)
        assert victim == (1, False)
        assert c.access(0)
        assert not c.access(1)

    def test_dirty_eviction_reported(self):
        c = small_cache(sets=1, ways=1)
        c.fill(0, dirty=True)
        victim = c.fill(1)
        assert victim == (0, True)
        assert c.stats.dirty_evictions == 1

    def test_set_mapping(self):
        c = small_cache(sets=4, ways=1)
        # Lines 0 and 4 map to set 0; 1 maps to set 1.
        c.fill(0)
        c.fill(1)
        assert c.fill(4) == (0, False)
        assert c.access(1)

    def test_fill_existing_line_merges_dirty(self):
        c = small_cache()
        c.fill(3, dirty=False)
        assert c.fill(3, dirty=True) is None
        victim = None
        # Force eviction of line 3 by filling its set beyond capacity.
        for line in (7, 11):
            v = c.fill(line)
            victim = victim or v
        assert victim == (3, True)

    def test_invalidate(self):
        c = small_cache()
        c.fill(5)
        assert c.invalidate(5)
        assert not c.invalidate(5)
        assert not c.access(5)

    def test_stats_counts(self):
        c = small_cache()
        c.access(0)
        c.fill(0)
        c.access(0)
        assert c.stats.accesses == 2
        assert c.stats.misses == 1
        assert c.stats.hits == 1
        assert c.stats.miss_rate == 0.5

    def test_contents(self):
        c = small_cache()
        c.fill(1)
        c.fill(9)
        assert c.contents() == {1, 9}

    def test_has_line_probe_is_stat_and_lru_neutral(self):
        c = small_cache(sets=1, ways=2)
        c.fill(0)
        c.fill(1)
        assert c.has_line(0) and 1 in c and 2 not in c
        # Probing must not register demand accesses...
        assert c.stats.accesses == 0
        # ...nor refresh LRU age: 0 is still the eviction victim.
        assert c.fill(2) == (0, False)


class TestHierarchyExactTraffic:
    def test_streaming_reads_miss_once_per_line(self):
        h = tiny_hierarchy()
        n = 512  # 512 loads x 8 B = 64 lines
        for i in range(n):
            h.load(i * 8)
        assert h.loads == n
        assert h.levels[0].stats.misses == n // 8
        assert h.dram_reads == n // 8

    def test_repeat_sweep_hits_in_cache(self):
        h = tiny_hierarchy()
        for _ in range(3):
            for i in range(256):   # 2 KB working set < 4 KB L1
                h.load(i * 8)
        # Only the first sweep misses.
        assert h.levels[0].stats.misses == 256 // 8

    def test_store_write_allocate(self):
        h = tiny_hierarchy()
        for i in range(64):
            h.store(i * 8)
        # Write-allocate reads every line from memory once.
        assert h.dram_reads == 8
        assert h.stores == 64

    def test_nontemporal_store_bypasses(self):
        h = tiny_hierarchy()
        for i in range(64):
            h.store(i * 8, nontemporal=True)
        assert h.dram_reads == 0
        assert h.dram_writes == 8   # 64 x 8 B = 8 lines
        assert h.nt_stores == 64
        assert h.levels[0].stats.lines_in == 0

    def test_nt_store_invalidates_cached_copy(self):
        h = tiny_hierarchy()
        h.load(0)
        assert h.levels[0].lookup(0, touch=False)
        h.store(0, nontemporal=True)
        assert not h.levels[0].lookup(0, touch=False)

    def test_dirty_writeback_reaches_memory(self):
        h = tiny_hierarchy()
        l2_lines = h.levels[1].num_sets * h.levels[1].ways
        # Write far more lines than L2 holds; dirty lines must reach DRAM.
        for i in range(l2_lines * 3):
            h.store(i * 64)
        assert h.dram_writes > 0

    def test_l1_hit_causes_no_l2_traffic(self):
        h = tiny_hierarchy()
        h.load(0)
        l2_before = h.levels[1].stats.accesses
        h.load(8)  # same line
        assert h.levels[1].stats.accesses == l2_before

    def test_channels_reflect_stats(self):
        h = tiny_hierarchy()
        for i in range(128):
            h.load(i * 8)
        ch = h.channels()
        assert ch[Channel.LOADS] == 128
        assert ch[Channel.L1D_REPLACEMENT] == h.levels[0].stats.lines_in
        assert ch[Channel.L2_LINES_IN] == h.levels[1].stats.lines_in
        assert ch[Channel.DRAM_READS] == h.dram_reads

    def test_requires_data_cache(self):
        with pytest.raises(ValueError):
            CacheHierarchy([CacheSpec(1, "Instruction cache", 1024, 2, 64)])


class TestInclusionAndWriteback:
    def test_fill_populates_all_levels(self):
        h = tiny_hierarchy()
        h.load(0)
        assert h.levels[0].lookup(0, touch=False)
        assert h.levels[1].lookup(0, touch=False)

    def test_l1_victim_dirty_goes_to_l2_not_memory(self):
        h = tiny_hierarchy()
        # L1: 4 KB, 4-way, 16 sets. Fill set 0 with 5 dirty lines.
        for i in range(5):
            h.store(i * 16 * 64)   # all map to L1 set 0
        assert h.dram_writes == 0  # victims absorbed by L2
        assert h.levels[0].stats.dirty_evictions == 1


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
       ways=st.integers(1, 4))
def test_cache_never_exceeds_capacity(addresses, ways):
    """Property: resident lines never exceed sets x ways, and every
    access is classified as exactly one of hit/miss."""
    c = SetAssocCache(CacheSpec(1, "Data cache", 8 * ways * 64, ways, 64))
    for addr in addresses:
        line = addr // 64
        if not c.access(line):
            c.fill(line)
        assert len(c.contents()) <= c.num_sets * c.ways
    assert c.stats.hits + c.stats.misses == c.stats.accesses


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from("LSN"),
                              st.integers(0, 1 << 14)),
                    min_size=1, max_size=200))
def test_hierarchy_conservation(ops):
    """Property: DRAM reads equal outermost-level demand+prefetch fills,
    and op counters add up."""
    h = tiny_hierarchy()
    for op, addr in ops:
        if op == "L":
            h.load(addr)
        elif op == "S":
            h.store(addr)
        else:
            h.store(addr, nontemporal=True)
    assert h.dram_reads == h.levels[-1].stats.lines_in
    assert h.loads + h.stores + h.nt_stores == len(ops)
