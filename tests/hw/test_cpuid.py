"""Unit tests for the CPUID encoder (leaves, signatures, vendor)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CpuidError
from repro.hw.arch import ARCH_SPECS, get_arch
from repro.hw.cpuid import (CpuidEngine, decode_signature, encode_signature)


@pytest.fixture
def westmere():
    return CpuidEngine(get_arch("westmere_ep"))


@pytest.fixture
def istanbul():
    return CpuidEngine(get_arch("amd_istanbul"))


class TestSignature:
    @pytest.mark.parametrize("family,model,stepping", [
        (6, 0x17, 6),    # Core 2 Penryn
        (6, 0x2C, 2),    # Westmere
        (6, 0x1A, 5),    # Nehalem
        (0xF, 0x21, 2),  # AMD K8
        (0x10, 0x08, 0), # AMD K10
        (6, 0x0D, 6),    # Pentium M
    ])
    def test_roundtrip(self, family, model, stepping):
        eax = encode_signature(family, model, stepping)
        assert decode_signature(eax) == (family, model, stepping)

    def test_extended_family_encoding(self):
        # K10: family 0x10 = base 0xF + extended 0x01.
        eax = encode_signature(0x10, 0x08, 0)
        assert (eax >> 8) & 0xF == 0xF
        assert (eax >> 20) & 0xFF == 0x1

    def test_extended_model_for_family6(self):
        eax = encode_signature(6, 0x2C, 2)
        assert (eax >> 4) & 0xF == 0xC
        assert (eax >> 16) & 0xF == 0x2


class TestLeaf0:
    def test_intel_vendor_string(self, westmere):
        r = westmere.cpuid(0, 0)
        raw = (r.ebx.to_bytes(4, "little") + r.edx.to_bytes(4, "little")
               + r.ecx.to_bytes(4, "little"))
        assert raw == b"GenuineIntel"

    def test_amd_vendor_string(self, istanbul):
        r = istanbul.cpuid(0, 0)
        raw = (r.ebx.to_bytes(4, "little") + r.edx.to_bytes(4, "little")
               + r.ecx.to_bytes(4, "little"))
        assert raw == b"AuthenticAMD"

    def test_max_leaf_per_style(self):
        assert CpuidEngine(get_arch("westmere_ep")).cpuid(0, 0).eax == 0xB
        assert CpuidEngine(get_arch("core2")).cpuid(0, 0).eax == 0xA
        assert CpuidEngine(get_arch("pentium_m")).cpuid(0, 0).eax == 0x2
        assert CpuidEngine(get_arch("amd_istanbul")).cpuid(0, 0).eax == 0x1


class TestLeaf1:
    def test_htt_flag_set_on_multicore(self, westmere):
        assert westmere.cpuid(0, 1).edx & (1 << 28)

    def test_htt_flag_clear_on_single_thread(self):
        pm = CpuidEngine(get_arch("pentium_m"))
        assert not pm.cpuid(0, 1).edx & (1 << 28)

    def test_apic_id_in_ebx(self, westmere):
        spec = get_arch("westmere_ep")
        for hw in (0, 3, 12, 23):
            ebx = westmere.cpuid(hw, 1).ebx
            assert (ebx >> 24) & 0xFF == spec.apic_id(hw)

    def test_feature_flags(self, westmere):
        r = westmere.cpuid(0, 1)
        assert r.edx & (1 << 26)   # sse2
        assert r.ecx & (1 << 20)   # sse4_2


class TestLeaf4:
    def test_cache_parameters_roundtrip(self, westmere):
        spec = get_arch("westmere_ep")
        caches = sorted(spec.caches, key=lambda c: (c.level, c.type))
        for subleaf, cache in enumerate(caches):
            r = westmere.cpuid(0, 4, subleaf)
            assert (r.eax >> 5) & 0x7 == cache.level
            assert (r.ebx & 0xFFF) + 1 == cache.line_size
            assert ((r.ebx >> 22) & 0x3FF) + 1 == cache.associativity
            assert r.ecx + 1 == cache.sets
            assert bool(r.edx & 0x2) == cache.inclusive
            assert ((r.eax >> 14) & 0xFFF) + 1 == cache.threads_sharing

    def test_terminating_subleaf(self, westmere):
        r = westmere.cpuid(0, 4, 10)
        assert r.eax & 0x1F == 0


class TestLeaf11:
    def test_smt_level(self, westmere):
        r = westmere.cpuid(0, 0xB, 0)
        assert r.eax & 0x1F == 1          # shift past SMT
        assert r.ebx == 2                 # 2 threads per core
        assert (r.ecx >> 8) & 0xFF == 1   # level type SMT

    def test_core_level(self, westmere):
        r = westmere.cpuid(0, 0xB, 1)
        assert r.eax & 0x1F == 5          # full package shift (1 + 4)
        assert r.ebx == 12                # threads per package
        assert (r.ecx >> 8) & 0xFF == 2

    def test_invalid_level_terminates(self, westmere):
        r = westmere.cpuid(0, 0xB, 2)
        assert r.eax == 0 and r.ebx == 0
        assert (r.ecx >> 8) & 0xFF == 0

    def test_x2apic_id_matches_spec(self, westmere):
        spec = get_arch("westmere_ep")
        for hw in range(spec.num_hwthreads):
            assert westmere.cpuid(hw, 0xB, 0).edx == spec.apic_id(hw)


class TestLegacyLeaf2:
    def test_pentium_m_descriptors(self):
        engine = CpuidEngine(get_arch("pentium_m"))
        r = engine.cpuid(0, 2)
        raw = b"".join(reg.to_bytes(4, "little") for reg in r.as_tuple())
        assert raw[0] == 0x01  # iteration count
        assert {0x2C, 0x30, 0x7D} <= set(raw[1:])


class TestAmdLeaves:
    def test_l1_cache(self, istanbul):
        r = istanbul.cpuid(0, 0x80000005)
        assert (r.ecx >> 24) & 0xFF == 64    # 64 KB L1d
        assert (r.ecx >> 16) & 0xFF == 2     # 2-way
        assert r.ecx & 0xFF == 64            # line size

    def test_l2_l3(self, istanbul):
        r = istanbul.cpuid(0, 0x80000006)
        assert (r.ecx >> 16) & 0xFFFF == 512          # 512 KB L2
        assert ((r.edx >> 18) & 0x3FFF) * 512 == 6144  # 6 MB L3 in KB

    def test_core_count(self, istanbul):
        r = istanbul.cpuid(0, 0x80000008)
        assert (r.ecx & 0xFF) + 1 == 6

    def test_extended_leaf_range(self, istanbul):
        assert istanbul.cpuid(0, 0x80000000).eax == 0x80000008


class TestBrandString:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_brand_string_roundtrip(self, arch):
        spec = get_arch(arch)
        engine = CpuidEngine(spec)
        raw = b""
        for leaf in (0x80000002, 0x80000003, 0x80000004):
            r = engine.cpuid(0, leaf)
            for reg in r.as_tuple():
                raw += reg.to_bytes(4, "little")
        assert raw.split(b"\0")[0].decode() == spec.cpu_name[:47]


class TestErrors:
    def test_unsupported_leaf_raises(self, westmere):
        with pytest.raises(CpuidError, match="unsupported CPUID leaf"):
            westmere.cpuid(0, 0x15)

    def test_leaf_0xb_unavailable_on_core2(self):
        engine = CpuidEngine(get_arch("core2"))
        with pytest.raises(CpuidError):
            engine.cpuid(0, 0xB)

    def test_amd_has_no_leaf4(self, istanbul):
        with pytest.raises(CpuidError):
            istanbul.cpuid(0, 0x4)


@given(family=st.sampled_from([5, 6, 0xF, 0x10, 0x15]),
       model=st.integers(0, 0xFF), stepping=st.integers(0, 0xF))
def test_signature_roundtrip_property(family, model, stepping):
    """Property: signature decode inverts encode for families that use
    the extended-model convention (6 and >= 0xF)."""
    eax = encode_signature(family, model, stepping)
    dec_family, dec_model, dec_stepping = decode_signature(eax)
    assert dec_family == family
    assert dec_stepping == stepping
    if family in (6,) or family >= 0xF:
        assert dec_model == model
    else:
        assert dec_model == model & 0xF
