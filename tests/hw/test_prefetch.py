"""Unit tests for the prefetcher models and their MISC_ENABLE wiring."""

import pytest

from repro.hw.arch import create_machine
from repro.hw.cache import CacheHierarchy
from repro.hw.prefetch import (IpStridePrefetcher, PrefetcherConfig,
                               StreamDetector)
from repro.hw.spec import CacheSpec


class TestStreamDetector:
    def test_needs_confirmation_before_prefetch(self):
        d = StreamDetector(depth=2, confirm=2)
        assert d.observe(10) == []
        assert d.observe(11) == []         # run = 1
        assert d.observe(12) == [13, 14]   # confirmed

    def test_broken_stream_resets(self):
        d = StreamDetector(depth=1, confirm=2)
        d.observe(10)
        d.observe(11)
        assert d.observe(50) == []
        assert d.observe(51) == []
        assert d.observe(52) == [53]

    def test_repeated_same_line_is_not_a_stream(self):
        d = StreamDetector(confirm=1)
        d.observe(5)
        assert d.observe(5) == []
        assert d.observe(6) == [7, 8]


class TestIpStridePrefetcher:
    def test_constant_stride_detected(self):
        p = IpStridePrefetcher()
        out = []
        for i in range(5):
            out = p.observe(1, i * 256, 64)
        assert out == [(4 * 256 + 256) // 64]

    def test_sub_line_stride_not_prefetched(self):
        p = IpStridePrefetcher()
        out = []
        for i in range(6):
            out = p.observe(1, i * 8, 64)   # stays inside one line mostly
        # stride 8 within the same line: no cross-line prefetch target
        assert out == [] or out[0] * 64 != (5 * 8 // 64) * 64

    def test_streams_tracked_independently(self):
        p = IpStridePrefetcher()
        for i in range(4):
            p.observe(1, i * 128, 64)
            p.observe(2, 10_000 - i * 128, 64)
        assert p.observe(1, 4 * 128, 64) == [(4 * 128 + 128) // 64]

    def test_table_capacity_bounded(self):
        p = IpStridePrefetcher(max_streams=4)
        for s in range(10):
            p.observe(s, 0, 64)
        assert len(p._table) <= 4

    def test_irregular_stride_never_fires(self):
        p = IpStridePrefetcher()
        for addr in (0, 100, 350, 351, 900, 1700):
            assert p.observe(1, addr, 64) == []


class TestConfigFromMachine:
    def test_default_all_enabled(self):
        m = create_machine("core2")
        config = PrefetcherConfig.from_machine(m, 0)
        assert config.hw_prefetcher and config.cl_prefetcher
        assert config.dcu_prefetcher and config.ip_prefetcher

    def test_reflects_misc_enable_writes(self):
        from repro.core.features import LikwidFeatures
        from repro.oskern.msr_driver import MsrDriver
        m = create_machine("core2")
        features = LikwidFeatures(MsrDriver(m), cpu=0)
        features.disable("CL_PREFETCHER")
        config = PrefetcherConfig.from_machine(m, 0)
        assert not config.cl_prefetcher
        assert config.hw_prefetcher

    def test_non_core2_reports_always_enabled(self):
        m = create_machine("westmere_ep")
        config = PrefetcherConfig.from_machine(m, 0)
        assert config.hw_prefetcher


class TestPrefetchEffectOnTraffic:
    def _hierarchy(self, config):
        return CacheHierarchy([
            CacheSpec(1, "Data cache", 4 * 1024, 4, 64),
            CacheSpec(2, "Unified cache", 64 * 1024, 8, 64),
        ], config)

    def test_dcu_prefetcher_reduces_l1_demand_misses(self):
        on = self._hierarchy(PrefetcherConfig(False, False, True, False))
        off = self._hierarchy(PrefetcherConfig.all_off())
        for h in (on, off):
            for i in range(2048):
                h.load(i * 8)
        assert on.levels[0].stats.misses < off.levels[0].stats.misses

    def test_adjacent_line_prefetch_pairs_lines(self):
        on = self._hierarchy(PrefetcherConfig(False, True, False, False))
        # Touch only even lines from DRAM; CL prefetch should pull the
        # odd buddies into L2.
        for i in range(0, 256, 2):
            on.load(i * 64)
        odd_in_l2 = sum(1 for line in on.levels[1].contents() if line % 2)
        assert odd_in_l2 > 0

    def test_prefetch_fills_counted_separately(self):
        on = self._hierarchy(PrefetcherConfig(True, True, True, True))
        for i in range(1024):
            on.load(i * 8)
        assert on.levels[0].stats.prefetch_fills > 0

    def test_random_access_defeats_prefetchers(self):
        from repro.workloads.kernels import random_load
        on = self._hierarchy(PrefetcherConfig(True, True, True, True))
        off = self._hierarchy(PrefetcherConfig.all_off())
        for h in (on, off):
            for op, addr, stream in random_load(2000, 1 << 20, seed=9):
                h.load(addr, stream=stream)
        # Prefetching cannot help random access by much.
        assert on.levels[0].stats.misses >= 0.8 * off.levels[0].stats.misses
