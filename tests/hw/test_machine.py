"""Unit tests for SimMachine wiring."""

import pytest

from repro.hw import registers as regs
from repro.hw.arch import ARCH_SPECS, create_machine
from repro.hw.machine import default_misc_enable


class TestConstruction:
    @pytest.mark.parametrize("arch", sorted(ARCH_SPECS))
    def test_every_arch_builds(self, arch):
        m = create_machine(arch)
        assert m.num_hwthreads == m.spec.num_hwthreads
        assert len(m.msr) == m.num_hwthreads
        assert len(m.core_pmus) == m.num_hwthreads

    def test_uncore_only_on_nehalem_family(self):
        assert len(create_machine("nehalem_ep").uncore_pmus) == 2
        assert len(create_machine("westmere_ep").uncore_pmus) == 2
        assert create_machine("core2").uncore_pmus == []
        assert create_machine("amd_istanbul").uncore_pmus == []

    def test_unknown_arch(self):
        from repro.errors import TopologyError
        from repro.hw.arch import create_machine as cm
        with pytest.raises(TopologyError, match="unknown architecture"):
            cm("itanium")


class TestMiscEnable:
    def test_default_value_matches_paper_listing(self):
        value = default_misc_enable()
        # Prefetcher bits clear (= enabled, inverted semantics).
        for key in regs.PREFETCHER_KEYS:
            bit = regs.MISC_ENABLE_BY_KEY[key]
            assert not value & (1 << bit.bit)
        # SpeedStep enabled, IDA disabled (bit set, inverted).
        assert value & (1 << 16)
        assert value & (1 << 38)

    def test_only_core2_has_register(self):
        assert create_machine("core2").msr[0].declared(regs.IA32_MISC_ENABLE)
        assert not create_machine("westmere_ep").msr[0].declared(
            regs.IA32_MISC_ENABLE)

    def test_write_mask_restricted_to_prefetch_bits(self):
        m = create_machine("core2")
        before = m.rdmsr(0, regs.IA32_MISC_ENABLE)
        m.wrmsr(0, regs.IA32_MISC_ENABLE, 0xFFFFFFFFFFFFFFFF)
        after = m.rdmsr(0, regs.IA32_MISC_ENABLE)
        changed = before ^ after
        writable = 0
        for bit in regs.MISC_ENABLE_BITS:
            if bit.writable:
                writable |= 1 << bit.bit
        assert changed & ~writable == 0

    def test_misc_enable_state_semantics(self):
        m = create_machine("core2")
        assert m.misc_enable_state(0, "CL_PREFETCHER")
        bit = regs.MISC_ENABLE_BY_KEY["CL_PREFETCHER"]
        value = m.rdmsr(0, regs.IA32_MISC_ENABLE) | (1 << bit.bit)
        m.wrmsr(0, regs.IA32_MISC_ENABLE, value)
        assert not m.misc_enable_state(0, "CL_PREFETCHER")

    def test_non_core2_reports_enabled(self):
        m = create_machine("amd_k8")
        assert m.misc_enable_state(0, "HW_PREFETCHER")

    def test_prefetchers_enabled_dict(self):
        m = create_machine("core2")
        state = m.prefetchers_enabled(2)
        assert set(state) == set(regs.PREFETCHER_KEYS)
        assert all(state.values())
