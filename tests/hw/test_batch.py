"""Differential tests: the batched replay engine is bit-exact with
the scalar cache hierarchy.

The batch engine (:mod:`repro.hw.batch`) re-implements the hot path of
:class:`~repro.hw.cache.CacheHierarchy` as one tight loop.  Nothing
guards its correctness except these tests, so they compare *all*
externally observable state — per-level stats, DRAM traffic, TLB,
prefetcher learning state, event channels, even the exact LRU order of
every cache set — across every kernel family and both prefetcher
configurations.
"""

import pytest

from repro.hw.batch import (OP_BRANCH, OP_LOAD, OP_NT_STORE, OP_STORE,
                            BatchHierarchy, encode_trace)
from repro.hw.branch import BranchUnit
from repro.hw.cache import CacheHierarchy
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec
from repro.workloads import clear_trace_cache, trace_arrays, trace_cache_info
from repro.workloads.kernels import (blocked_sum, pointer_chase, random_load,
                                     streaming_store, streaming_triad,
                                     strided_load)

SPECS = [
    CacheSpec(1, "Data cache", 4 * 1024, 4, 64),
    CacheSpec(2, "Unified cache", 32 * 1024, 8, 64),
]

KERNELS = {
    "streaming": lambda: streaming_triad(512),
    "streaming_nt": lambda: streaming_triad(512, nontemporal=True),
    "strided": lambda: strided_load(512, 192),
    "random": lambda: random_load(1024, 1 << 16),
    "pointer_chase": lambda: pointer_chase(1024, 1 << 15),
    "blocked": lambda: blocked_sum(1024, 2048, 3),
    "store_stream": lambda: streaming_store(512),
}

CONFIGS = {
    "pf_on": PrefetcherConfig(),
    "pf_off": PrefetcherConfig.all_off(),
}


def run_scalar(config, trace):
    h = CacheHierarchy(list(SPECS), config, tlb_entries=16)
    cycles = 0.0
    for op, addr, stream in trace:
        if op == "L":
            level = h.load(addr, stream=stream)
        elif op == "S":
            level = h.store(addr, stream=stream)
        else:
            level = h.store(addr, stream=stream, nontemporal=True)
        cycles += (1.0, 8.0, 30.0, 200.0)[min(level, 3)]
    return h, cycles


def run_batched(config, trace):
    h = BatchHierarchy(list(SPECS), config, tlb_entries=16)
    cycles = h.replay(encode_trace(trace))
    return h, cycles


def full_state(h):
    """Every piece of observable hierarchy state, LRU order included."""
    state = {
        "loads": h.loads, "stores": h.stores, "nt_stores": h.nt_stores,
        "dram_reads": h.dram_reads, "dram_writes": h.dram_writes,
        "nt_accum": h._nt_accum,
        "tlb": (h.tlb.accesses, h.tlb.misses, list(h.tlb._pages)),
        "stream_l1": (h._l1_stream._last_line, h._l1_stream._run),
        "stream_l2": (h._l2_stream._last_line, h._l2_stream._run),
        "ip_table": dict(h._ip._table),
        "channels": h.channels(),
    }
    for i, cache in enumerate(h.levels):
        s = cache.stats
        state[f"level{i}_stats"] = (s.accesses, s.hits, s.misses,
                                    s.evictions, s.dirty_evictions,
                                    s.lines_in, s.prefetch_fills)
        state[f"level{i}_lru"] = [list(d.items()) for d in cache._sets]
    return state


@pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
@pytest.mark.parametrize("kernel", KERNELS.values(), ids=KERNELS.keys())
class TestDifferential:
    def test_bit_exact_state_and_cycles(self, kernel, config):
        hs, cs = run_scalar(config, kernel())
        hb, cb = run_batched(config, kernel())
        assert cb == cs
        assert full_state(hb) == full_state(hs)

    def test_replay_then_scalar_interop(self, kernel, config):
        """A replay followed by scalar accesses lands in the same state
        as running everything scalar — the engines share state."""
        hs, _ = run_scalar(config, kernel())
        hb, _ = run_batched(config, kernel())
        for h in (hs, hb):
            for i in range(64):
                h.load(1 << 22 | i * 64, stream=7)
                h.store(1 << 23 | i * 64, stream=8)
        assert full_state(hb) == full_state(hs)


class TestBranches:
    def test_branch_trace_matches_scalar_predictor(self):
        trace = [("B", 0x400000, i % 3 != 0) for i in range(200)]
        bu_s, bu_b = BranchUnit(), BranchUnit()
        cycles_s = sum(15.0 if bu_s.execute(a, bool(t)) else 1.0
                       for _, a, t in trace)
        h = BatchHierarchy(list(SPECS), PrefetcherConfig())
        cycles_b = h.replay(encode_trace(trace), bu_b)
        assert cycles_b == cycles_s
        assert bu_b.stats.branches == bu_s.stats.branches
        assert bu_b.stats.mispredictions == bu_s.stats.mispredictions

    def test_branch_without_unit_raises(self):
        h = BatchHierarchy(list(SPECS), PrefetcherConfig())
        with pytest.raises(ValueError, match="no branch unit"):
            h.replay(encode_trace([("B", 0x400000, 1)]))


class TestEncode:
    def test_roundtrip_preserves_scalar_view(self):
        trace = [("L", 0, 1), ("S", 64, 2), ("N", 128, 3), ("B", 4096, 1)]
        arrays = encode_trace(trace)
        assert list(arrays) == trace
        assert len(arrays) == 4
        assert list(arrays.ops) == [OP_LOAD, OP_STORE, OP_NT_STORE,
                                    OP_BRANCH]

    def test_encode_is_idempotent(self):
        arrays = encode_trace([("L", 0, 0)])
        assert encode_trace(arrays) is arrays

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            encode_trace([("X", 0, 0)])

    def test_nbytes_counts_all_arrays(self):
        arrays = encode_trace([("L", i * 64, 0) for i in range(10)])
        assert arrays.nbytes == 10 * (1 + 8 + 8)

    def test_empty_replay_is_noop(self):
        h = BatchHierarchy(list(SPECS), PrefetcherConfig())
        assert h.replay(encode_trace([])) == 0.0
        assert h.loads == 0 and h.tlb.accesses == 0


class TestTraceCache:
    def setup_method(self):
        clear_trace_cache()

    def teardown_method(self):
        clear_trace_cache()

    def test_content_addressed_reuse(self):
        a = trace_arrays("streaming_triad", 64)
        b = trace_arrays("streaming_triad", 64)
        assert a is b
        info = trace_cache_info()
        assert (info.hits, info.misses, info.traces) == (1, 1, 1)
        assert info.bytes == a.nbytes

    def test_distinct_params_are_distinct_entries(self):
        a = trace_arrays("streaming_triad", 64)
        b = trace_arrays("streaming_triad", 64, nontemporal=True)
        assert a is not b
        assert trace_cache_info().traces == 2

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown trace kernel"):
            trace_arrays("not_a_kernel", 64)

    def test_cached_trace_equals_generator(self):
        from repro.workloads.kernels import streaming_triad as gen
        assert list(trace_arrays("streaming_triad", 64)) == list(gen(64))
