"""repro — a Python reproduction of the LIKWID tool suite (ICPP 2010).

Treibig, Hager & Wellein: "LIKWID: A lightweight performance-oriented
tool suite for x86 multicore environments".  The physical x86 node is
replaced by a simulated substrate (CPUID/MSR/PMU/cache emulation plus
an ECM-style performance model) so every tool, API and experiment of
the paper runs deterministically on any machine; see DESIGN.md.

Public API highlights::

    from repro import create_machine, OSKernel
    from repro.core import probe_topology, render_topology
    from repro.core import LikwidPerfCtr, LikwidPin, LikwidFeatures, MarkerAPI

    machine = create_machine("westmere_ep")
    print(render_topology(probe_topology(machine)))
"""

from repro.errors import ReproError
from repro.hw.arch import available, create_machine, get_arch
from repro.hw.machine import SimMachine
from repro.oskern.scheduler import OSKernel

__version__ = "1.0.0"

__all__ = ["ReproError", "available", "create_machine", "get_arch",
           "SimMachine", "OSKernel", "__version__"]
