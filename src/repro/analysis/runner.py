"""Drives the analyzers over the whole configuration surface.

The unit of work is one architecture: its register layout and event
encodings, then every group in both catalogs — the built-in
(code-defined) family groups and the shipped ``groupfiles/<arch>``
directory.  Built-in catalogs are shared across a family, so groups
whose events an architecture lacks are skipped exactly as
:func:`~repro.core.perfctr.groups.groups_for` would skip them at
runtime; file-backed groups are per-architecture and are linted
unconditionally — there, a reference to an unavailable event is a
genuine defect (LK101), not cross-family variance.

Everything operates on :class:`~repro.hw.spec.ArchSpec` and
:class:`~repro.core.perfctr.counters.CounterMap` only — no simulated
machine, no MSR driver.
"""

from __future__ import annotations

from repro.analysis import (affinity_lint, feasibility, formula_lint,
                            journal_lint, registers_lint)
from repro.analysis.diagnostics import Diagnostic, sort_key
from repro.core.perfctr.events import EventSpec, parse_event_string
from repro.core.perfctr.groups import (GroupDef, builtin_groups_for,
                                       file_groups_for)
from repro.errors import EventError, GroupError
from repro.hw.spec import ArchSpec

lint_affinity = affinity_lint.lint_affinity


def lint_group(spec: ArchSpec, group: GroupDef,
               *, locus: str | None = None) -> list[Diagnostic]:
    """Feasibility + formula diagnostics for one group on one arch."""
    diags = feasibility.lint_events(spec, group.events,
                                    group=group.name, locus=locus)
    diags.extend(formula_lint.lint_group_formulas(spec, group, locus=locus))
    return diags


def lint_event_string(spec: ArchSpec, text: str) -> list[Diagnostic]:
    """Feasibility diagnostics for a raw EVENT:COUNTER,... string."""
    try:
        specs: list[EventSpec] = parse_event_string(text)
    except EventError as exc:
        # Unparseable strings map onto the closest catalog code.
        code = "LK103" if "assigned twice" in str(exc) else "LK101"
        from repro.analysis.diagnostics import Severity
        return [Diagnostic(code, Severity.ERROR, str(exc), arch=spec.name,
                           locus=f"events:{text}")]
    return feasibility.lint_events(spec, specs, locus=f"events:{text}")


def catalog_for(spec: ArchSpec) -> list[tuple[str, GroupDef]]:
    """(locus, group) for everything lintable on one architecture."""
    out: list[tuple[str, GroupDef]] = []
    try:
        builtin = builtin_groups_for(spec)
    except GroupError:
        builtin = {}
    for name in sorted(builtin):
        group = builtin[name]
        if all(e.event in spec.events for e in group.events):
            out.append((f"builtin:{name}", group))
    file_groups = file_groups_for(spec) or {}
    for name in sorted(file_groups):
        out.append((f"groupfile:{spec.name}/{name}.txt", file_groups[name]))
    return out


def lint_spec(spec: ArchSpec, *,
              include_write_sites: bool = True) -> list[Diagnostic]:
    """Every diagnostic for one architecture, deterministically ordered.

    The LK501 write-site and LK503 backend-bypass scans are
    source-level (arch-independent); ``lint_all`` runs them once for
    the whole matrix instead of once per architecture."""
    diags = registers_lint.lint_arch_registers(spec)
    diags.extend(journal_lint.lint_journal_coverage(spec))
    if include_write_sites:
        diags.extend(journal_lint.lint_write_sites())
        diags.extend(journal_lint.lint_backend_bypass())
    for locus, group in catalog_for(spec):
        diags.extend(lint_group(spec, group, locus=locus))
    return sorted(diags, key=sort_key)


def lint_all(arch_names: list[str] | None = None) -> list[Diagnostic]:
    """Lint the full architecture matrix (default: every known arch)."""
    from repro.hw.arch import available, get_arch
    names = arch_names if arch_names is not None else available()
    diags: list[Diagnostic] = journal_lint.lint_write_sites()
    diags.extend(journal_lint.lint_backend_bypass())
    for name in names:
        diags.extend(lint_spec(get_arch(name), include_write_sites=False))
    return sorted(diags, key=sort_key)
