"""Drives the analyzers over the whole configuration surface.

The unit of work is one architecture: its register layout and event
encodings, then every group in both catalogs — the built-in
(code-defined) family groups and the shipped ``groupfiles/<arch>``
directory.  Built-in catalogs are shared across a family, so groups
whose events an architecture lacks are skipped exactly as
:func:`~repro.core.perfctr.groups.groups_for` would skip them at
runtime; file-backed groups are per-architecture and are linted
unconditionally — there, a reference to an unavailable event is a
genuine defect (LK101), not cross-family variance.

Everything operates on :class:`~repro.hw.spec.ArchSpec` and
:class:`~repro.core.perfctr.counters.CounterMap` only — no simulated
machine, no MSR driver.
"""

from __future__ import annotations

import os
import subprocess

from repro.analysis import (affinity_lint, feasibility, formula_lint,
                            journal_lint, protocol, registers_lint)
from repro.analysis.diagnostics import Diagnostic, sort_key
from repro.core.perfctr.events import EventSpec, parse_event_string
from repro.core.perfctr.groups import (GroupDef, builtin_groups_for,
                                       file_groups_for)
from repro.errors import EventError, GroupError
from repro.hw.spec import ArchSpec

lint_affinity = affinity_lint.lint_affinity


def lint_group(spec: ArchSpec, group: GroupDef,
               *, locus: str | None = None) -> list[Diagnostic]:
    """Feasibility + formula diagnostics for one group on one arch."""
    diags = feasibility.lint_events(spec, group.events,
                                    group=group.name, locus=locus)
    diags.extend(formula_lint.lint_group_formulas(spec, group, locus=locus))
    return diags


def lint_event_string(spec: ArchSpec, text: str) -> list[Diagnostic]:
    """Feasibility diagnostics for a raw EVENT:COUNTER,... string."""
    try:
        specs: list[EventSpec] = parse_event_string(text)
    except EventError as exc:
        # Unparseable strings map onto the closest catalog code.
        code = "LK103" if "assigned twice" in str(exc) else "LK101"
        from repro.analysis.diagnostics import Severity
        return [Diagnostic(code, Severity.ERROR, str(exc), arch=spec.name,
                           locus=f"events:{text}")]
    return feasibility.lint_events(spec, specs, locus=f"events:{text}")


def catalog_for(spec: ArchSpec) -> list[tuple[str, GroupDef]]:
    """(locus, group) for everything lintable on one architecture."""
    out: list[tuple[str, GroupDef]] = []
    try:
        builtin = builtin_groups_for(spec)
    except GroupError:
        builtin = {}
    for name in sorted(builtin):
        group = builtin[name]
        if all(e.event in spec.events for e in group.events):
            out.append((f"builtin:{name}", group))
    file_groups = file_groups_for(spec) or {}
    for name in sorted(file_groups):
        out.append((f"groupfile:{spec.name}/{name}.txt", file_groups[name]))
    return out


def lint_spec(spec: ArchSpec, *,
              include_write_sites: bool = True) -> list[Diagnostic]:
    """Every diagnostic for one architecture, deterministically ordered.

    The LK501 write-site, LK503 backend-bypass and LK6xx protocol
    scans are source-level (arch-independent); ``lint_all`` runs them
    once for the whole matrix instead of once per architecture."""
    diags = registers_lint.lint_arch_registers(spec)
    diags.extend(journal_lint.lint_journal_coverage(spec))
    if include_write_sites:
        diags.extend(journal_lint.lint_write_sites())
        diags.extend(journal_lint.lint_backend_bypass())
        diags.extend(protocol.lint_protocol())
    for locus, group in catalog_for(spec):
        diags.extend(lint_group(spec, group, locus=locus))
    return sorted(diags, key=sort_key)


def lint_all(arch_names: list[str] | None = None) -> list[Diagnostic]:
    """Lint the full architecture matrix (default: every known arch)."""
    from repro.hw.arch import available, get_arch
    names = arch_names if arch_names is not None else available()
    diags: list[Diagnostic] = journal_lint.lint_write_sites()
    diags.extend(journal_lint.lint_backend_bypass())
    diags.extend(protocol.lint_protocol())
    for name in names:
        diags.extend(lint_spec(get_arch(name), include_write_sites=False))
    return sorted(diags, key=sort_key)


# -- incremental linting (`repro-lint --changed`) -----------------------------

#: Source trees whose edits can invalidate the whole config matrix —
#: a changed event table or check definition re-scopes every
#: architecture, so ``--changed`` falls back to the full run.
_MATRIX_ROOTS = ("src/repro/hw/", "src/repro/analysis/")


def changed_files(ref: str = "origin/main") -> list[str]:
    """Repo-relative paths touched vs *ref*, plus untracked files."""
    root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True).stdout.strip()
    out: set[str] = set()
    diff = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        cwd=root, capture_output=True, text=True, check=True)
    out.update(line for line in diff.stdout.splitlines() if line)
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        cwd=root, capture_output=True, text=True, check=True)
    out.update(line for line in untracked.stdout.splitlines() if line)
    return sorted(out)


def lint_changed(ref: str = "origin/main", *,
                 files: list[str] | None = None) -> list[Diagnostic]:
    """Lint only what a change set can affect.

    ``files`` (repo-relative; injectable for tests) defaults to the
    git diff against *ref* plus untracked files.  Changed Python
    sources get the source-level passes (LK501/LK503/LK6xx)
    restricted to their intersection with each pass's scope; a
    changed ``groupfiles/<arch>/<name>.txt`` gets that one group
    linted on that architecture; an edit under ``src/repro/hw`` or
    ``src/repro/analysis`` invalidates the whole matrix and falls
    back to :func:`lint_all`.  Exit semantics over the resulting
    diagnostics are identical to a full run."""
    if files is None:
        files = changed_files(ref)
    if any(f.startswith(_MATRIX_ROOTS) for f in files):
        return lint_all()
    root = os.getcwd()
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        pass
    resolved = {os.path.realpath(os.path.join(root, f)) for f in files}

    def subset(scope: list[str]) -> list[str]:
        return sorted(p for p in scope
                      if os.path.realpath(p) in resolved)

    diags: list[Diagnostic] = []
    tool = subset(journal_lint.tool_layer_sources())
    if tool:
        diags.extend(journal_lint.lint_write_sites(tool))
    cli = subset(journal_lint.cli_layer_sources())
    if cli:
        diags.extend(journal_lint.lint_backend_bypass(cli))
    proto = subset(protocol.protocol_sources())
    if proto:
        diags.extend(protocol.lint_protocol(proto))

    from repro.hw.arch import get_arch
    for f in files:
        parts = f.replace("\\", "/").split("/")
        if "groupfiles" in parts and f.endswith(".txt"):
            arch = parts[parts.index("groupfiles") + 1]
            name = os.path.splitext(parts[-1])[0]
            try:
                spec = get_arch(arch)
            except Exception:
                continue
            groups = file_groups_for(spec) or {}
            if name in groups:
                diags.extend(lint_group(
                    spec, groups[name],
                    locus=f"groupfile:{spec.name}/{name}.txt"))
    return sorted(diags, key=sort_key)
