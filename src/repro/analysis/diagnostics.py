"""Structured diagnostics for the perfctr configuration linter.

Every check in :mod:`repro.analysis` — and every runtime validator
that shares its logic (``core.perfctr.counters``) — reports problems
as :class:`Diagnostic` objects with a *stable* code, so tooling can
filter, count and assert on them, and error text can evolve without
breaking automation.

Code ranges mirror the five analyzers:

======  =====================================================
LK1xx   group/PMU feasibility (events, counters, matching)
LK2xx   metric-formula static analysis
LK3xx   register write-path / encoding checks
LK4xx   affinity and uncore socket-lock analysis
LK5xx   crash-safety: journal write-surface verification
LK6xx   protocol & resource-safety (CFG/dataflow typestate)
======  =====================================================

The full catalog with one example per code lives in
``docs/linting.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR``    the configuration cannot work (runtime would raise);
    ``WARNING``  the configuration works but is wrong or wasteful;
    ``NOTE``     informational (expected behaviour worth knowing,
                 e.g. a CPI denominator that can legitimately be 0).
    Only errors and warnings gate ``repro-lint --strict``.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


# Stable code → short title (the catalog; messages add specifics).
CODES: dict[str, str] = {
    # LK1xx — group/PMU feasibility
    "LK101": "event not defined in the architecture's event table",
    "LK102": "counter does not exist on this architecture",
    "LK103": "counter assigned more than once in a group",
    "LK104": "no conflict-free event-to-counter matching exists",
    "LK105": "group oversubscribes counters (multiplexing required)",
    "LK106": "event cannot be scheduled on any counter (multiplexing infeasible)",
    "LK107": "counter width risks overflow within a measurement window",
    "LK110": "fixed event bound to the wrong counter",
    "LK111": "options given for a fixed counter",
    "LK112": "uncore event bound to a non-uncore counter",
    "LK113": "core event bound to a non-core counter",
    "LK114": "event not countable on the selected general counter",
    # LK2xx — formula static analysis
    "LK201": "formula references an unmeasured identifier",
    "LK202": "event measured but unused by any metric",
    "LK203": "denominator is a raw counter (division-by-zero hazard)",
    "LK204": "formula does not parse",
    # LK3xx — register write-path
    "LK301": "event code exceeds the PERFEVTSEL event field width",
    "LK302": "unit mask exceeds the PERFEVTSEL umask field width",
    "LK303": "counter mask exceeds the PERFEVTSEL cmask field width",
    "LK304": "encoding touches reserved PERFEVTSEL bits",
    "LK305": "fixed-counter index outside the architectural range",
    "LK306": "counter register addresses collide",
    # LK4xx — affinity / socket locks
    "LK401": "measured threads oversubscribe a physical core",
    "LK402": "skip mask inconsistent with the core list or thread type",
    "LK403": "multiple measured threads share one uncore socket lock",
    "LK404": "invalid affinity expression or skip mask",
    # LK5xx — crash-safety / journal write surface
    "LK501": "raw MSR write bypasses the write-ahead journal API",
    "LK502": "tool-layer write target missing from the journal's "
             "state-mutating classification",
    "LK503": "CLI front-end constructs MsrDriver directly instead of "
             "using the access-backend API",
    # LK6xx — protocol & resource-safety (CFG/dataflow typestate)
    "LK601": "resource lifecycle violated on some control-flow path "
             "(leak, double-start or use-after-close)",
    "LK602": "socket-lock protocol violated (unreleased path, missing "
             "epoch on release, or removal without epoch compare)",
    "LK603": "raw device write not dominated by a journal append",
    "LK604": "inconsistent lock-acquisition order across functions "
             "(deadlock hazard)",
    "LK605": "tracer span unbalanced (never entered, or not exited "
             "on some path)",
    "LK609": "unused `# lk: disable` suppression",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verification pass.

    ``locus`` names the configuration artefact the finding is about —
    a group source (``groupfile:nehalem_ep/MEM.txt`` or
    ``builtin:MEM``), an event table (``events:amd_k8``), a register
    layout (``registers:core2``) or a pin expression
    (``affinity:0-3``).  ``column`` is the 1-based position inside a
    metric formula when the finding points at a token.
    """

    code: str
    severity: Severity
    message: str
    arch: str | None = None
    group: str | None = None
    locus: str | None = None
    column: int | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code]

    def __str__(self) -> str:
        where = ":".join(p for p in (self.arch, self.group) if p)
        prefix = f"{where}: " if where else ""
        col = f" (column {self.column})" if self.column is not None else ""
        return f"{prefix}{self.code} {self.severity.value}: {self.message}{col}"

    def to_json(self) -> dict:
        """Stable, sorted-key mapping for the JSON reporter."""
        return {
            "arch": self.arch,
            "code": self.code,
            "column": self.column,
            "group": self.group,
            "locus": self.locus,
            "message": self.message,
            "severity": self.severity.value,
            "title": self.title,
        }


def sort_key(diag: Diagnostic) -> tuple:
    """Deterministic report order: arch, locus, group, code, message."""
    return (diag.arch or "", diag.locus or "", diag.group or "",
            diag.code, diag.message)


def worst_severity(diags: list[Diagnostic]) -> Severity | None:
    for severity in (Severity.ERROR, Severity.WARNING, Severity.NOTE):
        if any(d.severity is severity for d in diags):
            return severity
    return None


def counts(diags: list[Diagnostic]) -> dict[str, int]:
    out = {"errors": 0, "warnings": 0, "notes": 0}
    for d in diags:
        if d.severity is Severity.ERROR:
            out["errors"] += 1
        elif d.severity is Severity.WARNING:
            out["warnings"] += 1
        else:
            out["notes"] += 1
    return out
