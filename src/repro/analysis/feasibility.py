"""Group/PMU feasibility analysis (LK10x, LK11x).

Answers, without touching the MSR driver: *can this event set actually
be programmed on this architecture's PMU?*  Resolution errors (unknown
events/counters, duplicates) come first; for resolvable sets the
analyzer reuses the shared assignment rules of
:mod:`repro.analysis.checks` and then asks the global question the
runtime never does — whether a conflict-free event→counter matching
exists at all, via bipartite matching over each event's feasible
counter set (Kuhn's augmenting-path algorithm).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.checks import assignment_diagnostic
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.perfctr.counters import CounterMap
from repro.core.perfctr.events import EventSpec
from repro.errors import CounterError, EventError
from repro.hw.events import CounterScope, EventDef
from repro.hw.spec import ArchSpec


def _match(feasible: list[set[int]], num_slots: int) -> int:
    """Maximum bipartite matching size: events × counter slots."""
    owner: dict[int, int] = {}   # slot -> event index

    def augment(ev: int, seen: set[int]) -> bool:
        for slot in feasible[ev]:
            if slot in seen:
                continue
            seen.add(slot)
            if slot not in owner or augment(owner[slot], seen):
                owner[slot] = ev
                return True
        return False

    matched = 0
    for ev in range(len(feasible)):
        if augment(ev, set()):
            matched += 1
    return matched


def lint_events(spec: ArchSpec, event_specs: Iterable[EventSpec],
                *, group: str | None = None,
                locus: str | None = None) -> list[Diagnostic]:
    """All feasibility diagnostics for one event set on one arch."""
    counters = CounterMap(spec)
    diags: list[Diagnostic] = []

    def diag(code: str, severity: Severity, message: str) -> None:
        diags.append(Diagnostic(code, severity, message, arch=spec.name,
                                group=group, locus=locus))

    # Schedulability is a property of the *event set*, not of the
    # counters it happens to request — so every event whose name
    # resolves takes part in the matching below, even when its
    # explicit binding was rejected.
    resolved: list[EventDef] = []
    used_counters: set[str] = set()
    for es in event_specs:
        try:
            event = spec.events.lookup(es.event)
        except EventError:
            diag("LK101", Severity.ERROR,
                 f"event {es.event!r} is not defined in the "
                 f"{spec.name} event table")
            continue
        resolved.append(event)
        try:
            counter = counters.lookup(es.counter)
        except CounterError:
            diag("LK102", Severity.ERROR,
                 f"no counter {es.counter!r} on {spec.name}")
            continue
        if es.counter in used_counters:
            diag("LK103", Severity.ERROR,
                 f"counter {es.counter} assigned twice")
        used_counters.add(es.counter)
        bad = assignment_diagnostic(event, counter, es.options,
                                    arch=spec.name, group=group, locus=locus)
        if bad is not None:
            diags.append(bad)

    for scope, slots, kind in ((CounterScope.CORE, spec.pmu.num_pmcs, "PMC"),
                               (CounterScope.UNCORE,
                                spec.pmu.num_uncore_pmcs, "UPMC")):
        gp = [ev for ev in resolved
              if ev.scope is scope and not ev.is_fixed]
        if not gp:
            continue
        feasible: list[set[int]] = []
        schedulable: list[EventDef] = []
        for ev in gp:
            if scope is CounterScope.UNCORE:
                allowed = set(range(slots))
            else:
                allowed = {i for i in range(slots) if ev.allowed_on(i)}
            if not allowed:
                diag("LK106", Severity.ERROR,
                     f"{ev.name} cannot be scheduled on any {kind} "
                     f"of {spec.name} (its counter restriction excludes "
                     "all of them); not even multiplexing can measure it")
                continue
            feasible.append(allowed)
            schedulable.append(ev)
        if len(schedulable) > slots:
            diag("LK105", Severity.WARNING,
                 f"{len(schedulable)} events compete for {slots} {kind} "
                 "counters; multiplexing is required and counts will be "
                 "extrapolated")
        elif _match(feasible, slots) < len(schedulable):
            names = ", ".join(ev.name for ev in schedulable)
            diag("LK104", Severity.ERROR,
                 f"no conflict-free counter assignment exists for "
                 f"{names}: their counter restrictions collide")
    return diags
