"""Protocol & resource-safety analysis of the measurement runtime (LK6xx).

The LK1xx–LK5xx passes verify *configuration*; this pass verifies the
*runtime's own discipline*: the protocol invariants PRs 3/5/6 rest on.
It builds a control-flow graph per function
(:mod:`repro.analysis.cfg`), runs small forward dataflow analyses
(:mod:`repro.analysis.dataflow`) over ``src/repro/oskern``,
``src/repro/core/perfctr``, ``src/repro/core/features.py`` and
``src/repro/cli``, and reports:

LK601
    Resource-lifecycle typestate.  A locally created measurement
    session (``perfctr.session(...)`` / ``PerfCtrSession(...)``), msr
    device handle (``driver.open(cpu)``) or session epoch
    (``driver.begin_epoch()``) must be stopped/closed/ended on
    **every** path out of the function — including the exception
    edges — unless it escapes (returned or stored).  Also: starting
    an already-started session, and using a handle or reading a
    session after it was closed.
LK602
    Socket-lock safety.  A lock acquired on a local lock table must
    be released on every path; a release call must pass the session
    epoch; and a release implementation that removes a lock-table
    entry must be dominated by an epoch comparison (the guard that
    keeps a reclaimed lock from being clobbered — see
    ``oskern/locks.py``).
LK603
    Journal discipline.  In journal-aware driver code, a raw device
    write (``write_msr``/``pwrite``) must be dominated by a journal
    append (``record_write``/``record_lock``/...) or by a ``journal
    is None`` guard (journaling off).  This is the CFG-strength
    version of LK501's flat write-site scan.
LK604
    Lock-acquisition order.  Each function contributes its
    acquisition sequence (lock *b* taken while *a* is held) to a
    global order graph; a cycle is a deadlock hazard between
    concurrent sessions.
LK605
    Tracer spans.  A ``span(...)`` created but never entered (a bare
    expression statement, or assigned and dropped), or entered via
    ``__enter__`` without ``__exit__`` on some path, records nothing
    or corrupts nesting.  ``with ...span(...):`` is the blessed form.

Findings can be suppressed per line with a justification comment::

    table.pop(socket)   # lk: disable=LK602 -- recovery bypasses ownership

A suppression that matches no finding is itself reported (LK609,
NOTE) so stale disables cannot accumulate; ``repro-lint
--fail-unused`` turns those notes into a failing exit for CI.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize

from repro.analysis import cfg as C
from repro.analysis.dataflow import Analysis, solve
from repro.analysis.diagnostics import Diagnostic, Severity

# -- what counts as what ------------------------------------------------------

#: attr-call ctors: method name -> resource kind (receiver rules apply)
SESSION_CTOR_ATTRS = frozenset({"session"})
SESSION_CTOR_NAMES = frozenset({"PerfCtrSession"})
HANDLE_CTOR_ATTR = "open"          # only on *driver*-named receivers
EPOCH_CTOR_ATTR = "begin_epoch"
SPAN_CTOR_NAME = "span"

SESSION_READS = frozenset({"read", "read_raw"})
ACQUIRE_METHODS = frozenset({"acquire", "acquire_socket_lock"})
RELEASE_METHODS = frozenset({"release", "release_socket_lock",
                             "force_release"})
JOURNAL_APPENDS = frozenset({"record_write", "_record_write",
                             "record_lock", "record_unlock"})
RAW_WRITE_METHODS = frozenset({"write_msr", "pwrite"})

_SUPPRESS_RE = re.compile(r"lk:\s*disable=\s*([A-Z0-9,\s]+?)"
                          r"(?:\s*(?:--|—).*)?$", re.IGNORECASE)

# Per-file analysis cache: path -> (mtime_ns, size, payload).
_CACHE: dict[str, tuple[int, int, tuple]] = {}


def protocol_sources() -> list[str]:
    """The sources bound by the protocol invariants: the os-kernel
    layer, the perfctr tool layer (incl. likwid-features), the
    concurrent-session server and every CLI front-end."""
    import repro
    base = os.path.dirname(repro.__file__)
    roots = [os.path.join(base, "oskern"),
             os.path.join(base, "core", "perfctr"),
             os.path.join(base, "core", "features.py"),
             os.path.join(base, "server"),
             os.path.join(base, "cli")]
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirs, names in os.walk(root):
            files.extend(os.path.join(dirpath, name)
                         for name in names if name.endswith(".py"))
    return sorted(files)


# -- tiny AST helpers ---------------------------------------------------------

def _expr_text(expr: ast.AST) -> str:
    """Dotted text of a Name/Attribute chain ('' when not one)."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return ""


def _attr_call(call: ast.Call) -> tuple[str, ast.AST] | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr, call.func.value
    return None


def _walk_no_nested(root: ast.AST):
    """ast.walk, but do not descend into nested function scopes —
    their bodies are separate CFGs with their own analysis."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _mentions(expr: ast.AST, ident: str) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == ident:
            return True
        if isinstance(node, ast.Attribute) and node.attr == ident:
            return True
    return False


def _is_span_ctor(call: ast.Call) -> bool:
    func = call.func
    return (isinstance(func, ast.Name) and func.id == SPAN_CTOR_NAME) or \
        (isinstance(func, ast.Attribute) and func.attr == SPAN_CTOR_NAME)


def _ctor_kind(call: ast.Call) -> str | None:
    """The resource kind a call constructs, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in SESSION_CTOR_NAMES:
            return "session"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in SESSION_CTOR_ATTRS:
        return "session"
    if func.attr == EPOCH_CTOR_ATTR:
        return "epoch"
    if func.attr == HANDLE_CTOR_ATTR:
        # Only driver handles: plain file I/O (os.open, path.open)
        # has its own linters.
        recv = _expr_text(func.value)
        if recv.lower().endswith("driver"):
            return "handle"
    if _is_span_ctor(call):
        return "span"
    return None


def _lock_key(call: ast.Call) -> str:
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Constant):
            return repr(arg.value)
        text = _expr_text(arg)
        if text:
            return text
    return "?"


_INITIAL = {"session": "new", "handle": "open", "epoch": "open",
            "span": "pending"}
_WITH_ENTER_STATE = {"session": "active", "handle": "open",
                     "span": "entered"}
_WITH_EXIT_STATE = {"session": "closed", "handle": "closed",
                    "span": "done"}
_LEAK_STATE = {"session": "active", "handle": "open", "epoch": "open"}
_LEAK_WHAT = {
    "session": "session is still started",
    "handle": "msr handle is still open",
    "epoch": "session epoch is still open",
}


# -- per-function syntactic summary -------------------------------------------

class _FuncInfo:
    """Everything the dataflow passes need to know about one function
    before running: which locals are tracked resources, which escape,
    where things were created (for anchoring findings)."""

    def __init__(self, qualname: str, node):
        self.qualname = qualname
        self.node = node
        self.kinds: dict[str, str] = {}       # var -> resource kind
        self.origins: dict[str, int] = {}     # var -> ctor lineno
        self.escaped: set[str] = set()
        self.lock_origins: dict[tuple[str, str], int] = {}
        self._collect()

    def _collect(self) -> None:
        body = self.node.body if not isinstance(self.node, ast.Lambda) \
            else [self.node.body]
        conflicted: set[str] = set()
        for stmt in body if isinstance(body, list) else [body]:
            for sub in _walk_no_nested(stmt):
                self._see(sub, conflicted)
        for var in conflicted:
            self.kinds.pop(var, None)

    def _see(self, node: ast.AST, conflicted: set[str]) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                kind = _ctor_kind(node.value)
                if kind is not None:
                    var = targets[0].id
                    if self.kinds.get(var, kind) != kind:
                        conflicted.add(var)
                    self.kinds[var] = kind
                    self.origins.setdefault(var, node.value.lineno)
            # Stores into attributes/subscripts/tuples publish the
            # value; aliasing one name to another does too.
            if any(not isinstance(t, ast.Name) for t in targets) \
                    or isinstance(node.value, ast.Name):
                self._escape_value(node.value)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._escape_value(node.value)
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            self._escape_value(node)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            self.escaped.update(node.names)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            # A closure can do anything with what it captures.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    self.escaped.add(sub.id)
        elif isinstance(node, ast.withitem):
            if isinstance(node.context_expr, ast.Call) \
                    and node.optional_vars is not None \
                    and isinstance(node.optional_vars, ast.Name):
                kind = _ctor_kind(node.context_expr)
                if kind is not None:
                    var = node.optional_vars.id
                    if self.kinds.get(var, kind) != kind:
                        conflicted.add(var)
                    self.kinds[var] = kind
                    self.origins.setdefault(
                        var, node.context_expr.lineno)
        elif isinstance(node, ast.Call):
            info = _attr_call(node)
            if info is not None and info[0] in ACQUIRE_METHODS:
                recv = _expr_text(info[1])
                if recv:
                    key = (recv, _lock_key(node))
                    self.lock_origins.setdefault(key, node.lineno)
        # Nested scopes escape their captures, but the outer scope
        # also escapes names it passes into nested defs via defaults.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in node.args.defaults + node.args.kw_defaults:
                if default is not None:
                    self._escape_names(default)

    def _escape_names(self, expr: ast.AST) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                self.escaped.add(sub.id)

    def _escape_value(self, expr: ast.AST) -> None:
        """Escape only *value-position* names: ``return session``
        publishes the session, ``return session.read()`` publishes
        the read result, not the session."""
        if isinstance(expr, ast.Name):
            self.escaped.add(expr.id)
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._escape_value(elt)
        elif isinstance(expr, ast.Dict):
            for sub in list(expr.keys) + list(expr.values):
                if sub is not None:
                    self._escape_value(sub)
        elif isinstance(expr, ast.Starred):
            self._escape_value(expr.value)
        elif isinstance(expr, ast.IfExp):
            self._escape_value(expr.body)
            self._escape_value(expr.orelse)
        elif isinstance(expr, ast.Await):
            self._escape_value(expr.value)
        elif isinstance(expr, ast.NamedExpr):
            self._escape_value(expr.value)

    def tracked(self, var: str) -> bool:
        return var in self.kinds and var not in self.escaped

    def local_lock(self, recv: str) -> bool:
        """A lock receiver whose lifetime is this function's: a bare
        local name that does not escape."""
        return "." not in recv and recv not in self.escaped \
            and recv != "self"


# -- the may-typestate analysis -----------------------------------------------

class _Typestate(Analysis):
    """May-analysis: per tracked variable (and per (receiver, key)
    lock), the set of states it can be in at each point."""

    def __init__(self, info: _FuncInfo):
        self.info = info

    def initial(self):
        return ()

    def join(self, a, b):
        merged = dict(a)
        for key, states in b:
            merged[key] = merged.get(key, frozenset()) | states
        return tuple(sorted(merged.items()))

    # transfer helpers ------------------------------------------------------

    def _events(self, node: C.Node):
        """(op, *payload) events of one CFG node, in syntactic order."""
        events = []
        info = self.info
        if node.kind in (C.WITH_ENTER, C.WITH_EXIT):
            item = node.payload
            ctx = item.context_expr
            state_map = _WITH_ENTER_STATE if node.kind == C.WITH_ENTER \
                else _WITH_EXIT_STATE
            if isinstance(ctx, ast.Name) and info.tracked(ctx.id):
                events.append(("set", ctx.id, state_map))
            elif isinstance(ctx, ast.Call) and item.optional_vars is not None \
                    and isinstance(item.optional_vars, ast.Name):
                var = item.optional_vars.id
                if info.tracked(var):
                    if node.kind == C.WITH_ENTER:
                        events.append(("bind_entered", var))
                    else:
                        events.append(("set", var, state_map))
            return events
        if node.kind == C.HANDLER:
            handler = node.stmt
            if handler.name:
                events.append(("kill", handler.name))
            return events
        if node.kind == C.LOOP_ITER:
            for sub in ast.walk(node.stmt.target):
                if isinstance(sub, ast.Name):
                    events.append(("kill", sub.id))
            return events
        stmt = node.stmt
        if stmt is None:
            return events
        for sub in _walk_no_nested(stmt):
            if isinstance(sub, ast.Call):
                events.extend(self._call_events(sub))
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            var = stmt.targets[0].id
            if isinstance(stmt.value, ast.Call) \
                    and _ctor_kind(stmt.value) is not None \
                    and info.tracked(var):
                events.append(("bind", var))
            else:
                events.append(("kill", var))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)) \
                and isinstance(stmt.target, ast.Name):
            events.append(("kill", stmt.target.id))
        return events

    def _call_events(self, call: ast.Call):
        events = []
        info = self.info
        attr = _attr_call(call)
        if attr is not None:
            method, recv = attr
            recv_text = _expr_text(recv)
            if isinstance(recv, ast.Name) and info.tracked(recv.id):
                events.append(("method", recv.id, method, call))
            if method in ACQUIRE_METHODS and recv_text:
                events.append(("acquire", recv_text, _lock_key(call), call))
            elif method in RELEASE_METHODS and recv_text:
                events.append(("release", recv_text, _lock_key(call)))
            elif method == "end_epoch":
                for arg in call.args:
                    if isinstance(arg, ast.Name) and info.tracked(arg.id) \
                            and info.kinds[arg.id] == "epoch":
                        events.append(("end_epoch", arg.id))
        for arg in call.args:
            if isinstance(arg, ast.Name) and info.tracked(arg.id):
                events.append(("argpass", arg.id, call))
        return events

    def transfer(self, node: C.Node, fact):
        return self._apply(node, fact, teardown_only=False)

    def exc_transfer(self, node: C.Node, fact):
        # A raising statement's constructive effects (binding a
        # resource, acquiring a lock) did not happen, but its teardown
        # effects are kept: a close()/release() that raises has still
        # relinquished the resource for our purposes.
        return self._apply(node, fact, teardown_only=True)

    _TEARDOWN_METHODS = frozenset({"stop", "close", "__exit__"})

    def _apply(self, node: C.Node, fact, *, teardown_only: bool):
        events = self._events(node)
        if not events:
            return fact
        state = dict(fact)
        info = self.info
        for event in events:
            op = event[0]
            if teardown_only and not self._is_teardown(event):
                continue
            if op == "bind":
                var = event[1]
                state[("v", var)] = frozenset(
                    {_INITIAL[info.kinds[var]]})
            elif op == "bind_entered":
                var = event[1]
                state[("v", var)] = frozenset(
                    {_WITH_ENTER_STATE.get(info.kinds[var], "open")})
            elif op == "kill":
                state.pop(("v", event[1]), None)
            elif op == "set":
                var, state_map = event[1], event[2]
                kind = info.kinds.get(var)
                if kind in state_map and ("v", var) in state:
                    state[("v", var)] = frozenset({state_map[kind]})
            elif op == "method":
                var, method = event[1], event[2]
                kind = info.kinds[var]
                key = ("v", var)
                if key not in state:
                    continue
                if kind == "session":
                    if method == "start":
                        state[key] = frozenset({"active"})
                    elif method == "stop":
                        state[key] = frozenset({"stopped"})
                    elif method == "close":
                        state[key] = frozenset({"closed"})
                elif kind == "handle" and method == "close":
                    state[key] = frozenset({"closed"})
                elif kind == "span":
                    if method == "__enter__":
                        state[key] = frozenset({"entered"})
                    elif method == "__exit__":
                        state[key] = frozenset({"done"})
            elif op == "end_epoch":
                key = ("v", event[1])
                if key in state:
                    state[key] = frozenset({"done"})
            elif op == "acquire":
                state[("lock", event[1], event[2])] = frozenset({"held"})
            elif op == "release":
                key = ("lock", event[1], event[2])
                if key in state:
                    state[key] = frozenset({"released"})
        return tuple(sorted(state.items()))

    def _is_teardown(self, event) -> bool:
        op = event[0]
        if op in ("end_epoch", "release"):
            return True
        if op == "set":
            return event[2] is _WITH_EXIT_STATE
        if op == "method":
            return event[2] in self._TEARDOWN_METHODS
        return False


# -- must-analyses ------------------------------------------------------------

class _MustFact(Analysis):
    """Boolean must-fact: True only when every path established it."""

    def __init__(self, establishes, refines=None):
        self._establishes = establishes      # Node -> bool
        self._refines = refines              # (test, value) -> bool

    def initial(self):
        return False

    def join(self, a, b):
        return a and b

    def transfer(self, node, fact):
        if self._establishes(node):
            return True
        return fact

    def refine(self, fact, label):
        if label is not None and label[0] == "cond" \
                and self._refines is not None:
            if self._refines(label[1], label[2]):
                return True
        return fact


def _establishes_journal(node: C.Node) -> bool:
    if node.stmt is None:
        return False
    for sub in _walk_no_nested(node.stmt):
        if isinstance(sub, ast.Call):
            attr = _attr_call(sub)
            if attr is not None and attr[0] in JOURNAL_APPENDS:
                return True
            if isinstance(sub.func, ast.Name) \
                    and sub.func.id in JOURNAL_APPENDS:
                return True
    return False


def _journal_none_refine(test: ast.AST, value: bool) -> bool:
    """True when this branch outcome proves the journal is absent
    (journaling off — raw writes are then legitimate)."""
    for sub in ast.walk(test):
        if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
            continue
        if not isinstance(sub.comparators[0], ast.Constant) \
                or sub.comparators[0].value is not None:
            continue
        if not _mentions(sub.left, "journal"):
            continue
        if isinstance(sub.ops[0], ast.Is) and value:
            return True
        if isinstance(sub.ops[0], ast.IsNot) and not value:
            return True
    return False


def _establishes_epoch_check(node: C.Node) -> bool:
    if node.stmt is None:
        return False
    for sub in _walk_no_nested(node.stmt):
        if isinstance(sub, ast.Compare) and (
                _mentions(sub.left, "epoch")
                or any(_mentions(c, "epoch") for c in sub.comparators)):
            return True
    return False


# -- per-file pass ------------------------------------------------------------

class _Finding:
    """A raw finding before suppression filtering."""

    __slots__ = ("code", "severity", "message", "line")

    def __init__(self, code: str, severity: Severity, message: str,
                 line: int):
        self.code = code
        self.severity = severity
        self.message = message
        self.line = line


def _collect_functions(tree: ast.Module):
    """(qualname, node) for every function, method and lambda."""
    out = []

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.Lambda):
                out.append((f"{prefix}<lambda:{child.lineno}>", child))
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def _suppressions(source: str) -> dict[int, set[str]]:
    """line -> suppressed codes, from ``# lk: disable=...`` comments."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string.lstrip("#").strip())
            if match is None:
                continue
            codes = {c.strip().upper()
                     for c in match.group(1).split(",") if c.strip()}
            out.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return out


def _function_findings(qualname: str, func) \
        -> tuple[list[_Finding], list[tuple]]:
    """All LK6xx findings of one function plus its lock-order edges
    ((held, acquired, qualname, lineno), ...)."""
    findings: list[_Finding] = []
    edges: list[tuple] = []
    info = _FuncInfo(qualname, func)
    graph = C.build_cfg(func, qualname)
    ts = _Typestate(info)
    facts = solve(graph, ts)
    seen: set[tuple] = set()

    def emit(code, severity, message, line):
        key = (code, message, line)
        if key not in seen:
            seen.add(key)
            findings.append(_Finding(code, severity, message, line))

    for node in graph.real_nodes():
        if node.nid not in facts:
            continue
        state = dict(facts[node.nid])
        for event in ts._events(node):
            op = event[0]
            if op == "method":
                var, method, call = event[1], event[2], event[3]
                kind = info.kinds[var]
                states = state.get(("v", var), frozenset())
                if kind == "session":
                    if method == "start" and "active" in states:
                        emit("LK601", Severity.ERROR,
                             f"{qualname} may start session {var!r} "
                             f"twice (already started on some path "
                             f"reaching line {call.lineno})",
                             call.lineno)
                    elif method in SESSION_READS and "closed" in states:
                        emit("LK601", Severity.ERROR,
                             f"{qualname} reads session {var!r} after "
                             f"it was closed on some path",
                             call.lineno)
                elif kind == "handle" and method != "close" \
                        and "closed" in states:
                    emit("LK601", Severity.ERROR,
                         f"{qualname} uses msr handle {var!r} "
                         f"(.{method}) after close on some path",
                         call.lineno)
            elif op == "argpass":
                var, call = event[1], event[2]
                if info.kinds[var] == "handle" \
                        and "closed" in state.get(("v", var), frozenset()):
                    emit("LK601", Severity.ERROR,
                         f"{qualname} passes msr handle {var!r} to a "
                         f"call after close on some path", call.lineno)
            elif op == "acquire":
                recv, key, call = event[1], event[2], event[3]
                held = [k for k, states in state.items()
                        if k[0] == "lock" and "held" in states
                        and (k[1], k[2]) != (recv, key)]
                for k in sorted(held):
                    edges.append(((k[1], k[2]), (recv, key),
                                  qualname, call.lineno))
        # Bare ctor expression statements: created and dropped.
        if node.kind == C.STMT and isinstance(node.stmt, ast.Expr) \
                and isinstance(node.stmt.value, ast.Call):
            kind = _ctor_kind(node.stmt.value)
            if kind == "span":
                emit("LK605", Severity.WARNING,
                     f"{qualname} creates a tracer span and never "
                     f"enters it (use `with ...span(...):`)",
                     node.stmt.lineno)
            elif kind == "handle":
                emit("LK601", Severity.ERROR,
                     f"{qualname} opens an msr handle and discards it "
                     f"without closing", node.stmt.lineno)

    # Exit-state checks: leaks on the normal and exceptional exits.
    for exit_nid, how in ((graph.exit, "a normal exit"),
                          (graph.exc_exit, "an exception path")):
        if exit_nid not in facts:
            continue
        for key, states in dict(facts[exit_nid]).items():
            if key[0] == "v":
                var = key[1]
                kind = info.kinds[var]
                line = info.origins.get(var, info.node.lineno)
                if kind == "span":
                    # "never entered" is only a defect on the normal
                    # exit: a pending span on the exception path just
                    # means __enter__ itself raised.
                    if "pending" in states and exit_nid == graph.exit:
                        emit("LK605", Severity.WARNING,
                             f"{qualname} assigns tracer span {var!r} "
                             f"but never enters it", line)
                    elif "entered" in states:
                        emit("LK605", Severity.WARNING,
                             f"{qualname} enters tracer span {var!r} "
                             f"but does not exit it on {how}", line)
                elif _LEAK_STATE.get(kind) in states:
                    emit("LK601", Severity.ERROR,
                         f"{qualname}: {_LEAK_WHAT[kind]} ({var!r}) "
                         f"when the function leaves via {how}", line)
            elif key[0] == "lock" and "held" in states:
                recv, lkey = key[1], key[2]
                if info.local_lock(recv):
                    line = info.lock_origins.get(
                        (recv, lkey), info.node.lineno)
                    emit("LK602", Severity.ERROR,
                         f"{qualname}: socket lock {recv}[{lkey}] "
                         f"acquired but not released on {how}", line)

    # LK602: release calls must carry the epoch.
    for sub in _walk_no_nested(func):
        if not isinstance(sub, ast.Call):
            continue
        attr = _attr_call(sub)
        if attr is None:
            continue
        method, recv = attr
        recv_text = _expr_text(recv)
        kwnames = {kw.arg for kw in sub.keywords}
        if method == "release_socket_lock":
            if len(sub.args) < 2 and "epoch" not in kwnames:
                emit("LK602", Severity.ERROR,
                     f"{qualname} releases a socket lock without the "
                     f"session epoch; a reclaimed lock would be "
                     f"clobbered", sub.lineno)
        elif method == "release" and "lock" in recv_text.lower():
            if len(sub.args) < 3 and "epoch" not in kwnames:
                emit("LK602", Severity.ERROR,
                     f"{qualname} calls {recv_text}.release() without "
                     f"the session epoch; release must compare "
                     f"pid and epoch", sub.lineno)

    # LK602: an epoch-aware release implementation must compare the
    # epoch before removing a lock entry.
    args = getattr(func, "args", None)
    has_epoch_param = args is not None and any(
        a.arg == "epoch" for a in args.args + args.kwonlyargs)
    if has_epoch_param:
        must = solve(graph, _MustFact(_establishes_epoch_check))
        for node in graph.real_nodes():
            if node.nid not in facts or node.stmt is None:
                continue
            removal = None
            for sub in _walk_no_nested(node.stmt):
                if isinstance(sub, ast.Delete):
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Subscript) and \
                                "lock" in _expr_text(tgt.value).lower():
                            removal = sub
                elif isinstance(sub, ast.Call):
                    attr = _attr_call(sub)
                    if attr is not None and attr[0] == "pop" and \
                            "lock" in _expr_text(attr[1]).lower():
                        removal = sub
            if removal is not None and not must.get(node.nid, False):
                emit("LK602", Severity.ERROR,
                     f"{qualname} removes a socket-lock entry without "
                     f"first comparing the session epoch (a reclaimed "
                     f"lock could be clobbered)", node.stmt.lineno)

    # LK603: journal-aware code must dominate raw writes with an
    # append (or a `journal is None` guard).
    if _mentions(func, "journal"):
        must = None
        for node in graph.real_nodes():
            if node.stmt is None or node.nid not in facts:
                continue
            for sub in _walk_no_nested(node.stmt):
                if not isinstance(sub, ast.Call):
                    continue
                attr = _attr_call(sub)
                if attr is None or attr[0] not in RAW_WRITE_METHODS:
                    continue
                if must is None:
                    must = solve(graph, _MustFact(
                        _establishes_journal, _journal_none_refine))
                if not must.get(node.nid, False):
                    emit("LK603", Severity.ERROR,
                         f"{qualname} writes a device register "
                         f"(.{attr[0]}) on a path with no preceding "
                         f"journal append and no `journal is None` "
                         f"guard; a crash there is invisible to "
                         f"recovery", sub.lineno)
    return findings, edges


def _analyze_file(path: str) -> tuple[list[_Finding], list[tuple],
                                      dict[int, set[str]]]:
    try:
        stat = os.stat(path)
        cached = _CACHE.get(path)
        if cached is not None and cached[0] == stat.st_mtime_ns \
                and cached[1] == stat.st_size:
            return cached[2]
    except OSError:
        stat = None
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    findings: list[_Finding] = []
    edges: list[tuple] = []
    for qualname, func in _collect_functions(tree):
        f, e = _function_findings(qualname, func)
        findings.extend(f)
        edges.extend(e)
    payload = (findings, edges, _suppressions(source))
    if stat is not None:
        _CACHE[path] = (stat.st_mtime_ns, stat.st_size, payload)
    return payload


# -- lock-order graph (LK604) -------------------------------------------------

def _lock_order_findings(all_edges: dict[str, list[tuple]]) \
        -> list[tuple[str, _Finding]]:
    """Cycles in the union acquisition-order graph.  Returns
    (module, finding) pairs anchored at one contributing edge."""
    # node: "recv[key]"; edge annotated with (module, qualname, line).
    graph: dict[str, dict[str, tuple]] = {}
    for module, edges in sorted(all_edges.items()):
        for held, acquired, qualname, line in edges:
            a = f"{held[0]}[{held[1]}]"
            b = f"{acquired[0]}[{acquired[1]}]"
            if a == b:
                continue        # re-entrant same-lock acquire
            graph.setdefault(a, {}).setdefault(b, (module, qualname, line))
            graph.setdefault(b, {})

    findings: list[tuple[str, _Finding]] = []
    # Find cycles with a colored DFS; report each cycle once, at its
    # lexicographically first edge.
    seen_cycles: set[frozenset] = set()

    def dfs(start):
        stack = [(start, iter(sorted(graph.get(start, {}))))]
        on_path = [start]
        on_set = {start}
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt in on_set:
                    cycle = on_path[on_path.index(nxt):]
                    key = frozenset(cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        _report(cycle)
                    continue
                if (node, nxt) in visited_edges:
                    continue
                visited_edges.add((node, nxt))
                stack.append((nxt, iter(sorted(graph.get(nxt, {})))))
                on_path.append(nxt)
                on_set.add(nxt)
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_set.discard(on_path.pop())

    def _report(cycle):
        steps = []
        first = None
        for i, a in enumerate(cycle):
            b = cycle[(i + 1) % len(cycle)]
            module, qualname, line = graph[a][b]
            steps.append(f"{b} after {a} in {qualname} "
                         f"({module}:{line})")
            if first is None:
                first = (module, line)
        module, line = first
        findings.append((module, _Finding(
            "LK604", Severity.WARNING,
            "inconsistent lock-acquisition order (deadlock hazard): "
            + "; ".join(steps), line)))

    visited_edges: set[tuple] = set()
    for start in sorted(graph):
        dfs(start)
    return findings


# -- public entry point -------------------------------------------------------

def lint_protocol(paths: list[str] | None = None) -> list[Diagnostic]:
    """Run the LK6xx protocol passes; ``paths`` overrides the default
    source set (fixture tests, ``--changed``)."""
    files = paths if paths is not None else protocol_sources()
    per_file: dict[str, tuple[list[_Finding], dict[int, set[str]]]] = {}
    all_edges: dict[str, list[tuple]] = {}
    for path in files:
        findings, edges, suppressions = _analyze_file(path)
        module = os.path.basename(path)
        per_file.setdefault(module, ([], {}))
        per_file[module][0].extend(findings)
        for line, codes in suppressions.items():
            per_file[module][1].setdefault(line, set()).update(codes)
        if edges:
            all_edges.setdefault(module, []).extend(edges)

    for module, finding in _lock_order_findings(all_edges):
        per_file.setdefault(module, ([], {}))
        per_file[module][0].append(finding)

    diags: list[Diagnostic] = []
    for module in sorted(per_file):
        findings, suppressions = per_file[module]
        used: set[tuple[int, str]] = set()
        for f in findings:
            if f.code in suppressions.get(f.line, ()):
                used.add((f.line, f.code))
                continue
            diags.append(Diagnostic(
                f.code, f.severity, f.message,
                locus=f"source:{module}:{f.line}"))
        for line in sorted(suppressions):
            for code in sorted(suppressions[line]):
                if (line, code) not in used:
                    diags.append(Diagnostic(
                        "LK609", Severity.NOTE,
                        f"suppression `# lk: disable={code}` on "
                        f"{module}:{line} matched no finding; remove "
                        f"it or fix the rot",
                        locus=f"source:{module}:{line}"))
    return diags


def clear_cache() -> None:
    """Drop the per-file result cache (benchmarks, tests)."""
    _CACHE.clear()
