"""Register write-path analysis (LK30x, LK107).

Statically verifies that every event an architecture defines can be
encoded into its PERFEVTSEL registers without silent truncation or
touching reserved bits (reusing the shared encoding rules of
:mod:`repro.analysis.checks`), that the declared counter register
addresses never collide, and that the declared counter width cannot
overflow within a realistic measurement window.
"""

from __future__ import annotations

from repro.analysis.checks import encoding_diagnostics, overflow_diagnostic
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.hw import registers as regs
from repro.hw.spec import ArchSpec


def _register_layout(spec: ArchSpec) -> dict[str, int]:
    """Name → MSR address of every counter-related register the
    architecture declares (mirrors CorePMU/UncorePMU declarations)."""
    pmu = spec.pmu
    layout: dict[str, int] = {}
    for i in range(pmu.num_pmcs):
        layout[f"PERFEVTSEL{i}"] = pmu.evtsel_address(i)
        layout[f"PMC{i}"] = pmu.pmc_address(i)
    if pmu.has_fixed:
        for i in range(regs.NUM_FIXED_CTRS):
            layout[f"FIXED_CTR{i}"] = regs.IA32_FIXED_CTR0 + i
        layout["FIXED_CTR_CTRL"] = regs.IA32_FIXED_CTR_CTRL
    if pmu.has_global_ctrl:
        layout["PERF_GLOBAL_CTRL"] = pmu.global_ctrl_address()
    if pmu.has_global_status:
        layout["PERF_GLOBAL_STATUS"] = regs.IA32_PERF_GLOBAL_STATUS
        layout["PERF_GLOBAL_OVF_CTRL"] = regs.IA32_PERF_GLOBAL_OVF_CTRL
    if pmu.has_uncore:
        layout["UNCORE_PERF_GLOBAL_CTRL"] = regs.MSR_UNCORE_PERF_GLOBAL_CTRL
        for i in range(pmu.num_uncore_pmcs):
            layout[f"UNCORE_PERFEVTSEL{i}"] = regs.MSR_UNCORE_PERFEVTSEL0 + i
            layout[f"UNCORE_PMC{i}"] = regs.MSR_UNCORE_PMC0 + i
    if pmu.has_uncore_fixed:
        layout["UNCORE_FIXED_CTR0"] = regs.MSR_UNCORE_FIXED_CTR0
        layout["UNCORE_FIXED_CTR_CTRL"] = regs.MSR_UNCORE_FIXED_CTR_CTRL
    return layout


def lint_arch_registers(spec: ArchSpec) -> list[Diagnostic]:
    """All write-path diagnostics for one architecture."""
    locus = f"registers:{spec.name}"
    diags: list[Diagnostic] = []
    for name in spec.events.names():
        event = spec.events.lookup(name)
        diags.extend(encoding_diagnostics(event, spec.pmu, arch=spec.name,
                                          locus=f"events:{spec.name}"))
    by_addr: dict[int, list[str]] = {}
    for reg_name, addr in _register_layout(spec).items():
        by_addr.setdefault(addr, []).append(reg_name)
    for addr, names in sorted(by_addr.items()):
        if len(names) > 1:
            diags.append(Diagnostic(
                "LK306", Severity.ERROR,
                f"registers {', '.join(sorted(names))} all resolve to "
                f"MSR 0x{addr:X}; a write to one clobbers the others",
                arch=spec.name, locus=locus))
    hazard = overflow_diagnostic(spec.pmu, spec.clock_hz, arch=spec.name)
    if hazard is not None:
        diags.append(hazard)
    return diags
