"""Crash-safety write-surface analysis (LK50x).

The write-ahead journal (:mod:`repro.oskern.journal`) can only make
crashes recoverable if two invariants hold, and both are statically
checkable:

* **LK501** — every MSR write in the tool layer (``core/perfctr`` and
  ``core/features``) goes through the journaling driver API
  (``MsrFile.journaled_write``).  A raw ``write_msr``/``pwrite`` call
  site would mutate state the journal never saw, so recovery could
  not undo it.  Checked by walking the AST of the tool-layer sources
  — no imports, no execution.
* **LK502** — the journal's per-architecture state-mutating register
  classification (:func:`~repro.oskern.journal.state_mutating_addresses`)
  covers every register the tool layer writes on that architecture.
  An uncovered register would make ``journaled_write`` refuse at
  runtime.  Checked by deriving the programmer's write surface from
  the architecture's declared register layout and comparing.
* **LK503** — the CLI front-ends (``src/repro/cli``) obtain counter
  access through :func:`repro.oskern.access.open_backend` rather than
  constructing :class:`~repro.oskern.msr_driver.MsrDriver` themselves.
  A direct construction bypasses the backend API (``--access-mode``
  would silently not apply) the same way a raw write bypasses the
  journal; the AST scan mirrors LK501.
"""

from __future__ import annotations

import ast
import os

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registers_lint import _register_layout
from repro.hw import registers as regs
from repro.hw.spec import ArchSpec
from repro.oskern.journal import state_mutating_addresses

#: Method names that bypass the journal when called from tool code.
RAW_WRITERS = ("write_msr", "pwrite")

#: Registers in the declared layout the tool layer only ever reads.
_READ_ONLY = frozenset({"PERF_GLOBAL_STATUS"})


def tool_layer_sources() -> list[str]:
    """The source files bound by the journaled-write invariant: the
    perfctr programming layer and likwid-features."""
    import repro
    base = os.path.dirname(repro.__file__)
    roots = [os.path.join(base, "core", "perfctr"),
             os.path.join(base, "core", "features.py")]
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _dirs, names in os.walk(root):
            files.extend(os.path.join(dirpath, name)
                         for name in names if name.endswith(".py"))
    return sorted(files)


def _alias_names(tree: ast.Module, targets: frozenset[str]) -> set[str]:
    """Local names bound to any of *targets* — via ``from x import y
    as z`` or plain rebinding (``w = msr.write_msr``; ``D =
    MsrDriver``), including chains (``E = D``).  A bare-name scan
    alone misses all of these."""
    aliases: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            bound: str | None = None
            value: str | None = None
            if isinstance(node, ast.ImportFrom):
                for entry in node.names:
                    if entry.name in targets:
                        local = entry.asname or entry.name
                        if local not in aliases:
                            aliases.add(local)
                            changed = True
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                bound = node.targets[0].id
                if isinstance(node.value, ast.Name):
                    value = node.value.id
                elif isinstance(node.value, ast.Attribute):
                    value = node.value.attr
            if bound is not None and value is not None \
                    and (value in targets or value in aliases) \
                    and bound not in aliases:
                aliases.add(bound)
                changed = True
    return aliases


def lint_write_sites(paths: list[str] | None = None) -> list[Diagnostic]:
    """LK501: find raw MSR write call sites in the tool layer.

    Catches attribute calls (``msr.write_msr(...)``), calls through a
    locally rebound method (``w = msr.write_msr; w(...)``) and calls
    through an aliased import.  ``paths`` overrides the default
    tool-layer file set (used by the self-check tests to lint fixture
    sources)."""
    raw = frozenset(RAW_WRITERS)
    diags: list[Diagnostic] = []
    for path in (paths if paths is not None else tool_layer_sources()):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        module = os.path.basename(path)
        tree = ast.parse(source, filename=path)
        aliases = _alias_names(tree, raw)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in raw:
                called = node.func.attr
            elif isinstance(node.func, ast.Name) \
                    and node.func.id in (raw | aliases):
                called = node.func.id
            else:
                continue
            diags.append(Diagnostic(
                "LK501", Severity.ERROR,
                f"{module}:{node.lineno} calls .{called}() "
                f"directly; state-mutating writes must go through "
                f"MsrFile.journaled_write() so a crashed run stays "
                f"recoverable",
                locus=f"source:{module}:{node.lineno}"))
    return diags


def cli_layer_sources() -> list[str]:
    """The source files bound by the backend-API invariant: every
    likwid-* front-end plus their shared plumbing."""
    import repro
    base = os.path.dirname(repro.__file__)
    root = os.path.join(base, "cli")
    files: list[str] = []
    for dirpath, _dirs, names in os.walk(root):
        files.extend(os.path.join(dirpath, name)
                     for name in names if name.endswith(".py"))
    return sorted(files)


def lint_backend_bypass(paths: list[str] | None = None) -> list[Diagnostic]:
    """LK503: find direct ``MsrDriver(...)`` construction in the CLI
    layer.

    Catches direct construction, construction through an aliased
    import (``from ... import MsrDriver as D; D(...)``) and through a
    rebound name (``cls = MsrDriver; cls(...)``).  ``paths`` overrides
    the default CLI-layer file set (used by the self-check tests to
    lint fixture sources)."""
    diags: list[Diagnostic] = []
    for path in (paths if paths is not None else cli_layer_sources()):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        module = os.path.basename(path)
        tree = ast.parse(source, filename=path)
        aliases = _alias_names(tree, frozenset({"MsrDriver"}))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            if name != "MsrDriver" and name not in aliases:
                continue
            diags.append(Diagnostic(
                "LK503", Severity.ERROR,
                f"{module}:{node.lineno} constructs MsrDriver() "
                f"directly; tool front-ends must obtain counter access "
                f"through repro.oskern.access.open_backend() so "
                f"--access-mode applies uniformly",
                locus=f"source:{module}:{node.lineno}"))
    return diags


def programmer_write_surface(spec: ArchSpec) -> dict[int, str]:
    """Address → register name of everything the tool layer may write
    on one architecture: the declared counter-register layout minus
    its read-only members, plus ``IA32_MISC_ENABLE`` where
    likwid-features applies."""
    surface = {addr: name
               for name, addr in _register_layout(spec).items()
               if name not in _READ_ONLY}
    if spec.has_misc_enable:
        surface[regs.IA32_MISC_ENABLE] = "MISC_ENABLE"
    return surface


def lint_journal_coverage(spec: ArchSpec) -> list[Diagnostic]:
    """LK502: the journal classification must cover the write surface."""
    covered = state_mutating_addresses(spec)
    diags: list[Diagnostic] = []
    for addr, name in sorted(programmer_write_surface(spec).items()):
        if addr in covered:
            continue
        diags.append(Diagnostic(
            "LK502", Severity.ERROR,
            f"register {name} (MSR 0x{addr:X}) is written by the tool "
            f"layer but missing from state_mutating_addresses(); "
            f"journaled_write() would refuse it at runtime",
            arch=spec.name, locus=f"journal:{spec.name}"))
    return diags
