"""Static analysis of the perfctr configuration surface.

``repro.analysis`` verifies — without any simulated machine or MSR
traffic — that every architecture's event tables, register layouts,
builtin and file-backed performance groups, metric formulas and
thread placements are mutually consistent.  Four analyzers emit
:class:`~repro.analysis.diagnostics.Diagnostic` objects with stable
``LKxxx`` codes (catalog in ``docs/linting.md``); the ``repro-lint``
CLI and the runtime validators in :mod:`repro.core.perfctr.counters`
are both thin consumers of the same check definitions
(:mod:`repro.analysis.checks`).

Only the leaf modules load eagerly so the runtime validators can
import this package without dragging in the group catalogs; the
runner and reporters resolve lazily on first use.
"""

from __future__ import annotations

from repro.analysis import checks, diagnostics  # noqa: F401  (eager leaves)
from repro.analysis.diagnostics import CODES, Diagnostic, Severity  # noqa: F401

_LAZY = {
    "lint_all": "repro.analysis.runner",
    "lint_spec": "repro.analysis.runner",
    "lint_group": "repro.analysis.runner",
    "lint_event_string": "repro.analysis.runner",
    "lint_affinity": "repro.analysis.runner",
    "lint_write_sites": "repro.analysis.journal_lint",
    "lint_journal_coverage": "repro.analysis.journal_lint",
    "lint_protocol": "repro.analysis.protocol",
    "protocol_sources": "repro.analysis.protocol",
    "lint_changed": "repro.analysis.runner",
    "build_cfg": "repro.analysis.cfg",
    "solve": "repro.analysis.dataflow",
    "catalog_for": "repro.analysis.runner",
    "render_text": "repro.analysis.report",
    "render_json": "repro.analysis.report",
}

__all__ = ["CODES", "Diagnostic", "Severity", "checks", "diagnostics",
           *sorted(_LAZY)]


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    return getattr(importlib.import_module(module_name), name)
