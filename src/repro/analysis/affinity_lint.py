"""Affinity and socket-lock analysis (LK40x).

Statically inspects a likwid-pin / likwid-perfctr thread placement —
core expression, skip mask, thread type, optionally the measured group
— against the machine topology:

* the expression and skip mask must resolve at all (LK404);
* two measured threads on one physical core share its execution
  resources and, with SMT, distort each other's counts (LK401);
* a skip mask that skips more threads than the core list provides
  leaves cores silently unused (LK402);
* a group with uncore (socket-scope) events measured from several
  threads of one socket means all of them contend for the single
  uncore PMU — the socket lock attributes its counts to exactly one
  of them (LK403, a NOTE: this is the documented likwid behaviour).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.affinity import (resolve_affinity_expression, skip_mask_for)
from repro.core.perfctr.groups import GroupDef
from repro.errors import AffinityError
from repro.hw.events import CounterScope
from repro.hw.spec import ArchSpec


def lint_affinity(spec: ArchSpec, expression: str,
                  *, skip_mask: int | None = None,
                  thread_type: str | None = None,
                  group: GroupDef | None = None) -> list[Diagnostic]:
    """All placement diagnostics for one pin expression on one machine."""
    locus = f"affinity:{expression}"
    group_name = group.name if group is not None else None

    def diag(code: str, severity: Severity, message: str) -> Diagnostic:
        return Diagnostic(code, severity, message, arch=spec.name,
                          group=group_name, locus=locus)

    try:
        cpus = resolve_affinity_expression(spec, expression)
    except AffinityError as exc:
        return [diag("LK404", Severity.ERROR, str(exc))]
    try:
        mask = skip_mask_for(thread_type, skip_mask)
    except AffinityError as exc:
        return [diag("LK404", Severity.ERROR, str(exc))]

    diags: list[Diagnostic] = []

    by_core: dict[tuple[int, int], list[int]] = {}
    for cpu in cpus:
        by_core.setdefault(spec.physical_core_of(cpu), []).append(cpu)
    for (socket, core), sharers in sorted(by_core.items()):
        if len(sharers) > 1:
            diags.append(diag(
                "LK401", Severity.WARNING,
                f"threads on cpus {sharers} all land on physical core "
                f"{core} of socket {socket}; they share its execution "
                "resources and distort each other's counts"))

    pinnable = len(cpus) + bin(mask).count("1")
    if mask >> pinnable:
        diags.append(diag(
            "LK402", Severity.WARNING,
            f"skip mask 0x{mask:X} sets bits beyond the first "
            f"{pinnable} created threads; those bits can never match"))
    if bin(mask).count("1") >= len(cpus) and mask:
        diags.append(diag(
            "LK402", Severity.WARNING,
            f"skip mask 0x{mask:X} skips {bin(mask).count('1')} threads "
            f"but the core list only holds {len(cpus)} cpus; some cores "
            "stay unused"))

    if group is not None:
        uncore = sorted({e.event for e in group.events
                         if e.event in spec.events
                         and spec.events.lookup(e.event).scope
                         is CounterScope.UNCORE})
        if uncore:
            by_socket: dict[int, list[int]] = {}
            for cpu in cpus:
                by_socket.setdefault(spec.socket_of(cpu), []).append(cpu)
            for socket, members in sorted(by_socket.items()):
                if len(members) > 1:
                    diags.append(diag(
                        "LK403", Severity.NOTE,
                        f"cpus {members} on socket {socket} all measure "
                        f"uncore events ({', '.join(uncore)}); the socket "
                        "lock attributes those counts to exactly one of "
                        "them"))
    return diags
