"""Shared check definitions: one source of truth, two consumers.

Each function here states one correctness rule about the perfctr
configuration surface and returns :class:`Diagnostic` objects.  The
static linter (:mod:`repro.analysis.runner`) applies them over the
whole architecture × group matrix; the runtime validators
(``core.perfctr.counters.validate_assignments`` and
``CounterProgrammer``) apply them to the single configuration being
executed and raise errors built from the same diagnostics — so a rule
can never drift between lint time and run time.

This module deliberately imports only the hardware layer (never
``core.perfctr``), keeping it importable from both sides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.hw import registers as regs
from repro.hw.events import CounterScope, EventDef
from repro.hw.pmu import PmuSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.perfctr.events import EventOptions


class CounterLike(Protocol):
    """The slice of ``core.perfctr.counters.CounterInfo`` checks need."""

    name: str
    cls: str
    index: int


# ---------------------------------------------------------------------------
# Assignment rules (LK11x) — used by validate_assignments and the
# group-feasibility analyzer
# ---------------------------------------------------------------------------

def assignment_diagnostic(event: EventDef, counter: CounterLike,
                          options: "EventOptions | None" = None,
                          *, arch: str | None = None,
                          group: str | None = None,
                          locus: str | None = None) -> Diagnostic | None:
    """The first rule an event→counter binding violates, or None.

    The message substrings are load-bearing: runtime callers raise
    ``CounterError(str(diag))`` and existing tooling matches on them.
    """
    def diag(code: str, message: str) -> Diagnostic:
        return Diagnostic(code, Severity.ERROR, message, arch=arch,
                          group=group, locus=locus)

    if event.is_fixed:
        if counter.cls != "FIXC" or counter.index != event.fixed_index:
            return diag("LK110",
                        f"{event.name} is hard-wired to "
                        f"FIXC{event.fixed_index}, cannot count on "
                        f"{counter.name}")
        if options is not None and options != type(options)():
            return diag("LK111",
                        f"fixed counter {counter.name} has no event-select "
                        "register; options are not supported")
        return None
    if event.scope is CounterScope.UNCORE:
        if counter.cls != "UPMC":
            return diag("LK112",
                        f"uncore event {event.name} requires a UPMC "
                        f"counter, got {counter.name}")
        return None
    if counter.cls != "PMC":
        return diag("LK113",
                    f"core event {event.name} requires a PMC counter, "
                    f"got {counter.name}")
    if not event.allowed_on(counter.index):
        return diag("LK114",
                    f"{event.name} cannot be counted on {counter.name}")
    return None


# ---------------------------------------------------------------------------
# Encoding rules (LK30x) — used by CounterProgrammer and the
# register write-path analyzer
# ---------------------------------------------------------------------------

def encoding_diagnostics(event: EventDef, pmu: PmuSpec,
                         *, cmask: int = 0,
                         arch: str | None = None,
                         group: str | None = None,
                         locus: str | None = None) -> list[Diagnostic]:
    """Every way an event's register encoding violates the declared
    PERFEVTSEL/FIXED_CTR field layout of :mod:`repro.hw.registers`."""
    def diag(code: str, message: str) -> Diagnostic:
        return Diagnostic(code, Severity.ERROR, message, arch=arch,
                          group=group, locus=locus)

    out: list[Diagnostic] = []
    if event.is_fixed:
        if not pmu.has_fixed:
            out.append(diag(
                "LK305", f"{event.name} claims fixed counter "
                f"{event.fixed_index} but the PMU has no fixed counters"))
        elif not 0 <= event.fixed_index < regs.NUM_FIXED_CTRS:
            out.append(diag(
                "LK305", f"{event.name} claims fixed counter index "
                f"{event.fixed_index}, outside the architectural range "
                f"0..{regs.NUM_FIXED_CTRS - 1}"))
        return out
    if not 0 <= event.event_code < (1 << regs.EVTSEL_EVENT_WIDTH):
        out.append(diag(
            "LK301", f"{event.name} event code 0x{event.event_code:X} "
            f"does not fit the {regs.EVTSEL_EVENT_WIDTH}-bit PERFEVTSEL "
            "event field (it would be silently truncated)"))
    if not 0 <= event.umask < (1 << regs.EVTSEL_UMASK_WIDTH):
        out.append(diag(
            "LK302", f"{event.name} unit mask 0x{event.umask:X} does not "
            f"fit the {regs.EVTSEL_UMASK_WIDTH}-bit PERFEVTSEL umask field"))
    if not 0 <= cmask < (1 << regs.EVTSEL_CMASK_WIDTH):
        out.append(diag(
            "LK303", f"{event.name} counter mask 0x{cmask:X} does not fit "
            f"the {regs.EVTSEL_CMASK_WIDTH}-bit PERFEVTSEL cmask field"))
    raw = regs.evtsel_compose_raw(max(event.event_code, 0),
                                  max(event.umask, 0),
                                  cmask=max(cmask, 0))
    reserved = regs.evtsel_reserved_bits(raw)
    if reserved:
        out.append(diag(
            "LK304", f"{event.name} encoding would set reserved "
            f"PERFEVTSEL bits 0x{reserved:X}"))
    return out


def overflow_diagnostic(pmu: PmuSpec, clock_hz: float,
                        *, arch: str | None = None,
                        max_events_per_cycle: float = 4.0,
                        min_safe_seconds: float = 60.0) -> Diagnostic | None:
    """Counter-width overflow hazard (LK107).

    At the theoretical peak rate (*max_events_per_cycle* increments per
    core cycle) a counter of the declared width must survive at least
    *min_safe_seconds* before wrapping; 48-bit counters give hours,
    but a narrowed width (or a future very high clock) would silently
    wrap mid-measurement."""
    seconds_to_wrap = (1 << pmu.counter_width) / (max_events_per_cycle
                                                  * clock_hz)
    if seconds_to_wrap >= min_safe_seconds:
        return None
    return Diagnostic(
        "LK107", Severity.WARNING,
        f"{pmu.counter_width}-bit counters wrap after "
        f"{seconds_to_wrap:.1f}s at peak event rate "
        f"({max_events_per_cycle:g}/cycle at {clock_hz / 1e9:.2f} GHz); "
        f"measurements longer than that lose counts",
        arch=arch, locus=f"registers:{arch}" if arch else None)
