"""Diagnostic reporters: human-readable text and stable JSON.

The text reporter groups findings by architecture and hides NOTEs
unless asked (``--pedantic``); the JSON reporter emits a versioned,
sorted, newline-terminated document for golden-file tests and CI
tooling.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import (Diagnostic, Severity, counts,
                                        sort_key)

JSON_FORMAT_VERSION = 1


def render_text(diags: list[Diagnostic], *, pedantic: bool = False) -> str:
    """Human-readable report; empty-input yields a clean-bill line."""
    shown = sorted((d for d in diags
                    if pedantic or d.severity is not Severity.NOTE),
                   key=sort_key)
    lines: list[str] = []
    current_arch: str | None = None
    for d in shown:
        if d.arch != current_arch:
            current_arch = d.arch
            lines.append(f"== {d.arch or '(no arch)'} ==")
        where = f"[{d.locus}] " if d.locus else ""
        col = f" (column {d.column})" if d.column is not None else ""
        lines.append(f"  {where}{d.code} {d.severity.value}: "
                     f"{d.message}{col}")
    summary = counts(diags)
    lines.append(f"{summary['errors']} error(s), "
                 f"{summary['warnings']} warning(s), "
                 f"{summary['notes']} note(s)")
    if not shown and not diags:
        lines.insert(0, "configuration surface is clean")
    return "\n".join(lines) + "\n"


def render_json(diags: list[Diagnostic]) -> str:
    """Versioned machine-readable report (stable key and entry order)."""
    document = {
        "version": JSON_FORMAT_VERSION,
        "diagnostics": [d.to_json() for d in sorted(diags, key=sort_key)],
        "summary": counts(diags),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
