"""A small forward dataflow engine over :mod:`repro.analysis.cfg`.

Worklist iteration to a fixpoint, parameterised by an
:class:`Analysis`: the client chooses the lattice by implementing
``join`` (set union for *may* properties — "is there **a** path on
which this session is still running?" — set intersection or boolean
AND for *must* properties — "is this write preceded by a journal
append on **every** path?"), the transfer function, and optionally a
branch-edge refinement (e.g. learn ``journal is None`` on the true
edge of that test).

Exception edges (label :data:`repro.analysis.cfg.EXC`) propagate the
statement's **in** state: an exception means the statement's effect
(the binding, the append) must not be assumed to have happened.

Facts must be immutable and hashable-equal (frozensets, tuples,
``frozendict``-style mappings via :func:`freeze`); the engine relies
on ``==`` to detect the fixpoint.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.cfg import CFG, Node


class Analysis:
    """Client interface.  Subclass and override."""

    def initial(self):
        """The fact at function entry."""
        raise NotImplementedError

    def join(self, a, b):
        """Combine facts where paths merge."""
        raise NotImplementedError

    def transfer(self, node: Node, fact):
        """The fact after executing *node* with *fact* before it."""
        return fact

    def refine(self, fact, label):
        """Sharpen a fact along a labelled edge (branch outcomes).
        ``label`` is ``("cond", test, value)``, ``("iter", value)``
        or ``None``; exception edges are not refined."""
        return fact

    def exc_transfer(self, node: Node, fact):
        """The fact along *node*'s exception edge.  Default: the in
        state unchanged (the statement's effects must not be assumed).
        Clients can override to keep *teardown* effects — a
        ``close()`` that raises has still relinquished the handle, and
        flagging "leak because close itself failed" is pure noise."""
        return fact


def solve(cfg: CFG, analysis: Analysis) -> dict[int, object]:
    """In-facts for every reachable node, to a fixpoint.

    Unreachable nodes are absent from the result — a check that asks
    about them has nothing to report (dead code is flake8's job)."""
    in_facts: dict[int, object] = {cfg.entry: analysis.initial()}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        nid = work.popleft()
        queued.discard(nid)
        node = cfg.nodes[nid]
        fact_in = in_facts[nid]
        fact_out = analysis.transfer(node, fact_in)
        for dst, label in cfg.succs[nid]:
            if label is not None and label[0] == "exc":
                contrib = analysis.exc_transfer(node, fact_in)
            else:
                contrib = analysis.refine(fact_out, label)
            if dst in in_facts:
                merged = analysis.join(in_facts[dst], contrib)
            else:
                merged = contrib
            if dst not in in_facts or merged != in_facts[dst]:
                in_facts[dst] = merged
                if dst not in queued:
                    queued.add(dst)
                    work.append(dst)
    return in_facts


def freeze(mapping: dict) -> tuple:
    """An immutable, order-independent snapshot of a dict fact."""
    return tuple(sorted(mapping.items()))


def thaw(fact: tuple) -> dict:
    return dict(fact)
