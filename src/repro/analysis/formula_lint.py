"""Metric-formula static analysis (LK20x).

Walks the formula AST of :mod:`repro.core.perfctr.formula` — the same
parser the runtime evaluator uses, so lint and evaluation can never
disagree about what a formula means.  Checks, per group:

* every identifier resolves to a measured event or a built-in variable
  (``time``, ``clock``), with the offending column (LK201);
* every explicitly measured event feeds at least one metric (LK202);
* divisions whose denominator is built purely from raw counters are
  flagged as division-by-zero hazards (LK203, a NOTE: the runtime
  yields NaN, which is often intended — e.g. CPI on an idle core).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.core.perfctr import formula as fm
from repro.core.perfctr.groups import GroupDef
from repro.errors import GroupError
from repro.hw.spec import ArchSpec

BUILTIN_VARIABLES = frozenset({"time", "clock"})

# Auto-counted on every Intel measurement (see auto_fixed_assignments).
AUTO_FIXED_EVENTS = ("INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE",
                     "CPU_CLK_UNHALTED_REF")


def measured_names(spec: ArchSpec, group: GroupDef) -> set[str]:
    """Identifiers a metric of *group* may legally reference."""
    names = {e.event for e in group.events}
    if spec.pmu.has_fixed:
        for name in AUTO_FIXED_EVENTS:
            if name in spec.events and spec.events.lookup(name).is_fixed:
                names.add(name)
    return names


def _counter_only(node: fm.Node, events: set[str]) -> bool:
    """True if every leaf of *node* is a raw-counter reference — the
    subtree evaluates to 0 whenever the counters read 0."""
    leaves = [n for n in fm.walk(node) if isinstance(n, (fm.Num, fm.Var))]
    return bool(leaves) and all(
        isinstance(n, fm.Var) and n.name in events for n in leaves)


def lint_group_formulas(spec: ArchSpec, group: GroupDef,
                        *, locus: str | None = None) -> list[Diagnostic]:
    """All formula diagnostics for one group on one architecture."""
    diags: list[Diagnostic] = []
    allowed = measured_names(spec, group)
    events = {e.event for e in group.events}
    used: set[str] = set()
    for label, text in group.metrics:
        try:
            ast = fm.parse(text)
        except GroupError as exc:
            diags.append(Diagnostic(
                "LK204", Severity.ERROR,
                f"metric {label!r}: {exc}", arch=spec.name,
                group=group.name, locus=locus))
            continue
        for var in fm.variables(ast):
            if var.name in allowed or var.name in BUILTIN_VARIABLES:
                used.add(var.name)
            else:
                diags.append(Diagnostic(
                    "LK201", Severity.ERROR,
                    f"metric {label!r} references {var.name!r}, which is "
                    "neither a measured event nor a built-in variable",
                    arch=spec.name, group=group.name, locus=locus,
                    column=var.column))
        for denom in fm.denominators(ast):
            if _counter_only(denom, allowed):
                diags.append(Diagnostic(
                    "LK203", Severity.NOTE,
                    f"metric {label!r} divides by a raw counter value; "
                    "a zero count yields NaN for this metric",
                    arch=spec.name, group=group.name, locus=locus,
                    column=denom.column))
    for name in sorted(events - used):
        diags.append(Diagnostic(
            "LK202", Severity.WARNING,
            f"event {name} is measured but no metric uses it "
            "(it burns a counter for nothing)",
            arch=spec.name, group=group.name, locus=locus))
    return diags
