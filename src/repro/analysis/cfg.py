"""Intraprocedural control-flow graphs over Python AST (LK6xx base).

The protocol analyzer (:mod:`repro.analysis.protocol`) needs to ask
*path* questions the flat AST walks of LK1xx–LK5xx cannot answer:
"is this session stopped on **every** path out of the function,
including the one where the workload raised?", "is this device write
**dominated** by a journal append?".  This module builds the graph
those questions are asked on.

Design (sized to the checks, not to a general-purpose compiler):

* **One statement per basic block.**  Functions in this codebase are
  small (tens of statements), so the simplicity of ``in-state ==
  per-statement state`` beats the constant-factor win of maximal
  blocks.
* **Condition-labelled edges.**  An ``if``/``while`` test node emits
  ``(test, True)`` / ``(test, False)`` edges so a dataflow client can
  refine facts from the branch condition (LK603 uses this for
  ``journal is None`` guards).
* **Exception edges carry the *pre*-state.**  Every statement that
  contains a call, attribute access or subscript may raise; it gets
  an edge to the innermost handler (or the synthetic exceptional
  exit).  The dataflow engine propagates the statement's *in* state
  along that edge — if ``msr = driver.open(cpu)`` raises, ``msr``
  was never bound.
* **``finally`` bodies are inlined per continuation.**  A ``finally``
  runs on the normal, exceptional, ``return``, ``break`` and
  ``continue`` ways out of its ``try``; each distinct continuation
  gets its own copy of the finally sub-graph (cached per
  continuation, so nesting stays linear in practice).  ``with`` is
  desugared to ``try/finally`` around a synthetic
  :data:`WITH_ENTER`/:data:`WITH_EXIT` pair — exactly the property
  LK601 leans on: a context-managed session cannot leak.
* **Two exits.**  ``exit`` (returns and fall-off) and ``exc_exit``
  (uncaught exceptions) are separate synthetic nodes, so "leaks only
  on the exception path" is visible in the report.

The graph is deliberately *intra*procedural: called functions are
opaque (any call may raise, no call releases your resources for you
— LK604's cross-function story is handled by per-function summaries,
not by inlining).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# Node kinds.
ENTRY = "entry"
EXIT = "exit"              # normal: returns and falling off the end
EXC_EXIT = "exc_exit"      # exceptional: uncaught raise
STMT = "stmt"
TEST = "test"              # if/while condition (branch edges)
LOOP_ITER = "loop_iter"    # for-loop header (iter/exhausted edges)
JOIN = "join"              # synthetic pass-through
HANDLER = "handler"        # except-clause entry (binds the alias)
WITH_ENTER = "with_enter"  # synthetic __enter__ of one with-item
WITH_EXIT = "with_exit"    # synthetic __exit__ of one with-item

#: Edge labels.  ``None`` is plain fall-through; ``("cond", test,
#: value)`` leaves a TEST node; ``("iter", bool)`` leaves a LOOP_ITER
#: node (True = another element); ``("exc",)`` is an exception edge
#: and carries the source statement's *in* state.
EXC = ("exc",)


@dataclass
class Node:
    """One CFG node; ``stmt`` is the underlying AST node (``None``
    for synthetic nodes), ``payload`` the :class:`ast.withitem` of a
    WITH_ENTER/WITH_EXIT pair."""

    nid: int
    kind: str
    stmt: ast.AST | None = None
    payload: ast.withitem | None = None

    @property
    def lineno(self) -> int | None:
        if self.stmt is not None and hasattr(self.stmt, "lineno"):
            return self.stmt.lineno
        if self.payload is not None:
            return self.payload.context_expr.lineno
        return None


@dataclass
class CFG:
    """The control-flow graph of one function (or lambda)."""

    name: str
    lineno: int
    nodes: dict[int, Node] = field(default_factory=dict)
    succs: dict[int, list[tuple[int, tuple | None]]] = \
        field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    exc_exit: int = 2

    def preds(self) -> dict[int, list[tuple[int, tuple | None]]]:
        """Predecessor map: node -> [(pred, label), ...]."""
        out: dict[int, list[tuple[int, tuple | None]]] = \
            {nid: [] for nid in self.nodes}
        for src, edges in self.succs.items():
            for dst, label in edges:
                out[dst].append((src, label))
        return out

    def real_nodes(self) -> list[Node]:
        """Statement-bearing nodes in id (≈ source) order."""
        return [n for n in sorted(self.nodes.values(), key=lambda n: n.nid)
                if n.kind not in (ENTRY, EXIT, EXC_EXIT, JOIN)]


def may_raise(stmt: ast.AST) -> bool:
    """Conservative: anything that calls, dereferences or subscripts
    can raise.  Plain assignments of constants cannot."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Attribute, ast.Subscript,
                             ast.Raise, ast.Assert, ast.BinOp)):
            return True
    return False


class _Frame:
    """One enclosing construct that bends control flow."""

    __slots__ = ("kind", "header", "after", "dispatch", "finalbody",
                 "with_item", "cache")

    def __init__(self, kind: str, *, header: int | None = None,
                 after: int | None = None, dispatch: int | None = None,
                 finalbody: list | None = None,
                 with_item: ast.withitem | None = None):
        self.kind = kind            # "loop" | "except" | "finally"
        self.header = header        # loop: continue target
        self.after = after          # loop: break target
        self.dispatch = dispatch    # except: exception entry
        self.finalbody = finalbody  # finally: the stmts to inline
        self.with_item = with_item  # finally standing in for __exit__
        self.cache: dict = {}       # finally: continuation -> entry nid


class _Builder:
    def __init__(self, name: str, lineno: int):
        self.cfg = CFG(name=name, lineno=lineno)
        for nid, kind in ((0, ENTRY), (1, EXIT), (2, EXC_EXIT)):
            self.cfg.nodes[nid] = Node(nid, kind)
            self.cfg.succs[nid] = []
        self._next = 3
        self.frames: list[_Frame] = []
        # Dangling (src, label) pairs waiting for their successor.
        self._current: list[tuple[int, tuple | None]] = [(0, None)]

    # -- plumbing ----------------------------------------------------------

    def _new(self, kind: str, stmt: ast.AST | None = None,
             payload: ast.withitem | None = None) -> int:
        nid = self._next
        self._next += 1
        self.cfg.nodes[nid] = Node(nid, kind, stmt, payload)
        self.cfg.succs[nid] = []
        return nid

    def _edge(self, src: int, dst: int, label: tuple | None = None) -> None:
        self.cfg.succs[src].append((dst, label))

    def _attach(self, nid: int) -> None:
        """Point every dangling edge at *nid* and make it current."""
        for src, label in self._current:
            self._edge(src, nid, label)
        self._current = [(nid, None)]

    def _reachable(self) -> bool:
        return bool(self._current)

    # -- continuation routing (finally inlining) ---------------------------

    def _route(self, kind: str, depth: int) -> int:
        """Where control of *kind* ('exc'/'return'/'break'/'continue'/
        'normal') goes from inside ``frames[:depth]``, inlining every
        ``finally`` body crossed on the way out."""
        for i in range(depth - 1, -1, -1):
            fr = self.frames[i]
            if fr.kind == "finally":
                cont = self._route(kind, i)
                return self._finally_copy(fr, i, cont)
            if kind == "exc" and fr.kind == "except":
                return fr.dispatch
            if kind == "break" and fr.kind == "loop":
                return fr.after
            if kind == "continue" and fr.kind == "loop":
                return fr.header
        if kind == "exc":
            return self.cfg.exc_exit
        return self.cfg.exit

    def _finally_copy(self, fr: _Frame, depth: int, cont: int) -> int:
        """A copy of ``fr``'s finally body whose normal exit is
        *cont*; exceptions inside it route outward from ``fr``."""
        if cont in fr.cache:
            return fr.cache[cont]
        if fr.with_item is not None:
            # The finally stands in for __exit__: one synthetic node.
            entry = self._new(WITH_EXIT, None, fr.with_item)
            fr.cache[cont] = entry
            self._edge(entry, cont, None)
            return entry
        entry = self._new(JOIN)
        fr.cache[cont] = entry
        saved_frames, saved_current = self.frames, self._current
        self.frames = self.frames[:depth]
        self._current = [(entry, None)]
        try:
            for stmt in fr.finalbody:
                self._stmt(stmt)
                if not self._reachable():
                    break
            for src, label in self._current:
                self._edge(src, cont, label)
        finally:
            self.frames, self._current = saved_frames, saved_current
        return entry

    def _exc_edge(self, nid: int) -> None:
        self._edge(nid, self._route("exc", len(self.frames)), EXC)

    def _terminate(self, kind: str) -> None:
        target = self._route(kind, len(self.frames))
        for src, label in self._current:
            self._edge(src, target, label)
        self._current = []

    # -- statement dispatch -------------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        for stmt in body:
            self._stmt(stmt)
            if not self._reachable():
                break
        if self._reachable():
            self._terminate("normal")
        return self.cfg

    def _stmt(self, stmt: ast.stmt) -> None:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            handler(stmt)
            return
        nid = self._new(STMT, stmt)
        self._attach(nid)
        if may_raise(stmt):
            self._exc_edge(nid)

    def _stmt_Return(self, stmt: ast.Return) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)
        if stmt.value is not None and may_raise(stmt):
            self._exc_edge(nid)
        self._terminate("return")

    def _stmt_Raise(self, stmt: ast.Raise) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)
        self._current = [(nid, None)]
        self._terminate("exc")

    def _stmt_Break(self, stmt: ast.Break) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)
        self._terminate("break")

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)
        self._terminate("continue")

    def _stmt_If(self, stmt: ast.If) -> None:
        test = self._new(TEST, stmt.test)
        self._attach(test)
        if may_raise(stmt.test):
            self._exc_edge(test)
        exits: list[tuple[int, tuple | None]] = []
        for value, body in ((True, stmt.body), (False, stmt.orelse)):
            self._current = [(test, ("cond", stmt.test, value))]
            for s in body:
                self._stmt(s)
                if not self._reachable():
                    break
            exits.extend(self._current)
        self._current = exits

    def _stmt_While(self, stmt: ast.While) -> None:
        header = self._new(TEST, stmt.test)
        after = self._new(JOIN)
        self._attach(header)
        if may_raise(stmt.test):
            self._exc_edge(header)
        self.frames.append(_Frame("loop", header=header, after=after))
        self._current = [(header, ("cond", stmt.test, True))]
        try:
            for s in stmt.body:
                self._stmt(s)
                if not self._reachable():
                    break
            for src, label in self._current:     # back edge
                self._edge(src, header, label)
        finally:
            self.frames.pop()
        self._current = [(header, ("cond", stmt.test, False))]
        for s in stmt.orelse:
            self._stmt(s)
            if not self._reachable():
                break
        for src, label in self._current:
            self._edge(src, after, label)
        self._current = [(after, None)]

    def _stmt_For(self, stmt: ast.For) -> None:
        header = self._new(LOOP_ITER, stmt)
        after = self._new(JOIN)
        self._attach(header)
        self._exc_edge(header)                   # the iterator may raise
        self.frames.append(_Frame("loop", header=header, after=after))
        self._current = [(header, ("iter", True))]
        try:
            for s in stmt.body:
                self._stmt(s)
                if not self._reachable():
                    break
            for src, label in self._current:     # back edge
                self._edge(src, header, label)
        finally:
            self.frames.pop()
        self._current = [(header, ("iter", False))]
        for s in stmt.orelse:
            self._stmt(s)
            if not self._reachable():
                break
        for src, label in self._current:
            self._edge(src, after, label)
        self._current = [(after, None)]

    _stmt_AsyncFor = _stmt_For

    def _stmt_Try(self, stmt: ast.Try) -> None:
        if stmt.finalbody:
            fin = _Frame("finally", finalbody=stmt.finalbody)
            self.frames.append(fin)
            try:
                self._try_except(stmt)
            finally:
                self.frames.pop()
            if self._reachable():
                after = self._new(JOIN)
                copy = self._finally_copy(fin, len(self.frames), after)
                for src, label in self._current:
                    self._edge(src, copy, label)
                self._current = [(after, None)]
        else:
            self._try_except(stmt)

    _stmt_TryStar = _stmt_Try

    def _try_except(self, stmt: ast.Try) -> None:
        if not stmt.handlers:
            for s in stmt.body:
                self._stmt(s)
                if not self._reachable():
                    break
            for s in stmt.orelse:
                if not self._reachable():
                    break
                self._stmt(s)
            return
        dispatch = self._new(JOIN)
        catchall = any(h.type is None
                       or (isinstance(h.type, ast.Name)
                           and h.type.id in ("Exception", "BaseException"))
                       for h in stmt.handlers)
        if not catchall:
            # An unmatched exception keeps unwinding.
            self._edge(dispatch, self._route("exc", len(self.frames)), EXC)
        self.frames.append(_Frame("except", dispatch=dispatch))
        try:
            for s in stmt.body:
                self._stmt(s)
                if not self._reachable():
                    break
        finally:
            self.frames.pop()
        # else: runs on clean completion, outside the handlers' scope.
        for s in stmt.orelse:
            if not self._reachable():
                break
            self._stmt(s)
        exits = list(self._current)
        for h in stmt.handlers:
            entry = self._new(HANDLER, h)
            self._edge(dispatch, entry, None)
            self._current = [(entry, None)]
            for s in h.body:
                self._stmt(s)
                if not self._reachable():
                    break
            exits.extend(self._current)
        self._current = exits

    def _stmt_With(self, stmt: ast.With) -> None:
        self._with_items(stmt.items, stmt.body)

    def _stmt_AsyncWith(self, stmt: ast.AsyncWith) -> None:
        self._with_items(stmt.items, stmt.body)

    def _with_items(self, items: list[ast.withitem],
                    body: list[ast.stmt]) -> None:
        if not items:
            for s in body:
                self._stmt(s)
                if not self._reachable():
                    break
            return
        item, rest = items[0], items[1:]
        enter = self._new(WITH_ENTER, None, item)
        self._attach(enter)
        self._exc_edge(enter)                    # __enter__ may raise
        fin = _Frame("finally", with_item=item)
        self.frames.append(fin)
        try:
            self._with_items(rest, body)
        finally:
            self.frames.pop()
        if self._reachable():
            after = self._new(JOIN)
            copy = self._finally_copy(fin, len(self.frames), after)
            for src, label in self._current:
                self._edge(src, copy, label)
            self._current = [(after, None)]

    def _stmt_Assert(self, stmt: ast.Assert) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)
        self._exc_edge(nid)                      # the assert may fail

    # Nested definitions are opaque single statements: their bodies are
    # separate CFGs and their closures make captured names escape
    # (handled by the client's escape analysis).
    def _stmt_FunctionDef(self, stmt: ast.FunctionDef) -> None:
        nid = self._new(STMT, stmt)
        self._attach(nid)

    _stmt_AsyncFunctionDef = _stmt_FunctionDef
    _stmt_ClassDef = _stmt_FunctionDef


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
              name: str | None = None) -> CFG:
    """Build the CFG of one function, method or lambda."""
    if isinstance(func, ast.Lambda):
        builder = _Builder(name or "<lambda>", func.lineno)
        body: list[ast.stmt] = [ast.Expr(func.body)]
        ast.copy_location(body[0], func.body)
    else:
        builder = _Builder(name or func.name, func.lineno)
        body = func.body
    return builder.build(body)
