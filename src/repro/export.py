"""CSV/JSON export of measurements and experiment series.

The ASCII tables are for humans and the XML for structured pipelines;
spreadsheet-bound users want CSV and notebook users want plain dicts.
These converters are deliberately dependency-free (csv + json from the
standard library).
"""

from __future__ import annotations

import csv
import io
import json

from repro.core.perfctr.measurement import MeasurementResult


def measurement_to_csv(result: MeasurementResult) -> str:
    """One row per (cpu, kind, name): kind is 'event' or 'metric'."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["cpu", "kind", "name", "value"])
    for cpu in result.cpus:
        for name, value in result.counts[cpu].items():
            writer.writerow([cpu, "event", name, f"{value:.10g}"])
        for name, value in result.metrics.get(cpu, {}).items():
            writer.writerow([cpu, "metric", name, f"{value:.10g}"])
    return buf.getvalue()


def measurement_to_dict(result: MeasurementResult) -> dict:
    """JSON-ready representation of one measurement."""
    return {
        "wall_time": result.wall_time,
        "group": result.group.name if result.group else None,
        "cpus": {
            str(cpu): {
                "events": dict(result.counts[cpu]),
                "metrics": dict(result.metrics.get(cpu, {})),
            }
            for cpu in result.cpus
        },
    }


def measurement_to_json(result: MeasurementResult, *, indent: int = 2) -> str:
    return json.dumps(measurement_to_dict(result), indent=indent,
                      sort_keys=True)


def stream_series_to_csv(series) -> str:
    """Figs 4-10 box-plot data: one row per (threads, sample)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["arch", "compiler", "mode", "threads", "sample",
                     "bandwidth_mb_s"])
    for nthreads in sorted(series.samples):
        for index, value in enumerate(series.samples[nthreads]):
            writer.writerow([series.arch, series.compiler, series.mode,
                             nthreads, index, f"{value:.4f}"])
    return buf.getvalue()


def fig11_to_csv(curves: dict[str, list[tuple[int, float]]]) -> str:
    """Figure 11: one row per (series, size)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", "size", "mlups"])
    for label, points in curves.items():
        for n, mlups in points:
            writer.writerow([label, n, f"{mlups:.2f}"])
    return buf.getvalue()


def table2_to_csv(rows) -> str:
    """Table II: one row per variant."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["variant", "l3_lines_in", "l3_lines_out",
                     "data_volume_gb", "mlups"])
    for r in rows:
        writer.writerow([r.variant, f"{r.l3_lines_in:.6g}",
                         f"{r.l3_lines_out:.6g}",
                         f"{r.data_volume_gb:.4f}", f"{r.mlups:.2f}"])
    return buf.getvalue()
