"""Reproduction harnesses for every table and figure of the paper.

Each function regenerates one evaluation artefact (see DESIGN.md's
per-experiment index) and returns plain data structures that the
benchmark suite asserts shape properties on and that EXPERIMENTS.md /
the ``repro-bench`` CLI render:

==========  ==============================================================
Fig. 1      ``figure1_topology()`` — Nehalem EP topology diagram
Table I     ``table1_comparison()`` — LIKWID vs PAPI feature matrix
Figs 4-8    ``stream_figure()`` on westmere_ep (icc/gcc x pinning modes)
Figs 9-10   ``stream_figure()`` on amd_istanbul
Fig. 11     ``figure11_jacobi_sweep()`` — MLUPS vs problem size
Table II    ``table2_uncore()`` — uncore traffic of the Jacobi variants,
            measured through likwid-perfctr with socket locks
==========  ==============================================================
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.perfctr import LikwidPerfCtr
from repro.core.topology import probe_topology, render_topology
from repro.core.topology_ascii import render_ascii
from repro.hw.arch import create_machine
from repro.hw.machine import SimMachine
from repro.oskern.scheduler import OSKernel
from repro.workloads.jacobi import JacobiConfig, run_jacobi
from repro.workloads.stream import stream_samples

# ---------------------------------------------------------------------------
# Figure 1 / §II.B listings
# ---------------------------------------------------------------------------

def figure1_topology(arch: str = "nehalem_ep") -> str:
    """The thread/cache topology report + ASCII diagram (Fig. 1, §II.B)."""
    machine = create_machine(arch)
    topology = probe_topology(machine)
    return render_topology(topology) + "\n" + render_ascii(topology)


# ---------------------------------------------------------------------------
# Table I: LIKWID vs PAPI
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComparisonRow:
    aspect: str
    likwid: str
    papi: str


def table1_comparison() -> list[ComparisonRow]:
    """Regenerate Table I by probing both implementations.

    Probed facts (multicore measurement, uncore support, pinning tool,
    event abstraction, API style) come from the actual objects; the
    judgement wording follows the paper.
    """
    from repro.core.perfctr.counters import CounterMap
    from repro.core.perfctr.groups import groups_for
    from repro.hw.arch import get_arch
    from repro.papi import PAPI_VER_CURRENT, PapiLibrary
    from repro.papi.presets import PRESETS

    spec = get_arch("nehalem_ep")
    machine = SimMachine(spec)
    counters = CounterMap(spec)
    papi = PapiLibrary(machine)
    papi.PAPI_library_init(PAPI_VER_CURRENT)

    perfctr = LikwidPerfCtr(machine)
    multi_session = perfctr.session([0, 1, 2, 3], "FLOPS_DP")
    likwid_multicore = len(multi_session.cpus) > 1
    likwid_uncore = bool(counters.names("UPMC"))
    papi_uncore = False  # PAPI_add_event rejects uncore-mapped presets
    groups = groups_for(spec)

    rows = [
        ComparisonRow(
            "Dependencies",
            "Needs system headers of Linux 2.6 kernel (here: the "
            "simulated msr driver). No other external dependencies.",
            "Relies on other software for architecture-specific parts; "
            "no patches on Linux > 2.6.31."),
        ComparisonRow(
            "Command line tools",
            "Core is a collection of standalone command line tools: "
            "likwid-topology, likwid-perfctr, likwid-pin, likwid-features.",
            "Small utilities not intended as standalone tools; mainly "
            "a library for other tools."),
        ComparisonRow(
            "User API support",
            "Simple marker API for named code regions; configuration "
            "stays on the command line.",
            "Comparatively high-level API; events must be configured "
            "in the code (EventSets)."),
        ComparisonRow(
            "Library support",
            "Usable as a library, though not initially intended.",
            "Mature library API for building own tooling."),
        ComparisonRow(
            "Topology information",
            "Thread and cache topology decoded from cpuid, presented "
            "as text and ASCII art; shared-cache groups included.",
            "cpuid-based, no shared-cache information, no mapping from "
            "processor ids to thread topology."),
        ComparisonRow(
            "Thread and process pinning",
            "Dedicated likwid-pin tool (portable, per-thread).",
            "No support for pinning."),
        ComparisonRow(
            "Multicore support",
            f"Multiple cores measured simultaneously "
            f"(probed: session over {len(multi_session.cpus)} cores)."
            if likwid_multicore else "single core only",
            "No explicit support for multicore measurements "
            "(one EventSet follows the calling thread)."),
        ComparisonRow(
            "Uncore support",
            f"Uncore events via socket locks "
            f"(probed: {len(counters.names('UPMC'))} UPMC counters)."
            if likwid_uncore else "none",
            "No explicit support for measuring shared resources."
            if not papi_uncore else ""),
        ComparisonRow(
            "Event abstraction",
            f"Preconfigured event groups with derived metrics "
            f"(probed: {len(groups)} groups incl. "
            f"{', '.join(sorted(list(groups))[:3])}...).",
            f"Preset events mapping to native events "
            f"(probed: {len(PRESETS)} presets)."),
        ComparisonRow(
            "Platform support",
            "x86 processors on Linux 2.6 (simulated catalog: Intel "
            "Pentium M through Westmere, AMD K8/K10).",
            "Wide range of architectures and operating systems."),
        ComparisonRow(
            "Correlated measurements",
            "Performance counters only.",
            "PAPI-C components can correlate other data sources."),
    ]
    return rows


# ---------------------------------------------------------------------------
# Figures 4-10: STREAM triad distributions
# ---------------------------------------------------------------------------

@dataclass
class StreamSeries:
    """One figure's box-plot data: thread count -> bandwidth samples."""

    arch: str
    compiler: str
    mode: str                      # "unpinned" | "pinned" | "kmp-scatter"
    samples: dict[int, list[float]]

    def median(self, nthreads: int) -> float:
        return statistics.median(self.samples[nthreads])

    def spread(self, nthreads: int) -> float:
        data = self.samples[nthreads]
        return max(data) - min(data)

    def quartiles(self, nthreads: int) -> tuple[float, float, float]:
        data = sorted(self.samples[nthreads])
        q = statistics.quantiles(data, n=4, method="inclusive")
        return q[0], statistics.median(data), q[2]


STREAM_FIGURES = {
    # fig id: (arch, compiler, mode)
    4: ("westmere_ep", "icc", "unpinned"),
    5: ("westmere_ep", "icc", "pinned"),
    6: ("westmere_ep", "icc", "kmp-scatter"),
    7: ("westmere_ep", "gcc", "unpinned"),
    8: ("westmere_ep", "gcc", "pinned"),
    9: ("amd_istanbul", "icc", "unpinned"),
    10: ("amd_istanbul", "icc", "pinned"),
}


def stream_figure(fig: int, *, samples: int = 100,
                  thread_counts: list[int] | None = None,
                  seed: int = 20100630) -> StreamSeries:
    """Regenerate one of Figs 4-10 (100 samples per thread count)."""
    arch, compiler, mode = STREAM_FIGURES[fig]
    machine = create_machine(arch)
    if thread_counts is None:
        top = machine.num_hwthreads + 2   # the paper sweeps past the core count
        thread_counts = list(range(1, top + 1))
    data: dict[int, list[float]] = {}
    for nthreads in thread_counts:
        if mode == "pinned":
            runs = stream_samples(machine, nthreads=nthreads,
                                  compiler=compiler, pinned=True,
                                  samples=max(3, samples // 10), seed=seed)
        elif mode == "kmp-scatter":
            runs = stream_samples(machine, nthreads=nthreads,
                                  compiler=compiler, pinned=False,
                                  kmp_affinity="scatter",
                                  samples=max(3, samples // 10), seed=seed)
        else:
            runs = stream_samples(machine, nthreads=nthreads,
                                  compiler=compiler, pinned=False,
                                  samples=samples, seed=seed)
        data[nthreads] = runs
    return StreamSeries(arch, compiler, mode, data)


# ---------------------------------------------------------------------------
# Figure 11: Jacobi MLUPS vs problem size
# ---------------------------------------------------------------------------

FIG11_SIZES = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500)


def figure11_jacobi_sweep(sizes: tuple[int, ...] = FIG11_SIZES,
                          sweeps: int = 8) -> dict[str, list[tuple[int, float]]]:
    """The three Fig. 11 curves on a Nehalem EP node.

    * ``wavefront 1x4`` — one group of four threads pinned to the four
      physical cores of socket 0 (the paper's circles);
    * ``wavefront 1x4 (2 per socket)`` — the same group split across
      sockets (squares; "hazardous for performance");
    * ``threaded`` — the nontemporal-store threaded baseline
      (triangles).
    """
    machine = create_machine("nehalem_ep")
    kernel = OSKernel(machine, seed=7)
    same_socket = machine.spec.hwthreads_of_socket(0)[::2][:4]   # SMT0 of 4 cores
    split = [0, 1, 4, 5]  # two cores on each socket (SMT0 hwthreads)
    curves: dict[str, list[tuple[int, float]]] = {
        "wavefront 1x4": [],
        "wavefront 1x4 (2 per socket)": [],
        "threaded": [],
    }
    for n in sizes:
        cfg = JacobiConfig("wavefront", n, sweeps, 4)
        curves["wavefront 1x4"].append(
            (n, run_jacobi(machine, kernel, cfg, pin_cpus=same_socket).mlups))
        curves["wavefront 1x4 (2 per socket)"].append(
            (n, run_jacobi(machine, kernel, cfg, pin_cpus=split).mlups))
        base = JacobiConfig("threaded_nt", n, sweeps, 4)
        curves["threaded"].append(
            (n, run_jacobi(machine, kernel, base, pin_cpus=same_socket).mlups))
    return curves


# ---------------------------------------------------------------------------
# Table II: uncore measurement of temporal blocking
# ---------------------------------------------------------------------------

@dataclass
class Table2Row:
    variant: str
    l3_lines_in: float
    l3_lines_out: float
    data_volume_gb: float
    mlups: float


def table2_uncore(*, n: int = 480, sweeps: int = 18) -> list[Table2Row]:
    """Reproduce Table II end-to-end: the three Jacobi variants run on
    the four physical cores of one Nehalem EP socket while
    likwid-perfctr counts UNC_L3_LINES_IN_ANY / UNC_L3_LINES_OUT_ANY
    through the uncore PMU (socket locks engaged)."""
    rows: list[Table2Row] = []
    for variant in ("threaded", "threaded_nt", "wavefront"):
        machine = create_machine("nehalem_ep")
        kernel = OSKernel(machine, seed=11)
        perfctr = LikwidPerfCtr(machine)
        cfg = JacobiConfig(variant, n, sweeps, 4)
        outcome: dict[str, object] = {}

        def run(cfg=cfg, kernel=kernel, machine=machine, outcome=outcome):
            res = run_jacobi(machine, kernel, cfg, pin_cpus=[0, 1, 2, 3])
            outcome["mlups"] = res.mlups
            return res.result

        result = perfctr.wrap(
            "0-3",
            "UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1",
            run)
        lines_in = result.total("UNC_L3_LINES_IN_ANY")
        lines_out = result.total("UNC_L3_LINES_OUT_ANY")
        rows.append(Table2Row(
            variant=variant,
            l3_lines_in=lines_in,
            l3_lines_out=lines_out,
            data_volume_gb=(lines_in + lines_out) * 64 / 1e9,
            mlups=float(outcome["mlups"]),  # type: ignore[arg-type]
        ))
    return rows


def table2_nt_saving_exact(*, n: int = 16384,
                           engine: str = "batched") -> float:
    """Cross-check Table II's nontemporal-store discussion on the exact
    substrate: run a one-read-one-write stream (the Jacobi store
    pattern in miniature) through the cache simulator with temporal and
    nontemporal stores and return the measured DRAM-traffic saving.

    With write-allocate the kernel moves 24 B per element (8 read +
    8 allocate + 8 write back); nontemporal stores cut that to 16 B —
    exactly the "about 1/3 of the data transfer volume" the paper
    reports for the NT Jacobi variant.  *engine* selects the batched
    replay engine (default) or the scalar reference.
    """
    from repro.hw.prefetch import PrefetcherConfig
    from repro.hw.spec import CacheSpec
    from repro.workloads.kernels import streaming_load
    from repro.workloads.trace_cache import trace_arrays

    specs = [CacheSpec(1, "Data cache", 32 * 1024, 8, 64),
             CacheSpec(2, "Unified cache", 256 * 1024, 8, 64)]
    config = PrefetcherConfig.all_off()

    def dram_bytes(nontemporal: bool) -> int:
        trace = trace_arrays("copy_kernel", n, nontemporal=nontemporal)
        if engine == "batched":
            from repro.hw.batch import BatchHierarchy
            h = BatchHierarchy(list(specs), config)
            h.replay(trace)
        elif engine == "scalar":
            from repro.hw.cache import CacheHierarchy
            h = CacheHierarchy(list(specs), config)
            for op, addr, stream in trace:
                if op == "L":
                    h.load(addr, stream=stream)
                else:
                    h.store(addr, stream=stream, nontemporal=op == "N")
        else:
            raise ValueError(f"unknown trace engine {engine!r}; "
                             "choose 'batched' or 'scalar'")
        # Flush trailing dirty lines with a disjoint read sweep so the
        # write-allocate variant's writebacks all reach DRAM.
        for _op, addr, stream in streaming_load(64 * 1024, base=1 << 34,
                                                stream=9):
            h.load(addr, stream=stream)
        flush_lines = 64 * 1024 * 8 // 64
        return (h.dram_reads - flush_lines + h.dram_writes) * 64

    return 1.0 - dram_bytes(True) / dram_bytes(False)
