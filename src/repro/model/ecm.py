"""Analytic execution model (ECM-style) for large workloads.

Trace-driven simulation is exact but cannot push the paper's ~75 GB
Jacobi runs through Python in reasonable time.  This module implements
an Execution-Cache-Memory style model (the modelling approach of the
LIKWID authors themselves, paper reference [9]): each thread executes a
:class:`KernelPhase` describing per-iteration work (flops, instructions,
in-core cycles) and per-iteration traffic at each memory level; the
solver turns that into rates and runtimes under the machine's resource
constraints:

* in-core issue rate, shared between SMT siblings on one core;
* timeslicing when multiple threads are oversubscribed on one
  hardware thread (the unpinned-run pathology of Figs 4/7/9);
* per-thread memory concurrency (one stream cannot saturate a memory
  controller — the Table II discussion point);
* per-socket memory-controller bandwidth, shared by all streams whose
  data is homed on the socket, with a ccNUMA penalty for remote
  streams;
* per-socket shared-L3 bandwidth.

Execution is *progressive*: rates are re-solved whenever a thread
finishes, so bandwidth freed by early finishers is redistributed to the
stragglers (the memory controller is work-conserving).  The solution
also yields event-channel counts for the PMUs, so likwid-perfctr
measures a modelled run just as it would a real one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.events import Channel
from repro.hw.spec import ArchSpec

_EPS = 1e-12


@dataclass(frozen=True)
class KernelPhase:
    """Per-thread description of one homogeneous execution phase."""

    name: str
    iters: int                        # iterations this thread executes
    flops_per_iter: float = 0.0       # double-precision flops
    sp_flops_per_iter: float = 0.0    # single-precision flops
    packed_fraction: float = 1.0      # fraction of flops in packed SSE ops
    instr_per_iter: float = 4.0
    cycles_per_iter: float = 1.0      # in-core (L1-resident) cost
    loads_per_iter: float = 2.0
    stores_per_iter: float = 1.0
    nt_store_fraction: float = 0.0    # stores that bypass the cache
    branches_per_iter: float = 0.25
    branch_miss_rate: float = 0.02
    tlb_miss_per_iter: float = 0.0
    # Traffic volumes per iteration (bytes).
    l2_bytes_per_iter: float = 0.0    # L1 <-> L2
    l3_bytes_per_iter: float = 0.0    # L2 <-> L3
    mem_read_bytes_per_iter: float = 0.0   # DRAM -> socket
    mem_write_bytes_per_iter: float = 0.0  # socket -> DRAM
    # L3 allocation/victim volumes for the uncore LINES_IN/OUT events;
    # None means "streaming default": reads allocate, and everything
    # allocated is victimised again (clean) plus dirty writebacks.
    l3_fill_bytes_per_iter: float | None = None
    l3_victim_bytes_per_iter: float | None = None
    # Model knobs.
    mem_concurrency: float = 1.0      # fraction of thread_mem_bw reachable
    bw_efficiency: float = 1.0        # controller efficiency for this mix

    @property
    def mem_bytes_per_iter(self) -> float:
        return self.mem_read_bytes_per_iter + self.mem_write_bytes_per_iter

    @property
    def l3_fill_bytes(self) -> float:
        if self.l3_fill_bytes_per_iter is not None:
            return self.l3_fill_bytes_per_iter
        return self.mem_read_bytes_per_iter

    @property
    def l3_victim_bytes(self) -> float:
        if self.l3_victim_bytes_per_iter is not None:
            return self.l3_victim_bytes_per_iter
        return (self.mem_read_bytes_per_iter
                + self.mem_write_bytes_per_iter * (1.0 - self.nt_store_fraction))


@dataclass
class PlacedWork:
    """One compute thread's phase bound to hardware."""

    tid: int
    hwthread: int
    memory_socket: int
    phase: KernelPhase
    # Fraction of the phase during which this thread's accesses are
    # remote (it migrated away from its first-touch socket mid-run).
    remote_fraction: float = 0.0


@dataclass
class ThreadOutcome:
    tid: int
    hwthread: int
    rate: float          # average iterations / second
    runtime: float       # completion time (seconds from phase start)
    channels: dict[Channel, float] = field(default_factory=dict)


@dataclass
class RunResult:
    total_time: float
    threads: list[ThreadOutcome]
    socket_channels: dict[int, dict[Channel, float]]

    def aggregate(self, channel: Channel) -> float:
        """Sum a core-scope channel over all threads."""
        return sum(t.channels.get(channel, 0.0) for t in self.threads)


def _line_count(nbytes: float, line_size: int = 64) -> float:
    return nbytes / line_size


def _instant_rates(spec: ArchSpec, active: list[PlacedWork], *,
                   rounds: int = 12) -> list[float]:
    """Instantaneous rates for the currently running threads."""
    perf = spec.perf

    per_hwthread: dict[int, int] = {}
    per_core: dict[tuple[int, int], set[int]] = {}
    for w in active:
        per_hwthread[w.hwthread] = per_hwthread.get(w.hwthread, 0) + 1
        core = spec.physical_core_of(w.hwthread)
        per_core.setdefault(core, set()).add(w.hwthread)

    limits: list[float] = []
    for w in active:
        p = w.phase
        ts = 1.0 / per_hwthread[w.hwthread]
        occupied = len(per_core[spec.physical_core_of(w.hwthread)])
        issue = 1.0 if occupied <= 1 else perf.smt_issue_scale / occupied
        rate = spec.clock_hz * ts * issue / max(p.cycles_per_iter, _EPS)
        if p.mem_bytes_per_iter > 0:
            bw = perf.thread_mem_bw * p.mem_concurrency * ts
            run_socket = spec.socket_of(w.hwthread)
            remote = (1.0 if run_socket != w.memory_socket
                      else w.remote_fraction)
            if remote > 0:
                bw *= (1.0 - remote) + remote * perf.remote_mem_penalty
            rate = min(rate, bw / p.mem_bytes_per_iter)
        if p.l3_bytes_per_iter > 0:
            rate = min(rate, perf.thread_l3_bw * ts / p.l3_bytes_per_iter)
        limits.append(rate)

    rates = list(limits)
    for _ in range(rounds):
        mem_demand: dict[int, float] = {}
        remote_demand: dict[int, float] = {}
        l3_demand: dict[int, float] = {}
        for w, r in zip(active, rates):
            p = w.phase
            if p.mem_bytes_per_iter > 0:
                demand = r * p.mem_bytes_per_iter / max(p.bw_efficiency, _EPS)
                mem_demand[w.memory_socket] = (
                    mem_demand.get(w.memory_socket, 0.0) + demand)
                if spec.socket_of(w.hwthread) != w.memory_socket:
                    # Remote streams additionally cross the socket
                    # interconnect towards the home memory controller.
                    remote_demand[w.memory_socket] = (
                        remote_demand.get(w.memory_socket, 0.0) + demand)
            if p.l3_bytes_per_iter > 0:
                sock = spec.socket_of(w.hwthread)
                l3_demand[sock] = (l3_demand.get(sock, 0.0)
                                   + r * p.l3_bytes_per_iter)
        changed = False
        for i, w in enumerate(active):
            p = w.phase
            scale = 1.0
            if p.mem_bytes_per_iter > 0:
                demand = mem_demand[w.memory_socket]
                if demand > perf.socket_mem_bw:
                    scale = min(scale, perf.socket_mem_bw / demand)
                if spec.socket_of(w.hwthread) != w.memory_socket:
                    link = remote_demand[w.memory_socket]
                    if link > perf.interconnect_bw:
                        scale = min(scale, perf.interconnect_bw / link)
            if p.l3_bytes_per_iter > 0:
                demand = l3_demand[spec.socket_of(w.hwthread)]
                if demand > perf.socket_l3_bw:
                    scale = min(scale, perf.socket_l3_bw / demand)
            if scale < 1.0 - 1e-9:
                rates[i] *= scale
                changed = True
        if not changed:
            break
    return rates


def solve(spec: ArchSpec, work: list[PlacedWork]) -> RunResult:
    """Run all placed phases to completion and produce counters."""
    if not work:
        return RunResult(0.0, [], {})

    remaining = {i: float(max(w.phase.iters, 0)) for i, w in enumerate(work)}
    finish_time = {i: 0.0 for i in remaining}
    now = 0.0
    active_ids = [i for i, iters in remaining.items() if iters > 0]

    while active_ids:
        active = [work[i] for i in active_ids]
        rates = _instant_rates(spec, active)
        # Time until the next completion at current rates.
        dt = min(remaining[i] / max(r, _EPS)
                 for i, r in zip(active_ids, rates))
        now += dt
        survivors: list[int] = []
        for i, r in zip(active_ids, rates):
            remaining[i] -= r * dt
            if remaining[i] <= 1e-6 * max(work[i].phase.iters, 1):
                finish_time[i] = now
            else:
                survivors.append(i)
        active_ids = survivors

    total_time = max(finish_time.values())
    outcomes: list[ThreadOutcome] = []
    socket_channels: dict[int, dict[Channel, float]] = {}
    for i, w in enumerate(work):
        runtime = finish_time[i]
        rate = w.phase.iters / runtime if runtime > 0 else 0.0
        channels = _thread_channels(spec, w, runtime)
        outcomes.append(ThreadOutcome(w.tid, w.hwthread, rate, runtime, channels))
        sock = socket_channels.setdefault(w.memory_socket, {})
        _accumulate_socket(sock, w.phase)
    for sock in socket_channels.values():
        sock[Channel.UNC_CYCLES] = total_time * spec.clock_hz
    return RunResult(total_time, outcomes, socket_channels)


def _thread_channels(spec: ArchSpec, w: PlacedWork,
                     runtime: float) -> dict[Channel, float]:
    p = w.phase
    n = p.iters
    # A packed SSE double op performs 2 flops, a packed single op 4.
    packed_dp_ops = p.flops_per_iter * p.packed_fraction / 2.0 * n
    scalar_dp_ops = p.flops_per_iter * (1.0 - p.packed_fraction) * n
    packed_sp_ops = p.sp_flops_per_iter * p.packed_fraction / 4.0 * n
    scalar_sp_ops = p.sp_flops_per_iter * (1.0 - p.packed_fraction) * n
    stores = p.stores_per_iter * n
    nt = stores * p.nt_store_fraction
    return {
        Channel.INSTRUCTIONS: p.instr_per_iter * n,
        Channel.CORE_CYCLES: runtime * spec.clock_hz,
        Channel.REF_CYCLES: runtime * spec.clock_hz,
        Channel.FLOPS_PACKED_DP: packed_dp_ops,
        Channel.FLOPS_SCALAR_DP: scalar_dp_ops,
        Channel.FLOPS_PACKED_SP: packed_sp_ops,
        Channel.FLOPS_SCALAR_SP: scalar_sp_ops,
        Channel.LOADS: p.loads_per_iter * n,
        Channel.STORES: stores - nt,
        Channel.NT_STORES: nt,
        Channel.BRANCHES: p.branches_per_iter * n,
        Channel.BRANCH_MISSES: p.branches_per_iter * p.branch_miss_rate * n,
        Channel.DTLB_MISSES: p.tlb_miss_per_iter * n,
        Channel.L2_LINES_IN: _line_count(p.l2_bytes_per_iter * n),
        Channel.L2_LINES_OUT: _line_count(p.l2_bytes_per_iter * n) * 0.5,
        Channel.L2_REQUESTS: _line_count(p.l2_bytes_per_iter * n) * 1.1,
        Channel.L2_MISSES: _line_count(p.l3_bytes_per_iter * n),
        Channel.L1D_REPLACEMENT: _line_count(p.l2_bytes_per_iter * n),
        Channel.L1D_EVICT: _line_count(p.l2_bytes_per_iter * n) * 0.4,
        Channel.L3_REQUESTS: _line_count(p.l3_bytes_per_iter * n),
        Channel.L3_MISSES: _line_count(p.mem_bytes_per_iter * n),
        Channel.L3_LINES_IN_CORE: _line_count(p.mem_read_bytes_per_iter * n),
        Channel.DRAM_READS: _line_count(p.mem_read_bytes_per_iter * n),
        Channel.DRAM_WRITES: _line_count(p.mem_write_bytes_per_iter * n),
    }


def _accumulate_socket(sock: dict[Channel, float], p: KernelPhase) -> None:
    n = p.iters
    for channel, value in (
        (Channel.L3_LINES_IN, _line_count(p.l3_fill_bytes * n)),
        (Channel.L3_LINES_OUT, _line_count(p.l3_victim_bytes * n)),
        (Channel.MEM_READS, _line_count(p.mem_read_bytes_per_iter * n)),
        (Channel.MEM_WRITES, _line_count(p.mem_write_bytes_per_iter * n)),
        (Channel.UNC_L3_HITS, _line_count(p.l3_bytes_per_iter * n)),
        (Channel.UNC_L3_MISSES, _line_count(p.mem_bytes_per_iter * n)),
    ):
        sock[channel] = sock.get(channel, 0.0) + value
