"""Model diagnostics: which resource limits each thread, and by how much.

ECM-style modelling is only useful if the user can see *why* a rate
came out: this module re-derives each thread's standalone limits
(in-core issue, per-thread memory concurrency, L3 path) and the shared
caps (socket memory controller, interconnect, shared L3), then names
the binding constraint.  The bottleneck report is what turns a number
("783 MLUPS") into a diagnosis ("socket memory bandwidth, 21.3 GB/s,
100% utilised") — the analysis style of the paper's case study 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import ArchSpec
from repro.model.ecm import PlacedWork, RunResult, solve
from repro.tables import render_table

_EPS = 1e-12


@dataclass
class ThreadDiagnosis:
    tid: int
    hwthread: int
    rate: float
    limits: dict[str, float]        # resource -> standalone rate limit
    bottleneck: str                 # the resource actually binding

    @property
    def efficiency(self) -> float:
        """Achieved rate relative to the best standalone limit."""
        best = min(self.limits.values())
        return self.rate / best if best > 0 else 0.0


@dataclass
class SocketDiagnosis:
    socket: int
    mem_demand: float               # bytes/s requested at this controller
    mem_utilisation: float          # demand / socket_mem_bw (capped obs.)
    l3_demand: float
    l3_utilisation: float


@dataclass
class ModelDiagnosis:
    threads: list[ThreadDiagnosis]
    sockets: list[SocketDiagnosis]
    result: RunResult

    def bottlenecks(self) -> dict[str, int]:
        """Histogram of binding resources across threads."""
        out: dict[str, int] = {}
        for t in self.threads:
            out[t.bottleneck] = out.get(t.bottleneck, 0) + 1
        return out

    def render(self) -> str:
        rows = []
        for t in self.threads:
            rows.append([t.tid, t.hwthread, f"{t.rate:.4g}",
                         t.bottleneck, f"{100 * t.efficiency:.0f}%"])
        thread_table = render_table(
            ["tid", "cpu", "rate [it/s]", "bottleneck", "vs standalone"],
            rows)
        sock_rows = []
        for s in self.sockets:
            sock_rows.append([
                s.socket, f"{s.mem_demand / 1e9:.1f} GB/s",
                f"{100 * s.mem_utilisation:.0f}%",
                f"{s.l3_demand / 1e9:.1f} GB/s",
                f"{100 * s.l3_utilisation:.0f}%"])
        socket_table = render_table(
            ["socket", "mem demand", "mem util", "L3 demand", "L3 util"],
            sock_rows)
        return thread_table + "\n" + socket_table


def _standalone_limits(spec: ArchSpec, work: list[PlacedWork],
                       w: PlacedWork, occupancy) -> dict[str, float]:
    perf = spec.perf
    per_hwthread, per_core = occupancy
    p = w.phase
    ts = 1.0 / per_hwthread[w.hwthread]
    occupied = len(per_core[spec.physical_core_of(w.hwthread)])
    issue = 1.0 if occupied <= 1 else perf.smt_issue_scale / occupied
    limits = {"in-core issue":
              spec.clock_hz * ts * issue / max(p.cycles_per_iter, _EPS)}
    if p.mem_bytes_per_iter > 0:
        bw = perf.thread_mem_bw * p.mem_concurrency * ts
        remote = (1.0 if spec.socket_of(w.hwthread) != w.memory_socket
                  else w.remote_fraction)
        if remote > 0:
            bw *= (1.0 - remote) + remote * perf.remote_mem_penalty
        limits["memory concurrency"] = bw / p.mem_bytes_per_iter
    if p.l3_bytes_per_iter > 0:
        limits["L3 path"] = perf.thread_l3_bw * ts / p.l3_bytes_per_iter
    return limits


def diagnose(spec: ArchSpec, work: list[PlacedWork]) -> ModelDiagnosis:
    """Solve the model and attribute each thread's rate to a resource."""
    result = solve(spec, work)
    rates = {t.tid: t.rate for t in result.threads}

    per_hwthread: dict[int, int] = {}
    per_core: dict[tuple[int, int], set[int]] = {}
    for w in work:
        per_hwthread[w.hwthread] = per_hwthread.get(w.hwthread, 0) + 1
        per_core.setdefault(spec.physical_core_of(w.hwthread),
                            set()).add(w.hwthread)
    occupancy = (per_hwthread, per_core)

    mem_demand: dict[int, float] = {}
    l3_demand: dict[int, float] = {}
    threads: list[ThreadDiagnosis] = []
    for w in work:
        limits = _standalone_limits(spec, work, w, occupancy)
        rate = rates[w.tid]
        p = w.phase
        if p.mem_bytes_per_iter > 0:
            mem_demand[w.memory_socket] = (
                mem_demand.get(w.memory_socket, 0.0)
                + rate * p.mem_bytes_per_iter)
        if p.l3_bytes_per_iter > 0:
            sock = spec.socket_of(w.hwthread)
            l3_demand[sock] = (l3_demand.get(sock, 0.0)
                               + rate * p.l3_bytes_per_iter)
        # Binding resource: the standalone limit the thread actually
        # reached, else the shared resource that scaled it down.
        bottleneck = min(limits, key=limits.get)
        if rate < 0.999 * limits[bottleneck]:
            if (p.mem_bytes_per_iter > 0
                    and spec.socket_of(w.hwthread) != w.memory_socket):
                bottleneck = "interconnect / remote memory"
            elif p.mem_bytes_per_iter > 0:
                bottleneck = "socket memory bandwidth"
            else:
                bottleneck = "shared L3 bandwidth"
        threads.append(ThreadDiagnosis(w.tid, w.hwthread, rate,
                                       limits, bottleneck))

    sockets = []
    for socket in sorted(set(mem_demand) | set(l3_demand)):
        md = mem_demand.get(socket, 0.0)
        ld = l3_demand.get(socket, 0.0)
        sockets.append(SocketDiagnosis(
            socket, md, md / spec.perf.socket_mem_bw,
            ld, ld / spec.perf.socket_l3_bw))
    return ModelDiagnosis(threads, sockets, result)
