"""Analytic machine performance model (ECM-style)."""

from repro.model.ecm import (KernelPhase, PlacedWork, RunResult,
                             ThreadOutcome, solve)
from repro.model.explain import ModelDiagnosis, diagnose

__all__ = ["KernelPhase", "PlacedWork", "RunResult", "ThreadOutcome",
           "solve", "ModelDiagnosis", "diagnose"]
