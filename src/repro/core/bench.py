"""likwid-bench: low-level bandwidth benchmarking ("bandwidth map").

The paper's outlook: "low-level benchmarking with a tool creating a
'bandwidth map'.  This will allow a quick overview of the cache and
memory bandwidth bottlenecks in a shared-memory node, including the
ccNUMA behavior."

Two instruments:

* :func:`bandwidth_ladder` — sweep a streaming kernel's working-set
  size through the cache hierarchy and report the sustained bandwidth
  plateau per level (the classic L1/L2/L3/memory staircase).
* :func:`numa_bandwidth_map` — pin a thread group to each NUMA domain
  and stream from every memory domain in turn; the resulting matrix
  exposes the local/remote bandwidth asymmetry.  The map is produced
  by the same contention solver the workloads use, so it is consistent
  with every other number in this package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.machine import SimMachine
from repro.model.ecm import KernelPhase, PlacedWork, solve
from repro.tables import render_table


@dataclass(frozen=True)
class BenchKernel:
    """One streaming microkernel (likwid-bench test case)."""

    name: str
    read_streams: int
    write_streams: int
    nontemporal: bool = False
    flops_per_element: float = 0.0

    @property
    def bytes_per_element(self) -> float:
        """Traffic per scalar element including write-allocate."""
        writes = self.write_streams * (1.0 if self.nontemporal else 2.0)
        return 8.0 * (self.read_streams + writes)

    @property
    def reported_bytes_per_element(self) -> float:
        """What the benchmark reports (reads + writes, no allocate)."""
        return 8.0 * (self.read_streams + self.write_streams)


KERNELS: dict[str, BenchKernel] = {
    "load": BenchKernel("load", read_streams=1, write_streams=0),
    "store": BenchKernel("store", read_streams=0, write_streams=1),
    "store_nt": BenchKernel("store_nt", 0, 1, nontemporal=True),
    "copy": BenchKernel("copy", read_streams=1, write_streams=1),
    "triad": BenchKernel("triad", 2, 1, flops_per_element=2.0),
    "triad_nt": BenchKernel("triad_nt", 2, 1, nontemporal=True,
                            flops_per_element=2.0),
}

#: Trace-kernel equivalent of each bench kernel, for the exact engines.
_TRACE_EQUIVALENT: dict[str, tuple[str, dict]] = {
    "load": ("streaming_load", {}),
    "store": ("streaming_store", {}),
    "store_nt": ("streaming_store", {"nontemporal": True}),
    "copy": ("copy_kernel", {}),
    "triad": ("streaming_triad", {}),
    "triad_nt": ("streaming_triad", {"nontemporal": True}),
}


def measure_kernel_traffic(kernel: str, *, engine: str = "batched",
                           n: int = 16384) -> tuple[float, float]:
    """Per-element DRAM (read, write) bytes of one bench kernel,
    measured on the exact cache-simulator substrate instead of taken
    from the closed-form stream counts.

    *engine* selects the batched replay engine (default) or the scalar
    reference; both are bit-exact with each other.  The measurement
    runs on a fixed two-level hierarchy (the steady-state per-element
    volume is hierarchy-independent for streaming kernels) and flushes
    trailing dirty lines so writebacks are fully accounted.
    """
    from repro.hw.prefetch import PrefetcherConfig
    from repro.hw.spec import CacheSpec
    from repro.workloads.kernels import streaming_load
    from repro.workloads.trace_cache import trace_arrays

    try:
        name, params = _TRACE_EQUIVALENT[kernel]
    except KeyError:
        raise WorkloadError(
            f"unknown bench kernel {kernel!r}; known: "
            f"{', '.join(sorted(_TRACE_EQUIVALENT))}") from None
    trace = trace_arrays(name, n, **params)
    specs = [CacheSpec(1, "Data cache", 32 * 1024, 8, 64),
             CacheSpec(2, "Unified cache", 256 * 1024, 8, 64)]
    config = PrefetcherConfig.all_off()
    if engine == "batched":
        from repro.hw.batch import BatchHierarchy
        h = BatchHierarchy(specs, config)
        h.replay(trace)
    elif engine == "scalar":
        from repro.hw.cache import CacheHierarchy
        h = CacheHierarchy(specs, config)
        for op, addr, stream in trace:
            if op == "L":
                h.load(addr, stream=stream)
            else:
                h.store(addr, stream=stream, nontemporal=op == "N")
    else:
        raise WorkloadError(f"unknown trace engine {engine!r}; "
                            "choose 'batched' or 'scalar'")
    flush_elements = 64 * 1024
    for _op, addr, stream in streaming_load(flush_elements, base=1 << 34,
                                            stream=9):
        h.load(addr, stream=stream)
    reads = h.dram_reads - flush_elements * 8 // 64
    return reads * 64 / n, h.dram_writes * 64 / n


@dataclass
class LadderPoint:
    """One working-set size of the bandwidth ladder."""

    working_set: int       # bytes per thread
    level: str             # "L1" | "L2" | "L3" | "MEM"
    bandwidth: float       # sustained bytes/s for the thread group


def _fit_level(machine: SimMachine, working_set: int,
               threads_per_llc: int) -> str:
    """Which level holds a per-thread working set of this size."""
    for cache in machine.spec.data_caches():
        share = cache.size
        if cache.level == machine.spec.last_level_cache().level:
            share = cache.size // max(threads_per_llc, 1)
        elif cache.threads_sharing > machine.spec.threads_per_core:
            share = cache.size // (cache.threads_sharing
                                   // machine.spec.threads_per_core)
        if working_set <= share:
            return f"L{cache.level}"
    return "MEM"


def bandwidth_ladder(machine: SimMachine, kernel: str = "load",
                     cpus: list[int] | None = None,
                     sizes: list[int] | None = None,
                     *, engine: str = "analytic") -> list[LadderPoint]:
    """Sweep the working set through the hierarchy on the given cores.

    Each point reports the thread group's aggregate bandwidth at that
    per-thread working-set size.

    *engine* selects where the memory-level traffic volumes come from:
    ``"analytic"`` (default — the closed-form stream counts the solver
    is calibrated against) or ``"batched"``/``"scalar"``, which run the
    kernel's trace equivalent through the exact cache simulator via
    :func:`measure_kernel_traffic`.  For these streaming kernels the
    substrates agree exactly, so the ladder itself is unchanged — the
    selector exists so sweeps can be driven from measured traffic.
    """
    try:
        k = KERNELS[kernel]
    except KeyError:
        raise WorkloadError(
            f"unknown bench kernel {kernel!r}; known: "
            f"{', '.join(sorted(KERNELS))}") from None
    if engine == "analytic":
        mem_read_per_element = 8.0 * k.read_streams \
            + (0.0 if k.nontemporal else 8.0 * k.write_streams)
        mem_write_per_element = 8.0 * k.write_streams
    else:
        mem_read_per_element, mem_write_per_element = \
            measure_kernel_traffic(kernel, engine=engine)
    spec = machine.spec
    perf = spec.perf
    if cpus is None:
        cpus = [0]
    if sizes is None:
        sizes = [1 << p for p in range(12, 28)]   # 4 kB .. 128 MB

    llc = spec.last_level_cache()
    threads_per_llc = sum(
        1 for c in cpus
        if spec.socket_of(c) == spec.socket_of(cpus[0]))

    points: list[LadderPoint] = []
    for size in sizes:
        level = _fit_level(machine, size, threads_per_llc)
        if level == f"L{llc.level}":
            phase = KernelPhase(
                f"bench_{kernel}", iters=size // 8,
                cycles_per_iter=k.bytes_per_element / perf.l1_bytes_per_cycle,
                l3_bytes_per_iter=k.bytes_per_element,
                flops_per_iter=k.flops_per_element)
        elif level == "MEM":
            phase = KernelPhase(
                f"bench_{kernel}", iters=size // 8,
                cycles_per_iter=k.bytes_per_element / perf.l1_bytes_per_cycle,
                l3_bytes_per_iter=k.bytes_per_element,
                mem_read_bytes_per_iter=mem_read_per_element,
                mem_write_bytes_per_iter=mem_write_per_element,
                nt_store_fraction=1.0 if k.nontemporal else 0.0,
                flops_per_iter=k.flops_per_element)
        else:
            # L1/L2 resident: core-private load/store path limit.
            per_cycle = (perf.l1_bytes_per_cycle if level == "L1"
                         else perf.l2_bytes_per_cycle)
            phase = KernelPhase(
                f"bench_{kernel}", iters=size // 8,
                cycles_per_iter=k.bytes_per_element / per_cycle,
                flops_per_iter=k.flops_per_element)
        work = [PlacedWork(tid=i, hwthread=cpu,
                           memory_socket=spec.socket_of(cpu), phase=phase)
                for i, cpu in enumerate(cpus)]
        result = solve(spec, work)
        total_bytes = k.reported_bytes_per_element * phase.iters * len(cpus)
        points.append(LadderPoint(size, level,
                                  total_bytes / result.total_time))
    return points


def numa_bandwidth_map(machine: SimMachine, kernel: str = "copy",
                       threads_per_domain: int | None = None
                       ) -> list[list[float]]:
    """Bandwidth matrix [run domain][memory domain] in bytes/s.

    Threads are pinned to the physical cores of one NUMA domain and
    stream data homed on another; the diagonal shows local bandwidth,
    off-diagonal entries the ccNUMA penalty.
    """
    k = KERNELS[kernel]
    spec = machine.spec
    n_domains = spec.num_numa_domains
    if threads_per_domain is None:
        threads_per_domain = spec.cores_per_socket \
            // spec.numa_domains_per_socket
    matrix: list[list[float]] = []
    for run_domain in range(n_domains):
        cpus = [hw for hw in spec.hwthreads_of_numa_domain(run_domain)
                if spec.hwthread_location(hw)[2] == 0][:threads_per_domain]
        row: list[float] = []
        for mem_domain in range(n_domains):
            mem_socket = mem_domain // spec.numa_domains_per_socket
            phase = KernelPhase(
                f"numa_{kernel}", iters=1_000_000,
                cycles_per_iter=0.5,
                mem_read_bytes_per_iter=8.0 * k.read_streams
                + (0.0 if k.nontemporal else 8.0 * k.write_streams),
                mem_write_bytes_per_iter=8.0 * k.write_streams,
                nt_store_fraction=1.0 if k.nontemporal else 0.0)
            work = [PlacedWork(tid=i, hwthread=cpu,
                               memory_socket=mem_socket, phase=phase)
                    for i, cpu in enumerate(cpus)]
            result = solve(spec, work)
            total = (k.reported_bytes_per_element * phase.iters * len(cpus))
            row.append(total / result.total_time)
        matrix.append(row)
    return matrix


@dataclass(frozen=True)
class Workgroup:
    """One likwid-bench workgroup: a thread team streaming over a
    working set inside an affinity domain (``-w S0:1GB:4``)."""

    domain: str
    size: int          # bytes, total working set of the group
    nthreads: int

    @classmethod
    def parse(cls, text: str) -> "Workgroup":
        """Parse the likwid-bench syntax '<domain>:<size>[:<threads>]'
        with size suffixes kB/MB/GB."""
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise WorkloadError(
                f"malformed workgroup {text!r} (want DOMAIN:SIZE[:THREADS])")
        from repro.units import parse_size
        try:
            size = parse_size(parts[1])
        except ValueError:
            raise WorkloadError(f"bad size in workgroup {text!r}") from None
        nthreads = 1
        if len(parts) == 3:
            try:
                nthreads = int(parts[2])
            except ValueError:
                raise WorkloadError(
                    f"bad thread count in workgroup {text!r}") from None
        if size <= 0 or nthreads < 1:
            raise WorkloadError(f"non-positive workgroup {text!r}")
        return cls(parts[0], size, nthreads)


@dataclass
class WorkgroupResult:
    workgroup: Workgroup
    cpus: list[int]
    bandwidth: float      # reported bytes/s
    flops: float          # flops/s (triad kernels)
    runtime: float


def run_workgroups(machine: SimMachine, kernel: str,
                   workgroups: list[Workgroup],
                   *, iterations: int = 4) -> list[WorkgroupResult]:
    """Execute one bench kernel over several workgroups concurrently.

    All groups run in a single solve, so two groups hammering the same
    socket genuinely share its bandwidth — the way likwid-bench
    exposes contention between thread teams.
    """
    from repro.core.affinity import affinity_domains
    try:
        k = KERNELS[kernel]
    except KeyError:
        raise WorkloadError(
            f"unknown bench kernel {kernel!r}; known: "
            f"{', '.join(sorted(KERNELS))}") from None
    spec = machine.spec
    domains = affinity_domains(spec)
    work: list[PlacedWork] = []
    group_tids: list[list[int]] = []
    tid = 0
    for wg in workgroups:
        try:
            members = domains[wg.domain]
        except KeyError:
            raise WorkloadError(
                f"unknown affinity domain {wg.domain!r}; available: "
                f"{', '.join(sorted(domains))}") from None
        if wg.nthreads > len(members):
            raise WorkloadError(
                f"workgroup {wg.domain} has only {len(members)} cpus")
        cpus = members[:wg.nthreads]
        elements = wg.size // 8 // max(1, k.read_streams + k.write_streams)
        per_thread = max(elements // wg.nthreads, 1) * iterations
        phase = KernelPhase(
            f"bench_{kernel}", iters=per_thread,
            flops_per_iter=k.flops_per_element,
            cycles_per_iter=0.5,
            mem_read_bytes_per_iter=8.0 * k.read_streams
            + (0.0 if k.nontemporal else 8.0 * k.write_streams),
            mem_write_bytes_per_iter=8.0 * k.write_streams,
            nt_store_fraction=1.0 if k.nontemporal else 0.0)
        tids = []
        for cpu in cpus:
            work.append(PlacedWork(tid, cpu, spec.socket_of(cpu), phase))
            tids.append(tid)
            tid += 1
        group_tids.append(tids)
    result = solve(spec, work)
    runtimes = {t.tid: t.runtime for t in result.threads}
    out: list[WorkgroupResult] = []
    for wg, tids in zip(workgroups, group_tids):
        group_runtime = max(runtimes[t] for t in tids)
        per_thread = next(w.phase.iters for w in work if w.tid == tids[0])
        total_elements = per_thread * len(tids)
        members = domains[wg.domain][:wg.nthreads]
        out.append(WorkgroupResult(
            workgroup=wg, cpus=members,
            bandwidth=k.reported_bytes_per_element * total_elements
            / group_runtime,
            flops=k.flops_per_element * total_elements / group_runtime,
            runtime=group_runtime))
    return out


def render_workgroups(results: list[WorkgroupResult],
                      kernel: str) -> str:
    rows = []
    for r in results:
        wg = r.workgroup
        rows.append([f"{wg.domain}:{wg.size // 1024}kB:{wg.nthreads}",
                     " ".join(map(str, r.cpus)),
                     f"{r.bandwidth / 1e6:.0f} MB/s",
                     f"{r.flops / 1e6:.0f} MFlop/s",
                     f"{r.runtime:.4f} s"])
    total_bw = sum(r.bandwidth for r in results)
    rows.append(["TOTAL", "", f"{total_bw / 1e6:.0f} MB/s", "", ""])
    return render_table(
        [f"workgroup ({kernel})", "cpus", "bandwidth", "flops", "runtime"],
        rows)


def render_ladder(points: list[LadderPoint]) -> str:
    """The bandwidth-map staircase as a table."""
    rows = []
    for p in points:
        rows.append([f"{p.working_set // 1024} kB", p.level,
                     f"{p.bandwidth / 1e9:.1f} GB/s"])
    return render_table(["working set", "level", "bandwidth"], rows)


def render_numa_map(matrix: list[list[float]]) -> str:
    header = ["cores \\ memory"] + [f"M{j}" for j in range(len(matrix))]
    rows = []
    for i, row in enumerate(matrix):
        rows.append([f"M{i}"] + [f"{v / 1e9:.1f} GB/s" for v in row])
    return render_table(header, rows)
