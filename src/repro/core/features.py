"""likwid-features: view and toggle processor features (paper §II.D).

Reads and writes the feature bits of ``IA32_MISC_ENABLE`` through the
msr device files.  Only the four prefetcher bits are writable; the
remaining entries (SpeedStep, thermal control, BTS, PEBS, ...) are
report-only.  Like the original tool, this "currently only works for
Intel Core 2 processors".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FeatureError
from repro.hw import registers as regs
from repro.oskern.msr_driver import MsrDriver
from repro.tables import RULE

# Features whose display wording is supported/not supported rather than
# enabled/disabled (capabilities, not switches).
_CAPABILITY_KEYS = {"BTS", "PEBS", "MONITOR"}


@dataclass(frozen=True)
class FeatureState:
    name: str
    key: str
    enabled: bool
    writable: bool

    @property
    def display(self) -> str:
        if self.key in _CAPABILITY_KEYS:
            return "supported" if self.enabled else "not supported"
        return "enabled" if self.enabled else "disabled"


class LikwidFeatures:
    """The likwid-features tool bound to one CPU of a machine."""

    def __init__(self, driver: MsrDriver, cpu: int = 0):
        self.driver = driver
        self.machine = driver.machine
        self.cpu = cpu
        if not self.machine.spec.has_misc_enable:
            raise FeatureError(
                f"likwid-features only supports Intel Core 2 processors "
                f"(got {self.machine.spec.cpu_name})")

    # -- reading -----------------------------------------------------------

    def _read(self) -> int:
        msr = self.driver.open(self.cpu, write=False)
        try:
            return msr.read_msr(regs.IA32_MISC_ENABLE)
        finally:
            msr.close()

    def state(self, key: str) -> FeatureState:
        """Current state of one feature by its command-line key."""
        bit = self._bit(key)
        raw = bool(self._read() & (1 << bit.bit))
        enabled = (not raw) if bit.invert else raw
        return FeatureState(bit.name, bit.key, enabled, bit.writable)

    def states(self) -> list[FeatureState]:
        """All features, in the report order of the paper's listing."""
        value = self._read()
        out = []
        for bit in regs.MISC_ENABLE_BITS:
            raw = bool(value & (1 << bit.bit))
            enabled = (not raw) if bit.invert else raw
            out.append(FeatureState(bit.name, bit.key, enabled, bit.writable))
        return out

    # -- toggling ------------------------------------------------------------

    def _bit(self, key: str) -> regs.MiscEnableBit:
        try:
            return regs.MISC_ENABLE_BY_KEY[key.upper()]
        except KeyError:
            raise FeatureError(
                f"unknown feature {key!r}; known: "
                f"{', '.join(sorted(regs.MISC_ENABLE_BY_KEY))}") from None

    def _set(self, key: str, enabled: bool) -> FeatureState:
        """Read-modify-write-verify with restore-on-mismatch.

        The write is journaled (crash safety: a kill between write and
        verify is undone by ``--recover``), then read back.  If the
        device did not latch the requested value — a masked bit, a
        misdeclared write mask — the original value is written back
        and :class:`~repro.errors.FeatureError` is raised, so a
        half-applied toggle never survives the tool run."""
        bit = self._bit(key)
        if not bit.writable:
            raise FeatureError(f"feature {bit.key} is read-only")
        raw_bit_value = (not enabled) if bit.invert else enabled
        epoch = self.driver.begin_epoch()
        try:
            msr = self.driver.open(self.cpu, write=True)
            try:
                before = msr.read_msr(regs.IA32_MISC_ENABLE)
                if raw_bit_value:
                    value = before | (1 << bit.bit)
                else:
                    value = before & ~(1 << bit.bit)
                msr.journaled_write(regs.IA32_MISC_ENABLE, value)
                readback = msr.read_msr(regs.IA32_MISC_ENABLE)
                if readback != value:
                    msr.journaled_write(regs.IA32_MISC_ENABLE, before)
                    restored = msr.read_msr(regs.IA32_MISC_ENABLE)
                    state = ("original value restored"
                             if restored == before
                             else f"restore also failed (left "
                                  f"{restored:#x})")
                    raise FeatureError(
                        f"verify failed toggling {bit.key} on cpu "
                        f"{self.cpu}: wrote {value:#x}, read back "
                        f"{readback:#x}; {state}")
            finally:
                msr.close()
        finally:
            self.driver.end_epoch(epoch)
        return self.state(key)

    def enable(self, key: str) -> FeatureState:
        """``likwid-features -e <KEY>``"""
        return self._set(key, True)

    def disable(self, key: str) -> FeatureState:
        """``likwid-features -u <KEY>``"""
        return self._set(key, False)

    # -- report ----------------------------------------------------------------

    def report(self) -> str:
        """The paper's listing format."""
        lines = [RULE,
                 f"CPU name:\t{self.machine.spec.cpu_name}",
                 f"CPU core id:\t{self.cpu}",
                 RULE]
        for st in self.states():
            lines.append(f"{st.name}: {st.display}")
        lines.append(RULE)
        return "\n".join(lines)
