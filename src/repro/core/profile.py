"""likwid-profile: overflow-driven statistical (IP) sampling.

The paper (§II.A) distinguishes two ways of using counters: aggregate
counts over a run (likwid-perfCtr's choice), or "overflowing hardware
counters can generate interrupts, which can be used for IP or
call-stack sampling ... a very fine-grained view on a code's resource
requirements (limited only by the inherent statistical errors)".  The
outlook then names "profiling (also on the assembly level)" as a
future application of the LIKWID philosophy.

This module implements that profiler on the simulated PMU's real
overflow machinery: the sampled counter is preloaded to
``2^48 - period`` so it wraps after *period* events, each wrap raises
the PMI which attributes one sample to the symbol executing at that
moment.  The application is a sequence of :class:`CodeSegment` — the
simulation's stand-in for an instruction stream with symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CounterError
from repro.hw import registers as regs
from repro.hw.events import Channel
from repro.hw.machine import SimMachine
from repro.hw.pmu import COUNTER_MASK
from repro.tables import render_table


@dataclass(frozen=True)
class CodeSegment:
    """A run of execution inside one symbol (function/loop/basic block)."""

    symbol: str
    cycles: float
    channels: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass
class ProfileEntry:
    symbol: str
    samples: int
    fraction: float
    estimated_events: float


class SamplingProfiler:
    """Statistical profiler over one hardware thread.

    *event* selects what the sampling period is measured in —
    CPU_CLK_UNHALTED_CORE gives a time profile, a cache-miss event a
    miss profile (the "assembly level" resource view).
    """

    def __init__(self, machine: SimMachine, cpu: int, *,
                 event: str = "CPU_CLK_UNHALTED_CORE",
                 period: int = 100_000):
        if period < 1:
            raise CounterError("sampling period must be >= 1")
        self.machine = machine
        self.cpu = cpu
        self.period = period
        self.event = machine.spec.events.lookup(event)
        self.samples: dict[str, int] = {}
        self._current_symbol: str | None = None
        self._pmu = machine.core_pmus[cpu]
        self._armed = False

    # -- PMI plumbing -----------------------------------------------------

    def _counter_addr(self) -> int:
        if self.event.is_fixed:
            return regs.IA32_FIXED_CTR0 + self.event.fixed_index
        return self.machine.spec.pmu.pmc_address(0)

    def _status_bit(self) -> int:
        return (32 + self.event.fixed_index if self.event.is_fixed else 0)

    def _arm(self) -> None:
        """Preload the counter so it overflows after one period."""
        self.machine.msr[self.cpu].poke(self._counter_addr(),
                                        COUNTER_MASK - self.period + 1)

    def _pmi(self, _hwthread: int, status_bit: int) -> None:
        if status_bit != self._status_bit():
            return
        if self._current_symbol is not None:
            self.samples[self._current_symbol] = \
                self.samples.get(self._current_symbol, 0) + 1
        # Acknowledge and re-arm, like a PMI handler does.
        self.machine.msr[self.cpu].write(regs.IA32_PERF_GLOBAL_OVF_CTRL,
                                         1 << status_bit)
        self._arm()

    def _enable(self) -> None:
        msr = self.machine.msr[self.cpu]
        if self.event.is_fixed:
            ctrl = msr.peek(regs.IA32_FIXED_CTR_CTRL)
            msr.write(regs.IA32_FIXED_CTR_CTRL, ctrl
                      | regs.fixed_ctr_ctrl_encode(self.event.fixed_index))
            enable_bit = regs.global_ctrl_fixed_bit(self.event.fixed_index)
        else:
            msr.write(self.machine.spec.pmu.evtsel_address(0),
                      regs.evtsel_encode(self.event.event_code,
                                         self.event.umask, enable=True))
            enable_bit = regs.global_ctrl_pmc_bit(0)
        ctrl = msr.peek(regs.IA32_PERF_GLOBAL_CTRL)
        msr.write(regs.IA32_PERF_GLOBAL_CTRL, ctrl | enable_bit)

    # -- running ------------------------------------------------------------

    def run(self, segments: list[CodeSegment], *,
            chunk: int | None = None) -> None:
        """Execute an annotated instruction stream under sampling.

        Each segment's cycles (and channels) are fed to the PMU in
        chunks no larger than the sampling period so overflow points
        land inside the right symbol.
        """
        if self._armed:
            raise CounterError("profiler already ran; create a new one")
        self._armed = True
        chunk = chunk or max(self.period // 4, 1)
        self._pmu.overflow_handlers.append(self._pmi)
        self._enable()
        self._arm()
        try:
            for segment in segments:
                self._current_symbol = segment.symbol
                remaining = segment.cycles
                total = max(segment.cycles, 1e-12)
                while remaining > 0:
                    step = min(chunk, remaining)
                    share = step / total
                    counts = {Channel.CORE_CYCLES: step,
                              Channel.REF_CYCLES: step,
                              Channel.INSTRUCTIONS: step}
                    for channel, value in segment.channels.items():
                        counts[channel] = value * share
                    self.machine.apply_counts({self.cpu: counts})
                    remaining -= step
        finally:
            self._current_symbol = None
            self._pmu.overflow_handlers.remove(self._pmi)

    # -- reporting -------------------------------------------------------------

    def profile(self) -> list[ProfileEntry]:
        """Flat profile, hottest symbol first."""
        total = sum(self.samples.values())
        entries = [
            ProfileEntry(symbol, count,
                         count / total if total else 0.0,
                         count * self.period)
            for symbol, count in self.samples.items()
        ]
        entries.sort(key=lambda e: e.samples, reverse=True)
        return entries

    def render(self) -> str:
        rows = [[e.symbol, e.samples, f"{100 * e.fraction:.1f}%",
                 f"{e.estimated_events:.3g}"]
                for e in self.profile()]
        return render_table(
            ["symbol", "samples", "fraction",
             f"estimated {self.event.name}"], rows)
