"""likwid-pin: enforce thread-core affinity "from the outside".

Reproduces the tool's launch sequence (paper §II.C, Fig. 3):

1. parse the core list and resolve the skip mask from ``-t``/``-s``;
2. export the list and mask in environment variables;
3. set ``KMP_AFFINITY=disabled`` so the Intel runtime's own affinity
   machinery cannot interfere (the current LIKWID "does this
   automatically", §II.C);
4. preload the pthread_create wrapper library;
5. pin the starting process to the first core of the list and hand
   over to the application.

Unlike ``taskset`` it pins threads *individually*, and (also like the
real tool) it does not establish a Linux cpuset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.affinity import resolve_affinity_expression, skip_mask_for
from repro.errors import AffinityError
from repro.oskern.preload import ENV_CPULIST, ENV_SKIP, PinOverlay
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread


@dataclass
class PinnedProcess:
    """Handle returned by :meth:`LikwidPin.launch`."""

    master: SimThread
    overlay: PinOverlay
    cpus: list[int]
    skip_mask: int


class LikwidPin:
    """The likwid-pin tool bound to one simulated OS."""

    def __init__(self, kernel: OSKernel):
        self.kernel = kernel

    def launch(self, corelist: str, *, thread_type: str | None = None,
               skip: int | None = None, name: str = "a.out") -> PinnedProcess:
        """``likwid-pin -c <corelist> [-t <type>] [-s <mask>] <name>``

        The core list accepts physical ids ("0-3") and affinity-domain
        expressions with logical ids ("S1:0-3", "M0:0,2", "N:0-7").
        Returns the pinned master thread; the installed overlay then
        pins every subsequently created thread per the skip mask.
        """
        cpus = resolve_affinity_expression(self.kernel.machine.spec,
                                           corelist)
        mask = skip_mask_for(thread_type, skip)

        env = self.kernel.env
        env[ENV_CPULIST] = ",".join(str(c) for c in cpus)
        env[ENV_SKIP] = hex(mask)
        env["KMP_AFFINITY"] = "disabled"  # avoid icc-runtime interference

        overlay = PinOverlay().install(self.kernel)
        master = self.kernel.spawn_process(name)
        overlay.pin_master(self.kernel, master)
        return PinnedProcess(master, overlay, cpus, mask)

    def lint(self, corelist: str, *, thread_type: str | None = None,
             skip: int | None = None, group=None) -> list:
        """Static placement diagnostics for a prospective launch,
        without spawning anything (same analysis as ``repro-lint -c``).

        Returns :class:`repro.analysis.Diagnostic` objects; an empty
        list means the placement is clean."""
        from repro.analysis import lint_affinity
        return lint_affinity(self.kernel.machine.spec, corelist,
                             skip_mask=skip, thread_type=thread_type,
                             group=group)

    def verify(self, process: PinnedProcess) -> dict[int, int]:
        """Map each pinned tid to the single CPU its mask allows —
        a post-hoc check that pinning took effect."""
        placements: dict[int, int] = {}
        for tid in [process.master.tid, *process.overlay.pinned_tids]:
            mask = self.kernel.sched_getaffinity(tid)
            if len(mask) != 1:
                raise AffinityError(f"tid {tid} is not pinned (mask {sorted(mask)})")
            placements[tid] = next(iter(mask))
        return placements
