"""MPI-wide performance counting (likwid-mpirun precursor).

The paper's outlook: "Further goals are the combination of LIKWID with
one of the available MPI profiling frameworks to facilitate the
collection of performance counter data in MPI programs."

:class:`MpiPerfCtr` runs one likwid-perfctr session per MPI rank (each
on its own node's msr driver), wraps the ranks' execution, and reduces
the per-rank results into the min/max/avg/sum statistics an MPI
profiler reports — including the per-rank imbalance view that
motivates collecting counters across ranks in the first place.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.perfctr.measurement import LikwidPerfCtr, MeasurementResult
from repro.errors import CounterError
from repro.oskern.mpi import MpiExec, MpiRank
from repro.tables import render_table


@dataclass
class EventStatistics:
    """Cross-rank reduction of one event (summed over each rank's cpus)."""

    event: str
    minimum: float
    maximum: float
    average: float
    total: float
    min_rank: int
    max_rank: int

    @property
    def imbalance(self) -> float:
        """max/avg — 1.0 means perfectly balanced."""
        return self.maximum / self.average if self.average else 0.0


@dataclass
class MpiMeasurement:
    """All ranks' results plus reductions."""

    group_or_events: str
    per_rank: dict[int, MeasurementResult] = field(default_factory=dict)

    def rank_total(self, rank: int, event: str) -> float:
        return self.per_rank[rank].total(event)

    def events(self) -> list[str]:
        first = next(iter(self.per_rank.values()))
        names: list[str] = []
        for cpu in first.cpus:
            for name in first.counts[cpu]:
                if name not in names:
                    names.append(name)
        return names

    def statistics(self, event: str) -> EventStatistics:
        totals = {rank: result.total(event)
                  for rank, result in self.per_rank.items()}
        if not totals:
            raise CounterError("no rank results")
        min_rank = min(totals, key=totals.get)
        max_rank = max(totals, key=totals.get)
        values = list(totals.values())
        return EventStatistics(
            event=event,
            minimum=totals[min_rank], maximum=totals[max_rank],
            average=sum(values) / len(values), total=sum(values),
            min_rank=min_rank, max_rank=max_rank)

    def render(self) -> str:
        rows = []
        for event in self.events():
            s = self.statistics(event)
            rows.append([event, f"{s.total:.6g}", f"{s.average:.6g}",
                         f"{s.minimum:.6g} (r{s.min_rank})",
                         f"{s.maximum:.6g} (r{s.max_rank})",
                         f"{s.imbalance:.2f}"])
        return render_table(
            ["Event", "sum", "avg/rank", "min", "max", "max/avg"], rows)


class MpiPerfCtr:
    """likwid-perfctr across all ranks of an MPI job."""

    def __init__(self, mpiexec: MpiExec, group_or_events: str,
                 cpus_per_rank: str | list[int] = "0-3"):
        if not mpiexec.ranks:
            raise CounterError("mpiexec has no launched ranks")
        self.mpiexec = mpiexec
        self.group_or_events = group_or_events
        self.cpus_per_rank = cpus_per_rank

    def wrap(self, run_rank: Callable[[MpiRank], object]) -> MpiMeasurement:
        """Measure every rank's execution of *run_rank*.

        Each rank's session programs the counters of its own node —
        ranks on different nodes measure truly independent hardware.
        """
        measurement = MpiMeasurement(self.group_or_events)
        for rank in self.mpiexec.ranks:
            perfctr = LikwidPerfCtr(rank.node.machine)
            result = perfctr.wrap(self.cpus_per_rank, self.group_or_events,
                                  lambda r=rank: run_rank(r))
            measurement.per_rank[rank.rank] = result
        return measurement
