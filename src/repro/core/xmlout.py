"""XML output for tool results (paper outlook: "On popular demand,
future releases will also include support for XML output").

Serialises topology reports and perfctr measurements into a stable,
schema-light XML so downstream tooling can consume LIKWID output
without scraping the ASCII tables.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.numa import NumaTopology
from repro.core.perfctr.measurement import MeasurementResult
from repro.core.topology import NodeTopology


def _indent(elem: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(elem):
        if not (elem.text or "").strip():
            elem.text = pad + "  "
        for child in elem:
            _indent(child, level + 1)
            if not (child.tail or "").strip():
                child.tail = pad + "  "
        if not (elem[-1].tail or "").strip():
            elem[-1].tail = pad
    elif level and not (elem.tail or "").strip():
        elem.tail = pad


def _to_string(root: ET.Element) -> str:
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def topology_to_xml(topology: NodeTopology,
                    numa: NumaTopology | None = None) -> str:
    """Serialise a likwid-topology report."""
    root = ET.Element("topology", {
        "cpu": topology.cpu_name,
        "vendor": topology.vendor,
        "clock_hz": f"{topology.clock_hz:.0f}",
    })
    layout = ET.SubElement(root, "layout", {
        "sockets": str(topology.num_sockets),
        "cores_per_socket": str(topology.cores_per_socket),
        "threads_per_core": str(topology.threads_per_core),
    })
    for t in topology.threads:
        ET.SubElement(layout, "hwthread", {
            "id": str(t.hwthread),
            "thread": str(t.thread_id),
            "core": str(t.core_id),
            "socket": str(t.socket_id),
            "apic": str(t.apic_id),
        })
    caches = ET.SubElement(root, "caches")
    for cache in topology.caches:
        if cache.type == "Instruction cache":
            continue
        node = ET.SubElement(caches, "cache", {
            "level": str(cache.level),
            "type": cache.type,
            "size": str(cache.size),
            "associativity": str(cache.associativity),
            "sets": str(cache.sets),
            "line_size": str(cache.line_size),
            "inclusive": str(cache.inclusive).lower(),
            "threads_sharing": str(cache.threads_sharing),
        })
        for group in cache.groups:
            ET.SubElement(node, "group").text = \
                " ".join(str(hw) for hw in group)
    if numa is not None:
        numa_el = ET.SubElement(root, "numa",
                                {"domains": str(numa.num_domains)})
        for domain in numa.domains:
            node = ET.SubElement(numa_el, "domain", {
                "id": str(domain.domain_id),
                "memory_bytes": str(domain.memory_bytes),
            })
            ET.SubElement(node, "processors").text = \
                " ".join(str(p) for p in domain.processors)
            ET.SubElement(node, "distances").text = \
                " ".join(str(d) for d in domain.distances)
    return _to_string(root)


def measurement_to_xml(result: MeasurementResult, *,
                       group_name: str | None = None,
                       region: str | None = None) -> str:
    """Serialise a likwid-perfctr measurement (whole run or region)."""
    attrs = {"wall_time": f"{result.wall_time:.9f}"}
    if group_name:
        attrs["group"] = group_name
    if region:
        attrs["region"] = region
    root = ET.Element("measurement", attrs)
    for cpu in result.cpus:
        node = ET.SubElement(root, "cpu", {"id": str(cpu)})
        for event, value in result.counts[cpu].items():
            ET.SubElement(node, "event", {
                "name": event, "count": f"{value:.0f}"})
        for metric, value in result.metrics.get(cpu, {}).items():
            ET.SubElement(node, "metric", {
                "name": metric, "value": f"{value:.6g}"})
    return _to_string(root)


def parse_topology_xml(text: str) -> dict:
    """Parse topology XML back into plain data (round-trip support)."""
    root = ET.fromstring(text)
    out = {
        "cpu": root.get("cpu"),
        "sockets": int(root.find("layout").get("sockets")),
        "hwthreads": [
            {k: int(v) for k, v in el.attrib.items()}
            for el in root.find("layout")
        ],
        "caches": [dict(el.attrib) for el in root.find("caches")],
    }
    numa = root.find("numa")
    if numa is not None:
        out["numa_domains"] = [
            {"id": int(d.get("id")),
             "memory_bytes": int(d.get("memory_bytes")),
             "processors": [int(p) for p in
                            d.find("processors").text.split()]}
            for d in numa
        ]
    return out
