"""Topology configuration files (the likwid-genTopoCfg mechanism).

Real LIKWID can dump the probed topology into a config file once and
have every later tool invocation read the file instead of re-probing
CPUID — important on machines where probing is slow or restricted.
The file format here is the XML report of :mod:`repro.core.xmlout`,
so the cache doubles as the machine's documented layout.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.numa import NumaDomain, NumaTopology, probe_numa
from repro.core.topology import (CacheLevelInfo, HWThreadEntry, NodeTopology,
                                 probe_topology)
from repro.core.xmlout import topology_to_xml
from repro.errors import TopologyError
from repro.hw.machine import SimMachine

import xml.etree.ElementTree as ET


def write_topofile(machine: SimMachine, path: Path | str) -> Path:
    """likwid-genTopoCfg: probe once, persist the result."""
    path = Path(path)
    topology = probe_topology(machine)
    numa = probe_numa(machine)
    path.write_text(topology_to_xml(topology, numa))
    return path


def read_topofile(path: Path | str) -> tuple[NodeTopology, NumaTopology]:
    """Load a persisted topology without touching the hardware."""
    path = Path(path)
    if not path.exists():
        raise TopologyError(f"no topology file at {path}")
    try:
        root = ET.fromstring(path.read_text())
    except ET.ParseError as exc:
        raise TopologyError(f"malformed topology file {path}: {exc}") from None
    if root.tag != "topology":
        raise TopologyError(f"{path} is not a topology file")

    threads = [HWThreadEntry(
        hwthread=int(el.get("id")), thread_id=int(el.get("thread")),
        core_id=int(el.get("core")), socket_id=int(el.get("socket")),
        apic_id=int(el.get("apic")))
        for el in root.find("layout")]

    caches = []
    for el in root.find("caches"):
        cache = CacheLevelInfo(
            level=int(el.get("level")), type=el.get("type"),
            size=int(el.get("size")),
            associativity=int(el.get("associativity")),
            line_size=int(el.get("line_size")), sets=int(el.get("sets")),
            inclusive=el.get("inclusive") == "true",
            threads_sharing=int(el.get("threads_sharing")))
        cache.groups = [[int(hw) for hw in g.text.split()]
                        for g in el.findall("group")]
        caches.append(cache)

    layout = root.find("layout")
    topology = NodeTopology(
        cpu_name=root.get("cpu"), vendor=root.get("vendor"),
        clock_hz=float(root.get("clock_hz")),
        num_sockets=int(layout.get("sockets")),
        cores_per_socket=int(layout.get("cores_per_socket")),
        threads_per_core=int(layout.get("threads_per_core")),
        threads=threads, caches=caches)

    numa_el = root.find("numa")
    domains = []
    if numa_el is not None:
        for d in numa_el:
            processors = tuple(int(p) for p in
                               d.find("processors").text.split())
            distances = tuple(int(x) for x in
                              d.find("distances").text.split())
            domains.append(NumaDomain(int(d.get("id")), processors,
                                      int(d.get("memory_bytes")),
                                      distances))
    return topology, NumaTopology(domains)
