"""The likwid timer API: TSC-based cycle-accurate timing.

The LIKWID library ships a small timer module (timer_start/timer_stop
over RDTSC) that the command-line tools and the marker API use for
runtime measurement.  Here the time stamp counter lives in each
hardware thread's MSR space and advances with simulated execution, so
a timer measures exactly the time the machine model says elapsed —
consistent with every counter-derived runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CounterError
from repro.hw import registers as regs
from repro.hw.machine import SimMachine


@dataclass
class TimerData:
    """One start/stop interval (the C API's TimerData struct)."""

    start: int = 0
    stop: int = 0

    @property
    def cycles(self) -> int:
        return self.stop - self.start


class Timer:
    """RDTSC timing bound to one machine (the TSC is node-global and
    invariant: every hardware thread reads the same ticks)."""

    def __init__(self, machine: SimMachine, cpu: int = 0):
        self.machine = machine
        self.cpu = cpu
        self._clock = machine.spec.clock_hz

    # -- the C API surface ---------------------------------------------------

    def timer_start(self) -> TimerData:
        data = TimerData()
        data.start = self._rdtsc()
        return data

    def timer_stop(self, data: TimerData) -> TimerData:
        data.stop = self._rdtsc()
        if data.stop < data.start:
            raise CounterError("TSC went backwards (timer misuse)")
        return data

    def timer_print(self, data: TimerData) -> float:
        """Elapsed seconds of a stopped interval."""
        return data.cycles / self._clock

    def timer_print_cycles(self, data: TimerData) -> int:
        return data.cycles

    def get_cpu_clock(self) -> float:
        """The calibrated clock (Hz)."""
        return self._clock

    def _rdtsc(self) -> int:
        return self.machine.rdmsr(self.cpu, regs.IA32_TSC)
