"""likwid-topology: decode thread and cache topology from CPUID.

This is the tool's engine: it talks to the machine *only* through the
CPUID instruction (plus the TSC for the clock measurement), performing
the same decoding the original C module does:

* vendor + brand string from leaves 0x0 / 0x80000002-4;
* **Intel Nehalem onward** — leaf 0xB (x2APIC): per-level shift widths
  give the SMT/core/package bit fields of the APIC id;
* **Intel Core 2 / Atom** — leaf 0x1 (logical processors per package,
  HTT flag) combined with leaf 0x4's core-count field;
* **older Intel (Pentium M)** — leaf 0x1 only, caches via the leaf 0x2
  descriptor table;
* **AMD** — leaf 0x80000008 (core count and APIC-id core field size),
  caches via 0x80000005/0x80000006.

The decoded physical core ids are *not* assumed dense (Westmere EP
numbers its six cores 0,1,2,8,9,10) — the whole reason the tool
decodes bit fields instead of counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.hw import registers as regs
from repro.hw.apic import field_width
from repro.hw.cpuid import AMD_ASSOC_DECODE, LEAF2_TABLE
from repro.hw.machine import SimMachine
from repro.tables import RULE, star_banner
from repro.units import format_hz, format_size


@dataclass(frozen=True)
class HWThreadEntry:
    """One row of the Hardware Thread Topology table."""

    hwthread: int     # OS processor id
    thread_id: int    # SMT id within the core
    core_id: int      # physical core id within the package (may be sparse)
    socket_id: int
    apic_id: int


@dataclass
class CacheLevelInfo:
    """One decoded cache level plus its sharing groups."""

    level: int
    type: str
    size: int
    associativity: int
    line_size: int
    sets: int
    inclusive: bool
    threads_sharing: int
    groups: list[list[int]] = field(default_factory=list)


@dataclass
class NodeTopology:
    """Everything likwid-topology reports for one node."""

    cpu_name: str
    vendor: str
    clock_hz: float
    num_sockets: int
    cores_per_socket: int
    threads_per_core: int
    threads: list[HWThreadEntry]
    caches: list[CacheLevelInfo]

    @property
    def num_hwthreads(self) -> int:
        return len(self.threads)

    def socket_members(self, socket: int) -> list[int]:
        """Hardware threads of one socket, grouped per physical core in
        core-id order (the paper's "Socket 0: ( 0 12 1 13 ... )")."""
        members: dict[int, list[int]] = {}
        for t in self.threads:
            if t.socket_id == socket:
                members.setdefault(t.core_id, []).append(t.hwthread)
        out: list[int] = []
        for core_id in sorted(members):
            out.extend(sorted(members[core_id],
                              key=lambda hw: self._entry(hw).thread_id))
        return out

    def _entry(self, hwthread: int) -> HWThreadEntry:
        return next(t for t in self.threads if t.hwthread == hwthread)


# ---------------------------------------------------------------------------
# clock measurement
# ---------------------------------------------------------------------------

def measure_clock(machine: SimMachine, *, interval: float = 0.01) -> float:
    """Measure the core clock by timing the TSC over an interval, the
    way the real tool calibrates instead of trusting /proc."""
    before = machine.rdmsr(0, regs.IA32_TSC)
    machine.apply_counts({}, elapsed_seconds=interval)
    after = machine.rdmsr(0, regs.IA32_TSC)
    return (after - before) / interval


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------

def _read_string(machine: SimMachine, hwthread: int = 0) -> str:
    raw = b""
    for leaf in (0x80000002, 0x80000003, 0x80000004):
        r = machine.cpuid(hwthread, leaf)
        for reg in r.as_tuple():
            raw += reg.to_bytes(4, "little")
    return raw.split(b"\0", 1)[0].decode("ascii").strip()


def _vendor(machine: SimMachine) -> str:
    r = machine.cpuid(0, 0x0)
    raw = (r.ebx.to_bytes(4, "little") + r.edx.to_bytes(4, "little")
           + r.ecx.to_bytes(4, "little"))
    return raw.decode("ascii")


def _max_leaf(machine: SimMachine) -> int:
    return machine.cpuid(0, 0x0).eax


def _apic_fields_leaf11(machine: SimMachine, hwthread: int) -> tuple[int, int, int]:
    """(smt_bits, package_shift, x2apic_id) from leaf 0xB."""
    sub0 = machine.cpuid(hwthread, 0xB, 0)
    if (sub0.ecx >> 8) & 0xFF != 1:
        raise TopologyError("leaf 0xB subleaf 0 is not the SMT level")
    sub1 = machine.cpuid(hwthread, 0xB, 1)
    if (sub1.ecx >> 8) & 0xFF != 2:
        raise TopologyError("leaf 0xB subleaf 1 is not the Core level")
    return sub0.eax & 0x1F, sub1.eax & 0x1F, sub0.edx


def _decode_thread_intel_leaf11(machine: SimMachine,
                                hwthread: int) -> HWThreadEntry:
    smt_bits, pkg_shift, apic = _apic_fields_leaf11(machine, hwthread)
    smt = apic & ((1 << smt_bits) - 1)
    core = (apic >> smt_bits) & ((1 << (pkg_shift - smt_bits)) - 1)
    pkg = apic >> pkg_shift
    return HWThreadEntry(hwthread, smt, core, pkg, apic)


def _legacy_field_widths(machine: SimMachine) -> tuple[int, int]:
    """(smt_bits, core_bits) for pre-leaf-0xB Intel parts."""
    leaf1 = machine.cpuid(0, 0x1)
    htt = bool(leaf1.edx & (1 << 28))
    logical_per_pkg = (leaf1.ebx >> 16) & 0xFF if htt else 1
    max_leaf = _max_leaf(machine)
    if max_leaf >= 0x4:
        max_cores = ((machine.cpuid(0, 0x4, 0).eax >> 26) & 0x3F) + 1
    else:
        max_cores = 1
    core_bits = field_width(max_cores - 1)
    smt_per_core = max(logical_per_pkg // max_cores, 1)
    smt_bits = field_width(smt_per_core - 1)
    return smt_bits, core_bits


def _amd_field_widths(machine: SimMachine) -> tuple[int, int]:
    ext = machine.cpuid(0, 0x80000008)
    cores = (ext.ecx & 0xFF) + 1
    core_bits = (ext.ecx >> 12) & 0xF
    if core_bits == 0:
        core_bits = field_width(cores - 1)
    return 0, core_bits


def _decode_thread_from_widths(machine: SimMachine, hwthread: int,
                               smt_bits: int, core_bits: int) -> HWThreadEntry:
    apic = (machine.cpuid(hwthread, 0x1).ebx >> 24) & 0xFF
    smt = apic & ((1 << smt_bits) - 1)
    core = (apic >> smt_bits) & ((1 << core_bits) - 1)
    pkg = apic >> (smt_bits + core_bits)
    return HWThreadEntry(hwthread, smt, core, pkg, apic)


# -- caches ------------------------------------------------------------------

def _decode_caches_leaf4(machine: SimMachine) -> list[CacheLevelInfo]:
    caches: list[CacheLevelInfo] = []
    subleaf = 0
    while True:
        r = machine.cpuid(0, 0x4, subleaf)
        ctype = r.eax & 0x1F
        if ctype == 0:
            break
        type_name = {1: "Data cache", 2: "Instruction cache",
                     3: "Unified cache"}[ctype]
        level = (r.eax >> 5) & 0x7
        threads_sharing = ((r.eax >> 14) & 0xFFF) + 1
        line = (r.ebx & 0xFFF) + 1
        assoc = ((r.ebx >> 22) & 0x3FF) + 1
        partitions = ((r.ebx >> 12) & 0x3FF) + 1
        sets = r.ecx + 1
        caches.append(CacheLevelInfo(
            level=level, type=type_name,
            size=sets * assoc * partitions * line,
            associativity=assoc, line_size=line, sets=sets,
            inclusive=bool(r.edx & 0x2), threads_sharing=threads_sharing))
        subleaf += 1
    return caches


def _decode_caches_leaf2(machine: SimMachine) -> list[CacheLevelInfo]:
    r = machine.cpuid(0, 0x2)
    raw = b"".join(reg.to_bytes(4, "little") for reg in r.as_tuple())
    caches: list[CacheLevelInfo] = []
    for descriptor in raw[1:]:  # byte 0 is the iteration count (0x01)
        if descriptor == 0:
            continue
        entry = LEAF2_TABLE.get(descriptor)
        if entry is None:
            raise TopologyError(f"unknown leaf-2 descriptor 0x{descriptor:02X}")
        caches.append(CacheLevelInfo(
            level=entry.level, type=entry.type, size=entry.size,
            associativity=entry.associativity, line_size=entry.line_size,
            sets=entry.size // (entry.associativity * entry.line_size),
            inclusive=True, threads_sharing=1))
    return caches


def _decode_caches_amd(machine: SimMachine,
                       threads_per_core: int,
                       cores_per_socket: int) -> list[CacheLevelInfo]:
    caches: list[CacheLevelInfo] = []
    l1 = machine.cpuid(0, 0x80000005)

    def _l1(reg: int, type_name: str) -> CacheLevelInfo:
        size = ((reg >> 24) & 0xFF) * 1024
        assoc = (reg >> 16) & 0xFF
        line = reg & 0xFF
        return CacheLevelInfo(
            level=1, type=type_name, size=size, associativity=assoc,
            line_size=line, sets=size // (assoc * line),
            inclusive=False, threads_sharing=threads_per_core)

    caches.append(_l1(l1.ecx, "Data cache"))
    caches.append(_l1(l1.edx, "Instruction cache"))
    l23 = machine.cpuid(0, 0x80000006)
    if l23.ecx:
        size = ((l23.ecx >> 16) & 0xFFFF) * 1024
        assoc = AMD_ASSOC_DECODE[(l23.ecx >> 12) & 0xF]
        line = l23.ecx & 0xFF
        caches.append(CacheLevelInfo(
            level=2, type="Unified cache", size=size, associativity=assoc,
            line_size=line, sets=size // (assoc * line),
            inclusive=False, threads_sharing=threads_per_core))
    if l23.edx:
        size = ((l23.edx >> 18) & 0x3FFF) * 512 * 1024
        assoc = AMD_ASSOC_DECODE[(l23.edx >> 12) & 0xF]
        line = l23.edx & 0xFF
        caches.append(CacheLevelInfo(
            level=3, type="Unified cache", size=size, associativity=assoc,
            line_size=line, sets=size // (assoc * line),
            inclusive=False,
            threads_sharing=threads_per_core * cores_per_socket))
    return caches


# -- groups ---------------------------------------------------------------------

def _cache_groups(topology_threads: list[HWThreadEntry],
                  cache: CacheLevelInfo,
                  threads_per_core: int) -> list[list[int]]:
    """Partition hardware threads into the sharing groups of one cache
    level: each instance covers a run of cores (in core-id order) on
    one socket."""
    cores_per_instance = max(1, cache.threads_sharing // max(threads_per_core, 1))
    by_socket: dict[int, dict[int, list[int]]] = {}
    for t in topology_threads:
        by_socket.setdefault(t.socket_id, {}).setdefault(t.core_id, []) \
            .append(t.hwthread)
    groups: list[list[int]] = []
    for socket in sorted(by_socket):
        core_ids = sorted(by_socket[socket])
        for start in range(0, len(core_ids), cores_per_instance):
            group: list[int] = []
            for core_id in core_ids[start:start + cores_per_instance]:
                group.extend(sorted(by_socket[socket][core_id]))
            groups.append(group)
    return groups


# -- entry point ------------------------------------------------------------------

def probe_topology(machine: SimMachine) -> NodeTopology:
    """Decode the full node topology through CPUID."""
    vendor = _vendor(machine)
    nthreads = machine.num_hwthreads
    max_leaf = _max_leaf(machine)

    threads: list[HWThreadEntry] = []
    if vendor == "AuthenticAMD":
        smt_bits, core_bits = _amd_field_widths(machine)
        for hw in range(nthreads):
            threads.append(_decode_thread_from_widths(machine, hw,
                                                      smt_bits, core_bits))
    elif max_leaf >= 0xB:
        # The x2APIC-style enumeration protocol (leaf 11): used by
        # modern Intel parts and by any firmware speaking the generic
        # "SMT bits below core bits" scheme (the POWER9-like machine).
        for hw in range(nthreads):
            threads.append(_decode_thread_intel_leaf11(machine, hw))
    elif vendor == "GenuineIntel":
        smt_bits, core_bits = _legacy_field_widths(machine)
        for hw in range(nthreads):
            threads.append(_decode_thread_from_widths(machine, hw,
                                                      smt_bits, core_bits))
    else:
        raise TopologyError(f"unsupported CPU vendor {vendor!r}")

    sockets = sorted({t.socket_id for t in threads})
    cores_per_socket = len({t.core_id for t in threads
                            if t.socket_id == sockets[0]})
    threads_per_core = max(t.thread_id for t in threads) + 1

    if vendor == "AuthenticAMD":
        caches = _decode_caches_amd(machine, threads_per_core,
                                    cores_per_socket)
    elif max_leaf >= 0x4:
        caches = _decode_caches_leaf4(machine)
    else:
        caches = _decode_caches_leaf2(machine)

    for cache in caches:
        cache.groups = _cache_groups(threads, cache, threads_per_core)

    return NodeTopology(
        cpu_name=_read_string(machine),
        vendor=vendor,
        clock_hz=measure_clock(machine),
        num_sockets=len(sockets),
        cores_per_socket=cores_per_socket,
        threads_per_core=threads_per_core,
        threads=threads,
        caches=caches,
    )


# ---------------------------------------------------------------------------
# rendering (the paper's listing format)
# ---------------------------------------------------------------------------

def render_topology(topology: NodeTopology, *,
                    caches: bool = True) -> str:
    """Render the likwid-topology report (option -c adds extended cache
    parameters, mirrored by the *caches* flag)."""
    lines = [RULE,
             f"CPU name:\t{topology.cpu_name}",
             f"CPU clock:\t{format_hz(topology.clock_hz)}",
             star_banner("Hardware Thread Topology"),
             f"Sockets:\t\t{topology.num_sockets}",
             f"Cores per socket:\t{topology.cores_per_socket}",
             f"Threads per core:\t{topology.threads_per_core}",
             RULE,
             "HWThread\tThread\t\tCore\t\tSocket"]
    for t in topology.threads:
        lines.append(f"{t.hwthread}\t\t{t.thread_id}\t\t"
                     f"{t.core_id}\t\t{t.socket_id}")
    lines.append(RULE)
    for socket in range(topology.num_sockets):
        members = " ".join(str(hw) for hw in topology.socket_members(socket))
        lines.append(f"Socket {socket}: ( {members} )")
    lines.append(RULE)
    if caches:
        lines.append(star_banner("Cache Topology"))
        for cache in topology.caches:
            if cache.type == "Instruction cache":
                continue  # likwid-topology omits non-data caches
            lines.extend([
                f"Level:\t{cache.level}",
                f"Size:\t{format_size(cache.size)}",
                f"Type:\t{cache.type}",
                f"Associativity:\t{cache.associativity}",
                f"Number of sets:\t{cache.sets}",
                f"Cache line size:\t{cache.line_size}",
                "Inclusive cache" if cache.inclusive else "Non Inclusive cache",
                f"Shared among {cache.threads_sharing} threads",
                "Cache groups:\t" + " ".join(
                    "( " + " ".join(str(hw) for hw in group) + " )"
                    for group in cache.groups),
                RULE,
            ])
    return "\n".join(lines)
