"""NUMA topology probing (the paper's first named future-work item:
"An important feature missing in likwid-topology is to include NUMA
information in the output").

Unlike the thread/cache topology, which comes from CPUID, ccNUMA
information is an OS concept: this module reads the simulated
``/sys/devices/system/node`` tree (the same source libnuma uses) and
renders the NUMA section that later LIKWID releases print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machine import SimMachine
from repro.oskern.sysfs import parse_cpulist, render_sysfs
from repro.tables import RULE, star_banner


@dataclass(frozen=True)
class NumaDomain:
    """One ccNUMA locality domain."""

    domain_id: int
    processors: tuple[int, ...]
    memory_bytes: int
    distances: tuple[int, ...]   # SLIT row, indexed by domain id


@dataclass
class NumaTopology:
    domains: list[NumaDomain]

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def domain_of(self, hwthread: int) -> int:
        for domain in self.domains:
            if hwthread in domain.processors:
                return domain.domain_id
        raise ValueError(f"hwthread {hwthread} in no NUMA domain")


def probe_numa(machine: SimMachine) -> NumaTopology:
    """Decode the NUMA layout from the sysfs node tree."""
    tree = render_sysfs(machine)
    domains: list[NumaDomain] = []
    for domain_id in parse_cpulist(tree["node/online"]):
        base = f"node/node{domain_id}"
        processors = tuple(parse_cpulist(tree[f"{base}/cpulist"]))
        mem_kb = int(tree[f"{base}/meminfo"].rsplit(":", 1)[1]
                     .strip().split()[0])
        distances = tuple(int(d) for d in tree[f"{base}/distance"].split())
        domains.append(NumaDomain(domain_id, processors,
                                  mem_kb * 1024, distances))
    return NumaTopology(domains)


def render_numa(numa: NumaTopology) -> str:
    """The NUMA Topology section of the likwid-topology report."""
    lines = [star_banner("NUMA Topology"),
             f"NUMA domains: {numa.num_domains}",
             RULE]
    for domain in numa.domains:
        lines.extend([
            f"Domain {domain.domain_id}:",
            "Processors: ( " + " ".join(map(str, domain.processors)) + " )",
            f"Memory: {domain.memory_bytes / 1024**2:.0f} MB",
            "Distances: " + " ".join(map(str, domain.distances)),
            RULE,
        ])
    return "\n".join(lines)
