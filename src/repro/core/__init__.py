"""The LIKWID tool suite: topology, pin, perfctr, features — plus the
future-work tools the paper sketches: NUMA probing, the bandwidth map
(likwid-bench), the timer API, and the sampling profiler."""

from repro.core.bench import bandwidth_ladder, numa_bandwidth_map
from repro.core.features import LikwidFeatures
from repro.core.perfctr import LikwidPerfCtr, MarkerAPI
from repro.core.numa import NumaTopology, probe_numa, render_numa
from repro.core.pin import LikwidPin
from repro.core.topology import NodeTopology, probe_topology, render_topology
from repro.core.profile import CodeSegment, SamplingProfiler
from repro.core.timer import Timer
from repro.core.topology_ascii import render_ascii

__all__ = ["LikwidFeatures", "LikwidPerfCtr", "MarkerAPI", "LikwidPin",
           "NodeTopology", "probe_topology", "render_topology", "render_ascii",
           "NumaTopology", "probe_numa", "render_numa",
           "bandwidth_ladder", "numa_bandwidth_map", "Timer",
           "SamplingProfiler", "CodeSegment"]
