"""ASCII-art rendering of socket/cache topology (likwid-topology -g).

Reproduces the paper's diagram: one box per socket containing a row of
core boxes (listing the hardware-thread ids of each core) and one row
of boxes per data-cache level, each box spanning the cores that share
one cache instance::

    +-------------------------------------------+
    | +-------+ +-------+  ...                  |
    | | 0 12  | | 1 13  |                       |
    | +-------+ +-------+                       |
    | +-------+ +-------+                       |
    | | 32kB  | | 32kB  |                       |
    ...
    | +---------------------------------------+ |
    | | 12MB                                  | |
    | +---------------------------------------+ |
    +-------------------------------------------+
"""

from __future__ import annotations

from repro.core.topology import NodeTopology
from repro.units import format_size


def _boxes_row(cells: list[str], cell_width: int) -> list[str]:
    """Render one row of boxes with the given inner width."""
    top = " ".join("+" + "-" * cell_width + "+" for _ in cells)
    mid = " ".join("|" + c.center(cell_width) + "|" for c in cells)
    return [top, mid, top]


def render_ascii(topology: NodeTopology, *, socket: int | None = None) -> str:
    """Render the diagram for all sockets (or one)."""
    sockets = (range(topology.num_sockets) if socket is None else [socket])
    return "\n".join(_render_socket(topology, s) for s in sockets)


def _render_socket(topology: NodeTopology, socket: int) -> str:
    threads_per_core = topology.threads_per_core
    by_core: dict[int, list[int]] = {}
    for t in topology.threads:
        if t.socket_id == socket:
            by_core.setdefault(t.core_id, []).append(t.hwthread)
    core_ids = sorted(by_core)
    ncores = len(core_ids)

    core_labels = [" ".join(str(hw) for hw in sorted(
        by_core[c], key=lambda hw: topology._entry(hw).thread_id))
        for c in core_ids]

    data_caches = [c for c in topology.caches if c.type != "Instruction cache"]
    data_caches.sort(key=lambda c: c.level)

    # Cell width: fit the widest core label and the widest cache label
    # of the per-core row.
    unit = max([len(s) for s in core_labels]
               + [len(format_size(c.size)) for c in data_caches]) + 2

    rows: list[list[str]] = [_boxes_row(core_labels, unit)]
    for cache in data_caches:
        cores_per_instance = max(
            1, cache.threads_sharing // max(threads_per_core, 1))
        cores_per_instance = min(cores_per_instance, ncores)
        n_instances = ncores // cores_per_instance
        # A box spanning k cells has width k*unit + (k-1)*3 (borders+gap).
        span_width = cores_per_instance * unit + (cores_per_instance - 1) * 3
        labels = [format_size(cache.size)] * n_instances
        rows.append(_boxes_row(labels, span_width))

    inner_width = ncores * (unit + 2) + (ncores - 1)
    lines = ["+" + "-" * (inner_width + 2) + "+"]
    for row in rows:
        for line in row:
            lines.append("| " + line.ljust(inner_width) + " |")
    lines.append("+" + "-" * (inner_width + 2) + "+")
    return "\n".join(lines)
