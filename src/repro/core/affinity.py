"""Core-list and skip-mask handling for likwid-pin and likwid-perfctr.

Implements the command-line syntax the paper's examples use:
``-c 0-3``, ``-c 0,2-5``, skip masks like ``-s 0x3``, and the ``-t``
thread-type presets that encode each threading implementation's
management-thread layout (Intel OpenMP spawns a shepherd as its first
created thread; Intel MPI adds another for hybrid runs).
"""

from __future__ import annotations

from repro.errors import AffinityError

# Skip-mask presets for ``likwid-pin -t`` (paper §II.C): the mask is a
# binary pattern over *newly created* threads; bit i set means the i-th
# created thread must not be pinned.
THREAD_TYPE_SKIP_MASKS: dict[str, int] = {
    "gnu": 0x0,        # gcc OpenMP: no shepherd; the default
    "gcc": 0x0,
    "posix": 0x0,      # plain pthreads
    "intel": 0x1,      # Intel OpenMP: first created thread is the shepherd
    "intel_mpi": 0x3,  # Intel MPI + Intel OpenMP hybrid (paper example)
}

DEFAULT_THREAD_TYPE = "gnu"


def parse_corelist(text: str, *, max_cpu: int | None = None) -> list[int]:
    """Parse '0-3', '0,2-5,7', '4' into an ordered CPU id list.

    Order matters: threads are pinned working through this list.
    Duplicates are rejected — accidentally pinning two threads to one
    core is the pathology the tool exists to prevent.
    """
    if not text or not text.strip():
        raise AffinityError("empty core list")
    cpus: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise AffinityError(f"empty element in core list {text!r}")
        try:
            if "-" in part:
                lo_s, _, hi_s = part.partition("-")
                lo, hi = int(lo_s), int(hi_s)
                if hi < lo:
                    raise AffinityError(f"descending range {part!r}")
                cpus.extend(range(lo, hi + 1))
            else:
                cpus.append(int(part))
        except ValueError:
            raise AffinityError(f"malformed core list element {part!r}") from None
    if any(c < 0 for c in cpus):
        raise AffinityError(f"negative cpu id in {text!r}")
    if len(set(cpus)) != len(cpus):
        raise AffinityError(f"duplicate cpu ids in {text!r}")
    if max_cpu is not None:
        bad = [c for c in cpus if c > max_cpu]
        if bad:
            raise AffinityError(
                f"cpu ids {bad} beyond the last hardware thread {max_cpu}")
    return cpus


def format_corelist(cpus: list[int]) -> str:
    """Render a CPU list compactly ('0-3,8'), collapsing ascending runs."""
    if not cpus:
        return ""
    parts: list[str] = []
    i = 0
    while i < len(cpus):
        j = i
        while j + 1 < len(cpus) and cpus[j + 1] == cpus[j] + 1:
            j += 1
        parts.append(str(cpus[i]) if i == j else f"{cpus[i]}-{cpus[j]}")
        i = j + 1
    return ",".join(parts)


def parse_skip_mask(text: str) -> int:
    """Parse a skip mask ('0x3', '3', '0b11') into an integer."""
    try:
        mask = int(text, 0)
    except ValueError:
        raise AffinityError(f"malformed skip mask {text!r}") from None
    if mask < 0:
        raise AffinityError(f"negative skip mask {text!r}")
    return mask


# ---------------------------------------------------------------------------
# Affinity domains (the paper's cpuset future-work item: "likwid-pin
# will be equipped with cpuset support, so that logical core IDs may be
# used when binding threads")
# ---------------------------------------------------------------------------

def affinity_domains(spec) -> dict[str, list[int]]:
    """Thread-affinity domains of one machine, likwid-style.

    ``N`` — the whole node; ``S<i>`` — socket i; ``C<i>`` — the i-th
    last-level-cache sharing group; ``M<i>`` — NUMA memory domain i.
    Members are ordered physical cores first, then SMT siblings, so
    logical id k < #cores always denotes a distinct physical core.
    """
    def core_major(hwthreads: list[int]) -> list[int]:
        return sorted(hwthreads,
                      key=lambda hw: (spec.hwthread_location(hw)[2], hw))

    domains: dict[str, list[int]] = {
        "N": core_major(list(range(spec.num_hwthreads)))}
    for socket in range(spec.sockets):
        domains[f"S{socket}"] = core_major(spec.hwthreads_of_socket(socket))
    llc = spec.last_level_cache()
    cores_per_group = max(1, llc.threads_sharing // spec.threads_per_core)
    index = 0
    for socket in range(spec.sockets):
        for start in range(0, spec.cores_per_socket, cores_per_group):
            group: list[int] = []
            for core in range(start, min(start + cores_per_group,
                                         spec.cores_per_socket)):
                group.extend(spec.hwthreads_of_core(socket, core))
            domains[f"C{index}"] = core_major(group)
            index += 1
    for domain in range(spec.num_numa_domains):
        domains[f"M{domain}"] = core_major(
            spec.hwthreads_of_numa_domain(domain))
    return domains


def resolve_affinity_expression(spec, text: str) -> list[int]:
    """Resolve a likwid-pin core expression into physical CPU ids.

    Plain lists ("0-3") are physical ids; "<domain>:<list>" selects
    *logical* ids inside an affinity domain, e.g. ``S1:0-3`` = the
    first four physical cores of socket 1, ``M0:0,2`` = logical cpus
    0 and 2 of NUMA domain 0, ``N:0-7`` = the first eight physical
    cores of the node.
    """
    domain_name, sep, logical = text.partition(":")
    if not sep:
        return parse_corelist(text, max_cpu=spec.num_hwthreads - 1)
    domains = affinity_domains(spec)
    try:
        members = domains[domain_name.strip()]
    except KeyError:
        raise AffinityError(
            f"unknown affinity domain {domain_name!r}; available: "
            f"{', '.join(sorted(domains))}") from None
    indices = parse_corelist(logical)
    bad = [i for i in indices if i >= len(members)]
    if bad:
        raise AffinityError(
            f"logical ids {bad} beyond domain {domain_name} "
            f"({len(members)} members)")
    return [members[i] for i in indices]


def skip_mask_for(thread_type: str | None, explicit: int | None = None) -> int:
    """Resolve the effective skip mask: an explicit ``-s`` mask wins,
    otherwise the ``-t`` preset, otherwise the gcc default."""
    if explicit is not None:
        return explicit
    key = (thread_type or DEFAULT_THREAD_TYPE).lower()
    try:
        return THREAD_TYPE_SKIP_MASKS[key]
    except KeyError:
        raise AffinityError(
            f"unknown thread type {thread_type!r}; known: "
            f"{', '.join(sorted(THREAD_TYPE_SKIP_MASKS))}") from None
