"""Counter resources: naming, validation, allocation and programming.

Maps the tool-level counter names (``PMC0``, ``FIXC1``, ``UPMC3``,
``UFIXC0``) onto MSR addresses for a given architecture, validates
event→counter assignments against hardware constraints (fixed events
only on their fixed counter, uncore events only on uncore counters),
and programs/reads the registers through msr device files.

Uncore counters are socket-scope, so a measurement spanning several
cores of one socket must elect exactly one *socket lock owner* per
socket; only that CPU programs and reads the uncore PMU and the counts
are attributed to it (paper §II.A: "socket locks ... enforce that all
uncore event counts are assigned to one thread per socket").
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.analysis.checks import assignment_diagnostic, encoding_diagnostics
from repro.errors import CounterError
from repro.hw import registers as regs
from repro.hw.events import EventDef, EventTable
from repro.hw.spec import ArchSpec
from repro.core.perfctr.events import EventOptions, EventSpec
from repro.oskern.msr_driver import MsrDriver


@dataclass(frozen=True)
class CounterInfo:
    """One physical counter visible to the tool."""

    name: str
    cls: str          # PMC | FIXC | UPMC | UFIXC
    index: int
    config_addr: int | None   # PERFEVTSEL address (None for fixed)
    counter_addr: int

    @property
    def is_uncore(self) -> bool:
        return self.cls in ("UPMC", "UFIXC")


class CounterMap:
    """All counters of one architecture, by name."""

    def __init__(self, spec: ArchSpec):
        self.spec = spec
        self._counters: dict[str, CounterInfo] = {}
        pmu = spec.pmu
        for i in range(pmu.num_pmcs):
            self._add(CounterInfo(f"PMC{i}", "PMC", i,
                                  pmu.evtsel_address(i), pmu.pmc_address(i)))
        if pmu.has_fixed:
            for i in range(3):
                self._add(CounterInfo(f"FIXC{i}", "FIXC", i, None,
                                      regs.IA32_FIXED_CTR0 + i))
        for i in range(pmu.num_uncore_pmcs):
            self._add(CounterInfo(f"UPMC{i}", "UPMC", i,
                                  regs.MSR_UNCORE_PERFEVTSEL0 + i,
                                  regs.MSR_UNCORE_PMC0 + i))
        if pmu.has_uncore_fixed:
            self._add(CounterInfo("UFIXC0", "UFIXC", 0, None,
                                  regs.MSR_UNCORE_FIXED_CTR0))

    def _add(self, info: CounterInfo) -> None:
        self._counters[info.name] = info

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def lookup(self, name: str) -> CounterInfo:
        try:
            return self._counters[name]
        except KeyError:
            raise CounterError(
                f"no counter {name!r} on {self.spec.name}") from None

    def names(self, cls: str | None = None) -> list[str]:
        return sorted((n for n, c in self._counters.items()
                       if cls is None or c.cls == cls),
                      key=lambda n: self._counters[n].index)


@dataclass(frozen=True)
class Assignment:
    """A validated event→counter binding."""

    event: EventDef
    counter: CounterInfo
    options: EventOptions = EventOptions()


def validate_assignments(table: EventTable, counters: CounterMap,
                         specs: list[EventSpec]) -> list[Assignment]:
    """Resolve and validate a parsed event string for an architecture.

    The rules live in :mod:`repro.analysis.checks`, shared with the
    static linter; a violation raises the diagnostic's rendered form
    so runtime errors carry the same stable LKxxx codes lint reports.
    """
    out: list[Assignment] = []
    for spec in specs:
        event = table.lookup(spec.event)
        counter = counters.lookup(spec.counter)
        bad = assignment_diagnostic(event, counter, spec.options)
        if bad is not None:
            raise CounterError(str(bad))
        out.append(Assignment(event, counter, spec.options))
    return out


def auto_fixed_assignments(table: EventTable,
                           counters: CounterMap) -> list[Assignment]:
    """The always-counted fixed events on Intel (paper: INSTR_RETIRED_ANY
    and CPU_CLK_UNHALTED_CORE "are always counted ... so that the
    derived CPI metric is easily obtained")."""
    out: list[Assignment] = []
    if not self_has_fixed(counters):
        return out
    for name in ("INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE",
                 "CPU_CLK_UNHALTED_REF"):
        if name in table:
            event = table.lookup(name)
            if event.is_fixed:
                out.append(Assignment(
                    event, counters.lookup(f"FIXC{event.fixed_index}")))
    return out


def self_has_fixed(counters: CounterMap) -> bool:
    return bool(counters.names("FIXC"))


def counter_delta(current: float, previous: float, width: int) -> float:
    """Difference of two counter readings, corrected for wrap-around.

    Hardware counters are *width* bits wide (48 on every arch here);
    when a counter wraps between two readouts the raw difference goes
    negative by exactly one period, so adding ``2**width`` back
    recovers the true delta — as long as at most one wrap happened in
    the interval, which a sane sampling period guarantees.  NaN inputs
    (degraded uncore reads) pass through unchanged."""
    delta = current - previous
    if delta < 0:
        delta += float(1 << width)
    return delta


# ---------------------------------------------------------------------------
# programming through the msr driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient msr faults.

    A transient fault (``EAGAIN``/``EIO`` with ``transient=True``) is
    retried up to ``max_attempts`` times total, sleeping
    ``min(backoff_cap, backoff_base * 2**retry)`` between attempts.
    The defaults keep the worst-case stall per operation under ~3 ms
    while surviving the fault rates a loaded system realistically
    shows.  Non-transient faults are never retried."""

    max_attempts: int = 8
    backoff_base: float = 0.0001   # seconds before the first retry
    backoff_cap: float = 0.002     # per-retry sleep ceiling

    def delay(self, retry: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** retry))


class CounterProgrammer:
    """Programs, starts, stops and reads one CPU's share of a setup.

    Every msr operation goes through a bounded-retry wrapper so
    transient driver faults are invisible to results (the counts are
    identical to a fault-free run) while remaining observable in
    ``retries`` and ``DriverStats.faults``.

    Retry accounting is *derived* from the driver's metrics registry
    rather than tallied separately: the driver counts every injected
    transient fault (``msr.faults.transient``) and this wrapper counts
    every absorbed one (``msr.io.retries``) in the same registry, so
    ``MeasurementResult.io_retries`` and the driver's fault counts are
    reconciled by construction (regression-tested under a seeded 10%
    EAGAIN plan)."""

    def __init__(self, driver: MsrDriver, counters: CounterMap,
                 policy: RetryPolicy | None = None):
        self.driver = driver
        self.counters = counters
        self.spec = counters.spec
        self.policy = policy or RetryPolicy()
        self._metrics = driver.metrics
        self._retries_base = self._metrics.value("msr.io.retries")
        self.backoff_seconds = 0.0  # total time spent backing off

    @property
    def retries(self) -> int:
        """Transient faults absorbed by this programmer (registry-backed:
        the same counter the driver's fault accounting reconciles with)."""
        return self._metrics.value("msr.io.retries") - self._retries_base

    # -- retrying I/O helpers ------------------------------------------------

    def _read(self, msr, address: int) -> int:
        if self.driver.fault_plan is None:
            return msr.read_msr(address)
        return self._io(lambda: msr.read_msr(address))

    def _write(self, msr, address: int, value: int) -> None:
        # Every state-mutating write goes through the journaling
        # driver API (crash safety: docs/robustness.md; statically
        # enforced by the LK501 lint).  With journaling off this is a
        # plain device write.
        if self.driver.fault_plan is None:
            msr.journaled_write(address, value)
            return
        self._io(lambda: msr.journaled_write(address, value))

    def _io(self, op):
        from repro.errors import MsrIOError
        retry = 0
        while True:
            try:
                return op()
            except MsrIOError as exc:
                if not exc.transient:
                    raise
                retry += 1
                if retry >= self.policy.max_attempts:
                    self._metrics.incr("msr.io.giveups")
                    raise MsrIOError(
                        exc.errno_name,
                        f"giving up after {retry} transient faults: {exc}",
                        cpu=exc.cpu, address=exc.address,
                        exhausted=True) from exc
                self._metrics.incr("msr.io.retries")
                delay = self.policy.delay(retry - 1)
                if delay > 0.0:
                    self.backoff_seconds += delay
                    self._metrics.observe("msr.io.backoff_ns", delay * 1e9)
                    _time.sleep(delay)

    def _check_encoding(self, a: Assignment) -> None:
        """Refuse to write an encoding the linter would reject (same
        LK3xx rules, from :mod:`repro.analysis.checks`)."""
        diags = encoding_diagnostics(a.event, self.spec.pmu,
                                     cmask=a.options.cmask,
                                     arch=self.spec.name)
        if diags:
            raise CounterError(str(diags[0]))

    # -- core counters -------------------------------------------------------

    def setup_core(self, cpu: int, assignments: list[Assignment]) -> None:
        """Write event selections and zero the involved counters."""
        pmu = self.spec.pmu
        msr = self.driver.open(cpu)
        try:
            if pmu.has_global_ctrl:
                self._write(msr, pmu.global_ctrl_address(), 0)
            fixed_ctrl = 0
            for a in assignments:
                if a.counter.is_uncore:
                    continue
                self._check_encoding(a)
                if a.counter.cls == "FIXC":
                    fixed_ctrl |= regs.fixed_ctr_ctrl_encode(a.counter.index)
                else:
                    # A global-control register (Intel, POWER9's MMCR0
                    # analog) gates counting, so EN can be staged here;
                    # AMD has no global control and must keep EN clear
                    # until start.
                    self._write(msr, a.counter.config_addr, regs.evtsel_encode(
                        a.event.event_code, a.event.umask,
                        enable=pmu.has_global_ctrl,
                        **a.options.evtsel_kwargs()))
                self._write(msr, a.counter.counter_addr, 0)
            if fixed_ctrl:
                self._write(msr, regs.IA32_FIXED_CTR_CTRL, fixed_ctrl)
        finally:
            msr.close()

    def start_core(self, cpu: int, assignments: list[Assignment]) -> None:
        """Enable counting (global-control where present; EN bits on AMD)."""
        pmu = self.spec.pmu
        msr = self.driver.open(cpu)
        try:
            if not pmu.has_global_ctrl:
                for a in assignments:
                    if not a.counter.is_uncore and a.counter.cls == "PMC":
                        self._write(msr, a.counter.config_addr,
                                    regs.evtsel_encode(
                                        a.event.event_code, a.event.umask,
                                        enable=True,
                                        **a.options.evtsel_kwargs()))
                return
            ctrl = 0
            for a in assignments:
                if a.counter.is_uncore:
                    continue
                if a.counter.cls == "FIXC":
                    ctrl |= regs.global_ctrl_fixed_bit(a.counter.index)
                else:
                    ctrl |= regs.global_ctrl_pmc_bit(a.counter.index)
            self._write(msr, pmu.global_ctrl_address(), ctrl)
        finally:
            msr.close()

    def stop_core(self, cpu: int, assignments: list[Assignment]) -> None:
        pmu = self.spec.pmu
        msr = self.driver.open(cpu)
        try:
            if not pmu.has_global_ctrl:
                for a in assignments:
                    if not a.counter.is_uncore and a.counter.cls == "PMC":
                        self._write(msr, a.counter.config_addr,
                                    regs.evtsel_encode(
                                        a.event.event_code, a.event.umask,
                                        enable=False,
                                        **a.options.evtsel_kwargs()))
            else:
                self._write(msr, pmu.global_ctrl_address(), 0)
        finally:
            msr.close()

    def read_core(self, cpu: int,
                  assignments: list[Assignment]) -> dict[str, int]:
        """Read the core-scope counters; keys are counter names."""
        msr = self.driver.open(cpu, write=False)
        try:
            return {a.counter.name: self._read(msr, a.counter.counter_addr)
                    for a in assignments if not a.counter.is_uncore}
        finally:
            msr.close()

    # -- uncore counters (socket-lock owner only) -------------------------------

    def setup_uncore(self, cpu: int, assignments: list[Assignment]) -> None:
        msr = self.driver.open(cpu)
        try:
            self._write(msr, regs.MSR_UNCORE_PERF_GLOBAL_CTRL, 0)
            fixed = False
            for a in assignments:
                if not a.counter.is_uncore:
                    continue
                self._check_encoding(a)
                if a.counter.cls == "UFIXC":
                    fixed = True
                else:
                    self._write(msr, a.counter.config_addr,
                                regs.evtsel_encode(
                                    a.event.event_code, a.event.umask,
                                    enable=True,
                                    **a.options.evtsel_kwargs()))
                self._write(msr, a.counter.counter_addr, 0)
            if fixed:
                self._write(msr, regs.MSR_UNCORE_FIXED_CTR_CTRL, 1)
        finally:
            msr.close()

    def start_uncore(self, cpu: int, assignments: list[Assignment]) -> None:
        msr = self.driver.open(cpu)
        try:
            ctrl = 0
            for a in assignments:
                if not a.counter.is_uncore:
                    continue
                if a.counter.cls == "UFIXC":
                    ctrl |= 1 << 32
                else:
                    ctrl |= regs.global_ctrl_pmc_bit(a.counter.index)
            self._write(msr, regs.MSR_UNCORE_PERF_GLOBAL_CTRL, ctrl)
        finally:
            msr.close()

    def stop_uncore(self, cpu: int) -> None:
        msr = self.driver.open(cpu)
        try:
            self._write(msr, regs.MSR_UNCORE_PERF_GLOBAL_CTRL, 0)
        finally:
            msr.close()

    def read_uncore(self, cpu: int,
                    assignments: list[Assignment]) -> dict[str, int]:
        msr = self.driver.open(cpu, write=False)
        try:
            return {a.counter.name: self._read(msr, a.counter.counter_addr)
                    for a in assignments if a.counter.is_uncore}
        finally:
            msr.close()
