"""Arithmetic-expression parser/evaluator for derived metrics.

Preconfigured event groups define metrics as formulas over event names
and the built-in variables ``time`` (region runtime in seconds) and
``clock`` (core clock in Hz), e.g.::

    DP MFlops/s = 1.0E-06*(PACKED*2.0+SCALAR)/time

A real recursive-descent parser (not :func:`eval`) keeps evaluation
safe and gives precise error messages for malformed group files.
Parsing builds an explicit AST (:class:`Num`, :class:`Var`,
:class:`Neg`, :class:`BinOp`) that carries the source column of every
token, so errors point at the offending position and static analyzers
(:mod:`repro.analysis.formula_lint`) can walk the tree without
re-implementing the grammar.  Grammar::

    expr   := term (('+'|'-') term)*
    term   := unary (('*'|'/') unary)*
    unary  := '-' unary | atom
    atom   := NUMBER | IDENT | '(' expr ')'

Identifiers may contain letters, digits and underscores.  Columns are
1-based.
"""

from __future__ import annotations

import re
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.errors import GroupError

_TOKEN_RE = re.compile(r"""
    (?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>[-+*/()])
  | (?P<ws>\s+)
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source column.

    Iterates as the historical ``(kind, text)`` pair so existing
    callers that unpack two values keep working; the column rides
    along as an attribute.
    """

    kind: str     # "num" | "ident" | "op"
    text: str
    column: int   # 1-based offset of the first character

    def __iter__(self) -> Iterator[str]:
        yield self.kind
        yield self.text


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise GroupError(f"bad character {text[pos]!r} in formula "
                             f"{text!r} (column {pos + 1})")
        kind = m.lastgroup
        if kind != "ws":
            tokens.append(Token(kind, m.group(), pos + 1))
        pos = m.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Num:
    """Numeric literal."""

    value: float
    column: int


@dataclass(frozen=True)
class Var:
    """Identifier reference (event name or built-in variable)."""

    name: str
    column: int


@dataclass(frozen=True)
class Neg:
    """Unary minus."""

    operand: "Node"
    column: int


@dataclass(frozen=True)
class BinOp:
    """Binary operation; ``op`` is one of ``+ - * /``."""

    op: str
    left: "Node"
    right: "Node"
    column: int   # column of the operator


Node = Num | Var | Neg | BinOp


def walk(node: Node) -> Iterator[Node]:
    """Yield *node* and every descendant (pre-order)."""
    yield node
    if isinstance(node, Neg):
        yield from walk(node.operand)
    elif isinstance(node, BinOp):
        yield from walk(node.left)
        yield from walk(node.right)


def variables(node: Node) -> Iterator[Var]:
    """Every identifier reference in the tree, in source order."""
    for n in walk(node):
        if isinstance(n, Var):
            yield n


def denominators(node: Node) -> Iterator[Node]:
    """The right operand of every division in the tree."""
    for n in walk(node):
        if isinstance(n, BinOp) and n.op == "/":
            yield n.right


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise GroupError(f"unexpected end of formula {self.text!r}")
        self.pos += 1
        return tok

    def parse(self) -> Node:
        node = self._expr()
        tok = self._peek()
        if tok is not None:
            raise GroupError(f"trailing tokens after expression in "
                             f"{self.text!r} (column {tok.column})")
        return node

    def _expr(self) -> Node:
        node = self._term()
        while (tok := self._peek()) and tok.text in "+-":
            self._next()
            node = BinOp(tok.text, node, self._term(), tok.column)
        return node

    def _term(self) -> Node:
        node = self._unary()
        while (tok := self._peek()) and tok.text in "*/":
            self._next()
            node = BinOp(tok.text, node, self._unary(), tok.column)
        return node

    def _unary(self) -> Node:
        tok = self._peek()
        if tok and tok.text == "-":
            self._next()
            return Neg(self._unary(), tok.column)
        return self._atom()

    def _atom(self) -> Node:
        tok = self._next()
        if tok.kind == "num":
            return Num(float(tok.text), tok.column)
        if tok.kind == "ident":
            return Var(tok.text, tok.column)
        if tok.text == "(":
            node = self._expr()
            closing = self._next()
            if closing.text != ")":
                raise GroupError(f"expected ')' in formula {self.text!r} "
                                 f"(column {closing.column})")
            return node
        raise GroupError(f"unexpected token {tok.text!r} in formula "
                         f"{self.text!r} (column {tok.column})")


def parse(formula: str) -> Node:
    """Parse a metric formula into its AST (raises GroupError)."""
    return _Parser(formula).parse()


def evaluate_ast(node: Node, variables: Mapping[str, float],
                 *, formula: str = "") -> float:
    """Evaluate a parsed formula tree against counter values.

    Division by zero yields NaN (a zero counter must not abort the
    whole measurement report)."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Var):
        try:
            return float(variables[node.name])
        except KeyError:
            raise GroupError(
                f"unknown variable {node.name!r} in formula {formula!r} "
                f"(column {node.column})") from None
    if isinstance(node, Neg):
        return -evaluate_ast(node.operand, variables, formula=formula)
    lhs = evaluate_ast(node.left, variables, formula=formula)
    rhs = evaluate_ast(node.right, variables, formula=formula)
    if node.op == "+":
        return lhs + rhs
    if node.op == "-":
        return lhs - rhs
    if node.op == "*":
        return lhs * rhs
    return lhs / rhs if rhs != 0 else float("nan")


def evaluate(formula: str, variables: Mapping[str, float]) -> float:
    """Evaluate a metric formula against counter values."""
    return evaluate_ast(parse(formula), variables, formula=formula)


def formula_variables(formula: str) -> set[str]:
    """The identifiers a formula references (for validation)."""
    return {tok.text for tok in tokenize(formula) if tok.kind == "ident"}
