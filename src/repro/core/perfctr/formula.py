"""Tiny arithmetic-expression evaluator for derived metrics.

Preconfigured event groups define metrics as formulas over event names
and the built-in variables ``time`` (region runtime in seconds) and
``clock`` (core clock in Hz), e.g.::

    DP MFlops/s = 1.0E-06*(PACKED*2.0+SCALAR)/time

A real recursive-descent parser (not :func:`eval`) keeps evaluation
safe and gives precise error messages for malformed group files.
Grammar::

    expr   := term (('+'|'-') term)*
    term   := unary (('*'|'/') unary)*
    unary  := '-' unary | atom
    atom   := NUMBER | IDENT | '(' expr ')'

Identifiers may contain letters, digits and underscores.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.errors import GroupError

_TOKEN_RE = re.compile(r"""
    (?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>[-+*/()])
  | (?P<ws>\s+)
""", re.VERBOSE)


def tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise GroupError(f"bad character {text[pos]!r} in formula {text!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind != "ws":
            tokens.append((kind, m.group()))
    return tokens


class _Parser:
    def __init__(self, text: str, variables: Mapping[str, float]):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        self.variables = variables

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise GroupError(f"unexpected end of formula {self.text!r}")
        self.pos += 1
        return tok

    def parse(self) -> float:
        value = self._expr()
        if self._peek() is not None:
            raise GroupError(
                f"trailing tokens after expression in {self.text!r}")
        return value

    def _expr(self) -> float:
        value = self._term()
        while (tok := self._peek()) and tok[1] in "+-":
            self._next()
            rhs = self._term()
            value = value + rhs if tok[1] == "+" else value - rhs
        return value

    def _term(self) -> float:
        value = self._unary()
        while (tok := self._peek()) and tok[1] in "*/":
            self._next()
            rhs = self._unary()
            if tok[1] == "*":
                value *= rhs
            else:
                value = value / rhs if rhs != 0 else float("nan")
        return value

    def _unary(self) -> float:
        tok = self._peek()
        if tok and tok[1] == "-":
            self._next()
            return -self._unary()
        return self._atom()

    def _atom(self) -> float:
        kind, text = self._next()
        if kind == "num":
            return float(text)
        if kind == "ident":
            try:
                return float(self.variables[text])
            except KeyError:
                raise GroupError(
                    f"unknown variable {text!r} in formula {self.text!r}") from None
        if text == "(":
            value = self._expr()
            kind, text = self._next()
            if text != ")":
                raise GroupError(f"expected ')' in formula {self.text!r}")
            return value
        raise GroupError(f"unexpected token {text!r} in formula {self.text!r}")


def evaluate(formula: str, variables: Mapping[str, float]) -> float:
    """Evaluate a metric formula against counter values."""
    return _Parser(formula, variables).parse()


def formula_variables(formula: str) -> set[str]:
    """The identifiers a formula references (for validation)."""
    return {text for kind, text in tokenize(formula) if kind == "ident"}
