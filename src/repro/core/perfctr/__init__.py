"""likwid-perfCtr: hardware performance counter measurement."""

from repro.core.perfctr.counters import (Assignment, CounterMap, RetryPolicy,
                                         counter_delta)
from repro.core.perfctr.events import EventSpec, parse_event_string
from repro.core.perfctr.groups import GroupDef, groups_for, lookup_group
from repro.core.perfctr.marker import MarkerAPI
from repro.core.perfctr.measurement import (LikwidPerfCtr, MeasurementResult,
                                            PerfCtrSession, SessionLease)
from repro.core.perfctr.multiplex import measure_multiplexed, split_event_sets

__all__ = ["Assignment", "CounterMap", "RetryPolicy", "counter_delta",
           "EventSpec", "parse_event_string",
           "GroupDef", "groups_for", "lookup_group", "MarkerAPI",
           "LikwidPerfCtr", "MeasurementResult", "PerfCtrSession",
           "SessionLease", "measure_multiplexed", "split_event_sets"]
