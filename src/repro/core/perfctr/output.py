"""likwid-perfCtr result rendering (the paper's bordered tables).

Reproduces the listing format of §II.A: a header with CPU type and
clock, then per measurement (or per marker region) an event table with
one column per measured core, followed by a metric table when a
preconfigured group was measured.
"""

from __future__ import annotations

from repro.core.perfctr.measurement import MeasurementResult
from repro.hw.machine import SimMachine
from repro.tables import RULE, render_table
from repro.units import format_count, format_hz


def render_header(machine: SimMachine, group_name: str | None = None) -> str:
    lines = [RULE,
             f"CPU type:\t{machine.spec.cpu_name}",
             f"CPU clock:\t{format_hz(machine.spec.clock_hz)}",
             RULE]
    if group_name:
        lines.append(f"Measuring group {group_name}")
        lines.append(RULE)
    return "\n".join(lines)


def render_event_table(result: MeasurementResult) -> str:
    header = ["Event"] + [f"core {cpu}" for cpu in result.cpus]
    event_names: list[str] = []
    for cpu in result.cpus:
        for name in result.counts[cpu]:
            if name not in event_names:
                event_names.append(name)
    rows = []
    for name in event_names:
        rows.append([name] + [
            format_count(result.counts[cpu].get(name, 0.0))
            for cpu in result.cpus])
    return render_table(header, rows)


def render_metric_table(result: MeasurementResult) -> str:
    if not result.metrics:
        return ""
    header = ["Metric"] + [f"core {cpu}" for cpu in result.cpus]
    first = result.metrics[result.cpus[0]]
    rows = []
    for label in first:
        rows.append([label] + [
            f"{result.metrics[cpu][label]:.6g}" for cpu in result.cpus])
    return render_table(header, rows)


def render_statistics_table(result: MeasurementResult) -> str:
    """Cross-core Sum/Min/Max/Avg reduction (printed for multi-core
    measurements, as later likwid-perfctr releases do)."""
    if len(result.cpus) < 2:
        return ""
    header = ["Event", "Sum", "Min", "Max", "Avg"]
    event_names: list[str] = []
    for cpu in result.cpus:
        for name in result.counts[cpu]:
            if name not in event_names:
                event_names.append(name)
    rows = []
    for name in event_names:
        values = [result.counts[cpu].get(name, 0.0) for cpu in result.cpus]
        rows.append([name, format_count(sum(values)),
                     format_count(min(values)), format_count(max(values)),
                     format_count(sum(values) / len(values))])
    return render_table(header, rows)


def render_result(machine: SimMachine, result: MeasurementResult,
                  *, region: str | None = None,
                  statistics: bool = True) -> str:
    """Full report for one measurement (optionally one marker region)."""
    parts = []
    if region is not None:
        parts.append(f"Region: {region}")
    parts.append(render_event_table(result))
    if statistics:
        stats_table = render_statistics_table(result)
        if stats_table:
            parts.append(stats_table)
    metric_table = render_metric_table(result)
    if metric_table:
        parts.append(metric_table)
    return "\n".join(parts)


def render_full_report(machine: SimMachine,
                       results: dict[str | None, MeasurementResult],
                       group_name: str | None = None) -> str:
    """Header plus one section per region (None key = whole run)."""
    parts = [render_header(machine, group_name)]
    for region, result in results.items():
        parts.append(render_result(machine, result, region=region))
    return "\n".join(parts)
