"""The likwid marker API (paper §II.A).

Restricts measurement to named code regions::

    likwid_markerInit(numberOfThreads, numberOfRegions)
    MainId = likwid_markerRegisterRegion("Main")
    likwid_markerStartRegion(threadId, coreId)
    ... measured code ...
    likwid_markerStopRegion(threadId, coreId, MainId)
    likwid_markerClose()

Semantics reproduced from the paper: counts accumulate automatically
over repeated executions of a region; **nesting or partial overlap of
regions is not allowed** (start-while-started raises); the caller
supplies both its thread id and the core id it runs on — the API
trusts the user to have pinned correctly (the likwid-pin pairing).

The marker layer snapshots counter values through an already-started
:class:`~repro.core.perfctr.measurement.PerfCtrSession`; the counts it
attributes to a region are whatever ran on the core in between, exactly
like the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import trace as _trace
from repro.core.perfctr.counters import counter_delta
from repro.core.perfctr.measurement import (MeasurementResult, PerfCtrSession,
                                            derive_metrics)
from repro.errors import MarkerError


@dataclass
class RegionData:
    """Accumulated measurements of one named region."""

    name: str
    region_id: int
    call_count: dict[int, int] = field(default_factory=dict)   # per thread
    counts: dict[int, dict[str, float]] = field(default_factory=dict)  # per core


class MarkerAPI:
    """One process's marker state (likwid.h in miniature)."""

    def __init__(self, session: PerfCtrSession):
        self.session = session
        self._initialised = False
        self._closed = False
        self._max_threads = 0
        self._max_regions = 0
        self._regions: list[RegionData] = []
        # thread id -> (core id, snapshot) while inside a region
        self._active: dict[int, tuple[int, dict[str, float]]] = {}

    # -- API entry points -----------------------------------------------------

    def likwid_markerInit(self, number_of_threads: int,
                          number_of_regions: int) -> None:
        if self._initialised:
            raise MarkerError("likwid_markerInit called twice")
        if number_of_threads < 1 or number_of_regions < 1:
            raise MarkerError("thread and region counts must be positive")
        self._initialised = True
        self._max_threads = number_of_threads
        self._max_regions = number_of_regions

    def likwid_markerRegisterRegion(self, name: str) -> int:
        self._check_init()
        if any(r.name == name for r in self._regions):
            raise MarkerError(f"region {name!r} registered twice")
        if len(self._regions) >= self._max_regions:
            raise MarkerError(
                f"more regions than declared ({self._max_regions})")
        region = RegionData(name=name, region_id=len(self._regions))
        self._regions.append(region)
        return region.region_id

    def likwid_markerStartRegion(self, thread_id: int, core_id: int) -> None:
        self._check_init()
        self._check_thread(thread_id)
        if thread_id in self._active:
            raise MarkerError(
                f"thread {thread_id} started a region while one is active "
                "(nesting/overlap is not allowed)")
        if core_id not in self.session.cpus:
            raise MarkerError(
                f"core {core_id} is not part of the measurement set "
                f"{self.session.cpus}")
        snapshot = self.session.read_raw(core_id)
        self._active[thread_id] = (core_id, snapshot)

    def likwid_markerStopRegion(self, thread_id: int, core_id: int,
                                region_id: int) -> None:
        self._check_init()
        try:
            start_core, snapshot = self._active.pop(thread_id)
        except KeyError:
            raise MarkerError(
                f"thread {thread_id} stopped a region without starting one"
            ) from None
        if start_core != core_id:
            raise MarkerError(
                f"thread {thread_id} started on core {start_core} but "
                f"stopped on core {core_id} — was it pinned?")
        try:
            region = self._regions[region_id]
        except IndexError:
            raise MarkerError(f"unknown region id {region_id}") from None
        current = self.session.read_raw(core_id)
        acc = region.counts.setdefault(core_id, {})
        width = self.session.machine.spec.pmu.counter_width
        for name, value in current.items():
            delta = counter_delta(value, snapshot.get(name, 0.0), width)
            acc[name] = acc.get(name, 0.0) + delta
        region.call_count[thread_id] = region.call_count.get(thread_id, 0) + 1
        if _trace.TRACER.enabled:
            _trace.incr("marker.region_visits")

    def likwid_markerClose(self) -> None:
        self._check_init()
        if self._active:
            raise MarkerError(
                f"regions still open on threads {sorted(self._active)}")
        self._closed = True

    # -- results -----------------------------------------------------------------

    def region_result(self, name: str) -> MeasurementResult:
        """Accumulated measurement for one region, as a standard result
        (with group metrics when the session measures a group)."""
        if not self._closed:
            raise MarkerError("results only available after likwid_markerClose")
        for region in self._regions:
            if region.name == name:
                break
        else:
            raise MarkerError(f"unknown region {name!r}")
        cpus = sorted(region.counts)
        result = MeasurementResult(cpus=cpus,
                                   counts={c: dict(region.counts[c])
                                           for c in cpus},
                                   group=self.session.group)
        if self.session.group is not None:
            derive_metrics(result, self.session.group,
                           self.session.machine.spec.clock_hz)
        return result

    def region_names(self) -> list[str]:
        return [r.name for r in self._regions]

    # -- checks ---------------------------------------------------------------------

    def _check_init(self) -> None:
        if not self._initialised:
            raise MarkerError("likwid_markerInit has not been called")
        if self._closed:
            raise MarkerError("marker API already closed")

    def _check_thread(self, thread_id: int) -> None:
        if not 0 <= thread_id < self._max_threads:
            raise MarkerError(
                f"thread id {thread_id} outside declared range "
                f"0..{self._max_threads - 1}")
