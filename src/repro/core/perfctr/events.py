"""Command-line event parsing for likwid-perfctr.

The paper's syntax assigns events to named counters explicitly::

    -g SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,\\
       SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1

Counter names are PMC<n> (general-purpose), FIXC<n> (Intel fixed) and
UPMC<n> (Nehalem uncore).  Additional colon-separated *options* select
PERFEVTSEL filter bits (``EVENT:PMC0:EDGEDETECT:CMASK=0x2``): supported
are EDGEDETECT, INVERT, ANYTHREAD, KERNEL (ring-0 only), USER (ring-3
only) and CMASK=<n>.  A ``-g`` argument with no colon is a
preconfigured group instead (resolved by
:mod:`repro.core.perfctr.groups`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import EventError

_COUNTER_RE = re.compile(r"^(PMC|FIXC|UPMC|UFIXC)(\d+)$")

_FLAG_OPTIONS = ("EDGEDETECT", "INVERT", "ANYTHREAD", "KERNEL", "USER")


@dataclass(frozen=True)
class EventOptions:
    """PERFEVTSEL filter options of one assignment."""

    edge: bool = False
    invert: bool = False
    anythread: bool = False
    kernel_only: bool = False
    user_only: bool = False
    cmask: int = 0

    def evtsel_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.hw.registers.evtsel_encode`."""
        return dict(edge=self.edge, inv=self.invert,
                    anythread=self.anythread, cmask=self.cmask,
                    usr=not self.kernel_only, os=not self.user_only)


def parse_options(parts: list[str], context: str) -> EventOptions:
    """Parse the option tail of one EVENT:COUNTER[:OPT...] element."""
    values = {"edge": False, "invert": False, "anythread": False,
              "kernel_only": False, "user_only": False, "cmask": 0}
    for part in parts:
        token = part.strip().upper()
        if token == "EDGEDETECT":
            values["edge"] = True
        elif token == "INVERT":
            values["invert"] = True
        elif token == "ANYTHREAD":
            values["anythread"] = True
        elif token == "KERNEL":
            values["kernel_only"] = True
        elif token == "USER":
            values["user_only"] = True
        elif token.startswith("CMASK="):
            try:
                values["cmask"] = int(token[6:], 0)
            except ValueError:
                raise EventError(
                    f"bad CMASK value in {context!r}") from None
            if not 0 <= values["cmask"] <= 0xFF:
                raise EventError(f"CMASK out of range in {context!r}")
        else:
            raise EventError(
                f"unknown event option {part!r} in {context!r} "
                f"(known: {', '.join(_FLAG_OPTIONS)}, CMASK=<n>)")
    if values["kernel_only"] and values["user_only"]:
        raise EventError(f"KERNEL and USER are exclusive in {context!r}")
    return EventOptions(**values)


@dataclass(frozen=True)
class EventSpec:
    """One EVENT:COUNTER[:OPTIONS] assignment from the command line."""

    event: str
    counter: str
    options: EventOptions = field(default_factory=EventOptions)

    @property
    def counter_class(self) -> str:
        return _COUNTER_RE.match(self.counter).group(1)

    @property
    def counter_index(self) -> int:
        return int(_COUNTER_RE.match(self.counter).group(2))

    def render(self) -> str:
        """Back to command-line form, options included."""
        parts = [self.event, self.counter]
        o = self.options
        if o.edge:
            parts.append("EDGEDETECT")
        if o.invert:
            parts.append("INVERT")
        if o.anythread:
            parts.append("ANYTHREAD")
        if o.kernel_only:
            parts.append("KERNEL")
        if o.user_only:
            parts.append("USER")
        if o.cmask:
            parts.append(f"CMASK=0x{o.cmask:X}")
        return ":".join(parts)


def is_event_string(text: str) -> bool:
    """Heuristic the tool uses: explicit event strings contain ':'."""
    return ":" in text


def parse_event_string(text: str, *,
                       allow_duplicates: bool = False) -> list[EventSpec]:
    """Parse 'EVENT:CTR,EVENT:CTR,...' into EventSpecs.

    A counter assigned twice is an error in a plain measurement but is
    exactly what multiplexing mode schedules round-robin, so the
    multiplexer parses with *allow_duplicates*.
    """
    if not text.strip():
        raise EventError("empty event string")
    specs: list[EventSpec] = []
    seen_counters: set[str] = set()
    for item in text.split(","):
        item = item.strip()
        if not item:
            raise EventError(f"empty element in event string {text!r}")
        fields = item.split(":")
        if len(fields) < 2 or not fields[0] or not fields[1]:
            raise EventError(
                f"malformed event assignment {item!r} (want EVENT:COUNTER)")
        event, counter = fields[0], fields[1]
        m = _COUNTER_RE.match(counter)
        if m is None:
            raise EventError(f"malformed counter name {counter!r}")
        if counter in seen_counters and not allow_duplicates:
            raise EventError(f"counter {counter} assigned twice")
        seen_counters.add(counter)
        options = parse_options(fields[2:], item)
        specs.append(EventSpec(event, counter, options))
    return specs
