"""Preconfigured event groups ("performance groups") with derived metrics.

The paper's abstraction layer (§II.A): instead of raw event names, the
user asks for ``-g FLOPS_DP`` or ``-g MEM`` and gets the right events
on the right counters plus derived metrics.  The same group names are
provided on every architecture whose native events support them, with
per-family event selections — e.g. ``MEM`` uses the Nehalem uncore QMC
events, Core 2's L2 line traffic (its L2 is the last cache level), or
AMD's northbridge DRAM events; AMD has no fixed counters, so its
groups spend two general-purpose counters on instructions and cycles.

Metric formulas are strings over event names plus ``time`` (seconds)
and ``clock`` (Hz), evaluated by :mod:`repro.core.perfctr.formula`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.perfctr.events import EventSpec
from repro.errors import GroupError
from repro.hw.spec import ArchSpec

# The paper's table of event sets (§II.A).
GROUP_FUNCTIONS = {
    "FLOPS_DP": "Double Precision MFlops/s",
    "FLOPS_SP": "Single Precision MFlops/s",
    "L2": "L2 cache bandwidth in MBytes/s",
    "L3": "L3 cache bandwidth in MBytes/s",
    "MEM": "Main memory bandwidth in MBytes/s",
    "CACHE": "L1 Data cache miss rate/ratio",
    "L2CACHE": "L2 Data cache miss rate/ratio",
    "L3CACHE": "L3 Data cache miss rate/ratio",
    "DATA": "Load to store ratio",
    "BRANCH": "Branch prediction miss rate/ratio",
    "TLB": "Translation lookaside buffer miss rate/ratio",
}


@dataclass(frozen=True)
class GroupDef:
    """One preconfigured group on one architecture family."""

    name: str
    description: str
    events: tuple[EventSpec, ...]
    metrics: tuple[tuple[str, str], ...]   # (metric label, formula)


def _g(name: str, events: list[tuple[str, str]],
       metrics: list[tuple[str, str]]) -> GroupDef:
    return GroupDef(name, GROUP_FUNCTIONS[name],
                    tuple(EventSpec(e, c) for e, c in events),
                    tuple(metrics))


# Shared Intel metric prelude: the fixed counters feed runtime and CPI
# in every group ("always counted").
_INTEL_COMMON = [
    ("Runtime [s]", "CPU_CLK_UNHALTED_CORE/clock"),
    ("CPI", "CPU_CLK_UNHALTED_CORE/INSTR_RETIRED_ANY"),
]

_AMD_COMMON = [
    ("Runtime [s]", "CPU_CLOCKS_UNHALTED/clock"),
    ("CPI", "CPU_CLOCKS_UNHALTED/RETIRED_INSTRUCTIONS"),
]
_AMD_FIXED = [("RETIRED_INSTRUCTIONS", "PMC0"), ("CPU_CLOCKS_UNHALTED", "PMC1")]


def _nehalem_groups() -> dict[str, GroupDef]:
    return {g.name: g for g in [
        _g("FLOPS_DP",
           [("FP_COMP_OPS_EXE_SSE_FP_PACKED", "PMC0"),
            ("FP_COMP_OPS_EXE_SSE_FP_SCALAR", "PMC1")],
           _INTEL_COMMON + [
               ("DP MFlops/s",
                "1.0E-06*(FP_COMP_OPS_EXE_SSE_FP_PACKED*2.0"
                "+FP_COMP_OPS_EXE_SSE_FP_SCALAR)/time")]),
        _g("FLOPS_SP",
           [("FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION", "PMC0"),
            ("FP_COMP_OPS_EXE_SSE_SCALAR_SINGLE", "PMC1")],
           _INTEL_COMMON + [
               ("SP MFlops/s",
                "1.0E-06*(FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION*4.0"
                "+FP_COMP_OPS_EXE_SSE_SCALAR_SINGLE)/time")]),
        _g("L2",
           [("L1D_REPL", "PMC0"), ("L1D_M_EVICT", "PMC1")],
           _INTEL_COMMON + [
               ("L2 Load [MBytes/s]", "1.0E-06*L1D_REPL*64.0/time"),
               ("L2 Evict [MBytes/s]", "1.0E-06*L1D_M_EVICT*64.0/time"),
               ("L2 bandwidth [MBytes/s]",
                "1.0E-06*(L1D_REPL+L1D_M_EVICT)*64.0/time")]),
        _g("L3",
           [("L2_LINES_IN_ANY", "PMC0"), ("L2_LINES_OUT_ANY", "PMC1")],
           _INTEL_COMMON + [
               ("L3 Load [MBytes/s]", "1.0E-06*L2_LINES_IN_ANY*64.0/time"),
               ("L3 Evict [MBytes/s]", "1.0E-06*L2_LINES_OUT_ANY*64.0/time"),
               ("L3 bandwidth [MBytes/s]",
                "1.0E-06*(L2_LINES_IN_ANY+L2_LINES_OUT_ANY)*64.0/time")]),
        _g("MEM",
           [("UNC_QMC_NORMAL_READS_ANY", "UPMC0"),
            ("UNC_QMC_WRITES_FULL_ANY", "UPMC1")],
           _INTEL_COMMON + [
               ("Memory bandwidth [MBytes/s]",
                "1.0E-06*(UNC_QMC_NORMAL_READS_ANY"
                "+UNC_QMC_WRITES_FULL_ANY)*64.0/time")]),
        _g("CACHE",
           [("L1D_REPL", "PMC0"),
            ("MEM_INST_RETIRED_LOADS", "PMC1"),
            ("MEM_INST_RETIRED_STORES", "PMC2")],
           _INTEL_COMMON + [
               ("Data cache misses", "L1D_REPL"),
               ("Data cache miss rate", "L1D_REPL/INSTR_RETIRED_ANY"),
               ("Data cache miss ratio",
                "L1D_REPL/(MEM_INST_RETIRED_LOADS+MEM_INST_RETIRED_STORES)")]),
        _g("L2CACHE",
           [("L2_RQSTS_REFERENCES", "PMC0"), ("L2_RQSTS_MISS", "PMC1")],
           _INTEL_COMMON + [
               ("L2 request rate", "L2_RQSTS_REFERENCES/INSTR_RETIRED_ANY"),
               ("L2 miss rate", "L2_RQSTS_MISS/INSTR_RETIRED_ANY"),
               ("L2 miss ratio", "L2_RQSTS_MISS/L2_RQSTS_REFERENCES")]),
        _g("L3CACHE",
           [("UNC_L3_HITS_ANY", "UPMC0"), ("UNC_L3_MISS_ANY", "UPMC1")],
           _INTEL_COMMON + [
               ("L3 miss rate", "UNC_L3_MISS_ANY/INSTR_RETIRED_ANY"),
               ("L3 miss ratio",
                "UNC_L3_MISS_ANY/(UNC_L3_HITS_ANY+UNC_L3_MISS_ANY)")]),
        _g("DATA",
           [("MEM_INST_RETIRED_LOADS", "PMC0"),
            ("MEM_INST_RETIRED_STORES", "PMC1")],
           _INTEL_COMMON + [
               ("Load to store ratio",
                "MEM_INST_RETIRED_LOADS/MEM_INST_RETIRED_STORES")]),
        _g("BRANCH",
           [("BR_INST_RETIRED_ALL_BRANCHES", "PMC0"),
            ("BR_MISP_RETIRED_ALL_BRANCHES", "PMC1")],
           _INTEL_COMMON + [
               ("Branch rate",
                "BR_INST_RETIRED_ALL_BRANCHES/INSTR_RETIRED_ANY"),
               ("Branch misprediction rate",
                "BR_MISP_RETIRED_ALL_BRANCHES/INSTR_RETIRED_ANY"),
               ("Branch misprediction ratio",
                "BR_MISP_RETIRED_ALL_BRANCHES/BR_INST_RETIRED_ALL_BRANCHES")]),
        _g("TLB",
           [("DTLB_MISSES_ANY", "PMC0")],
           _INTEL_COMMON + [
               ("DTLB miss rate", "DTLB_MISSES_ANY/INSTR_RETIRED_ANY")]),
    ]}


def _core2_groups() -> dict[str, GroupDef]:
    return {g.name: g for g in [
        _g("FLOPS_DP",
           [("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", "PMC0"),
            ("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", "PMC1")],
           _INTEL_COMMON + [
               ("DP MFlops/s",
                "1.0E-06*(SIMD_COMP_INST_RETIRED_PACKED_DOUBLE*2.0"
                "+SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE)/time")]),
        _g("FLOPS_SP",
           [("SIMD_COMP_INST_RETIRED_PACKED_SINGLE", "PMC0"),
            ("SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", "PMC1")],
           _INTEL_COMMON + [
               ("SP MFlops/s",
                "1.0E-06*(SIMD_COMP_INST_RETIRED_PACKED_SINGLE*4.0"
                "+SIMD_COMP_INST_RETIRED_SCALAR_SINGLE)/time")]),
        _g("L2",
           [("L1D_REPL", "PMC0"), ("L1D_M_EVICT", "PMC1")],
           _INTEL_COMMON + [
               ("L2 bandwidth [MBytes/s]",
                "1.0E-06*(L1D_REPL+L1D_M_EVICT)*64.0/time")]),
        # Core 2's L2 is the last level: its line traffic IS the
        # memory bandwidth.
        _g("MEM",
           [("L2_LINES_IN_ANY", "PMC0"), ("L2_LINES_OUT_ANY", "PMC1")],
           _INTEL_COMMON + [
               ("Memory bandwidth [MBytes/s]",
                "1.0E-06*(L2_LINES_IN_ANY+L2_LINES_OUT_ANY)*64.0/time")]),
        _g("CACHE",
           [("L1D_REPL", "PMC0"), ("L1D_ALL_REF", "PMC1")],
           _INTEL_COMMON + [
               ("Data cache misses", "L1D_REPL"),
               ("Data cache miss rate", "L1D_REPL/INSTR_RETIRED_ANY"),
               ("Data cache miss ratio", "L1D_REPL/L1D_ALL_REF")]),
        _g("L2CACHE",
           [("L2_RQSTS_ANY", "PMC0"), ("L2_RQSTS_MISS", "PMC1")],
           _INTEL_COMMON + [
               ("L2 request rate", "L2_RQSTS_ANY/INSTR_RETIRED_ANY"),
               ("L2 miss rate", "L2_RQSTS_MISS/INSTR_RETIRED_ANY"),
               ("L2 miss ratio", "L2_RQSTS_MISS/L2_RQSTS_ANY")]),
        _g("DATA",
           [("INST_RETIRED_LOADS", "PMC0"), ("INST_RETIRED_STORES", "PMC1")],
           _INTEL_COMMON + [
               ("Load to store ratio",
                "INST_RETIRED_LOADS/INST_RETIRED_STORES")]),
        _g("BRANCH",
           [("BR_INST_RETIRED_ANY", "PMC0"),
            ("BR_INST_RETIRED_MISPRED", "PMC1")],
           _INTEL_COMMON + [
               ("Branch rate", "BR_INST_RETIRED_ANY/INSTR_RETIRED_ANY"),
               ("Branch misprediction rate",
                "BR_INST_RETIRED_MISPRED/INSTR_RETIRED_ANY"),
               ("Branch misprediction ratio",
                "BR_INST_RETIRED_MISPRED/BR_INST_RETIRED_ANY")]),
        _g("TLB",
           [("DTLB_MISSES_ANY", "PMC0")],
           _INTEL_COMMON + [
               ("DTLB miss rate", "DTLB_MISSES_ANY/INSTR_RETIRED_ANY")]),
    ]}


def _atom_groups() -> dict[str, GroupDef]:
    core2 = _core2_groups()
    keep = ("FLOPS_DP", "FLOPS_SP", "L2CACHE", "BRANCH")
    groups = {name: core2[name] for name in keep}
    groups["MEM"] = _g(
        "MEM",
        [("L2_LINES_IN_ANY", "PMC0"), ("L2_LINES_OUT_ANY", "PMC1")],
        _INTEL_COMMON + [
            ("Memory bandwidth [MBytes/s]",
             "1.0E-06*(L2_LINES_IN_ANY+L2_LINES_OUT_ANY)*64.0/time")])
    return groups


def _pentium_m_groups() -> dict[str, GroupDef]:
    # No fixed counters: runtime/CPI need the two general counters, so
    # payload groups report against wall time only.
    common = [("Runtime [s]", "time")]
    return {g.name: g for g in [
        _g("FLOPS_DP",
           [("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP", "PMC0"),
            ("EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DP", "PMC1")],
           common + [
               ("DP MFlops/s",
                "1.0E-06*(EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP*2.0"
                "+EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DP)/time")]),
        _g("MEM",
           [("L2_LINES_IN", "PMC0"), ("L2_LINES_OUT", "PMC1")],
           common + [
               ("Memory bandwidth [MBytes/s]",
                "1.0E-06*(L2_LINES_IN+L2_LINES_OUT)*64.0/time")]),
        _g("BRANCH",
           [("BR_INST_RETIRED", "PMC0"), ("BR_MISPRED_RETIRED", "PMC1")],
           common + [
               ("Branch misprediction ratio",
                "BR_MISPRED_RETIRED/BR_INST_RETIRED")]),
        _g("DATA",
           [("INSTR_RETIRED_ANY", "PMC0"), ("DATA_MEM_REFS", "PMC1")],
           common + [
               ("Memory references per instruction",
                "DATA_MEM_REFS/INSTR_RETIRED_ANY")]),
    ]}


def _amd_groups() -> dict[str, GroupDef]:
    return {g.name: g for g in [
        _g("FLOPS_DP",
           _AMD_FIXED + [("SSE_RETIRED_PACKED_DOUBLE", "PMC2"),
                         ("SSE_RETIRED_SCALAR_DOUBLE", "PMC3")],
           _AMD_COMMON + [
               ("DP MFlops/s",
                "1.0E-06*(SSE_RETIRED_PACKED_DOUBLE*2.0"
                "+SSE_RETIRED_SCALAR_DOUBLE)/time")]),
        _g("FLOPS_SP",
           _AMD_FIXED + [("SSE_RETIRED_PACKED_SINGLE", "PMC2"),
                         ("SSE_RETIRED_SCALAR_SINGLE", "PMC3")],
           _AMD_COMMON + [
               ("SP MFlops/s",
                "1.0E-06*(SSE_RETIRED_PACKED_SINGLE*4.0"
                "+SSE_RETIRED_SCALAR_SINGLE)/time")]),
        _g("L2",
           _AMD_FIXED + [("DATA_CACHE_REFILLS_L2", "PMC2"),
                         ("DATA_CACHE_EVICTED_ALL", "PMC3")],
           _AMD_COMMON + [
               ("L2 bandwidth [MBytes/s]",
                "1.0E-06*(DATA_CACHE_REFILLS_L2"
                "+DATA_CACHE_EVICTED_ALL)*64.0/time")]),
        _g("MEM",
           _AMD_FIXED + [("DRAM_ACCESSES_DCT_READS", "PMC2"),
                         ("DRAM_ACCESSES_DCT_WRITES", "PMC3")],
           _AMD_COMMON + [
               ("Memory bandwidth [MBytes/s]",
                "1.0E-06*(DRAM_ACCESSES_DCT_READS"
                "+DRAM_ACCESSES_DCT_WRITES)*64.0/time")]),
        _g("CACHE",
           _AMD_FIXED + [("DATA_CACHE_REFILLS_L2", "PMC2"),
                         ("DATA_CACHE_REFILLS_NORTHBRIDGE", "PMC3")],
           _AMD_COMMON + [
               ("Data cache miss rate",
                "(DATA_CACHE_REFILLS_L2+DATA_CACHE_REFILLS_NORTHBRIDGE)"
                "/RETIRED_INSTRUCTIONS")]),
        _g("L2CACHE",
           _AMD_FIXED + [("L2_REQUESTS_ALL", "PMC2"),
                         ("L2_MISSES_ALL", "PMC3")],
           _AMD_COMMON + [
               ("L2 request rate", "L2_REQUESTS_ALL/RETIRED_INSTRUCTIONS"),
               ("L2 miss rate", "L2_MISSES_ALL/RETIRED_INSTRUCTIONS"),
               ("L2 miss ratio", "L2_MISSES_ALL/L2_REQUESTS_ALL")]),
        _g("L3",
           _AMD_FIXED + [("L3_FILLS_ALL_CORES", "PMC2")],
           _AMD_COMMON + [
               ("L3 bandwidth [MBytes/s]",
                "1.0E-06*L3_FILLS_ALL_CORES*64.0/time")]),
        _g("L3CACHE",
           _AMD_FIXED + [("L3_READ_REQUEST_ALL_CORES", "PMC2"),
                         ("L3_MISSES_ALL_CORES", "PMC3")],
           _AMD_COMMON + [
               ("L3 miss rate",
                "L3_MISSES_ALL_CORES/RETIRED_INSTRUCTIONS"),
               ("L3 miss ratio",
                "L3_MISSES_ALL_CORES/L3_READ_REQUEST_ALL_CORES")]),
        _g("DATA",
           _AMD_FIXED + [("RETIRED_LOADS", "PMC2"),
                         ("RETIRED_STORES", "PMC3")],
           _AMD_COMMON + [
               ("Load to store ratio", "RETIRED_LOADS/RETIRED_STORES")]),
        _g("BRANCH",
           _AMD_FIXED + [("RETIRED_BRANCH_INSTR", "PMC2"),
                         ("RETIRED_MISPREDICTED_BRANCH_INSTR", "PMC3")],
           _AMD_COMMON + [
               ("Branch rate",
                "RETIRED_BRANCH_INSTR/RETIRED_INSTRUCTIONS"),
               ("Branch misprediction ratio",
                "RETIRED_MISPREDICTED_BRANCH_INSTR/RETIRED_BRANCH_INSTR")]),
        _g("TLB",
           _AMD_FIXED + [("DTLB_L2_MISS_ALL", "PMC2")],
           _AMD_COMMON + [
               ("DTLB miss rate",
                "DTLB_L2_MISS_ALL/RETIRED_INSTRUCTIONS")]),
    ]}


def _power9_groups() -> dict[str, GroupDef]:
    # No fixed-counter file: the run-latch pair PM_RUN_INST_CMPL /
    # PM_RUN_CYC is restricted to the last two general counters, so
    # every group spends PMC4/PMC5 on it ("always counted").  Payload
    # events come first, the pair last.  POWER9 cache lines are 128B.
    fixed = [("PM_RUN_INST_CMPL", "PMC4"), ("PM_RUN_CYC", "PMC5")]
    common = [
        ("Runtime [s]", "PM_RUN_CYC/clock"),
        ("CPI", "PM_RUN_CYC/PM_RUN_INST_CMPL"),
    ]
    return {g.name: g for g in [
        _g("FLOPS_DP",
           [("PM_VECTOR_FLOP_CMPL", "PMC0"),
            ("PM_SCALAR_FLOP_CMPL", "PMC1")] + fixed,
           common + [
               ("DP MFlops/s",
                "1.0E-06*(PM_VECTOR_FLOP_CMPL*2.0"
                "+PM_SCALAR_FLOP_CMPL)/time")]),
        _g("FLOPS_SP",
           [("PM_VECTOR_FLOP_SP_CMPL", "PMC0"),
            ("PM_SCALAR_FLOP_SP_CMPL", "PMC1")] + fixed,
           common + [
               ("SP MFlops/s",
                "1.0E-06*(PM_VECTOR_FLOP_SP_CMPL*4.0"
                "+PM_SCALAR_FLOP_SP_CMPL)/time")]),
        _g("MEM",
           [("PM_DATA_FROM_LMEM", "PMC0"),
            ("PM_DATA_TO_LMEM", "PMC1")] + fixed,
           common + [
               ("Memory bandwidth [MBytes/s]",
                "1.0E-06*(PM_DATA_FROM_LMEM"
                "+PM_DATA_TO_LMEM)*128.0/time")]),
        _g("CACHE",
           [("PM_LD_MISS_L1", "PMC0"),
            ("PM_LD_CMPL", "PMC1"),
            ("PM_ST_CMPL", "PMC2")] + fixed,
           common + [
               ("Data cache misses", "PM_LD_MISS_L1"),
               ("Data cache miss rate", "PM_LD_MISS_L1/PM_RUN_INST_CMPL"),
               ("Data cache miss ratio",
                "PM_LD_MISS_L1/(PM_LD_CMPL+PM_ST_CMPL)")]),
        _g("DATA",
           [("PM_LD_CMPL", "PMC0"), ("PM_ST_CMPL", "PMC1")] + fixed,
           common + [
               ("Load to store ratio", "PM_LD_CMPL/PM_ST_CMPL")]),
        _g("BRANCH",
           [("PM_BR_CMPL", "PMC0"), ("PM_BR_MPRED_CMPL", "PMC1")] + fixed,
           common + [
               ("Branch rate", "PM_BR_CMPL/PM_RUN_INST_CMPL"),
               ("Branch misprediction rate",
                "PM_BR_MPRED_CMPL/PM_RUN_INST_CMPL"),
               ("Branch misprediction ratio",
                "PM_BR_MPRED_CMPL/PM_BR_CMPL")]),
        _g("TLB",
           [("PM_DTLB_MISS", "PMC0")] + fixed,
           common + [
               ("DTLB miss rate", "PM_DTLB_MISS/PM_RUN_INST_CMPL")]),
    ]}


_FAMILY_BUILDERS = {
    "core2": _core2_groups,
    "core2duo": _core2_groups,
    "nehalem_ep": _nehalem_groups,
    "nehalem_ws": _nehalem_groups,
    "westmere_ep": _nehalem_groups,
    "atom": _atom_groups,
    "pentium_m": _pentium_m_groups,
    "banias": _pentium_m_groups,
    "amd_k8": _amd_groups,
    "amd_istanbul": _amd_groups,
    "power9": _power9_groups,
}


def builtin_groups_for(spec: ArchSpec) -> dict[str, GroupDef]:
    """The built-in (code-defined) group catalog for one architecture."""
    try:
        builder = _FAMILY_BUILDERS[spec.name]
    except KeyError:
        raise GroupError(f"no group definitions for arch {spec.name!r}") from None
    return builder()


def file_groups_for(spec: ArchSpec) -> dict[str, GroupDef] | None:
    """Groups loaded from the shipped ``groupfiles/<arch>/*.txt``
    directory (the likwid convention), or None when absent."""
    from repro.core.perfctr.groupfile import groupfile_dir, load_group_dir
    arch_dir = groupfile_dir(spec.name)
    if not arch_dir.is_dir():
        return None
    parsed = load_group_dir(arch_dir)
    if not parsed:
        return None
    groups: dict[str, GroupDef] = {}
    for name, pg in parsed.items():
        groups[name] = GroupDef(
            name=name,
            description=pg.short,
            events=pg.event_specs(),
            metrics=tuple(pg.rewritten_metrics()))
    return groups


def groups_for(spec: ArchSpec) -> dict[str, GroupDef]:
    """All groups available on one architecture (validated against its
    event table, so an arch without, say, an L3 never offers L3 groups).

    Group definitions come from the architecture's group-file directory
    when it exists — users can drop their own ``.txt`` files there, as
    with the real tool — with the built-in catalog as fallback.
    """
    groups = file_groups_for(spec)
    if groups is None:
        groups = builtin_groups_for(spec)
    available: dict[str, GroupDef] = {}
    for name, group in groups.items():
        if all(e.event in spec.events for e in group.events):
            available[name] = group
    return available


def lookup_group(spec: ArchSpec, name: str) -> GroupDef:
    groups = groups_for(spec)
    try:
        return groups[name]
    except KeyError:
        raise GroupError(
            f"group {name!r} not available on {spec.name}; "
            f"available: {', '.join(sorted(groups))}") from None
