"""Counter multiplexing (paper §II.A).

When more events are requested than the architecture has counters,
likwid-perfCtr assigns counters to several event sets "in a round
robin manner" and extrapolates each set's counts to the whole run.
The cost is statistical: a set only observes the slices during which
it was scheduled, so short runs (or runs whose behaviour varies across
slices) carry large errors — the trade-off the paper calls out, and
the ablation benchmark quantifies.

The application's execution is exposed to the scheduler as a
``run_slice(fraction)`` callable (the simulated analogue of letting the
program run while a timer rotates event sets).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.core.perfctr.counters import auto_fixed_assignments
from repro.core.perfctr.measurement import LikwidPerfCtr, MeasurementResult
from repro.errors import CounterError


@dataclass
class MultiplexResult:
    """Extrapolated counts per event set."""

    estimates: dict[int, dict[str, float]] = field(default_factory=dict)
    scheduled_fraction: dict[str, float] = field(default_factory=dict)
    rotations: int = 0

    def event(self, cpu: int, name: str) -> float:
        return self.estimates[cpu][name]


def split_event_sets(perfctr: LikwidPerfCtr,
                     event_string: str) -> list[str]:
    """Split an oversubscribed event string into schedulable sets.

    Events keep their requested counters; two assignments to the same
    counter land in different sets (the round-robin sharing).
    """
    from repro.core.perfctr.events import parse_event_string
    specs = parse_event_string(event_string, allow_duplicates=True)
    sets: list[list[str]] = []
    used: list[set[str]] = []
    for spec in specs:
        for i, counters in enumerate(used):
            if spec.counter not in counters:
                counters.add(spec.counter)
                sets[i].append(spec.render())
                break
        else:
            used.append({spec.counter})
            sets.append([spec.render()])
    return [",".join(s) for s in sets]


def measure_multiplexed(perfctr: LikwidPerfCtr, cpus: str | list[int],
                        event_sets: Sequence[str],
                        run_slice: Callable[[float], object],
                        *, rotations: int = 10) -> MultiplexResult:
    """Round-robin the event sets over `rotations` equal slices.

    Each slice: program the next set, run 1/rotations of the
    application, read.  Final counts are extrapolated by the inverse
    of each set's scheduled fraction.
    """
    if not event_sets:
        raise CounterError("no event sets to multiplex")
    if rotations < len(event_sets):
        raise CounterError(
            f"{rotations} rotations cannot schedule {len(event_sets)} sets")

    accumulated: dict[int, dict[str, float]] = {}
    slices_per_set = [0] * len(event_sets)
    fraction = 1.0 / rotations

    for rotation in range(rotations):
        set_index = rotation % len(event_sets)
        slices_per_set[set_index] += 1
        if _trace.TRACER.enabled:
            _trace.incr("multiplex.sets_scheduled")
        with _trace.span("multiplex.rotation", rotation=rotation,
                         set=set_index):
            result: MeasurementResult = perfctr.wrap(
                cpus, event_sets[set_index], lambda: run_slice(fraction))
        for cpu, counts in result.counts.items():
            acc = accumulated.setdefault(cpu, {})
            for name, value in counts.items():
                acc[name] = acc.get(name, 0.0) + value

    # Which events were observable in which fraction of the run?
    scheduled: dict[str, float] = {}
    from repro.core.perfctr.events import parse_event_string
    for set_index, text in enumerate(event_sets):
        frac = slices_per_set[set_index] / rotations
        # Dedupe within the set: an event programmed on two counters of
        # the same set still only observes that set's slices once.
        for name in {spec.event for spec in
                     parse_event_string(text, allow_duplicates=True)}:
            scheduled[name] = scheduled.get(name, 0.0) + frac
    # Set fractions sum to 1, so per-event fractions cannot exceed a
    # full run; clamp anyway so rounding can never under-extrapolate.
    scheduled = {name: min(frac, 1.0) for name, frac in scheduled.items()}
    # The auto-added fixed events count in every slice — but only on
    # architectures that actually have fixed counters.  Deriving the
    # set from the arch (instead of hardcoding the Intel names) keeps
    # extrapolation correct on AMD and the fixed-counter-less Intel
    # parts, where the cycle/instruction events live on ordinary PMCs
    # and *are* subject to multiplexing.
    always = {a.event.name
              for a in auto_fixed_assignments(perfctr.machine.spec.events,
                                              perfctr.counters)}

    estimates: dict[int, dict[str, float]] = {}
    for cpu, counts in accumulated.items():
        est = estimates.setdefault(cpu, {})
        for name, value in counts.items():
            frac = 1.0 if name in always else scheduled.get(name, 1.0)
            est[name] = value / frac if frac > 0 else 0.0
    return MultiplexResult(estimates=estimates,
                           scheduled_fraction=scheduled,
                           rotations=rotations)
