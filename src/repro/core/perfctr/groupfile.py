"""The performance-group file format (likwid's ``groups/<arch>/*.txt``).

Real LIKWID defines its preconfigured event groups as small text files
per architecture, so users can add their own groups without
recompiling.  This module implements that format::

    SHORT Double Precision MFlops/s

    EVENTSET
    FIXC0 INSTR_RETIRED_ANY
    PMC0  FP_COMP_OPS_EXE_SSE_FP_PACKED
    PMC1  FP_COMP_OPS_EXE_SSE_FP_SCALAR

    METRICS
    Runtime [s] FIXC1/clock
    CPI  FIXC1/FIXC0
    DP MFlops/s  1.0E-06*(PMC0*2.0+PMC1)/time

    LONG
    Double precision SSE flop rate, packed ops counted twice.

Metric formulas reference *counter names* (the likwid convention); the
loader rewrites them to event names using the EVENTSET mapping so the
rest of the measurement stack stays counter-agnostic.

The shipped group files under ``groupfiles/<arch>/`` are the source of
truth at runtime; :func:`repro.core.perfctr.groups.groups_for` loads
them and falls back to its built-in definitions only when no file
directory exists for an architecture.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.perfctr.events import EventSpec
from repro.errors import GroupError

GROUPFILE_ROOT = Path(__file__).parent / "groupfiles"

_COUNTER_TOKEN = re.compile(r"\b(PMC\d+|FIXC\d+|UPMC\d+|UFIXC\d+)\b")

# Auto-counted fixed events: formulas may reference FIXC0..2 without
# the EVENTSET listing them (they are always measured on Intel).
_IMPLICIT_FIXED = {
    "FIXC0": "INSTR_RETIRED_ANY",
    "FIXC1": "CPU_CLK_UNHALTED_CORE",
    "FIXC2": "CPU_CLK_UNHALTED_REF",
}


def parse_group_file(text: str, *, name: str = "?") -> "ParsedGroup":
    """Parse one group file into its sections."""
    short = ""
    long_lines: list[str] = []
    events: list[tuple[str, str]] = []     # (counter, event)
    metrics: list[tuple[str, str]] = []    # (label, formula)
    section = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("SHORT"):
            short = line[5:].strip()
            continue
        if line == "EVENTSET":
            section = "events"
            continue
        if line == "METRICS":
            section = "metrics"
            continue
        if line == "LONG":
            section = "long"
            continue
        if section == "events":
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise GroupError(
                    f"group {name}: malformed EVENTSET line {line!r}")
            events.append((parts[0], parts[1].strip()))
        elif section == "metrics":
            # Label and formula are separated by two-or-more spaces or
            # a tab; formulas themselves contain single spaces rarely.
            m = re.split(r"\s{2,}|\t", line, maxsplit=1)
            if len(m) != 2:
                raise GroupError(
                    f"group {name}: malformed METRICS line {line!r} "
                    "(label and formula must be separated by 2+ spaces)")
            metrics.append((m[0].strip(), m[1].strip()))
        elif section == "long":
            long_lines.append(raw)
        else:
            raise GroupError(
                f"group {name}: content outside any section: {line!r}")
    if not events:
        raise GroupError(f"group {name}: empty EVENTSET")
    return ParsedGroup(name=name, short=short, events=events,
                       metrics=metrics, long="\n".join(long_lines).strip())


class ParsedGroup:
    """Raw sections of one parsed group file."""

    def __init__(self, name: str, short: str,
                 events: list[tuple[str, str]],
                 metrics: list[tuple[str, str]], long: str):
        self.name = name
        self.short = short
        self.events = events
        self.metrics = metrics
        self.long = long

    def counter_to_event(self) -> dict[str, str]:
        mapping = dict(_IMPLICIT_FIXED)
        for counter, event in self.events:
            mapping[counter] = event
        return mapping

    def rewritten_metrics(self) -> list[tuple[str, str]]:
        """Metric formulas with counter names replaced by event names."""
        mapping = self.counter_to_event()

        def replace(match: re.Match) -> str:
            counter = match.group(1)
            try:
                return mapping[counter]
            except KeyError:
                raise GroupError(
                    f"group {self.name}: formula references {counter} "
                    "which the EVENTSET does not define") from None

        return [(label, _COUNTER_TOKEN.sub(replace, formula))
                for label, formula in self.metrics]

    def event_specs(self) -> tuple[EventSpec, ...]:
        return tuple(EventSpec(event, counter)
                     for counter, event in self.events)


def serialize_group(name: str, description: str,
                    events: tuple[EventSpec, ...],
                    metrics: tuple[tuple[str, str], ...],
                    *, long: str = "") -> str:
    """Write a GroupDef back into the file format (counter-name
    formulas), used to generate the shipped group files."""
    event_by_name = {e.event: e.counter for e in events}
    for counter, event in _IMPLICIT_FIXED.items():
        event_by_name.setdefault(event, counter)
    # Longest names first so e.g. L2_RQSTS_REFERENCES is not clobbered
    # by a shorter prefix.
    ordered = sorted(event_by_name, key=len, reverse=True)

    def to_counters(formula: str) -> str:
        for event in ordered:
            formula = re.sub(rf"\b{re.escape(event)}\b",
                             event_by_name[event], formula)
        return formula

    lines = [f"SHORT {description}", "", "EVENTSET"]
    for e in events:
        lines.append(f"{e.counter}  {e.event}")
    lines.append("")
    lines.append("METRICS")
    for label, formula in metrics:
        lines.append(f"{label}  {to_counters(formula)}")
    if long:
        lines.extend(["", "LONG", long])
    lines.append("")
    return "\n".join(lines)


def load_group_dir(arch_dir: Path) -> dict[str, ParsedGroup]:
    """Load every ``*.txt`` group file of one architecture directory."""
    groups: dict[str, ParsedGroup] = {}
    for path in sorted(arch_dir.glob("*.txt")):
        name = path.stem
        groups[name] = parse_group_file(path.read_text(), name=name)
    return groups


def groupfile_dir(arch: str) -> Path:
    return GROUPFILE_ROOT / arch
