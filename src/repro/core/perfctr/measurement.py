"""The likwid-perfCtr measurement engine (wrapper mode).

A :class:`PerfCtrSession` owns one configured measurement: a set of
CPUs, validated event→counter assignments, socket locks for uncore
events, and the msr-level programming.  The wrapper-mode flow is::

    perfctr = LikwidPerfCtr(machine)
    result = perfctr.wrap("0-3", "FLOPS_DP", run_application)

which is ``likwid-perfctr -c 0-3 -g FLOPS_DP ./a.out``: set up the
counters, start them, run the application, stop, read, and derive
metrics.  Counting is strictly core-based: whatever executed on the
measured cores during the window is counted, regardless of process
(paper §II.A) — enforcing affinity is the user's job (likwid-pin).
"""

from __future__ import annotations

import time as _time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.affinity import parse_corelist
from repro.core.perfctr.counters import (Assignment, CounterMap,
                                         CounterProgrammer,
                                         auto_fixed_assignments,
                                         validate_assignments)
from repro.core.perfctr.events import is_event_string, parse_event_string
from repro.core.perfctr.formula import evaluate
from repro.core.perfctr.groups import GroupDef, lookup_group
from repro.errors import CounterError
from repro.hw.machine import SimMachine
from repro.oskern.msr_driver import MsrDriver


@dataclass
class MeasurementResult:
    """Counts and derived metrics of one measurement window."""

    cpus: list[int]
    counts: dict[int, dict[str, float]]           # cpu -> event -> count
    metrics: dict[int, dict[str, float]] = field(default_factory=dict)
    wall_time: float = 0.0
    group: GroupDef | None = None

    def event(self, cpu: int, name: str) -> float:
        return self.counts[cpu].get(name, 0.0)

    def total(self, name: str) -> float:
        return sum(c.get(name, 0.0) for c in self.counts.values())

    def metric(self, cpu: int, name: str) -> float:
        return self.metrics[cpu][name]


class PerfCtrSession:
    """One configured measurement across a CPU set."""

    def __init__(self, machine: SimMachine, driver: MsrDriver,
                 cpus: list[int], assignments: list[Assignment],
                 group: GroupDef | None = None):
        if not cpus:
            raise CounterError("no cpus to measure")
        if len(set(cpus)) != len(cpus):
            raise CounterError(f"duplicate cpus in measurement set {cpus}")
        self.machine = machine
        self.cpus = list(cpus)
        self.assignments = assignments
        self.group = group
        self.counters = CounterMap(machine.spec)
        self.programmer = CounterProgrammer(driver, self.counters)
        self._started_at: float | None = None
        self.wall_time = 0.0

        self.core_assignments = [a for a in assignments
                                 if not a.counter.is_uncore]
        self.uncore_assignments = [a for a in assignments
                                   if a.counter.is_uncore]
        # Socket locks: the first measured CPU of each socket owns the
        # socket's uncore counters.
        self.socket_locks: dict[int, int] = {}
        if self.uncore_assignments:
            if not machine.spec.pmu.has_uncore:
                raise CounterError(
                    f"{machine.spec.name} has no uncore counters")
            for cpu in self.cpus:
                socket = machine.spec.socket_of(cpu)
                self.socket_locks.setdefault(socket, cpu)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Program and enable all counters (counters start from zero)."""
        for cpu in self.cpus:
            self.programmer.setup_core(cpu, self.core_assignments)
        for cpu in self.socket_locks.values():
            self.programmer.setup_uncore(cpu, self.uncore_assignments)
        for cpu in self.cpus:
            self.programmer.start_core(cpu, self.core_assignments)
        for cpu in self.socket_locks.values():
            self.programmer.start_uncore(cpu, self.uncore_assignments)
        self._started_at = _time.perf_counter()

    def stop(self) -> None:
        if self._started_at is None:
            raise CounterError("session not started")
        self.wall_time = _time.perf_counter() - self._started_at
        for cpu in self.cpus:
            self.programmer.stop_core(cpu, self.core_assignments)
        for cpu in self.socket_locks.values():
            self.programmer.stop_uncore(cpu)

    # -- reading ----------------------------------------------------------------

    def read_raw(self, cpu: int) -> dict[str, float]:
        """Current counter values for one CPU, keyed by event name.
        Uncore counts appear only for the socket-lock owner."""
        values: dict[str, float] = {}
        raw = self.programmer.read_core(cpu, self.core_assignments)
        for a in self.core_assignments:
            values[a.event.name] = float(raw[a.counter.name])
        if self.uncore_assignments:
            socket = self.machine.spec.socket_of(cpu)
            if self.socket_locks.get(socket) == cpu:
                raw = self.programmer.read_uncore(cpu, self.uncore_assignments)
                for a in self.uncore_assignments:
                    values[a.event.name] = float(raw[a.counter.name])
            else:
                # Socket lock: the count is attributed to one thread per
                # socket; everyone else reports zero for uncore events.
                for a in self.uncore_assignments:
                    values[a.event.name] = 0.0
        return values

    def read(self, *, wall_time: float | None = None) -> MeasurementResult:
        counts = {cpu: self.read_raw(cpu) for cpu in self.cpus}
        result = MeasurementResult(
            cpus=list(self.cpus), counts=counts,
            wall_time=self.wall_time if wall_time is None else wall_time,
            group=self.group)
        if self.group is not None:
            derive_metrics(result, self.group, self.machine.spec.clock_hz)
        return result


def derive_metrics(result: MeasurementResult, group: GroupDef,
                   clock_hz: float) -> None:
    """Evaluate a group's metric formulas per CPU.

    ``time`` is derived from the unhalted-cycles event when present
    (exactly how the real tool computes per-core runtime), falling back
    to wall-clock time otherwise."""
    cycles_events = ("CPU_CLK_UNHALTED_CORE", "CPU_CLOCKS_UNHALTED")
    for cpu in result.cpus:
        variables = dict(result.counts[cpu])
        region_time = result.wall_time
        for name in cycles_events:
            if variables.get(name, 0.0) > 0:
                region_time = variables[name] / clock_hz
                break
        variables["time"] = region_time if region_time > 0 else float("nan")
        variables["clock"] = clock_hz
        result.metrics[cpu] = {
            label: evaluate(formula, variables)
            for label, formula in group.metrics
        }


class LikwidPerfCtr:
    """The likwid-perfCtr tool bound to one machine."""

    def __init__(self, machine: SimMachine, driver: MsrDriver | None = None):
        self.machine = machine
        self.driver = driver or MsrDriver(machine)
        self.counters = CounterMap(machine.spec)

    def _resolve(self, group_or_events: str) \
            -> tuple[list[Assignment], GroupDef | None]:
        table = self.machine.spec.events
        if is_event_string(group_or_events):
            specs = parse_event_string(group_or_events)
            group = None
        else:
            group = lookup_group(self.machine.spec, group_or_events)
            specs = list(group.events)
        assignments = validate_assignments(table, self.counters, specs)
        # The Intel fixed counters always count (paper: CPI for free).
        present = {a.event.name for a in assignments}
        for extra in auto_fixed_assignments(table, self.counters):
            if extra.event.name not in present:
                assignments.append(extra)
        return assignments, group

    def session(self, cpus: str | list[int],
                group_or_events: str) -> PerfCtrSession:
        """Configure a measurement (``-c <cpus> -g <group|events>``)."""
        if isinstance(cpus, str):
            cpus = parse_corelist(cpus,
                                  max_cpu=self.machine.num_hwthreads - 1)
        assignments, group = self._resolve(group_or_events)
        return PerfCtrSession(self.machine, self.driver, cpus,
                              assignments, group)

    def wrap(self, cpus: str | list[int], group_or_events: str,
             run: Callable[[], object]) -> MeasurementResult:
        """Wrapper mode: measure an application over its full runtime.

        The callable stands for the wrapped binary; anything it
        executes on the measured cores lands in the counters.
        """
        session = self.session(cpus, group_or_events)
        session.start()
        payload = run()
        session.stop()
        wall = getattr(payload, "total_time", None)
        result = session.read(wall_time=wall)
        return result

    def available_events(self) -> list[str]:
        return self.machine.spec.events.names()


def cycles_channel_count(result: MeasurementResult, cpu: int) -> float:
    """Unhalted core cycles on a CPU (helper for tests)."""
    for name in ("CPU_CLK_UNHALTED_CORE", "CPU_CLOCKS_UNHALTED"):
        if name in result.counts[cpu]:
            return result.counts[cpu][name]
    return 0.0
