"""The likwid-perfCtr measurement engine (wrapper mode).

A :class:`PerfCtrSession` owns one configured measurement: a set of
CPUs, validated event→counter assignments, socket locks for uncore
events, and the msr-level programming.  The wrapper-mode flow is::

    perfctr = LikwidPerfCtr(machine)
    result = perfctr.wrap("0-3", "FLOPS_DP", run_application)

which is ``likwid-perfctr -c 0-3 -g FLOPS_DP ./a.out``: set up the
counters, start them, run the application, stop, read, and derive
metrics.  Counting is strictly core-based: whatever executed on the
measured cores during the window is counted, regardless of process
(paper §II.A) — enforcing affinity is the user's job (likwid-pin).

Sessions are context managers with guaranteed teardown: if the wrapped
workload raises, the counters are disabled and the socket locks
released anyway (``with session: ...``).  The runtime is hardened
against a faulting msr driver (see
:class:`~repro.oskern.msr_driver.FaultPlan`): transient faults are
retried invisibly, counter wrap-around is corrected via the PMU's
overflow interrupt and the architecture's declared counter width, and
uncore permission/lock failures degrade to per-event NaN with a
warning instead of aborting the measurement — unless strict-I/O
semantics were requested, in which case they raise
:class:`~repro.errors.DegradedError`.
"""

from __future__ import annotations

import time as _time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.core.affinity import parse_corelist
from repro.core.perfctr.counters import (Assignment, CounterMap, RetryPolicy,
                                         auto_fixed_assignments,
                                         counter_delta, validate_assignments)
from repro.core.perfctr.events import is_event_string, parse_event_string
from repro.core.perfctr.formula import evaluate
from repro.core.perfctr.groups import GroupDef, lookup_group
from repro.errors import (CounterError, DegradedError, MsrIOError,
                          MsrPermissionError, SocketLockError)
from repro.hw.machine import SimMachine
from repro.oskern.access import AccessBackend, MsrBackend, backend_for
from repro.oskern.msr_driver import MsrDriver


@dataclass
class MeasurementResult:
    """Counts and derived metrics of one measurement window."""

    cpus: list[int]
    counts: dict[int, dict[str, float]]           # cpu -> event -> count
    metrics: dict[int, dict[str, float]] = field(default_factory=dict)
    wall_time: float = 0.0
    group: GroupDef | None = None
    warnings: list[str] = field(default_factory=list)  # degraded events
    io_retries: int = 0                # transient msr faults absorbed

    def event(self, cpu: int, name: str) -> float:
        return self.counts[cpu].get(name, 0.0)

    def total(self, name: str) -> float:
        return sum(c.get(name, 0.0) for c in self.counts.values())

    def metric(self, cpu: int, name: str) -> float:
        return self.metrics[cpu][name]

    @property
    def degraded(self) -> bool:
        """True when any event degraded to NaN (see ``warnings``)."""
        return bool(self.warnings)


def _degradable(exc: Exception) -> bool:
    """Uncore failures the runtime may absorb as per-event NaN:
    device permission errors, sticky/exhausted I/O faults, and a
    socket lock held by another *live* session.  A vanished module
    (ENODEV) or any other MsrError stays fatal."""
    if isinstance(exc, (MsrPermissionError, SocketLockError)):
        return True
    if isinstance(exc, MsrIOError):
        return exc.errno_name in ("EIO", "EAGAIN")
    return False


class SessionLease:
    """A scheduler-granted measurement lease a session runs under.

    The concurrent-session server (:mod:`repro.server`) grants socket
    leases *before* a session starts; the lease carries the driver
    epoch the grant was journaled under, so the session's own
    socket-lock acquisitions are re-entrant with the scheduler's
    (same pid, same epoch) instead of conflicting.  An adopted epoch
    is owned by the lease holder: the session does **not** end it on
    close — the scheduler ends it after the lease's locks are
    released, so the write-ahead journal retires exactly when the
    lease (not merely the measurement) is over.

    ``on_start``/``on_release`` are lifecycle hooks: called once with
    the session after a successful start and once on close (every
    close path, including teardown after a failed start or a raising
    workload)."""

    def __init__(self, epoch: int | None = None, *,
                 on_start: Callable | None = None,
                 on_release: Callable | None = None):
        self.epoch = epoch
        self.on_start = on_start
        self.on_release = on_release

    @property
    def owns_epoch(self) -> bool:
        return self.epoch is not None


class PerfCtrSession:
    """One configured measurement across a CPU set.

    Usable as a context manager: entering starts the counters (if not
    already started) and exiting guarantees teardown even when the
    measured workload raises — no counters left enabled, no socket
    locks held, no leaked msr file handles."""

    def __init__(self, machine: SimMachine, driver: MsrDriver,
                 cpus: list[int], assignments: list[Assignment],
                 group: GroupDef | None = None, *,
                 strict_io: bool = False,
                 retry_policy: RetryPolicy | None = None,
                 backend: AccessBackend | None = None,
                 lease: SessionLease | None = None):
        if not cpus:
            raise CounterError("no cpus to measure")
        if len(set(cpus)) != len(cpus):
            raise CounterError(f"duplicate cpus in measurement set {cpus}")
        self.machine = machine
        self.driver = driver
        self.cpus = list(cpus)
        self.assignments = assignments
        self.group = group
        self.strict_io = strict_io
        self.counters = CounterMap(machine.spec)
        # All register traffic flows through an access backend
        # (direct-msr by default); the backend owns the event-level
        # programming engine, exposed as ``programmer`` for
        # compatibility and test instrumentation.
        self.backend = backend if backend is not None else MsrBackend(driver)
        self.backend.attach(self.counters, retry_policy=retry_policy)
        self.programmer = self.backend.programmer
        # Session epoch: the unit the write-ahead journal and the
        # socket-lock table attribute this session's mutations to.
        # A lease-granted session adopts the lease's epoch instead of
        # opening its own.
        self.lease = lease
        self._epoch: int | None = None
        self._started_at: float | None = None
        self._stopped = False
        self._closed = False
        self.wall_time = 0.0
        self.warnings: list[str] = []
        # (cpu, status_bit) -> number of wrap-arounds observed while
        # the session was counting (fed by the PMU's overflow PMI).
        self._overflows: dict[tuple[int, int], int] = {}
        self._handlers: dict[int, Callable] = {}
        # Counter values right after enabling: subtracted from every
        # readout so a non-zero initial counter state (e.g. a forced
        # overflow preload) cannot corrupt the counts.
        self._base: dict[int, dict[str, float]] = {}
        self._degraded_sockets: set[int] = set()

        self.core_assignments = [a for a in assignments
                                 if not a.counter.is_uncore]
        self.uncore_assignments = [a for a in assignments
                                   if a.counter.is_uncore]
        # Socket locks: the first measured CPU of each socket owns the
        # socket's uncore counters.
        self.socket_locks: dict[int, int] = {}
        if self.uncore_assignments:
            if not machine.spec.pmu.has_uncore:
                raise CounterError(
                    f"{machine.spec.name} has no uncore counters")
            for cpu in self.cpus:
                socket = machine.spec.socket_of(cpu)
                self.socket_locks.setdefault(socket, cpu)

    # -- lifecycle ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Counters currently enabled (started, not yet stopped)."""
        return self._started_at is not None and not self._stopped

    def start(self) -> None:
        """Program and enable all counters (counters start from zero).

        On any failure the already-programmed CPUs are disabled again
        before the error propagates — a failed start never leaves a
        torn, half-enabled session behind."""
        group = self.group.name if self.group is not None else None
        with _trace.span("perfctr.start", group=group,
                         cpus=len(self.cpus),
                         events=len(self.assignments)):
            try:
                self._start_inner()
            except Exception:
                self._teardown()
                self._end_epoch()
                raise
        if self.lease is not None and self.lease.on_start is not None:
            self.lease.on_start(self)
        if _trace.TRACER.enabled:
            _trace.incr("perfctr.sessions.started")

    def _start_inner(self) -> None:
        self._overflows.clear()
        self._base = {}
        self._stopped = False
        if self._epoch is None:
            if self.lease is not None and self.lease.owns_epoch:
                self._epoch = self.lease.epoch
            else:
                self._epoch = self.driver.begin_epoch()
        # Acquire each socket's uncore lock before touching its
        # counters.  A lock held by a *live* session degrades this
        # socket to NaN (SocketLockError is degradable); a stale lock
        # from a crashed run is reclaimed inside the driver.  A
        # backend whose kernel arbitrates uncore access itself
        # (perf_event) skips the tool-level locks entirely.
        if self.backend.capabilities.needs_socket_locks:
            for socket, cpu in self.socket_locks.items():
                self._guarded_uncore(
                    socket, cpu, "lock acquisition",
                    lambda s=socket, c=cpu: self.driver.acquire_socket_lock(
                        s, c, self._epoch))
        with _trace.span("perfctr.program", cpus=len(self.cpus)):
            for cpu in self.cpus:
                self.backend.program_core(cpu, self.core_assignments)
            for socket, cpu in self.socket_locks.items():
                if socket in self._degraded_sockets:
                    continue
                self._guarded_uncore(
                    socket, cpu, "setup",
                    lambda c=cpu: self.backend.program_uncore(
                        c, self.uncore_assignments))
        with _trace.span("perfctr.enable", cpus=len(self.cpus)):
            for cpu in self.cpus:
                self._register_overflow_handler(cpu)
                self.backend.start_core(cpu, self.core_assignments)
            for socket, cpu in self.socket_locks.items():
                if socket in self._degraded_sockets:
                    continue
                self._guarded_uncore(
                    socket, cpu, "start",
                    lambda c=cpu: self.backend.start_uncore(
                        c, self.uncore_assignments))
        # Baseline snapshot: nothing has executed yet, so this reads
        # each counter's initial value (0 unless something — like a
        # forced-overflow fault — preloaded it).
        with _trace.span("perfctr.baseline", cpus=len(self.cpus)):
            for cpu in self.cpus:
                raw = self.backend.read_batch(cpu, self.core_assignments)
                self._base[cpu] = {name: float(v) for name, v in raw.items()}
            for socket, cpu in self.socket_locks.items():
                if socket in self._degraded_sockets:
                    continue

                def read_base(c=cpu):
                    raw = self.backend.read_uncore_batch(
                        c, self.uncore_assignments)
                    self._base.setdefault(c, {}).update(
                        (name, float(v)) for name, v in raw.items())
                self._guarded_uncore(socket, cpu, "baseline read", read_base)
        self._started_at = _time.perf_counter()

    def stop(self) -> None:
        if self._started_at is None:
            raise CounterError("session not started")
        self.wall_time = _time.perf_counter() - self._started_at
        with _trace.span("perfctr.stop", cpus=len(self.cpus)):
            for cpu in self.cpus:
                self.backend.stop_core(cpu, self.core_assignments)
            for socket, cpu in self.socket_locks.items():
                if socket in self._degraded_sockets:
                    continue
                try:
                    self.backend.stop_uncore(cpu)
                except Exception as exc:
                    if not _degradable(exc):
                        raise
                    self._degrade(socket, f"uncore stop on cpu {cpu}: {exc}",
                                  raise_strict=False)
        self._stopped = True

    def close(self) -> None:
        """Release everything, absorbing secondary failures.

        Safe to call multiple times and in any state; after close the
        counters are guaranteed disabled (best effort against a
        faulting driver) and the overflow handlers deregistered."""
        if self._closed:
            return
        self._closed = True
        if self.active:
            self.wall_time = _time.perf_counter() - self._started_at
            self._teardown()
            self._stopped = True
        else:
            self._release_locks()
        self._end_epoch()
        self._unregister_overflow_handlers()
        self.backend.release()
        if self.lease is not None and self.lease.on_release is not None:
            self.lease.on_release(self)

    def _end_epoch(self) -> None:
        if self._epoch is None:
            return
        if self.lease is not None and self.lease.owns_epoch:
            # An adopted epoch belongs to the lease holder; the
            # scheduler ends it after the lease's locks are released.
            self._epoch = None
            return
        try:
            self.driver.end_epoch(self._epoch)
        except Exception:
            pass
        self._epoch = None

    def _teardown(self) -> None:
        """Best-effort disable of every counter this session touched,
        then release its socket locks."""
        for cpu in self.cpus:
            try:
                self.backend.stop_core(cpu, self.core_assignments)
            except Exception:
                pass
        for socket, cpu in self.socket_locks.items():
            try:
                self.backend.stop_uncore(cpu)
            except Exception:
                pass
        self._release_locks()

    def _release_locks(self) -> None:
        """Drop this session's socket locks.  The driver compares pid
        *and* epoch before touching an entry, so a lock lost to a
        stale-reclaim is left with its new owner (the mismatch is
        counted as ``recover.lock_conflict``)."""
        if self._epoch is None:
            return
        if not self.backend.capabilities.needs_socket_locks:
            return
        for socket in self.socket_locks:
            try:
                self.driver.release_socket_lock(socket, self._epoch)
            except Exception:
                pass

    def __enter__(self) -> "PerfCtrSession":
        if not self.active:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- degradation and overflow bookkeeping ---------------------------------

    def _degrade(self, socket: int, what: str, *,
                 raise_strict: bool = True) -> None:
        message = (f"uncore measurement degraded on socket {socket} "
                   f"({what}); its events report NaN")
        if self.strict_io and raise_strict:
            raise DegradedError(message)
        self._degraded_sockets.add(socket)
        self.warnings.append(message)

    def _guarded_uncore(self, socket: int, cpu: int, what: str,
                        op: Callable[[], object]) -> None:
        try:
            op()
        except Exception as exc:
            if not _degradable(exc):
                raise
            self._degrade(socket, f"uncore {what} on cpu {cpu}: {exc}")

    def _register_overflow_handler(self, cpu: int) -> None:
        if cpu in self._handlers:
            return

        def handler(hwthread: int, status_bit: int,
                    _cpu: int = cpu) -> None:
            key = (_cpu, status_bit)
            self._overflows[key] = self._overflows.get(key, 0) + 1

        self._handlers[cpu] = handler
        self.machine.core_pmus[cpu].overflow_handlers.append(handler)

    def _unregister_overflow_handlers(self) -> None:
        for cpu, handler in self._handlers.items():
            handlers = self.machine.core_pmus[cpu].overflow_handlers
            if handler in handlers:
                handlers.remove(handler)
        self._handlers.clear()

    @staticmethod
    def _status_bit(a: Assignment) -> int:
        """IA32_PERF_GLOBAL_STATUS bit index of an assignment's counter
        (PMC i -> bit i, FIXC i -> bit 32+i)."""
        if a.counter.cls == "FIXC":
            return 32 + a.counter.index
        return a.counter.index

    # -- reading ----------------------------------------------------------------

    def read_raw(self, cpu: int) -> dict[str, float]:
        """Current counter values for one CPU, keyed by event name.
        Uncore counts appear only for the socket-lock owner.

        Values are overflow-corrected: each observed wrap-around adds
        one full counter period (``2**width``), and the baseline
        snapshot taken at start is subtracted, so counts stay exact
        across wraps and non-zero initial counter state."""
        period = float(1 << self.machine.spec.pmu.counter_width)
        base = self._base.get(cpu, {})
        values: dict[str, float] = {}
        raw = self.backend.read_batch(cpu, self.core_assignments)
        for a in self.core_assignments:
            value = float(raw[a.counter.name])
            value += self._overflows.get((cpu, self._status_bit(a)), 0) \
                * period
            values[a.event.name] = value - base.get(a.counter.name, 0.0)
        if self.uncore_assignments:
            socket = self.machine.spec.socket_of(cpu)
            if self.socket_locks.get(socket) != cpu:
                # Socket lock: the count is attributed to one thread per
                # socket; everyone else reports zero for uncore events.
                for a in self.uncore_assignments:
                    values[a.event.name] = 0.0
            elif socket in self._degraded_sockets:
                for a in self.uncore_assignments:
                    values[a.event.name] = float("nan")
            else:
                try:
                    raw = self.backend.read_uncore_batch(
                        cpu, self.uncore_assignments)
                except Exception as exc:
                    if not _degradable(exc):
                        raise
                    self._degrade(socket, f"uncore read on cpu {cpu}: {exc}")
                    for a in self.uncore_assignments:
                        values[a.event.name] = float("nan")
                else:
                    # The uncore PMU has no overflow interrupt here, so
                    # wrap correction is width-based (one wrap max).
                    for a in self.uncore_assignments:
                        values[a.event.name] = counter_delta(
                            float(raw[a.counter.name]),
                            base.get(a.counter.name, 0.0),
                            self.machine.spec.pmu.counter_width)
        return values

    def read(self, *, wall_time: float | None = None) -> MeasurementResult:
        group = self.group.name if self.group is not None else None
        with _trace.span("perfctr.read", group=group, cpus=len(self.cpus)):
            counts = {cpu: self.read_raw(cpu) for cpu in self.cpus}
        result = MeasurementResult(
            cpus=list(self.cpus), counts=counts,
            wall_time=self.wall_time if wall_time is None else wall_time,
            group=self.group, warnings=list(self.warnings),
            io_retries=self.backend.retries)
        if self.group is not None:
            derive_metrics(result, self.group, self.machine.spec.clock_hz)
        return result


def derive_metrics(result: MeasurementResult, group: GroupDef,
                   clock_hz: float) -> None:
    """Evaluate a group's metric formulas per CPU.

    ``time`` is derived from the unhalted-cycles event when present
    (exactly how the real tool computes per-core runtime), falling back
    to wall-clock time otherwise."""
    cycles_events = ("CPU_CLK_UNHALTED_CORE", "CPU_CLOCKS_UNHALTED",
                     "PM_RUN_CYC")
    for cpu in result.cpus:
        variables = dict(result.counts[cpu])
        region_time = result.wall_time
        for name in cycles_events:
            if variables.get(name, 0.0) > 0:
                region_time = variables[name] / clock_hz
                break
        variables["time"] = region_time if region_time > 0 else float("nan")
        variables["clock"] = clock_hz
        result.metrics[cpu] = {
            label: evaluate(formula, variables)
            for label, formula in group.metrics
        }


class LikwidPerfCtr:
    """The likwid-perfCtr tool bound to one machine.

    ``strict_io=True`` turns degraded (NaN-producing) outcomes into
    :class:`~repro.errors.DegradedError`; ``retry_policy`` tunes the
    bounded-backoff retry of transient msr faults.  ``access_mode``
    selects the counter-access backend (``msr`` or ``perf``, the
    ``--access-mode`` flag); alternatively an :class:`AccessBackend`
    instance is accepted and shared by every session (one active
    session at a time), in which case its driver is adopted."""

    def __init__(self, machine: SimMachine, driver: MsrDriver | None = None,
                 *, strict_io: bool = False,
                 retry_policy: RetryPolicy | None = None,
                 access_mode: str = "msr",
                 backend: AccessBackend | None = None):
        self.machine = machine
        if backend is not None:
            self.driver = backend.driver
        else:
            self.driver = driver or MsrDriver(machine)
        self._backend = backend
        self.access_mode = backend.capabilities.name if backend is not None \
            else access_mode
        self.counters = CounterMap(machine.spec)
        self.strict_io = strict_io
        self.retry_policy = retry_policy

    def _resolve(self, group_or_events: str) \
            -> tuple[list[Assignment], GroupDef | None]:
        table = self.machine.spec.events
        if is_event_string(group_or_events):
            specs = parse_event_string(group_or_events)
            group = None
        else:
            group = lookup_group(self.machine.spec, group_or_events)
            specs = list(group.events)
        assignments = validate_assignments(table, self.counters, specs)
        # The Intel fixed counters always count (paper: CPI for free).
        present = {a.event.name for a in assignments}
        for extra in auto_fixed_assignments(table, self.counters):
            if extra.event.name not in present:
                assignments.append(extra)
        return assignments, group

    def session(self, cpus: str | list[int],
                group_or_events: str, *,
                lease: SessionLease | None = None) -> PerfCtrSession:
        """Configure a measurement (``-c <cpus> -g <group|events>``).

        ``lease`` attaches a scheduler-granted :class:`SessionLease`
        (adopted epoch + lifecycle hooks, see repro.server)."""
        if isinstance(cpus, str):
            cpus = parse_corelist(cpus,
                                  max_cpu=self.machine.num_hwthreads - 1)
        assignments, group = self._resolve(group_or_events)
        backend = self._backend if self._backend is not None \
            else backend_for(self.access_mode, self.driver)
        return PerfCtrSession(self.machine, self.driver, cpus,
                              assignments, group, strict_io=self.strict_io,
                              retry_policy=self.retry_policy,
                              backend=backend, lease=lease)

    def wrap(self, cpus: str | list[int], group_or_events: str,
             run: Callable[[], object]) -> MeasurementResult:
        """Wrapper mode: measure an application over its full runtime.

        The callable stands for the wrapped binary; anything it
        executes on the measured cores lands in the counters.  If the
        workload raises, the session is torn down (counters disabled,
        socket locks released) before the exception propagates.
        """
        with _trace.span("perfctr.wrap", group=group_or_events):
            session = self.session(cpus, group_or_events)
            with session:
                with _trace.span("perfctr.workload"):
                    payload = run()
                session.stop()
                wall = getattr(payload, "total_time", None)
                return session.read(wall_time=wall)

    def available_events(self) -> list[str]:
        return self.machine.spec.events.names()


def cycles_channel_count(result: MeasurementResult, cpu: int) -> float:
    """Unhalted core cycles on a CPU (helper for tests)."""
    for name in ("CPU_CLK_UNHALTED_CORE", "CPU_CLOCKS_UNHALTED",
                 "PM_RUN_CYC"):
        if name in result.counts[cpu]:
            return result.counts[cpu][name]
    return 0.0
