"""Timeline (daemon) mode: periodic counter readout during a run.

The wrapper mode reports one aggregate per run; timeline mode samples
the counters at a fixed interval while the application executes, so
phase behaviour becomes visible ("likwid-perfctr -d <interval>" in
later LIKWID releases — the natural extension of the monitoring idiom
the paper demonstrates with ``sleep``).

Counters keep running between samples; each sample reports the *delta*
since the previous readout plus derived group metrics over the
interval.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.core.perfctr.counters import counter_delta
from repro.core.perfctr.measurement import (LikwidPerfCtr, MeasurementResult,
                                            derive_metrics)
from repro.errors import CounterError


@dataclass
class TimelineSample:
    """One readout interval."""

    index: int
    time: float                       # interval end, seconds since start
    counts: dict[int, dict[str, float]]   # deltas per cpu
    metrics: dict[int, dict[str, float]] = field(default_factory=dict)


class TimelineMeasurement:
    """Periodic sampling around a sliced application run."""

    def __init__(self, perfctr: LikwidPerfCtr, cpus, group_or_events: str,
                 *, interval: float = 1.0):
        if interval <= 0:
            raise CounterError("timeline interval must be positive")
        self.perfctr = perfctr
        self.session = perfctr.session(cpus, group_or_events)
        self.interval = interval
        self.samples: list[TimelineSample] = []

    def run(self, run_slice: Callable[[int, float], object],
            num_intervals: int) -> list[TimelineSample]:
        """Run the application for *num_intervals* sampling periods.

        ``run_slice(index, interval_seconds)`` stands for letting the
        wrapped binary execute for one period while the counters run.
        """
        if num_intervals < 1:
            raise CounterError("need at least one interval")
        width = self.perfctr.machine.spec.pmu.counter_width
        with self.session:
            previous = {cpu: self.session.read_raw(cpu)
                        for cpu in self.session.cpus}
            now = 0.0
            for index in range(num_intervals):
                run_slice(index, self.interval)
                now += self.interval
                current = {cpu: self.session.read_raw(cpu)
                           for cpu in self.session.cpus}
                # Counters keep running between samples and are only
                # `width` bits wide: a mid-interval wrap makes the raw
                # difference negative, so correct it by one period.
                deltas = {
                    cpu: {name: counter_delta(current[cpu][name],
                                              previous[cpu].get(name, 0.0),
                                              width)
                          for name in current[cpu]}
                    for cpu in self.session.cpus
                }
                if _trace.TRACER.enabled:
                    _trace.incr("timeline.samples")
                sample = TimelineSample(index, now, deltas)
                if self.session.group is not None:
                    result = MeasurementResult(
                        cpus=list(self.session.cpus), counts=deltas,
                        wall_time=self.interval, group=self.session.group)
                    derive_metrics(result, self.session.group,
                                   self.perfctr.machine.spec.clock_hz)
                    sample.metrics = result.metrics
                self.samples.append(sample)
                previous = current
            self.session.stop()
        return self.samples

    def series(self, cpu: int, event: str) -> list[float]:
        """One event's per-interval deltas on one cpu."""
        return [s.counts[cpu].get(event, 0.0) for s in self.samples]

    def metric_series(self, cpu: int, metric: str) -> list[float]:
        return [s.metrics[cpu][metric] for s in self.samples]


def render_timeline(timeline: TimelineMeasurement, cpu: int,
                    event: str, *, width: int = 40) -> str:
    """Sparkline-style text rendering of one event's timeline."""
    series = timeline.series(cpu, event)
    peak = max(series) if series and max(series) > 0 else 1.0
    lines = [f"{event} on core {cpu} (interval "
             f"{timeline.interval:g} s, peak {peak:g})"]
    for sample, value in zip(timeline.samples, series):
        bar = "#" * int(value / peak * width)
        lines.append(f"  t={sample.time:7.2f}s |{bar:<{width}}| {value:g}")
    return "\n".join(lines)
