"""Timeline (daemon) mode: periodic counter readout during a run.

The wrapper mode reports one aggregate per run; timeline mode samples
the counters at a fixed interval while the application executes, so
phase behaviour becomes visible ("likwid-perfctr -d <interval>" in
later LIKWID releases — the natural extension of the monitoring idiom
the paper demonstrates with ``sleep``).

Counters keep running between samples; each sample reports the *delta*
since the previous readout plus derived group metrics over the
interval.
"""

from __future__ import annotations

import time as _time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.core.perfctr.counters import counter_delta
from repro.core.perfctr.measurement import (LikwidPerfCtr, MeasurementResult,
                                            derive_metrics)
from repro.errors import CounterError

_NAN = float("nan")


@dataclass
class TimelineSample:
    """One readout interval."""

    index: int
    time: float                       # interval end, seconds since start
    counts: dict[int, dict[str, float]]   # deltas per cpu
    metrics: dict[int, dict[str, float]] = field(default_factory=dict)
    duration: float = 0.0             # measured slice length, seconds


def slice_duration(nominal: float, measured: float,
                   returned: object) -> float:
    """The actual length of one measurement slice.

    A well-behaved slice fills exactly the nominal interval (a real
    daemon sleeps out the remainder), but a slice that *overruns* —
    the workload would not yield — lasted however long it lasted, and
    pretending otherwise skews every derived rate.  A slice may
    report its own duration by returning a positive number (how the
    simulated workloads express an overrun deterministically);
    otherwise the wall-clock measurement decides."""
    if isinstance(returned, (int, float)) and not isinstance(returned, bool) \
            and returned > 0.0:
        return float(returned)
    return max(nominal, measured)


def timeline_deltas(current: dict[int, dict[str, float]],
                    previous: dict[int, dict[str, float]],
                    width: int) -> dict[int, dict[str, float]]:
    """Per-cpu wrap-corrected deltas between two readouts.

    Two degraded-readout hazards are handled here rather than in
    :func:`counter_delta`:

    * an event name *absent* from the previous readout has no
      baseline — the delta is NaN, never ``current - 0.0`` (which
      would fabricate a full-count delta out of thin air);
    * a NaN previous value (degraded uncore read) makes this one
      interval's delta NaN, and recovery is the caller's job: keep
      the last *finite* reading as the baseline (see
      :func:`advance_baseline`) so the next successful readout yields
      a finite delta instead of NaN poisoning every later sample.
    """
    return {
        cpu: {name: counter_delta(value, prev.get(name, _NAN), width)
              for name, value in values.items()}
        for cpu, values in current.items()
        for prev in (previous.get(cpu, {}),)
    }


def advance_baseline(previous: dict[int, dict[str, float]],
                     current: dict[int, dict[str, float]]) -> None:
    """Fold a readout into the running baseline, keeping the last
    finite value per event: a NaN reading (degraded uncore) must not
    become the next interval's baseline, or one bad readout poisons
    the sample after it too."""
    for cpu, values in current.items():
        prev = previous.setdefault(cpu, {})
        for name, value in values.items():
            if value == value:      # not NaN
                prev[name] = value


class TimelineMeasurement:
    """Periodic sampling around a sliced application run."""

    def __init__(self, perfctr: LikwidPerfCtr, cpus, group_or_events: str,
                 *, interval: float = 1.0):
        if interval <= 0:
            raise CounterError("timeline interval must be positive")
        self.perfctr = perfctr
        self.session = perfctr.session(cpus, group_or_events)
        self.interval = interval
        self.samples: list[TimelineSample] = []

    def run(self, run_slice: Callable[[int, float], object],
            num_intervals: int) -> list[TimelineSample]:
        """Run the application for *num_intervals* sampling periods.

        ``run_slice(index, interval_seconds)`` stands for letting the
        wrapped binary execute for one period while the counters run.
        """
        if num_intervals < 1:
            raise CounterError("need at least one interval")
        width = self.perfctr.machine.spec.pmu.counter_width
        with self.session:
            previous = {cpu: self.session.read_raw(cpu)
                        for cpu in self.session.cpus}
            now = 0.0
            for index in range(num_intervals):
                began = _time.perf_counter()
                returned = run_slice(index, self.interval)
                # An overrunning slice really lasted longer than the
                # nominal interval; advancing `now` by the nominal
                # value anyway would skew every derived rate.
                duration = slice_duration(
                    self.interval, _time.perf_counter() - began, returned)
                now += duration
                current = {cpu: self.session.read_raw(cpu)
                           for cpu in self.session.cpus}
                # Counters keep running between samples and are only
                # `width` bits wide: a mid-interval wrap makes the raw
                # difference negative, so correct it by one period.
                deltas = timeline_deltas(current, previous, width)
                if _trace.TRACER.enabled:
                    _trace.incr("timeline.samples")
                sample = TimelineSample(index, now, deltas,
                                        duration=duration)
                if self.session.group is not None:
                    result = MeasurementResult(
                        cpus=list(self.session.cpus), counts=deltas,
                        wall_time=duration, group=self.session.group)
                    derive_metrics(result, self.session.group,
                                   self.perfctr.machine.spec.clock_hz)
                    sample.metrics = result.metrics
                self.samples.append(sample)
                advance_baseline(previous, current)
            self.session.stop()
        return self.samples

    def series(self, cpu: int, event: str) -> list[float]:
        """One event's per-interval deltas on one cpu."""
        return [s.counts[cpu].get(event, 0.0) for s in self.samples]

    def metric_series(self, cpu: int, metric: str) -> list[float]:
        return [s.metrics[cpu][metric] for s in self.samples]


def render_timeline(timeline: TimelineMeasurement, cpu: int,
                    event: str, *, width: int = 40) -> str:
    """Sparkline-style text rendering of one event's timeline."""
    series = timeline.series(cpu, event)
    peak = max(series) if series and max(series) > 0 else 1.0
    lines = [f"{event} on core {cpu} (interval "
             f"{timeline.interval:g} s, peak {peak:g})"]
    for sample, value in zip(timeline.samples, series):
        bar = "#" * int(value / peak * width)
        lines.append(f"  t={sample.time:7.2f}s |{bar:<{width}}| {value:g}")
    return "\n".join(lines)
