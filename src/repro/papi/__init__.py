"""PAPI-like baseline library (the paper's Table I comparator)."""

from repro.papi.papi import (PAPI_ECNFLCT, PAPI_EINVAL, PAPI_ENOEVNT,
                             PAPI_ENOEVST, PAPI_ENOTRUN, PAPI_EISRUN,
                             PAPI_OK, PAPI_VER_CURRENT, PapiLibrary)
from repro.papi.presets import (PAPI_BR_INS, PAPI_BR_MSP, PAPI_DP_OPS,
                                PAPI_FP_OPS, PAPI_L1_DCM, PAPI_L2_TCA,
                                PAPI_L2_TCM, PAPI_LD_INS, PAPI_SR_INS,
                                PAPI_TLB_DM, PAPI_TOT_CYC, PAPI_TOT_INS,
                                PRESETS, PRESETS_BY_SYMBOL)

__all__ = ["PapiLibrary", "PAPI_VER_CURRENT", "PAPI_OK", "PAPI_EINVAL",
           "PAPI_ENOEVNT", "PAPI_ECNFLCT", "PAPI_ENOTRUN", "PAPI_EISRUN",
           "PAPI_ENOEVST", "PRESETS", "PRESETS_BY_SYMBOL",
           "PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_DP_OPS",
           "PAPI_L1_DCM", "PAPI_L2_TCM", "PAPI_L2_TCA", "PAPI_BR_INS",
           "PAPI_BR_MSP", "PAPI_TLB_DM", "PAPI_LD_INS", "PAPI_SR_INS"]
