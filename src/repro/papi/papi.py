"""A PAPI-like library over the same hardware substrate.

The comparison baseline for the paper's Table I.  It reproduces the
*classic PAPI programming model* — a C-flavoured library API around
EventSets, configured in code, attached to the calling thread::

    papi = PapiLibrary(machine, cpu=3)
    papi.PAPI_library_init(PAPI_VER_CURRENT)
    es = papi.PAPI_create_eventset()
    papi.PAPI_add_event(es, PAPI_TOT_INS)
    papi.PAPI_start(es)
    ...                       # application work
    values = papi.PAPI_stop(es)

Design-point contrasts with LIKWID, encoded here and probed by the
Table I benchmark:

* library first, no standalone command-line workflow;
* events configured in code, not on a command line;
* one EventSet measures the calling thread's CPU — no multicore
  measurement, no uncore/socket-lock support, no pinning facility;
* errors are returned as negative codes (raised here as
  :class:`~repro.errors.PapiError` carrying the code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.perfctr.counters import (Assignment, CounterMap,
                                         CounterProgrammer)
from repro.errors import PapiError
from repro.hw.events import CounterScope
from repro.hw.machine import SimMachine
from repro.oskern.msr_driver import MsrDriver
from repro.papi.presets import NATIVE_MAPPINGS, PRESETS

PAPI_VER_CURRENT = (4 << 24)  # "PAPI 4.0.0"
PAPI_OK = 0
PAPI_EINVAL = -1
PAPI_ENOMEM = -2
PAPI_ENOEVNT = -7
PAPI_ECNFLCT = -8
PAPI_ENOTRUN = -9
PAPI_EISRUN = -10
PAPI_ENOEVST = -11


class _State(Enum):
    STOPPED = "stopped"
    RUNNING = "running"


@dataclass
class _EventSet:
    handle: int
    cpu: int
    events: list[int] = field(default_factory=list)   # preset codes
    assignments: list[Assignment] = field(default_factory=list)
    state: _State = _State.STOPPED
    accumulated: list[int] = field(default_factory=list)


class PapiLibrary:
    """One process's PAPI state, attached to a fixed CPU."""

    def __init__(self, machine: SimMachine, cpu: int = 0,
                 driver: MsrDriver | None = None):
        self.machine = machine
        self.cpu = cpu
        self.driver = driver or MsrDriver(machine)
        self.counters = CounterMap(machine.spec)
        self.programmer = CounterProgrammer(self.driver, self.counters)
        self._initialised = False
        self._eventsets: dict[int, _EventSet] = {}
        self._next_handle = 1
        try:
            self._native = NATIVE_MAPPINGS[machine.spec.name]
        except KeyError:
            raise PapiError(PAPI_EINVAL,
                            f"unsupported substrate {machine.spec.name}") from None

    # -- init -------------------------------------------------------------------

    def PAPI_library_init(self, version: int) -> int:
        if version != PAPI_VER_CURRENT:
            raise PapiError(PAPI_EINVAL, "library/header version mismatch")
        self._initialised = True
        return PAPI_VER_CURRENT

    def PAPI_num_counters(self) -> int:
        return self.machine.spec.pmu.num_pmcs

    def PAPI_query_event(self, code: int) -> int:
        self._check_init()
        if code not in PRESETS:
            raise PapiError(PAPI_ENOEVNT, f"unknown preset 0x{code:X}")
        if code not in self._native:
            raise PapiError(PAPI_ENOEVNT,
                            f"{PRESETS[code].symbol} has no native mapping "
                            f"on {self.machine.spec.name}")
        return PAPI_OK

    # -- eventset lifecycle ----------------------------------------------------------

    def PAPI_create_eventset(self) -> int:
        self._check_init()
        handle = self._next_handle
        self._next_handle += 1
        self._eventsets[handle] = _EventSet(handle=handle, cpu=self.cpu)
        return handle

    def PAPI_add_event(self, eventset: int, code: int) -> int:
        es = self._get(eventset)
        self._check_stopped(es)
        self.PAPI_query_event(code)
        native = self.machine.spec.events.lookup(self._native[code])
        if native.scope is CounterScope.UNCORE:
            # Classic PAPI has "no explicit support for measuring
            # shared resources" (Table I).
            raise PapiError(PAPI_ECNFLCT,
                            f"{PRESETS[code].symbol} maps to an uncore "
                            "event; not supported")
        assignment = self._allocate(es, native)
        es.events.append(code)
        es.assignments.append(assignment)
        es.accumulated.append(0)
        return PAPI_OK

    def _allocate(self, es: _EventSet, native) -> Assignment:
        """First-fit allocation: fixed events to their fixed counter,
        everything else to a free PMC."""
        used = {a.counter.name for a in es.assignments}
        if native.is_fixed:
            name = f"FIXC{native.fixed_index}"
            if name in self.counters and name not in used:
                return Assignment(native, self.counters.lookup(name))
            raise PapiError(PAPI_ECNFLCT,
                            f"fixed counter for {native.name} unavailable")
        for name in self.counters.names("PMC"):
            if name in used:
                continue
            counter = self.counters.lookup(name)
            if native.allowed_on(counter.index):
                return Assignment(native, counter)
        raise PapiError(PAPI_ECNFLCT, "eventset exceeds counter resources")

    def PAPI_start(self, eventset: int) -> int:
        es = self._get(eventset)
        if es.state is _State.RUNNING:
            raise PapiError(PAPI_EISRUN, "eventset already running")
        if not es.assignments:
            raise PapiError(PAPI_EINVAL, "empty eventset")
        self.programmer.setup_core(es.cpu, es.assignments)
        self.programmer.start_core(es.cpu, es.assignments)
        es.state = _State.RUNNING
        return PAPI_OK

    def _read_values(self, es: _EventSet) -> list[int]:
        raw = self.programmer.read_core(es.cpu, es.assignments)
        return [int(raw[a.counter.name]) for a in es.assignments]

    def PAPI_read(self, eventset: int) -> list[int]:
        es = self._get(eventset)
        if es.state is not _State.RUNNING:
            raise PapiError(PAPI_ENOTRUN, "eventset not running")
        return [acc + v for acc, v in
                zip(es.accumulated, self._read_values(es))]

    def PAPI_accum(self, eventset: int) -> list[int]:
        """Fold current counts into the accumulator and reset counters."""
        es = self._get(eventset)
        if es.state is not _State.RUNNING:
            raise PapiError(PAPI_ENOTRUN, "eventset not running")
        values = self._read_values(es)
        es.accumulated = [a + v for a, v in zip(es.accumulated, values)]
        self.programmer.setup_core(es.cpu, es.assignments)  # zero + rearm
        self.programmer.start_core(es.cpu, es.assignments)
        return list(es.accumulated)

    def PAPI_stop(self, eventset: int) -> list[int]:
        es = self._get(eventset)
        if es.state is not _State.RUNNING:
            raise PapiError(PAPI_ENOTRUN, "eventset not running")
        self.programmer.stop_core(es.cpu, es.assignments)
        values = [acc + v for acc, v in
                  zip(es.accumulated, self._read_values(es))]
        es.state = _State.STOPPED
        es.accumulated = [0] * len(es.assignments)
        return values

    def PAPI_reset(self, eventset: int) -> int:
        es = self._get(eventset)
        es.accumulated = [0] * len(es.assignments)
        if es.state is _State.RUNNING:
            self.programmer.setup_core(es.cpu, es.assignments)
            self.programmer.start_core(es.cpu, es.assignments)
        return PAPI_OK

    def PAPI_cleanup_eventset(self, eventset: int) -> int:
        es = self._get(eventset)
        self._check_stopped(es)
        es.events.clear()
        es.assignments.clear()
        es.accumulated.clear()
        return PAPI_OK

    def PAPI_destroy_eventset(self, eventset: int) -> int:
        es = self._get(eventset)
        self._check_stopped(es)
        if es.events:
            raise PapiError(PAPI_EINVAL,
                            "eventset must be cleaned up before destroy")
        del self._eventsets[eventset]
        return PAPI_OK

    # -- helpers -----------------------------------------------------------------------

    def _check_init(self) -> None:
        if not self._initialised:
            raise PapiError(PAPI_EINVAL, "PAPI_library_init not called")

    def _get(self, eventset: int) -> _EventSet:
        self._check_init()
        try:
            return self._eventsets[eventset]
        except KeyError:
            raise PapiError(PAPI_ENOEVST,
                            f"no such eventset {eventset}") from None

    @staticmethod
    def _check_stopped(es: _EventSet) -> None:
        if es.state is _State.RUNNING:
            raise PapiError(PAPI_EISRUN, "eventset is running")
