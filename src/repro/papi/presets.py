"""PAPI preset events and their per-architecture native mappings.

PAPI's abstraction is the *preset*: a portable event name
(``PAPI_TOT_INS``, ``PAPI_FP_OPS``, ...) that the library maps onto
one or more native events of the running architecture.  This mirrors
the paper's Table I row "Event abstraction: abstraction through papi
events, which map to native events" — contrast with LIKWID's
preconfigured event *groups* with derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

# Preset codes use PAPI's historic 0x8000xxxx numbering.
PAPI_TOT_INS = 0x80000032
PAPI_TOT_CYC = 0x8000003B
PAPI_FP_OPS = 0x80000066
PAPI_DP_OPS = 0x80000068
PAPI_L1_DCM = 0x80000000
PAPI_L2_TCM = 0x80000007
PAPI_L2_TCA = 0x8000005C
PAPI_BR_INS = 0x80000037
PAPI_BR_MSP = 0x8000002E
PAPI_TLB_DM = 0x80000014
PAPI_LD_INS = 0x80000035
PAPI_SR_INS = 0x80000036


@dataclass(frozen=True)
class PresetDef:
    code: int
    symbol: str
    description: str


PRESETS: dict[int, PresetDef] = {p.code: p for p in [
    PresetDef(PAPI_TOT_INS, "PAPI_TOT_INS", "Instructions completed"),
    PresetDef(PAPI_TOT_CYC, "PAPI_TOT_CYC", "Total cycles"),
    PresetDef(PAPI_FP_OPS, "PAPI_FP_OPS", "Floating point operations"),
    PresetDef(PAPI_DP_OPS, "PAPI_DP_OPS", "Double precision operations"),
    PresetDef(PAPI_L1_DCM, "PAPI_L1_DCM", "L1 data cache misses"),
    PresetDef(PAPI_L2_TCM, "PAPI_L2_TCM", "L2 total cache misses"),
    PresetDef(PAPI_L2_TCA, "PAPI_L2_TCA", "L2 total cache accesses"),
    PresetDef(PAPI_BR_INS, "PAPI_BR_INS", "Branch instructions"),
    PresetDef(PAPI_BR_MSP, "PAPI_BR_MSP", "Mispredicted branches"),
    PresetDef(PAPI_TLB_DM, "PAPI_TLB_DM", "Data TLB misses"),
    PresetDef(PAPI_LD_INS, "PAPI_LD_INS", "Load instructions"),
    PresetDef(PAPI_SR_INS, "PAPI_SR_INS", "Store instructions"),
]}

PRESETS_BY_SYMBOL = {p.symbol: p for p in PRESETS.values()}

# Per-architecture native mappings: preset code -> native event name.
_NEHALEM = {
    PAPI_TOT_INS: "INSTR_RETIRED_ANY",
    PAPI_TOT_CYC: "CPU_CLK_UNHALTED_CORE",
    PAPI_FP_OPS: "FP_COMP_OPS_EXE_SSE_FP_SCALAR",
    PAPI_DP_OPS: "FP_COMP_OPS_EXE_SSE_FP_PACKED",
    PAPI_L1_DCM: "L1D_REPL",
    PAPI_L2_TCM: "L2_RQSTS_MISS",
    PAPI_L2_TCA: "L2_RQSTS_REFERENCES",
    PAPI_BR_INS: "BR_INST_RETIRED_ALL_BRANCHES",
    PAPI_BR_MSP: "BR_MISP_RETIRED_ALL_BRANCHES",
    PAPI_TLB_DM: "DTLB_MISSES_ANY",
    PAPI_LD_INS: "MEM_INST_RETIRED_LOADS",
    PAPI_SR_INS: "MEM_INST_RETIRED_STORES",
}

_CORE2 = {
    PAPI_TOT_INS: "INSTR_RETIRED_ANY",
    PAPI_TOT_CYC: "CPU_CLK_UNHALTED_CORE",
    PAPI_FP_OPS: "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE",
    PAPI_DP_OPS: "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE",
    PAPI_L1_DCM: "L1D_REPL",
    PAPI_L2_TCM: "L2_RQSTS_MISS",
    PAPI_L2_TCA: "L2_RQSTS_ANY",
    PAPI_BR_INS: "BR_INST_RETIRED_ANY",
    PAPI_BR_MSP: "BR_INST_RETIRED_MISPRED",
    PAPI_TLB_DM: "DTLB_MISSES_ANY",
    PAPI_LD_INS: "INST_RETIRED_LOADS",
    PAPI_SR_INS: "INST_RETIRED_STORES",
}

_AMD = {
    PAPI_TOT_INS: "RETIRED_INSTRUCTIONS",
    PAPI_TOT_CYC: "CPU_CLOCKS_UNHALTED",
    PAPI_FP_OPS: "SSE_RETIRED_SCALAR_DOUBLE",
    PAPI_DP_OPS: "SSE_RETIRED_PACKED_DOUBLE",
    PAPI_L1_DCM: "DATA_CACHE_REFILLS_L2",
    PAPI_L2_TCM: "L2_MISSES_ALL",
    PAPI_L2_TCA: "L2_REQUESTS_ALL",
    PAPI_BR_INS: "RETIRED_BRANCH_INSTR",
    PAPI_BR_MSP: "RETIRED_MISPREDICTED_BRANCH_INSTR",
    PAPI_TLB_DM: "DTLB_L2_MISS_ALL",
    PAPI_LD_INS: "RETIRED_LOADS",
    PAPI_SR_INS: "RETIRED_STORES",
}

NATIVE_MAPPINGS: dict[str, dict[int, str]] = {
    "nehalem_ep": _NEHALEM,
    "nehalem_ws": _NEHALEM,
    "westmere_ep": _NEHALEM,
    "core2": _CORE2,
    "core2duo": _CORE2,
    "atom": {k: v for k, v in _CORE2.items()
             if k not in (PAPI_LD_INS, PAPI_SR_INS, PAPI_TLB_DM,
                          PAPI_L1_DCM)},
    "banias": {
        PAPI_TOT_INS: "INSTR_RETIRED_ANY",
        PAPI_TOT_CYC: "CPU_CLK_UNHALTED",
        PAPI_BR_INS: "BR_INST_RETIRED",
        PAPI_BR_MSP: "BR_MISPRED_RETIRED",
    },
    "pentium_m": {
        PAPI_TOT_INS: "INSTR_RETIRED_ANY",
        PAPI_TOT_CYC: "CPU_CLK_UNHALTED",
        PAPI_DP_OPS: "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP",
        PAPI_BR_INS: "BR_INST_RETIRED",
        PAPI_BR_MSP: "BR_MISPRED_RETIRED",
    },
    "amd_k8": _AMD,
    "amd_istanbul": _AMD,
    "power9": {
        PAPI_TOT_INS: "PM_INST_CMPL",
        PAPI_TOT_CYC: "PM_CYC",
        PAPI_FP_OPS: "PM_SCALAR_FLOP_CMPL",
        PAPI_DP_OPS: "PM_VECTOR_FLOP_CMPL",
        PAPI_L1_DCM: "PM_LD_MISS_L1",
        PAPI_BR_INS: "PM_BR_CMPL",
        PAPI_BR_MSP: "PM_BR_MPRED_CMPL",
        PAPI_TLB_DM: "PM_DTLB_MISS",
        PAPI_LD_INS: "PM_LD_CMPL",
        PAPI_SR_INS: "PM_ST_CMPL",
    },
}
