"""Unit formatting and parsing helpers.

The original LIKWID tools print human-oriented quantities: clock rates
in GHz, cache sizes in kB/MB, bandwidths in MBytes/s.  These helpers
centralise the formatting so tool output stays consistent, and provide
the inverse parsers used by tests and by the CLI.
"""

from __future__ import annotations

KILO = 1000
MEGA = 1000**2
GIGA = 1000**3

KIB = 1024
MIB = 1024**2
GIB = 1024**3

CACHELINE_BYTES = 64


def format_hz(hz: float) -> str:
    """Render a clock rate the way likwid-topology does (e.g. '2.93 GHz')."""
    if hz >= GIGA:
        return f"{hz / GIGA:.2f} GHz"
    if hz >= MEGA:
        return f"{hz / MEGA:.2f} MHz"
    if hz >= KILO:
        return f"{hz / KILO:.2f} kHz"
    return f"{hz:.0f} Hz"


def format_size(nbytes: int) -> str:
    """Render a cache/memory size in binary units ('32 kB', '12 MB').

    likwid-topology prints power-of-two sizes with decimal-looking unit
    names; we follow that convention (kB == 1024 bytes here).
    """
    if nbytes >= GIB and nbytes % GIB == 0:
        return f"{nbytes // GIB} GB"
    if nbytes >= MIB and nbytes % MIB == 0:
        return f"{nbytes // MIB} MB"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB} kB"
    return f"{nbytes} B"


def parse_size(text: str) -> int:
    """Parse '32 kB' / '12MB' / '64' back into bytes."""
    s = text.strip()
    for suffix, mult in (("GB", GIB), ("MB", MIB), ("kB", KIB), ("KB", KIB), ("B", 1)):
        if s.endswith(suffix):
            return int(float(s[: -len(suffix)].strip()) * mult)
    return int(s)


def mbytes_per_s(nbytes: float, seconds: float) -> float:
    """Bandwidth in MBytes/s (decimal mega, as likwid-perfctr reports)."""
    if seconds <= 0.0:
        return 0.0
    return nbytes / MEGA / seconds


def mflops_per_s(flops: float, seconds: float) -> float:
    """Rate in MFlops/s (decimal mega)."""
    if seconds <= 0.0:
        return 0.0
    return flops / MEGA / seconds


def mlups(updates: float, seconds: float) -> float:
    """Million lattice-site updates per second, the Jacobi metric."""
    if seconds <= 0.0:
        return 0.0
    return updates / MEGA / seconds


def format_count(value: float) -> str:
    """Format an event count the way likwid-perfctr prints it.

    Small integer counts print exactly; large ones use the 6-significant-
    digit scientific form seen in the paper's listings (1.88024e+07).
    """
    if value != value:  # NaN
        return "nan"
    if abs(value) < 1e6 and float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"
