"""Shared CLI plumbing for the likwid-* front-ends.

Real LIKWID probes the hardware it runs on; the reproduction runs
against the simulated machine catalog, selected with ``--arch`` (the
one necessary departure from the original command lines, documented in
README).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.errors import TopologyError
from repro.hw.arch import available, create_machine
from repro.hw.machine import SimMachine


def add_arch_argument(parser: argparse.ArgumentParser,
                      default: str = "westmere_ep") -> None:
    """The one ``--arch`` definition every front-end shares: same
    default, same choices, same help text."""
    parser.add_argument(
        "--arch", default=default, choices=available(),
        help="simulated machine to run on (default: %(default)s)")


def machine_from_args(args: argparse.Namespace) -> SimMachine:
    """Instantiate the machine selected by ``--arch``, with uniform
    error reporting across every front-end (argparse's ``choices``
    normally rejects unknown names first; this covers programmatic
    callers passing a namespace directly)."""
    try:
        return create_machine(args.arch)
    except TopologyError as exc:
        raise SystemExit(
            f"unknown architecture {args.arch!r} "
            f"(available: {', '.join(available())}): {exc}") from None


# Crash-safety exit codes shared by the msr-writing front-ends
# (likwid-perfctr also defines 0-4; see docs/robustness.md).
EXIT_RECOVERED = 5       # --recover found and undid orphaned state
EXIT_UNRECOVERABLE = 6   # journal history corrupt; nothing restored
EXIT_KILLED = 7          # simulated kill fired; dirty state left behind


def add_journal_arguments(parser: argparse.ArgumentParser) -> None:
    """The crash-safety flags every msr-writing front-end shares."""
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="file-backed write-ahead journal for this run's msr "
             "mutations (the in-memory default cannot survive a real "
             "process death)")
    parser.add_argument(
        "--no-journal", dest="no_journal", action="store_true",
        help="disable the write-ahead journal entirely (a crashed run "
             "leaves unrecoverable dirty msr state)")
    parser.add_argument(
        "--recover", action="store_true",
        help="recover orphaned msr state and stale socket locks from "
             "a crashed run's journal, then exit (requires --journal)")


def check_journal_arguments(args: argparse.Namespace,
                            tool: str) -> str | None:
    """Validate the flag combinations; returns an error message (the
    caller prints it and exits with the usage code) or None."""
    if args.recover and args.no_journal:
        return f"{tool}: --recover and --no-journal are contradictory"
    if args.recover and not args.journal:
        return (f"{tool}: --recover needs --journal PATH "
                f"(the crashed run's journal file)")
    return None


def add_access_mode_argument(parser: argparse.ArgumentParser) -> None:
    """The ``--access-mode`` definition every counter-touching
    front-end shares (see docs/access-modes.md)."""
    from repro.oskern.access import ACCESS_MODES
    parser.add_argument(
        "--access-mode", dest="access_mode", default="msr",
        choices=list(ACCESS_MODES),
        help="counter-access backend: direct msr register access or "
             "perf_event-style fds with kernel multiplexing "
             "(default: %(default)s)")


def backend_from_args(machine: SimMachine, args: argparse.Namespace,
                      *, faults=None):
    """Open the counter-access backend selected by ``--access-mode``,
    honoring --journal/--no-journal (the crash-safety knobs ride on
    the underlying msr driver in either mode).  Raises
    :class:`~repro.errors.JournalError` when an existing journal file
    cannot be loaded."""
    from repro.oskern.access import open_backend

    mode = getattr(args, "access_mode", None) or "msr"
    if getattr(args, "no_journal", False):
        return open_backend(mode, machine, faults=faults, journaling=False)
    journal = None
    if getattr(args, "journal", None):
        from repro.oskern.journal import MsrJournal
        journal = MsrJournal(args.journal)
    return open_backend(mode, machine, faults=faults, journal=journal)


def driver_from_args(machine: SimMachine, args: argparse.Namespace,
                     *, faults=None):
    """Deprecated: the raw msr driver behind the default backend.

    Tool code should hold an :class:`~repro.oskern.access.AccessBackend`
    from :func:`backend_from_args` instead (LK503 flags direct
    ``MsrDriver(...)`` construction in this layer); this shim keeps old
    call sites working and is mode-blind — the driver is the same
    object either backend would wrap."""
    return backend_from_args(machine, args, faults=faults).driver


def warn_orphaned_journal(driver, tool: str) -> None:
    """A non-empty journal at startup means a previous run died
    mid-session; measuring from its dirty baseline is wrong."""
    journal = driver.journal
    if journal is not None and journal.record_count:
        print(f"{tool}: warning: journal holds {journal.record_count} "
              f"record(s) from a crashed run; counters may be dirty — "
              f"run --recover first", file=sys.stderr)


def run_recovery(args: argparse.Namespace, tool: str) -> int:
    """The shared ``--recover`` entry point.

    The simulated machine's registers live in process memory, so a
    recovering process first re-materialises the crashed run's dirty
    register state from the journal's after-values (on real hardware
    the registers would still physically hold them), then runs the
    recovery engine: backwards replay to pristine state, stale-lock
    reclaim, journal retirement."""
    from repro.errors import JournalCorruptError, JournalError
    from repro.oskern.access import open_backend
    from repro.oskern.journal import OP_WRITE, MsrJournal
    from repro.oskern.recovery import RecoveryEngine

    machine = machine_from_args(args)
    try:
        journal = MsrJournal(args.journal)
        # Recovery replays raw register writes: always the msr backend.
        driver = open_backend("msr", machine, journal=journal).driver
        for rec in journal.scan().records:
            if rec.op == OP_WRITE:
                machine.msr[rec.cpu].write(rec.address, rec.after)
        report = RecoveryEngine(driver).recover()
    except JournalCorruptError as exc:
        print(f"{tool}: journal unrecoverable: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    except (JournalError, OSError) as exc:
        print(f"{tool}: recovery failed: {exc}", file=sys.stderr)
        return EXIT_UNRECOVERABLE
    print(f"{tool}: {report.summary()}")
    return 0 if report.clean else EXIT_RECOVERED


def add_msr_faults_argument(parser: argparse.ArgumentParser) -> None:
    """The deterministic fault-injection flag shared by the
    counter-touching front-ends (and the agent's soak mode)."""
    parser.add_argument(
        "--msr-faults", dest="msr_faults", metavar="SPEC",
        help="inject deterministic msr-driver faults, e.g. "
             "'seed=7,read_fault_rate=0.1' or "
             "'sticky=0x394,overflow_after=1000'")


def faults_from_args(args: argparse.Namespace, tool: str):
    """Parse ``--msr-faults`` into a FaultPlan; on a malformed spec
    prints the uniform usage error and raises SystemExit(2)."""
    spec = getattr(args, "msr_faults", None)
    if not spec:
        return None
    from repro.oskern.msr_driver import FaultPlan
    try:
        return FaultPlan.from_string(spec)
    except ValueError as exc:
        print(f"{tool}: bad --msr-faults: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    """The self-observability flags every front-end shares: turn on
    :mod:`repro.trace` for the run and export what it saw."""
    parser.add_argument(
        "--profile", action="store_true",
        help="trace this tool's own hot paths and print a flat span/"
             "metric report to stderr when it exits")
    parser.add_argument(
        "--profile-json", dest="profile_json", metavar="PATH",
        help="write the run's trace as schema-validated JSON loadable "
             "in about:tracing / Perfetto (implies tracing on)")


@contextlib.contextmanager
def profiled(args: argparse.Namespace, tool: str):
    """Run the tool body under the global tracer when profiling was
    requested; export on the way out (even if the body raised, so a
    failing run still leaves its trace behind)."""
    wants = getattr(args, "profile", False) or \
        getattr(args, "profile_json", None)
    if not wants:
        yield
        return
    from repro import trace
    trace.enable(reset=True)
    try:
        yield
    finally:
        trace.disable()
        if args.profile_json:
            from repro.trace.export import write_profile
            write_profile(args.profile_json, trace.TRACER, tool=tool)
        if args.profile:
            from repro.trace.export import text_report
            print(f"== {tool} self-profile ==", file=sys.stderr)
            print(text_report(trace.TRACER), file=sys.stderr)


# Workload registry for the wrapper-style tools: the simulated stand-in
# for "./a.out" on the real command line.
WORKLOADS = ("stream_icc", "stream_gcc", "jacobi_threaded",
             "jacobi_threaded_nt", "jacobi_wavefront", "dgemm", "sleep")


def run_workload(name: str, machine: SimMachine, kernel,
                 *, nthreads: int, pin_cpus: list[int] | None = None):
    """Execute a named workload; returns the model RunResult (or None
    for 'sleep', which generates no events — the monitoring-mode idiom
    from the paper)."""
    from repro.workloads.jacobi import JacobiConfig, run_jacobi
    from repro.workloads.stream import run_stream

    if name == "sleep":
        machine.apply_counts({}, elapsed_seconds=1.0)
        return None
    if name.startswith("stream_"):
        compiler = name.split("_", 1)[1]
        return run_stream(machine, kernel, nthreads=nthreads,
                          compiler=compiler, pin_cpus=pin_cpus).result
    if name == "dgemm":
        from repro.workloads.matmul import MatmulConfig, run_matmul
        cfg = MatmulConfig(256, 16, nthreads)
        return run_matmul(machine, kernel, cfg, pin_cpus=pin_cpus).result
    if name.startswith("jacobi_"):
        variant = name.split("_", 1)[1]
        cfg = JacobiConfig(variant, 320, 6, nthreads)
        return run_jacobi(machine, kernel, cfg, pin_cpus=pin_cpus).result
    raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOADS}")


def run_marked_workload(name: str, machine: SimMachine, kernel,
                        session, *, nthreads: int,
                        pin_cpus: list[int] | None = None):
    """Run a stream workload instrumented with marker regions "Init"
    and "Benchmark" (the paper's -m listing) against a started
    session; returns the MarkerAPI holding per-region results."""
    from repro.core.perfctr import MarkerAPI
    from repro.model.ecm import KernelPhase, PlacedWork, solve
    from repro.workloads.runner import apply_result
    from repro.workloads.stream import stream_phase

    if not name.startswith("stream_"):
        raise SystemExit("marker mode is wired for the stream workloads")
    compiler = name.split("_", 1)[1]
    cpus = pin_cpus or session.cpus
    cpus = cpus[:nthreads]

    marker = MarkerAPI(session)
    marker.likwid_markerInit(len(cpus), 2)
    init_id = marker.likwid_markerRegisterRegion("Init")
    bench_id = marker.likwid_markerRegisterRegion("Benchmark")

    def run_phase(phase):
        work = [PlacedWork(tid=i, hwthread=cpu,
                           memory_socket=machine.spec.socket_of(cpu),
                           phase=phase)
                for i, cpu in enumerate(cpus)]
        apply_result(machine, solve(machine.spec, work))

    init_phase = KernelPhase(
        "init", iters=500_000, instr_per_iter=3.0, cycles_per_iter=2.0,
        loads_per_iter=0.0, stores_per_iter=1.0,
        mem_write_bytes_per_iter=8.0, mem_read_bytes_per_iter=8.0)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStartRegion(thread, cpu)
    run_phase(init_phase)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStopRegion(thread, cpu, init_id)

    bench_phase = stream_phase("triad", compiler, 2_000_000)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStartRegion(thread, cpu)
    run_phase(bench_phase)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStopRegion(thread, cpu, bench_id)

    marker.likwid_markerClose()
    return marker


def restore_sigpipe() -> None:
    """Die silently on SIGPIPE like a well-behaved Unix filter (so
    ``likwid-topology | head`` does not traceback)."""
    import signal
    try:
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (AttributeError, ValueError):
        pass  # non-Unix platform or non-main thread


def ignore_sigpipe() -> None:
    """The opposite stance, for commands that host sockets: a peer
    that disappears mid-write must surface as ``BrokenPipeError`` on
    that one connection, never kill the whole process.  (Python's
    startup default, but :func:`restore_sigpipe` may have run first
    in this process.)"""
    import signal
    try:
        signal.signal(signal.SIGPIPE, signal.SIG_IGN)
    except (AttributeError, ValueError):
        pass  # non-Unix platform or non-main thread
