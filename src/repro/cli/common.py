"""Shared CLI plumbing for the likwid-* front-ends.

Real LIKWID probes the hardware it runs on; the reproduction runs
against the simulated machine catalog, selected with ``--arch`` (the
one necessary departure from the original command lines, documented in
README).
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.errors import TopologyError
from repro.hw.arch import available, create_machine
from repro.hw.machine import SimMachine


def add_arch_argument(parser: argparse.ArgumentParser,
                      default: str = "westmere_ep") -> None:
    """The one ``--arch`` definition every front-end shares: same
    default, same choices, same help text."""
    parser.add_argument(
        "--arch", default=default, choices=available(),
        help="simulated machine to run on (default: %(default)s)")


def machine_from_args(args: argparse.Namespace) -> SimMachine:
    """Instantiate the machine selected by ``--arch``, with uniform
    error reporting across every front-end (argparse's ``choices``
    normally rejects unknown names first; this covers programmatic
    callers passing a namespace directly)."""
    try:
        return create_machine(args.arch)
    except TopologyError as exc:
        raise SystemExit(
            f"unknown architecture {args.arch!r} "
            f"(available: {', '.join(available())}): {exc}") from None


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    """The self-observability flags every front-end shares: turn on
    :mod:`repro.trace` for the run and export what it saw."""
    parser.add_argument(
        "--profile", action="store_true",
        help="trace this tool's own hot paths and print a flat span/"
             "metric report to stderr when it exits")
    parser.add_argument(
        "--profile-json", dest="profile_json", metavar="PATH",
        help="write the run's trace as schema-validated JSON loadable "
             "in about:tracing / Perfetto (implies tracing on)")


@contextlib.contextmanager
def profiled(args: argparse.Namespace, tool: str):
    """Run the tool body under the global tracer when profiling was
    requested; export on the way out (even if the body raised, so a
    failing run still leaves its trace behind)."""
    wants = getattr(args, "profile", False) or \
        getattr(args, "profile_json", None)
    if not wants:
        yield
        return
    from repro import trace
    trace.enable(reset=True)
    try:
        yield
    finally:
        trace.disable()
        if args.profile_json:
            from repro.trace.export import write_profile
            write_profile(args.profile_json, trace.TRACER, tool=tool)
        if args.profile:
            from repro.trace.export import text_report
            print(f"== {tool} self-profile ==", file=sys.stderr)
            print(text_report(trace.TRACER), file=sys.stderr)


# Workload registry for the wrapper-style tools: the simulated stand-in
# for "./a.out" on the real command line.
WORKLOADS = ("stream_icc", "stream_gcc", "jacobi_threaded",
             "jacobi_threaded_nt", "jacobi_wavefront", "dgemm", "sleep")


def run_workload(name: str, machine: SimMachine, kernel,
                 *, nthreads: int, pin_cpus: list[int] | None = None):
    """Execute a named workload; returns the model RunResult (or None
    for 'sleep', which generates no events — the monitoring-mode idiom
    from the paper)."""
    from repro.workloads.jacobi import JacobiConfig, run_jacobi
    from repro.workloads.stream import run_stream

    if name == "sleep":
        machine.apply_counts({}, elapsed_seconds=1.0)
        return None
    if name.startswith("stream_"):
        compiler = name.split("_", 1)[1]
        return run_stream(machine, kernel, nthreads=nthreads,
                          compiler=compiler, pin_cpus=pin_cpus).result
    if name == "dgemm":
        from repro.workloads.matmul import MatmulConfig, run_matmul
        cfg = MatmulConfig(256, 16, nthreads)
        return run_matmul(machine, kernel, cfg, pin_cpus=pin_cpus).result
    if name.startswith("jacobi_"):
        variant = name.split("_", 1)[1]
        cfg = JacobiConfig(variant, 320, 6, nthreads)
        return run_jacobi(machine, kernel, cfg, pin_cpus=pin_cpus).result
    raise SystemExit(f"unknown workload {name!r}; choose from {WORKLOADS}")


def run_marked_workload(name: str, machine: SimMachine, kernel,
                        session, *, nthreads: int,
                        pin_cpus: list[int] | None = None):
    """Run a stream workload instrumented with marker regions "Init"
    and "Benchmark" (the paper's -m listing) against a started
    session; returns the MarkerAPI holding per-region results."""
    from repro.core.perfctr import MarkerAPI
    from repro.model.ecm import KernelPhase, PlacedWork, solve
    from repro.workloads.runner import apply_result
    from repro.workloads.stream import stream_phase

    if not name.startswith("stream_"):
        raise SystemExit("marker mode is wired for the stream workloads")
    compiler = name.split("_", 1)[1]
    cpus = pin_cpus or session.cpus
    cpus = cpus[:nthreads]

    marker = MarkerAPI(session)
    marker.likwid_markerInit(len(cpus), 2)
    init_id = marker.likwid_markerRegisterRegion("Init")
    bench_id = marker.likwid_markerRegisterRegion("Benchmark")

    def run_phase(phase):
        work = [PlacedWork(tid=i, hwthread=cpu,
                           memory_socket=machine.spec.socket_of(cpu),
                           phase=phase)
                for i, cpu in enumerate(cpus)]
        apply_result(machine, solve(machine.spec, work))

    init_phase = KernelPhase(
        "init", iters=500_000, instr_per_iter=3.0, cycles_per_iter=2.0,
        loads_per_iter=0.0, stores_per_iter=1.0,
        mem_write_bytes_per_iter=8.0, mem_read_bytes_per_iter=8.0)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStartRegion(thread, cpu)
    run_phase(init_phase)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStopRegion(thread, cpu, init_id)

    bench_phase = stream_phase("triad", compiler, 2_000_000)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStartRegion(thread, cpu)
    run_phase(bench_phase)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStopRegion(thread, cpu, bench_id)

    marker.likwid_markerClose()
    return marker


def restore_sigpipe() -> None:
    """Die silently on SIGPIPE like a well-behaved Unix filter (so
    ``likwid-topology | head`` does not traceback)."""
    import signal
    try:
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (AttributeError, ValueError):
        pass  # non-Unix platform or non-main thread
