"""``repro-bench``: regenerate the paper's tables and figures as text.

    repro-bench table2
    repro-bench fig 5
    repro-bench fig11
    repro-bench table1
    repro-bench fig1
"""

from __future__ import annotations

import argparse
import sys

from repro import experiments
from repro.cli.common import (add_arch_argument, add_profile_arguments,
                              machine_from_args, profiled)
from repro.tables import render_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation artefacts.")
    # Global flags go before the subcommand:
    #   repro-bench --profile-json trace.json table2
    add_profile_arguments(parser)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig1", help="topology diagram (Fig. 1)")
    sub.add_parser("table1", help="LIKWID vs PAPI comparison (Table I)")
    fig = sub.add_parser("fig", help="STREAM figure 4-10")
    fig.add_argument("number", type=int, choices=sorted(experiments.STREAM_FIGURES))
    fig.add_argument("--samples", type=int, default=100)
    fig.add_argument("--csv", action="store_true",
                     help="emit raw samples as CSV instead of a table")
    fig11 = sub.add_parser("fig11", help="Jacobi MLUPS vs size (Fig. 11)")
    fig11.add_argument("--csv", action="store_true")
    table2 = sub.add_parser("table2",
                            help="uncore traffic of temporal blocking")
    table2.add_argument("--csv", action="store_true")
    ladder = sub.add_parser(
        "ladder", help="bandwidth ladder (likwid-bench working-set sweep)")
    ladder.add_argument("-k", dest="kernel", default="load",
                        help="microkernel (load/store/copy/triad/...)")
    add_arch_argument(ladder)
    ladder.add_argument("--threads", type=int, default=1)
    ladder.add_argument("--engine", default="analytic",
                        choices=("analytic", "batched", "scalar"),
                        help="traffic substrate for the memory level "
                             "(default: %(default)s)")
    bwmap = sub.add_parser(
        "bwmap", help="ccNUMA bandwidth map (cores x memory domains)")
    bwmap.add_argument("-k", dest="kernel", default="copy")
    add_arch_argument(bwmap)
    allcmd = sub.add_parser(
        "all", help="regenerate every paper artefact in one run")
    allcmd.add_argument("--samples", type=int, default=60,
                        help="samples per thread count for Figs 4/7/9")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    with profiled(args, "repro-bench"):
        return _run(args)


def _run(args: argparse.Namespace) -> int:
    if args.command == "fig1":
        print(experiments.figure1_topology())
    elif args.command == "table1":
        rows = experiments.table1_comparison()
        print(render_table(["", "LIKWID", "PAPI"],
                           [(r.aspect, r.likwid, r.papi) for r in rows]))
    elif args.command == "fig":
        series = experiments.stream_figure(args.number, samples=args.samples)
        arch, compiler, mode = experiments.STREAM_FIGURES[args.number]
        if args.csv:
            from repro.export import stream_series_to_csv
            print(stream_series_to_csv(series), end="")
            return 0
        print(f"# Figure {args.number}: STREAM triad, {compiler} on {arch}, "
              f"{mode} ({args.samples} samples/thread count)")
        rows = []
        for nthreads in sorted(series.samples):
            q1, med, q3 = series.quartiles(nthreads)
            data = series.samples[nthreads]
            rows.append([nthreads, f"{min(data):.0f}", f"{q1:.0f}",
                         f"{med:.0f}", f"{q3:.0f}", f"{max(data):.0f}"])
        print(render_table(
            ["threads", "min", "q1", "median", "q3", "max"], rows))
    elif args.command == "fig11":
        curves = experiments.figure11_jacobi_sweep()
        if args.csv:
            from repro.export import fig11_to_csv
            print(fig11_to_csv(curves), end="")
            return 0
        sizes = [n for n, _ in next(iter(curves.values()))]
        header = ["size"] + list(curves)
        rows = []
        for i, n in enumerate(sizes):
            rows.append([n] + [f"{curves[label][i][1]:.0f}"
                               for label in curves])
        print("# Figure 11: Jacobi smoother [MLUPS] on Nehalem EP")
        print(render_table(header, rows))
    elif args.command == "ladder":
        from repro.core.bench import bandwidth_ladder, render_ladder
        machine = machine_from_args(args)
        cpus = machine.spec.scatter_order()[:args.threads]
        print(f"# bandwidth ladder: {args.kernel} on {args.arch}, "
              f"{args.threads} thread(s) pinned to {cpus}")
        print(render_ladder(bandwidth_ladder(machine, args.kernel,
                                             cpus=cpus,
                                             engine=args.engine)))
    elif args.command == "bwmap":
        from repro.core.bench import numa_bandwidth_map, render_numa_map
        machine = machine_from_args(args)
        print(f"# ccNUMA bandwidth map: {args.kernel} on {args.arch}")
        print(render_numa_map(numa_bandwidth_map(machine,
                                                 kernel=args.kernel)))
    elif args.command == "all":
        print("=" * 70)
        print("Figure 1 / topology listings")
        print("=" * 70)
        print(experiments.figure1_topology())
        print("=" * 70)
        print("Table I: LIKWID vs PAPI")
        print("=" * 70)
        rows = experiments.table1_comparison()
        print(render_table(["", "LIKWID", "PAPI"],
                           [(r.aspect, r.likwid, r.papi) for r in rows]))
        for fig in sorted(experiments.STREAM_FIGURES):
            arch, compiler, mode = experiments.STREAM_FIGURES[fig]
            series = experiments.stream_figure(fig, samples=args.samples)
            print("=" * 70)
            print(f"Figure {fig}: STREAM triad, {compiler} on {arch}, "
                  f"{mode} [MB/s]")
            print("=" * 70)
            frows = []
            for nthreads in sorted(series.samples):
                q1, med, q3 = series.quartiles(nthreads)
                data = series.samples[nthreads]
                frows.append([nthreads, f"{min(data):.0f}", f"{q1:.0f}",
                              f"{med:.0f}", f"{q3:.0f}", f"{max(data):.0f}"])
            print(render_table(
                ["threads", "min", "q1", "median", "q3", "max"], frows))
        print("=" * 70)
        print("Figure 11: Jacobi smoother [MLUPS] on Nehalem EP")
        print("=" * 70)
        curves = experiments.figure11_jacobi_sweep()
        sizes = [n for n, _ in next(iter(curves.values()))]
        frows = []
        for i, n in enumerate(sizes):
            frows.append([n] + [f"{curves[label][i][1]:.0f}"
                                for label in curves])
        print(render_table(["size"] + list(curves), frows))
        print("=" * 70)
        print("Table II: uncore measurements, one Nehalem EP socket")
        print("=" * 70)
        t2 = experiments.table2_uncore()
        print(render_table(
            ["", *[r.variant for r in t2]],
            [["UNC_L3_LINES_IN_ANY"] + [f"{r.l3_lines_in:.3g}" for r in t2],
             ["UNC_L3_LINES_OUT_ANY"] + [f"{r.l3_lines_out:.3g}"
                                         for r in t2],
             ["Total data volume [GB]"] + [f"{r.data_volume_gb:.2f}"
                                           for r in t2],
             ["Performance [MLUPS]"] + [f"{r.mlups:.0f}" for r in t2]]))
    elif args.command == "table2":
        rows = experiments.table2_uncore()
        if args.csv:
            from repro.export import table2_to_csv
            print(table2_to_csv(rows), end="")
            return 0
        print("# Table II: likwid-perfctr uncore measurements, one "
              "Nehalem EP socket")
        print(render_table(
            ["", *[r.variant for r in rows]],
            [["UNC_L3_LINES_IN_ANY"] + [f"{r.l3_lines_in:.3g}" for r in rows],
             ["UNC_L3_LINES_OUT_ANY"] + [f"{r.l3_lines_out:.3g}" for r in rows],
             ["Total data volume [GB]"] + [f"{r.data_volume_gb:.2f}" for r in rows],
             ["Performance [MLUPS]"] + [f"{r.mlups:.0f}" for r in rows]]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
