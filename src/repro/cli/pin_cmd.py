"""``likwid-pin`` command-line front-end.

Mirrors the paper's usage::

    likwid-pin -c 0-3 -t intel stream_icc
    likwid-pin -c 0-7 -s 0x3 stream_icc

The wrapped binary is a named simulated workload; the tool prints the
final thread→core placements so the pinning effect is visible.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (WORKLOADS, add_arch_argument,
                              machine_from_args, run_workload)
from repro.core.affinity import parse_skip_mask
from repro.core.pin import LikwidPin
from repro.errors import ReproError
from repro.oskern.scheduler import OSKernel
from repro.workloads.stream import run_stream


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-pin",
        description="Pin a multithreaded application to cores.")
    parser.add_argument("-c", dest="cpus", required=True,
                        help="core list to pin to, e.g. 0-3")
    parser.add_argument("-t", dest="thread_type", default=None,
                        help="threading implementation: gnu (default), "
                             "intel, posix, intel_mpi")
    parser.add_argument("-s", dest="skip", default=None,
                        help="explicit skip mask, e.g. 0x3")
    parser.add_argument("--threads", type=int, default=None,
                        help="workload thread count (default: #cores)")
    parser.add_argument("workload", nargs="?", default="stream_gcc",
                        help=f"simulated workload: {', '.join(WORKLOADS)}")
    add_arch_argument(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    machine = machine_from_args(args)
    kernel = OSKernel(machine, seed=0)
    pin = LikwidPin(kernel)
    skip = parse_skip_mask(args.skip) if args.skip else None
    try:
        process = pin.launch(args.cpus, thread_type=args.thread_type,
                             skip=skip)
        nthreads = args.threads or len(process.cpus)
        if args.workload.startswith("stream_"):
            compiler = args.workload.split("_", 1)[1]
            model = ("intel" if (args.thread_type or "").startswith("intel")
                     else "gnu")
            # Launch through the already-installed overlay: run_stream's
            # own pin path is bypassed by passing the env-pinned kernel.
            result = run_stream(machine, kernel, nthreads=nthreads,
                                compiler=compiler, openmp_model=model,
                                pin_cpus=process.cpus,
                                skip_mask=process.skip_mask)
            print(f"[likwid-pin] measured bandwidth: "
                  f"{result.bandwidth_mb_s:.0f} MB/s")
            run_result = result.result
        else:
            run_result = run_workload(args.workload, machine, kernel,
                                      nthreads=nthreads,
                                      pin_cpus=process.cpus)
    except ReproError as exc:
        print(f"likwid-pin: {exc}", file=sys.stderr)
        return 1
    if run_result is not None:
        print("[likwid-pin] thread placements (tid -> hwthread):")
        for outcome in run_result.threads:
            print(f"  {outcome.tid} -> {outcome.hwthread}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
