"""``likwid-bench``: threaded streaming microbenchmarks.

The microbenchmarking tool the paper's outlook announces, with the
workgroup syntax the released likwid-bench adopted::

    likwid-bench -t triad -w S0:1GB:4
    likwid-bench -t copy -w S0:2GB:6 -w S1:2GB:6 --arch westmere_ep
    likwid-bench -a                           # list kernels
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_arch_argument, machine_from_args
from repro.core.bench import (KERNELS, Workgroup, render_workgroups,
                              run_workgroups)
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-bench",
        description="Low-level threaded bandwidth/flops microbenchmarks.")
    parser.add_argument("-t", dest="kernel", default="triad",
                        help="test kernel (see -a)")
    parser.add_argument("-w", dest="workgroups", action="append",
                        metavar="DOMAIN:SIZE[:THREADS]",
                        help="workgroup, e.g. S0:1GB:4 (repeatable)")
    parser.add_argument("-a", action="store_true", dest="list_kernels",
                        help="list available test kernels")
    parser.add_argument("--iterations", type=int, default=4)
    add_arch_argument(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    if args.list_kernels:
        for name, k in sorted(KERNELS.items()):
            nt = " (nontemporal)" if k.nontemporal else ""
            print(f"{name}\t{k.read_streams} read / {k.write_streams} "
                  f"write streams, {k.flops_per_element:g} flops/elem{nt}")
        return 0
    machine = machine_from_args(args)
    texts = args.workgroups or ["S0:1GB:1"]
    try:
        groups = [Workgroup.parse(t) for t in texts]
        results = run_workgroups(machine, args.kernel, groups,
                                 iterations=args.iterations)
    except ReproError as exc:
        print(f"likwid-bench: {exc}", file=sys.stderr)
        return 1
    print(f"# likwid-bench {args.kernel} on {machine.spec.cpu_name}")
    print(render_workgroups(results, args.kernel))
    return 0


if __name__ == "__main__":
    sys.exit(main())
