"""Command-line front-ends: likwid-topology, likwid-perfctr,
likwid-pin, likwid-features, likwid-bench, repro-bench, repro-mpirun
and repro-lint."""
