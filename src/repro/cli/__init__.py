"""Command-line front-ends: likwid-topology, likwid-perfctr,
likwid-pin, likwid-features, repro-bench."""
