"""``likwid-topology`` command-line front-end."""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_arch_argument, machine_from_args
from repro.core.numa import probe_numa, render_numa
from repro.core.topology import probe_topology, render_topology
from repro.core.topology_ascii import render_ascii


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-topology",
        description="Probe hardware thread and cache topology.")
    parser.add_argument("-c", action="store_true", dest="caches",
                        help="print extended cache parameters")
    parser.add_argument("-g", action="store_true", dest="graphical",
                        help="ASCII-art cache/socket diagram")
    parser.add_argument("--xml", action="store_true",
                        help="emit the report as XML instead of text")
    parser.add_argument("--gen-topofile", metavar="PATH", default=None,
                        help="probe once and write a topology config file")
    parser.add_argument("--topofile", metavar="PATH", default=None,
                        help="read the topology from a config file "
                             "instead of probing CPUID")
    add_arch_argument(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    machine = machine_from_args(args)
    if args.gen_topofile:
        from repro.core.topofile import write_topofile
        path = write_topofile(machine, args.gen_topofile)
        print(f"wrote topology of {machine.spec.cpu_name} to {path}")
        return 0
    if args.topofile:
        from repro.core.topofile import read_topofile
        topology, numa = read_topofile(args.topofile)
    else:
        topology = probe_topology(machine)
        numa = probe_numa(machine)
    if args.xml:
        from repro.core.xmlout import topology_to_xml
        print(topology_to_xml(topology, numa))
        return 0
    print(render_topology(topology, caches=args.caches))
    print(render_numa(numa))
    if args.graphical:
        print(render_ascii(topology))
    return 0


if __name__ == "__main__":
    sys.exit(main())
