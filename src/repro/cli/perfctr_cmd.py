"""``likwid-perfctr`` command-line front-end.

Mirrors the paper's usage::

    likwid-perfctr -c 0-3 -g FLOPS_DP stream_icc
    likwid-perfctr -c 0-7 -g SIMD_...:PMC0,SIMD_...:PMC1 sleep
    likwid-perfctr -c 0-3 -g FLOPS_DP -m stream_icc

with the wrapped binary replaced by a named simulated workload.

Exit codes map the measurement outcome (see docs/robustness.md):

* 0 — success (possibly with degradation warnings on stderr)
* 1 — generic tool error
* 2 — usage error
* 3 — msr driver unavailable or permission denied
* 4 — measurement degraded and ``--strict-io`` was given
* 5 — ``--recover`` found and undid orphaned state
* 6 — journal history corrupt; recovery refused
* 7 — run killed mid-session (``kill_after`` fault); state is dirty
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (EXIT_KILLED, EXIT_UNRECOVERABLE, WORKLOADS,
                              add_access_mode_argument, add_arch_argument,
                              add_journal_arguments, add_profile_arguments,
                              add_msr_faults_argument, backend_from_args,
                              check_journal_arguments, faults_from_args,
                              machine_from_args, profiled,
                              run_marked_workload, run_recovery, run_workload,
                              warn_orphaned_journal)
from repro.core.affinity import parse_corelist
from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.groups import GROUP_FUNCTIONS, groups_for
from repro.core.perfctr.output import render_header, render_result
from repro.errors import (DegradedError, JournalError, MsrError,
                          ProcessKilled, ReproError, SimulatedInterrupt)
from repro.oskern.scheduler import OSKernel

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_DRIVER = 3
EXIT_DEGRADED = 4
# 5/6/7 (recovered / unrecoverable / killed) come from cli.common.


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-perfctr",
        description="Measure hardware performance counter metrics.")
    parser.add_argument("-c", dest="cpus", default="0",
                        help="cpu list to measure (e.g. 0-3)")
    parser.add_argument("-g", dest="group", required=False,
                        help="event group or EVENT:COUNTER list")
    parser.add_argument("-a", action="store_true", dest="list_groups",
                        help="list available event groups")
    parser.add_argument("-e", action="store_true", dest="list_events",
                        help="list available events and counters")
    parser.add_argument("-m", action="store_true", dest="marker",
                        help="marker mode: per-region results (the "
                             "stream workloads expose Init/Benchmark)")
    parser.add_argument("--pin", action="store_true",
                        help="also pin the workload to the measured cpus "
                             "(the likwid-perfctr ... likwid-pin idiom)")
    parser.add_argument("--threads", type=int, default=None,
                        help="workload thread count (default: #cpus)")
    parser.add_argument("--xml", action="store_true",
                        help="emit results as XML instead of tables")
    parser.add_argument("--strict-io", action="store_true", dest="strict_io",
                        help="treat degraded (NaN-producing) measurements "
                             "as errors (exit 4) instead of warning")
    add_msr_faults_argument(parser)
    parser.add_argument("workload", nargs="?", default="stream_icc",
                        help=f"simulated workload: {', '.join(WORKLOADS)}")
    add_arch_argument(parser, default="nehalem_ep")
    add_access_mode_argument(parser)
    add_journal_arguments(parser)
    add_profile_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    with profiled(args, "likwid-perfctr"):
        return _run(args)


def _run(args: argparse.Namespace) -> int:
    usage = check_journal_arguments(args, "likwid-perfctr")
    if usage is not None:
        print(usage, file=sys.stderr)
        return EXIT_USAGE
    if args.recover:
        return run_recovery(args, "likwid-perfctr")
    machine = machine_from_args(args)
    if args.list_groups:
        for name, group in sorted(groups_for(machine.spec).items()):
            print(f"{name}\t{GROUP_FUNCTIONS[name]}")
        return 0
    if args.list_events:
        from repro.core.perfctr.counters import CounterMap
        counters = CounterMap(machine.spec)
        names = []
        for cls in ("PMC", "FIXC", "UPMC", "UFIXC"):
            names.extend(counters.names(cls))
        print("Counters:", " ".join(names))
        table = machine.spec.events
        for name in table.names():
            ev = table.lookup(name)
            where = (f"FIXC{ev.fixed_index}" if ev.is_fixed
                     else "UPMC" if ev.scope.value == "uncore" else "PMC")
            print(f"{name}\t0x{ev.event_code:02X}:0x{ev.umask:02X}\t{where}")
        return 0
    if not args.group:
        print("likwid-perfctr: option -g is required", file=sys.stderr)
        return EXIT_USAGE

    kernel = OSKernel(machine, seed=0)
    cpus = parse_corelist(args.cpus, max_cpu=machine.num_hwthreads - 1)
    nthreads = args.threads or len(cpus)
    pin = cpus if args.pin else None
    group_name = args.group if ":" not in args.group else None

    try:
        faults = faults_from_args(args, "likwid-perfctr")
    except SystemExit:
        return EXIT_USAGE
    try:
        backend = backend_from_args(machine, args, faults=faults)
    except JournalError as exc:
        print(f"likwid-perfctr: cannot load journal: {exc}",
              file=sys.stderr)
        return EXIT_UNRECOVERABLE
    warn_orphaned_journal(backend.driver, "likwid-perfctr")
    perfctr = LikwidPerfCtr(machine, backend=backend,
                            strict_io=args.strict_io)
    try:
        if args.marker:
            session = perfctr.session(cpus, args.group)
            with session:
                marker = run_marked_workload(args.workload, machine, kernel,
                                             session, nthreads=nthreads,
                                             pin_cpus=pin)
                session.stop()
            _report_warnings(session.warnings)
            if args.xml:
                from repro.core.xmlout import measurement_to_xml
                for region in marker.region_names():
                    print(measurement_to_xml(marker.region_result(region),
                                             group_name=group_name,
                                             region=region))
                return EXIT_OK
            print(render_header(machine, group_name))
            for region in marker.region_names():
                print(render_result(machine, marker.region_result(region),
                                    region=region))
            return EXIT_OK
        result = perfctr.wrap(
            cpus, args.group,
            lambda: run_workload(args.workload, machine, kernel,
                                 nthreads=nthreads, pin_cpus=pin))
    except ProcessKilled as exc:
        print(f"likwid-perfctr: {exc}", file=sys.stderr)
        if args.journal:
            print(f"likwid-perfctr: run `likwid-perfctr --recover "
                  f"--journal {args.journal} --arch {args.arch}` to "
                  f"restore pristine msr state", file=sys.stderr)
        return EXIT_KILLED
    except SimulatedInterrupt as exc:
        # Graceful ^C: session teardown already ran on the way out.
        print(f"likwid-perfctr: interrupted: {exc}", file=sys.stderr)
        return 130
    except DegradedError as exc:
        print(f"likwid-perfctr: {exc}", file=sys.stderr)
        return EXIT_DEGRADED
    except MsrError as exc:
        print(f"likwid-perfctr: {exc}", file=sys.stderr)
        return EXIT_DRIVER
    except ReproError as exc:
        print(f"likwid-perfctr: {exc}", file=sys.stderr)
        return EXIT_ERROR
    _report_warnings(result.warnings)
    if args.xml:
        from repro.core.xmlout import measurement_to_xml
        print(measurement_to_xml(result, group_name=group_name))
        return EXIT_OK
    print(render_header(machine, group_name))
    print(render_result(machine, result))
    return EXIT_OK


def _report_warnings(warnings: list[str]) -> None:
    for warning in warnings:
        print(f"likwid-perfctr: warning: {warning}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
