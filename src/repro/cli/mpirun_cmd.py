"""``repro-mpirun``: MPI-wide pinning + counter collection.

The paper's hybrid command line and its MPI-profiling outlook in one
front-end::

    repro-mpirun -np 4 -pernode --omp 8 -c 0-7 -t intel_mpi \\
                 -g FLOPS_DP stream_icc --arch westmere_ep

launches one rank per simulated node, pins each rank's team with
likwid-pin semantics (skip mask 0x3 for Intel MPI + Intel OpenMP),
measures every rank with likwid-perfctr, and prints the per-rank
results plus the cross-rank min/max/avg reduction.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_arch_argument
from repro.core.mpiperf import MpiPerfCtr
from repro.core.pin import LikwidPin
from repro.errors import ReproError
from repro.oskern.mpi import MpiExec, SimCluster
from repro.workloads.runner import run_team
from repro.workloads.stream import STREAM_KERNELS, stream_phase


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpirun",
        description="Launch and measure a hybrid MPI+OpenMP job.")
    parser.add_argument("-np", dest="nranks", type=int, default=2,
                        help="number of MPI ranks (default 2)")
    parser.add_argument("-pernode", action="store_true", default=True,
                        help="one rank per node (default; the paper's mode)")
    parser.add_argument("--omp", dest="omp_threads", type=int, default=4,
                        help="OMP_NUM_THREADS per rank (default 4)")
    parser.add_argument("-c", dest="cpus", default="0-3",
                        help="per-rank pin list (default 0-3)")
    parser.add_argument("-t", dest="thread_type", default="intel_mpi",
                        help="threading model preset (default intel_mpi)")
    parser.add_argument("-g", dest="group", default="FLOPS_DP",
                        help="event group to measure on every rank")
    parser.add_argument("workload", nargs="?", default="stream_icc",
                        help="stream_icc | stream_gcc")
    add_arch_argument(parser)
    parser.add_argument("--elements", type=int, default=4_000_000,
                        help="STREAM elements per rank")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    if not args.workload.startswith("stream_"):
        print("repro-mpirun: only stream_* workloads are wired",
              file=sys.stderr)
        return 2
    compiler = args.workload.split("_", 1)[1]

    try:
        cluster = SimCluster(args.arch, args.nranks, seed=13)
        mpiexec = MpiExec(cluster)

        def setup(kernel):
            return LikwidPin(kernel).launch(
                args.cpus, thread_type=args.thread_type).master

        mpiexec.run(args.nranks, pernode=True, setup=setup)
        mpiexec.spawn_teams(args.omp_threads)
        mpiexec.place_all()

        mpi_perfctr = MpiPerfCtr(mpiexec, args.group, args.cpus)
        bandwidths: dict[int, float] = {}

        def run_rank(rank):
            result = run_team(
                rank.node.machine, rank.node.kernel, rank.team,
                lambda _i, n: stream_phase("triad", compiler,
                                           args.elements // n),
                migrate=False)
            bandwidths[rank.rank] = (
                STREAM_KERNELS["triad"].reported_bytes * args.elements
                / result.total_time / 1e6)
            return result

        measurement = mpi_perfctr.wrap(run_rank)
    except ReproError as exc:
        print(f"repro-mpirun: {exc}", file=sys.stderr)
        return 1

    print(f"# {args.nranks} ranks x {args.omp_threads} threads "
          f"({args.workload}, pin {args.cpus}, skip preset "
          f"{args.thread_type}) on {args.arch}")
    for rank in sorted(bandwidths):
        print(f"rank {rank}: {bandwidths[rank]:.0f} MB/s")
    print()
    print(measurement.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
